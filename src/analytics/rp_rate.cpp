#include "analytics/rp_rate.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "analytics/reachability.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace adsynth::analytics {

namespace {

/// Fixed upper bound on source chunks.  Chunk boundaries (and therefore the
/// floating-point merge bracketing) depend on the source count alone, never
/// on the thread count — route_penetration is bit-identical at any
/// --threads setting.  Each chunk carries a dense private accumulator, so
/// the bound also caps merge memory at ~16·(V + E) doubles.
constexpr std::size_t kRpChunks = 16;

/// Per-worker sweep scratch, reused across the chunks a worker steals.
/// Epoch stamps avoid an O(n) clear per source.
struct SweepScratch {
  std::vector<std::uint32_t> epoch;
  std::vector<double> sigma_s;
  std::deque<NodeIndex> frontier;
  std::uint32_t current_epoch = 0;
};

/// Per-chunk private accumulator, merged deterministically in chunk order.
struct RpPartial {
  std::vector<double> through;
  std::vector<double> edge_through;
  double total_paths = 0.0;
};

}  // namespace

double RpResult::peak() const {
  double best = 0.0;
  for (const double r : rate) best = std::max(best, r);
  return best;
}

std::vector<std::pair<NodeIndex, double>> RpResult::top(std::size_t k) const {
  std::vector<std::pair<NodeIndex, double>> order;
  order.reserve(rate.size());
  for (NodeIndex v = 0; v < rate.size(); ++v) {
    if (rate[v] > 0.0) order.emplace_back(v, rate[v]);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (order.size() > k) order.resize(k);
  return order;
}

RpResult route_penetration(const AttackGraph& graph, const RpOptions& options,
                           const std::vector<bool>* blocked) {
  ADSYNTH_SPAN("analytics.rp_rate");
  const NodeIndex target = graph.domain_admins();
  if (target == adcore::kNoNodeIndex) {
    throw std::logic_error("route_penetration: graph has no Domain Admins");
  }
  const std::size_t n = graph.node_count();
  ViewOptions view;
  view.blocked = blocked;
  const Csr forward = build_forward(graph, view);
  const Csr reverse = build_reverse(graph, view);

  // Reverse sweep from the target: hop distance to target d_t and number of
  // shortest v→target paths σ_t, accumulated in BFS level order.  This stays
  // serial: σ accumulation is order-sensitive and the sweep runs once.
  std::vector<std::int32_t> dist_to_t(n, kUnreachable);
  std::vector<double> sigma_t(n, 0.0);
  {
    ADSYNTH_SPAN("analytics.rp.reverse_sweep");
    std::deque<NodeIndex> frontier{target};
    dist_to_t[target] = 0;
    sigma_t[target] = 1.0;
    while (!frontier.empty()) {
      const NodeIndex v = frontier.front();
      frontier.pop_front();
      for (std::uint32_t i = reverse.offsets[v]; i < reverse.offsets[v + 1];
           ++i) {
        const NodeIndex u = reverse.targets[i];
        if (dist_to_t[u] == kUnreachable) {
          dist_to_t[u] = dist_to_t[v] + 1;
          sigma_t[u] = sigma_t[v];
          frontier.push_back(u);
        } else if (dist_to_t[u] == dist_to_t[v] + 1) {
          sigma_t[u] += sigma_t[v];
        }
      }
    }
  }

  RpResult result;
  result.rate.assign(n, 0.0);

  // Contributing sources: regular users with a path to the target.
  std::vector<NodeIndex> sources;
  for (const NodeIndex u : regular_users(graph)) {
    if (dist_to_t[u] != kUnreachable && u != target) sources.push_back(u);
  }
  result.contributing_sources = sources.size();
  if (sources.empty()) {
    if (options.edge_traffic) result.edge_traffic.assign(graph.edge_count(), 0.0);
    return result;
  }

  if (options.max_sources > 0 && sources.size() > options.max_sources) {
    util::Rng rng(options.seed);
    sources = rng.sample(sources, options.max_sources);
    result.sampled = true;
  }
  result.evaluated_sources = sources.size();
  ADSYNTH_METRIC_COUNT("analytics.rp.sources_evaluated", sources.size());

  // Per-source forward sweeps restricted to the shortest-path DAG toward the
  // target: an arc v→w lies on a shortest path iff d_t[w] == d_t[v] − 1.
  // The sources are independent, so chunks of them run as parallel tasks;
  // each task writes a private RpPartial which parallel_map_reduce folds in
  // ascending chunk order (the deterministic-reduction rule).
  util::ThreadPool& pool = util::global_pool();
  const std::size_t grain = std::max<std::size_t>(
      1, (sources.size() + kRpChunks - 1) / kRpChunks);
  std::vector<SweepScratch> scratch(pool.size());

  auto sweep_chunk = [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    ADSYNTH_SPAN("analytics.rp.chunk");
    SweepScratch& s = scratch[worker];
    if (s.epoch.size() != n) {
      s.epoch.assign(n, 0);
      s.sigma_s.assign(n, 0.0);
      s.current_epoch = 0;
    }
    RpPartial out;
    out.through.assign(n, 0.0);
    if (options.edge_traffic) out.edge_through.assign(graph.edge_count(), 0.0);
    for (std::size_t idx = lo; idx < hi; ++idx) {
      const NodeIndex src = sources[idx];
      ++s.current_epoch;
      s.frontier.clear();
      s.frontier.push_back(src);
      s.epoch[src] = s.current_epoch;
      s.sigma_s[src] = 1.0;
      while (!s.frontier.empty()) {
        const NodeIndex v = s.frontier.front();
        s.frontier.pop_front();
        // All of v's σ contributions have arrived (strict level order), so
        // its through-count is final for this source.
        out.through[v] += s.sigma_s[v] * sigma_t[v];
        if (v == target) continue;
        for (std::uint32_t i = forward.offsets[v]; i < forward.offsets[v + 1];
             ++i) {
          const NodeIndex w = forward.targets[i];
          if (dist_to_t[w] != dist_to_t[v] - 1) continue;  // not a SP DAG arc
          if (options.edge_traffic) {
            out.edge_through[forward.edge_ids[i]] +=
                s.sigma_s[v] * sigma_t[w];
          }
          if (s.epoch[w] != s.current_epoch) {
            s.epoch[w] = s.current_epoch;
            s.sigma_s[w] = s.sigma_s[v];
            s.frontier.push_back(w);
          } else {
            s.sigma_s[w] += s.sigma_s[v];
          }
        }
      }
      if (s.epoch[target] == s.current_epoch) {
        out.total_paths += s.sigma_s[target];
      }
    }
    return out;
  };

  RpPartial init;
  init.through.assign(n, 0.0);
  if (options.edge_traffic) init.edge_through.assign(graph.edge_count(), 0.0);
  const RpPartial merged = util::parallel_map_reduce(
      pool, 0, sources.size(), grain, std::move(init), sweep_chunk,
      [](RpPartial& acc, RpPartial&& part) {
        for (std::size_t v = 0; v < acc.through.size(); ++v) {
          acc.through[v] += part.through[v];
        }
        for (std::size_t e = 0; e < acc.edge_through.size(); ++e) {
          acc.edge_through[e] += part.edge_through[e];
        }
        acc.total_paths += part.total_paths;
      });

  if (merged.total_paths > 0.0) {
    for (NodeIndex v = 0; v < n; ++v) {
      result.rate[v] = merged.through[v] / merged.total_paths;
    }
    result.rate[target] = 0.0;  // excluded by definition
    if (options.edge_traffic) {
      result.edge_traffic.assign(graph.edge_count(), 0.0);
      for (std::size_t e = 0; e < merged.edge_through.size(); ++e) {
        result.edge_traffic[e] = merged.edge_through[e] / merged.total_paths;
      }
    }
  } else if (options.edge_traffic) {
    result.edge_traffic.assign(graph.edge_count(), 0.0);
  }
  return result;
}

}  // namespace adsynth::analytics
