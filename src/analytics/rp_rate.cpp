#include "analytics/rp_rate.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "analytics/reachability.hpp"

namespace adsynth::analytics {

double RpResult::peak() const {
  double best = 0.0;
  for (const double r : rate) best = std::max(best, r);
  return best;
}

std::vector<std::pair<NodeIndex, double>> RpResult::top(std::size_t k) const {
  std::vector<std::pair<NodeIndex, double>> order;
  order.reserve(rate.size());
  for (NodeIndex v = 0; v < rate.size(); ++v) {
    if (rate[v] > 0.0) order.emplace_back(v, rate[v]);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (order.size() > k) order.resize(k);
  return order;
}

RpResult route_penetration(const AttackGraph& graph, const RpOptions& options,
                           const std::vector<bool>* blocked) {
  const NodeIndex target = graph.domain_admins();
  if (target == adcore::kNoNodeIndex) {
    throw std::logic_error("route_penetration: graph has no Domain Admins");
  }
  const std::size_t n = graph.node_count();
  ViewOptions view;
  view.blocked = blocked;
  const Csr forward = build_forward(graph, view);
  const Csr reverse = build_reverse(graph, view);

  // Reverse sweep from the target: hop distance to target d_t and number of
  // shortest v→target paths σ_t, accumulated in BFS level order.
  std::vector<std::int32_t> dist_to_t(n, kUnreachable);
  std::vector<double> sigma_t(n, 0.0);
  {
    std::deque<NodeIndex> frontier{target};
    dist_to_t[target] = 0;
    sigma_t[target] = 1.0;
    while (!frontier.empty()) {
      const NodeIndex v = frontier.front();
      frontier.pop_front();
      for (std::uint32_t i = reverse.offsets[v]; i < reverse.offsets[v + 1];
           ++i) {
        const NodeIndex u = reverse.targets[i];
        if (dist_to_t[u] == kUnreachable) {
          dist_to_t[u] = dist_to_t[v] + 1;
          sigma_t[u] = sigma_t[v];
          frontier.push_back(u);
        } else if (dist_to_t[u] == dist_to_t[v] + 1) {
          sigma_t[u] += sigma_t[v];
        }
      }
    }
  }

  RpResult result;
  result.rate.assign(n, 0.0);

  // Contributing sources: regular users with a path to the target.
  std::vector<NodeIndex> sources;
  for (const NodeIndex u : regular_users(graph)) {
    if (dist_to_t[u] != kUnreachable && u != target) sources.push_back(u);
  }
  result.contributing_sources = sources.size();
  if (sources.empty()) return result;

  if (options.max_sources > 0 && sources.size() > options.max_sources) {
    util::Rng rng(options.seed);
    sources = rng.sample(sources, options.max_sources);
    result.sampled = true;
  }
  result.evaluated_sources = sources.size();

  // Per-source forward sweep restricted to the shortest-path DAG toward the
  // target: an arc v→w lies on a shortest path iff d_t[w] == d_t[v] − 1.
  // Epoch-stamped scratch arrays avoid an O(n) clear per source.
  std::vector<std::uint32_t> epoch(n, 0);
  std::vector<double> sigma_s(n, 0.0);
  std::vector<double> through(n, 0.0);
  std::vector<double> edge_through;
  if (options.edge_traffic) edge_through.assign(graph.edge_count(), 0.0);
  double total_paths = 0.0;
  std::uint32_t current_epoch = 0;
  std::deque<NodeIndex> frontier;

  for (const NodeIndex s : sources) {
    ++current_epoch;
    frontier.clear();
    frontier.push_back(s);
    epoch[s] = current_epoch;
    sigma_s[s] = 1.0;
    while (!frontier.empty()) {
      const NodeIndex v = frontier.front();
      frontier.pop_front();
      // All of v's σ contributions have arrived (strict level order), so
      // its through-count is final for this source.
      through[v] += sigma_s[v] * sigma_t[v];
      if (v == target) continue;
      for (std::uint32_t i = forward.offsets[v]; i < forward.offsets[v + 1];
           ++i) {
        const NodeIndex w = forward.targets[i];
        if (dist_to_t[w] != dist_to_t[v] - 1) continue;  // not on a SP DAG arc
        if (options.edge_traffic) {
          edge_through[forward.edge_ids[i]] += sigma_s[v] * sigma_t[w];
        }
        if (epoch[w] != current_epoch) {
          epoch[w] = current_epoch;
          sigma_s[w] = sigma_s[v];
          frontier.push_back(w);
        } else {
          sigma_s[w] += sigma_s[v];
        }
      }
    }
    if (epoch[target] == current_epoch) total_paths += sigma_s[target];
  }

  if (total_paths > 0.0) {
    for (NodeIndex v = 0; v < n; ++v) {
      result.rate[v] = through[v] / total_paths;
    }
    result.rate[target] = 0.0;  // excluded by definition
    if (options.edge_traffic) {
      result.edge_traffic.assign(graph.edge_count(), 0.0);
      for (std::size_t e = 0; e < edge_through.size(); ++e) {
        result.edge_traffic[e] = edge_through[e] / total_paths;
      }
    }
  } else if (options.edge_traffic) {
    result.edge_traffic.assign(graph.edge_count(), 0.0);
  }
  return result;
}

}  // namespace adsynth::analytics
