// Structured attack-path extraction: shortest escalation chains from
// regular users to Domain Admins, with the edge kind of every hop — the
// BloodHound "shortest path to Domain Admins" query.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/graph_view.hpp"

namespace adsynth::analytics {

struct AttackHop {
  NodeIndex from = adcore::kNoNodeIndex;
  NodeIndex to = adcore::kNoNodeIndex;
  adcore::EdgeKind kind = adcore::EdgeKind::kContains;
  EdgeIndex edge = kNoEdgeIndex;  // index into AttackGraph::edges()
};

struct AttackPath {
  NodeIndex source = adcore::kNoNodeIndex;
  std::vector<AttackHop> hops;

  std::size_t length() const { return hops.size(); }
  /// "U -[ExecuteDCOM]-> DC01 -[HasSession]-> ADM -[MemberOf]-> DA".
  std::string describe(const adcore::AttackGraph& graph) const;
};

struct AttackPathOptions {
  /// Maximum paths returned (one per breached source, shortest-first).
  std::size_t max_paths = 10;
  /// Optional blocked-edge mask (size graph.edge_count()).
  const std::vector<bool>* blocked = nullptr;
};

/// One shortest path per breached regular user, ordered by length then by
/// source index, truncated to max_paths.  Hop edge kinds are taken from the
/// actual graph edge used by the BFS tree (parallel edges: the first
/// traversable one wins deterministically).
std::vector<AttackPath> shortest_attack_paths(
    const adcore::AttackGraph& graph, const AttackPathOptions& options = {});

}  // namespace adsynth::analytics
