// User-session statistics (paper §IV-B, Figs 6–8): per-user counts of
// HasSession edges, the peak count, and the top-k distribution compared
// against the University AD system.
#pragma once

#include <cstddef>
#include <vector>

#include "adcore/attack_graph.hpp"

namespace adsynth::analytics {

struct SessionStats {
  /// Session count per user, aligned with `users`.
  std::vector<adcore::NodeIndex> users;
  std::vector<std::uint32_t> counts;
  std::size_t total_sessions = 0;
  std::uint32_t peak = 0;         // Fig. 6/7 metric
  double mean = 0.0;
  /// Counts of the `k` users with most sessions, descending (Fig. 8).
  std::vector<std::uint32_t> top(std::size_t k) const;
};

/// Counts HasSession edges per user node (sessions point computer→user).
SessionStats session_stats(const adcore::AttackGraph& graph);

}  // namespace adsynth::analytics
