// Aggregate AD graph metrics: node/edge composition, density, degrees.
// These back Fig. 5 (density) and the summary lines of the examples.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "adcore/attack_graph.hpp"

namespace adsynth::analytics {

struct GraphMetrics {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  double density = 0.0;  // |E| / (|V|·(|V|−1))
  std::array<std::size_t, adcore::kObjectKindCount> nodes_by_kind{};
  std::array<std::size_t, adcore::kEdgeKindCount> edges_by_kind{};
  std::size_t violations = 0;
  std::uint32_t max_out_degree = 0;
  std::uint32_t max_in_degree = 0;
  double mean_degree = 0.0;  // (in+out)/2 per node == |E|/|V|

  std::size_t count(adcore::ObjectKind kind) const {
    return nodes_by_kind[static_cast<std::size_t>(kind)];
  }
  std::size_t count(adcore::EdgeKind kind) const {
    return edges_by_kind[static_cast<std::size_t>(kind)];
  }

  /// Multi-line human-readable summary.
  std::string describe() const;
};

GraphMetrics compute_metrics(const adcore::AttackGraph& graph);

}  // namespace adsynth::analytics
