#include "analytics/attack_paths.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "analytics/reachability.hpp"
#include "util/parallel.hpp"

namespace adsynth::analytics {

std::string AttackPath::describe(const adcore::AttackGraph& graph) const {
  if (hops.empty()) return graph.name(source);
  std::string out = graph.name(source);
  for (const AttackHop& hop : hops) {
    out += " -[";
    out += adcore::edge_kind_name(hop.kind);
    out += "]-> ";
    out += graph.name(hop.to);
  }
  return out;
}

std::vector<AttackPath> shortest_attack_paths(
    const adcore::AttackGraph& graph, const AttackPathOptions& options) {
  const NodeIndex target = graph.domain_admins();
  if (target == adcore::kNoNodeIndex) {
    throw std::logic_error("shortest_attack_paths: graph has no Domain Admins");
  }
  ViewOptions view;
  view.blocked = options.blocked;
  // One backward BFS from the target builds a shortest-path tree for every
  // source at once (parent pointers in the *reverse* graph point one hop
  // closer to the target).
  const Csr reverse = build_reverse(graph, view);
  const std::size_t n = graph.node_count();
  std::vector<std::int32_t> dist(n, kUnreachable);
  std::vector<EdgeIndex> via_edge(n, kNoEdgeIndex);  // edge toward target
  std::deque<NodeIndex> frontier{target};
  dist[target] = 0;
  while (!frontier.empty()) {
    const NodeIndex v = frontier.front();
    frontier.pop_front();
    for (std::uint32_t i = reverse.offsets[v]; i < reverse.offsets[v + 1];
         ++i) {
      const NodeIndex u = reverse.targets[i];
      if (dist[u] != kUnreachable) continue;
      dist[u] = dist[v] + 1;
      via_edge[u] = reverse.edge_ids[i];
      frontier.push_back(u);
    }
  }

  // Breached sources, shortest-first (ties by node index).
  std::vector<NodeIndex> sources;
  for (const NodeIndex u : regular_users(graph)) {
    if (dist[u] != kUnreachable && u != target) sources.push_back(u);
  }
  std::sort(sources.begin(), sources.end(),
            [&](NodeIndex a, NodeIndex b) {
              if (dist[a] != dist[b]) return dist[a] < dist[b];
              return a < b;
            });
  if (sources.size() > options.max_paths) sources.resize(options.max_paths);

  // Per-breached-user reconstruction walks the (read-only) BFS tree; each
  // source fills its own slot, so the tasks are independent and the output
  // order is fixed by the slot index regardless of thread count.
  std::vector<AttackPath> paths(sources.size());
  const auto& edges = graph.edges();
  util::parallel_for(
      util::global_pool(), 0, sources.size(), /*grain=*/8,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          AttackPath& path = paths[idx];
          path.source = sources[idx];
          NodeIndex cur = sources[idx];
          while (cur != target) {
            const EdgeIndex e = via_edge[cur];
            const auto& edge = edges[e];
            path.hops.push_back(
                AttackHop{edge.source, edge.target, edge.kind, e});
            cur = edge.target;
          }
        }
      });
  return paths;
}

}  // namespace adsynth::analytics
