#include "analytics/ad_metrics.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "util/table.hpp"

namespace adsynth::analytics {

using adcore::AttackGraph;
using adcore::EdgeKind;
using adcore::NodeIndex;
using adcore::ObjectKind;

AdMetricsReport compute_ad_metrics(const AttackGraph& graph) {
  AdMetricsReport r;
  const std::size_t n = graph.node_count();

  std::size_t enabled_users = 0;
  std::size_t admin_users = 0;
  std::vector<NodeIndex> group_nodes;
  for (NodeIndex v = 0; v < n; ++v) {
    switch (graph.kind(v)) {
      case ObjectKind::kUser:
        ++r.users;
        if (graph.has_flag(v, adcore::node_flag::kEnabled)) ++enabled_users;
        if (graph.has_flag(v, adcore::node_flag::kAdmin)) ++admin_users;
        break;
      case ObjectKind::kComputer: ++r.computers; break;
      case ObjectKind::kGroup:
        ++r.groups;
        group_nodes.push_back(v);
        break;
      default: break;
    }
  }
  if (r.users > 0) {
    r.enabled_user_ratio =
        static_cast<double>(enabled_users) / static_cast<double>(r.users);
    r.admin_user_ratio =
        static_cast<double>(admin_users) / static_cast<double>(r.users);
  }

  std::vector<std::uint32_t> admin_in(n, 0);
  std::vector<std::uint32_t> session_in(n, 0);
  std::vector<std::uint32_t> memberof_out(n, 0);
  std::vector<std::uint32_t> members_in(n, 0);
  // Group→group nesting adjacency for the depth pass.
  std::vector<std::vector<NodeIndex>> nested_in(n);
  std::size_t user_memberships = 0;

  for (const auto& e : graph.edges()) {
    switch (e.kind) {
      case EdgeKind::kAdminTo:
        if (graph.kind(e.target) == ObjectKind::kComputer) {
          ++admin_in[e.target];
        }
        break;
      case EdgeKind::kHasSession: ++session_in[e.source]; break;
      case EdgeKind::kMemberOf:
        ++memberof_out[e.source];
        ++members_in[e.target];
        if (graph.kind(e.source) == ObjectKind::kUser) ++user_memberships;
        if (graph.kind(e.source) == ObjectKind::kGroup &&
            graph.kind(e.target) == ObjectKind::kGroup) {
          nested_in[e.target].push_back(e.source);
        }
        if (e.target == graph.domain_admins()) ++r.domain_admin_members;
        break;
      default: break;
    }
  }

  if (r.computers > 0) {
    std::size_t with_admin = 0;
    std::size_t with_session = 0;
    std::size_t admin_total = 0;
    std::size_t session_total = 0;
    for (NodeIndex v = 0; v < n; ++v) {
      if (graph.kind(v) != ObjectKind::kComputer) continue;
      with_admin += admin_in[v] > 0 ? 1 : 0;
      with_session += session_in[v] > 0 ? 1 : 0;
      admin_total += admin_in[v];
      session_total += session_in[v];
    }
    const auto comps = static_cast<double>(r.computers);
    r.computers_with_admin_ratio = static_cast<double>(with_admin) / comps;
    r.computers_with_session_ratio =
        static_cast<double>(with_session) / comps;
    r.mean_admins_per_computer = static_cast<double>(admin_total) / comps;
    r.mean_sessions_per_computer = static_cast<double>(session_total) / comps;
  }

  if (r.users > 0) {
    r.mean_groups_per_user =
        static_cast<double>(user_memberships) / static_cast<double>(r.users);
  }
  if (r.groups > 0) {
    std::size_t member_total = 0;
    for (const NodeIndex g : group_nodes) {
      member_total += members_in[g];
      r.empty_groups += members_in[g] == 0 ? 1 : 0;
    }
    r.mean_members_per_group =
        static_cast<double>(member_total) / static_cast<double>(r.groups);
  }

  // Longest group→group nesting chain (BFS layering from flat groups;
  // cycles — possible in baseline soups — are clamped by the visit guard).
  {
    std::vector<std::uint32_t> depth(n, 0);
    std::deque<NodeIndex> frontier;
    // Start from groups with no nested parents feeding them.
    std::vector<std::uint32_t> pending(n, 0);
    std::vector<std::vector<NodeIndex>> nested_out(n);
    for (const NodeIndex g : group_nodes) {
      for (const NodeIndex child : nested_in[g]) {
        ++pending[g];
        nested_out[child].push_back(g);
      }
    }
    for (const NodeIndex g : group_nodes) {
      if (pending[g] == 0) frontier.push_back(g);
    }
    while (!frontier.empty()) {
      const NodeIndex g = frontier.front();
      frontier.pop_front();
      r.max_group_nesting_depth =
          std::max<std::size_t>(r.max_group_nesting_depth, depth[g]);
      for (const NodeIndex parent : nested_out[g]) {
        depth[parent] = std::max(depth[parent], depth[g] + 1);
        if (--pending[parent] == 0) frontier.push_back(parent);
      }
    }
  }
  return r;
}

std::string AdMetricsReport::describe() const {
  std::string out;
  out += "users: " + std::to_string(users) +
         " (enabled " + util::percent(enabled_user_ratio, 1) +
         ", admin " + util::percent(admin_user_ratio, 2) + ")\n";
  out += "computers: " + std::to_string(computers) +
         " (with admin " + util::percent(computers_with_admin_ratio, 1) +
         ", with session " + util::percent(computers_with_session_ratio, 1) +
         ")\n";
  out += "mean admins/computer: " + util::fixed(mean_admins_per_computer, 2) +
         "  mean sessions/computer: " +
         util::fixed(mean_sessions_per_computer, 2) + "\n";
  out += "groups: " + std::to_string(groups) +
         " (empty " + std::to_string(empty_groups) +
         ", mean members " + util::fixed(mean_members_per_group, 1) +
         ", max nesting " + std::to_string(max_group_nesting_depth) + ")\n";
  out += "mean groups/user: " + util::fixed(mean_groups_per_user, 2) +
         "  Domain Admins members: " + std::to_string(domain_admin_members) +
         "\n";
  return out;
}

}  // namespace adsynth::analytics
