// Compressed sparse row (CSR) views over an AttackGraph, restricted to
// attacker-traversable edges.  All analytics and defense algorithms operate
// on these views; blocking/cutting edges is expressed with an edge mask so
// the underlying graph is never mutated.
#pragma once

#include <cstdint>
#include <vector>

#include "adcore/attack_graph.hpp"
#include "util/csr.hpp"

namespace adsynth::analytics {

using adcore::AttackGraph;
using adcore::NodeIndex;

/// Index into AttackGraph::edges().
using EdgeIndex = std::uint32_t;
inline constexpr EdgeIndex kNoEdgeIndex = 0xffffffffu;

/// CSR adjacency over an AttackGraph.  The struct itself is the generic
/// util::Csr (offsets/targets/edge_ids — see util/csr.hpp, which also holds
/// the BFS kernels shared with the graphdb query executor); here targets are
/// NodeIndex values and edge_ids positions into AttackGraph::edges(), so
/// masks and cut-sets can be reported in graph terms.
using Csr = util::Csr;

/// Which graph edges a view includes.
struct ViewOptions {
  /// Keep only attacker-traversable kinds (adcore::is_traversable).
  bool traversable_only = true;
  /// Optional per-edge mask: when non-null and (*blocked)[edge] is true the
  /// edge is excluded.  Must have size graph.edge_count().
  const std::vector<bool>* blocked = nullptr;
};

/// Forward adjacency (edge direction = attack direction).
Csr build_forward(const AttackGraph& graph, const ViewOptions& options = {});

/// Reverse adjacency (arcs flipped), for backward sweeps from the target.
Csr build_reverse(const AttackGraph& graph, const ViewOptions& options = {});

}  // namespace adsynth::analytics
