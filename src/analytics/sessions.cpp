#include "analytics/sessions.hpp"

#include <algorithm>

namespace adsynth::analytics {

std::vector<std::uint32_t> SessionStats::top(std::size_t k) const {
  std::vector<std::uint32_t> sorted = counts;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

SessionStats session_stats(const adcore::AttackGraph& graph) {
  std::vector<std::uint32_t> per_node(graph.node_count(), 0);
  std::size_t total = 0;
  for (const auto& e : graph.edges()) {
    if (e.kind == adcore::EdgeKind::kHasSession) {
      ++per_node[e.target];
      ++total;
    }
  }
  SessionStats stats;
  stats.total_sessions = total;
  for (adcore::NodeIndex v = 0; v < graph.node_count(); ++v) {
    if (graph.kind(v) != adcore::ObjectKind::kUser) continue;
    stats.users.push_back(v);
    stats.counts.push_back(per_node[v]);
    stats.peak = std::max(stats.peak, per_node[v]);
  }
  stats.mean = stats.users.empty()
                   ? 0.0
                   : static_cast<double>(total) /
                         static_cast<double>(stats.users.size());
  return stats;
}

}  // namespace adsynth::analytics
