#include "analytics/reachability.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace adsynth::analytics {

namespace {

/// Below this node count a multi-source BFS runs serially: the frontier
/// bookkeeping of the level-synchronous expansion costs more than it saves
/// on small graphs.
constexpr std::size_t kParallelBfsNodes = 4'096;

/// Level-synchronous parallel expansion.  Each level splits the frontier
/// into chunks; workers claim newly reached nodes by CAS-ing their distance
/// from kUnreachable to the level, so every node joins exactly one chunk's
/// local next-frontier.  Which chunk wins a contended node is racy, but the
/// distance it receives is not (all writers offer the same level) — the
/// returned distances are deterministic at every thread count.
std::vector<std::int32_t> bfs_distances_parallel(
    const Csr& csr, std::vector<std::int32_t> dist,
    std::vector<NodeIndex> frontier, util::ThreadPool& pool) {
  std::int32_t level = 0;
  while (!frontier.empty()) {
    const std::int32_t next_level = level + 1;
    const std::size_t grain = std::max<std::size_t>(
        128, frontier.size() / (pool.size() * 4));
    frontier = util::parallel_map_reduce(
        pool, 0, frontier.size(), grain, std::vector<NodeIndex>{},
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          ADSYNTH_SPAN("analytics.bfs.chunk");
          std::vector<NodeIndex> next;
          for (std::size_t f = lo; f < hi; ++f) {
            const NodeIndex v = frontier[f];
            for (std::uint32_t i = csr.offsets[v]; i < csr.offsets[v + 1];
                 ++i) {
              const NodeIndex w = csr.targets[i];
              std::atomic_ref<std::int32_t> slot(dist[w]);
              if (slot.load(std::memory_order_relaxed) != kUnreachable) {
                continue;
              }
              std::int32_t expected = kUnreachable;
              if (slot.compare_exchange_strong(expected, next_level,
                                               std::memory_order_relaxed)) {
                next.push_back(w);
              }
            }
          }
          return next;
        },
        [](std::vector<NodeIndex>& acc, std::vector<NodeIndex>&& part) {
          acc.insert(acc.end(), part.begin(), part.end());
        });
    level = next_level;
  }
  return dist;
}

}  // namespace

std::vector<std::int32_t> bfs_distances(
    const Csr& csr, const std::vector<NodeIndex>& sources) {
  ADSYNTH_SPAN("analytics.bfs");
  ADSYNTH_METRIC_COUNT("analytics.bfs.runs", 1);
  std::vector<std::int32_t> dist(csr.node_count(), kUnreachable);
  std::deque<NodeIndex> frontier;
  for (const NodeIndex s : sources) {
    if (s >= csr.node_count()) {
      throw std::out_of_range("bfs_distances: source out of range");
    }
    if (dist[s] == kUnreachable) {
      dist[s] = 0;
      frontier.push_back(s);
    }
  }
  util::ThreadPool& pool = util::global_pool();
  if (pool.size() > 1 && csr.node_count() >= kParallelBfsNodes) {
    return bfs_distances_parallel(
        csr, std::move(dist),
        std::vector<NodeIndex>(frontier.begin(), frontier.end()), pool);
  }
  while (!frontier.empty()) {
    const NodeIndex v = frontier.front();
    frontier.pop_front();
    const std::int32_t dv = dist[v];
    for (std::uint32_t i = csr.offsets[v]; i < csr.offsets[v + 1]; ++i) {
      const NodeIndex w = csr.targets[i];
      if (dist[w] == kUnreachable) {
        dist[w] = dv + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

std::optional<std::vector<NodeIndex>> shortest_path(const Csr& forward,
                                                    NodeIndex source,
                                                    NodeIndex target) {
  if (source >= forward.node_count() || target >= forward.node_count()) {
    throw std::out_of_range("shortest_path: node out of range");
  }
  std::vector<NodeIndex> parent(forward.node_count(), adcore::kNoNodeIndex);
  std::vector<bool> seen(forward.node_count(), false);
  std::deque<NodeIndex> frontier{source};
  seen[source] = true;
  while (!frontier.empty() && !seen[target]) {
    const NodeIndex v = frontier.front();
    frontier.pop_front();
    for (std::uint32_t i = forward.offsets[v]; i < forward.offsets[v + 1];
         ++i) {
      const NodeIndex w = forward.targets[i];
      if (!seen[w]) {
        seen[w] = true;
        parent[w] = v;
        frontier.push_back(w);
        if (w == target) break;
      }
    }
  }
  if (!seen[target]) return std::nullopt;
  std::vector<NodeIndex> path;
  for (NodeIndex v = target; v != adcore::kNoNodeIndex; v = parent[v]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != source) return std::nullopt;  // defensive
  return path;
}

std::vector<NodeIndex> regular_users(const AttackGraph& graph) {
  std::vector<NodeIndex> out;
  for (NodeIndex i = 0; i < graph.node_count(); ++i) {
    if (graph.kind(i) == adcore::ObjectKind::kUser &&
        graph.has_flag(i, adcore::node_flag::kEnabled) &&
        !graph.has_flag(i, adcore::node_flag::kAdmin)) {
      out.push_back(i);
    }
  }
  return out;
}

DaReachability users_reaching_da(const AttackGraph& graph,
                                 const std::vector<bool>* blocked) {
  const NodeIndex da = graph.domain_admins();
  if (da == adcore::kNoNodeIndex) {
    throw std::logic_error("users_reaching_da: graph has no Domain Admins");
  }
  ViewOptions options;
  options.blocked = blocked;
  const Csr reverse = build_reverse(graph, options);
  const std::vector<std::int32_t> dist_to_da = bfs_distances(reverse, {da});

  DaReachability result;
  const std::vector<NodeIndex> users = regular_users(graph);
  result.regular_users = users.size();
  result.distances.reserve(users.size());
  for (const NodeIndex u : users) {
    const std::int32_t d = dist_to_da[u];
    result.distances.push_back(d);
    if (d != kUnreachable) ++result.users_with_path;
  }
  result.fraction =
      users.empty() ? 0.0
                    : static_cast<double>(result.users_with_path) /
                          static_cast<double>(users.size());
  return result;
}

}  // namespace adsynth::analytics
