#include "analytics/reachability.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "util/csr.hpp"
#include "util/trace.hpp"

namespace adsynth::analytics {

std::optional<std::vector<NodeIndex>> shortest_path(const Csr& forward,
                                                    NodeIndex source,
                                                    NodeIndex target) {
  if (source >= forward.node_count() || target >= forward.node_count()) {
    throw std::out_of_range("shortest_path: node out of range");
  }
  std::vector<NodeIndex> parent(forward.node_count(), adcore::kNoNodeIndex);
  std::vector<bool> seen(forward.node_count(), false);
  std::deque<NodeIndex> frontier{source};
  seen[source] = true;
  while (!frontier.empty() && !seen[target]) {
    const NodeIndex v = frontier.front();
    frontier.pop_front();
    for (std::uint32_t i = forward.offsets[v]; i < forward.offsets[v + 1];
         ++i) {
      const NodeIndex w = forward.targets[i];
      if (!seen[w]) {
        seen[w] = true;
        parent[w] = v;
        frontier.push_back(w);
        if (w == target) break;
      }
    }
  }
  if (!seen[target]) return std::nullopt;
  std::vector<NodeIndex> path;
  for (NodeIndex v = target; v != adcore::kNoNodeIndex; v = parent[v]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != source) return std::nullopt;  // defensive
  return path;
}

std::vector<NodeIndex> regular_users(const AttackGraph& graph) {
  std::vector<NodeIndex> out;
  for (NodeIndex i = 0; i < graph.node_count(); ++i) {
    if (graph.kind(i) == adcore::ObjectKind::kUser &&
        graph.has_flag(i, adcore::node_flag::kEnabled) &&
        !graph.has_flag(i, adcore::node_flag::kAdmin)) {
      out.push_back(i);
    }
  }
  return out;
}

DaReachability users_reaching_da(const AttackGraph& graph,
                                 const std::vector<bool>* blocked) {
  const NodeIndex da = graph.domain_admins();
  if (da == adcore::kNoNodeIndex) {
    throw std::logic_error("users_reaching_da: graph has no Domain Admins");
  }
  ViewOptions options;
  options.blocked = blocked;
  const Csr reverse = build_reverse(graph, options);
  const std::vector<std::int32_t> dist_to_da =
      analytics::bfs_distances(reverse, {da});

  DaReachability result;
  const std::vector<NodeIndex> users = regular_users(graph);
  result.regular_users = users.size();
  result.distances.reserve(users.size());
  for (const NodeIndex u : users) {
    const std::int32_t d = dist_to_da[u];
    result.distances.push_back(d);
    if (d != kUnreachable) ++result.users_with_path;
  }
  result.fraction =
      users.empty() ? 0.0
                    : static_cast<double>(result.users_with_path) /
                          static_cast<double>(users.size());
  return result;
}

}  // namespace adsynth::analytics
