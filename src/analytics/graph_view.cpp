#include "analytics/graph_view.hpp"

#include <stdexcept>

namespace adsynth::analytics {

namespace {

Csr build(const AttackGraph& graph, const ViewOptions& options, bool reverse) {
  if (options.blocked != nullptr &&
      options.blocked->size() != graph.edge_count()) {
    throw std::invalid_argument(
        "ViewOptions::blocked mask size must equal edge_count");
  }
  const std::size_t n = graph.node_count();
  Csr csr;
  csr.offsets.assign(n + 1, 0);

  const auto& edges = graph.edges();
  auto included = [&](EdgeIndex i) {
    if (options.traversable_only && !adcore::is_traversable(edges[i].kind)) {
      return false;
    }
    return options.blocked == nullptr || !(*options.blocked)[i];
  };

  for (EdgeIndex i = 0; i < edges.size(); ++i) {
    if (!included(i)) continue;
    const NodeIndex from = reverse ? edges[i].target : edges[i].source;
    ++csr.offsets[from + 1];
  }
  for (std::size_t v = 0; v < n; ++v) csr.offsets[v + 1] += csr.offsets[v];

  csr.targets.resize(csr.offsets[n]);
  csr.edge_ids.resize(csr.offsets[n]);
  std::vector<std::uint32_t> cursor(csr.offsets.begin(),
                                    csr.offsets.end() - 1);
  for (EdgeIndex i = 0; i < edges.size(); ++i) {
    if (!included(i)) continue;
    const NodeIndex from = reverse ? edges[i].target : edges[i].source;
    const NodeIndex to = reverse ? edges[i].source : edges[i].target;
    const std::uint32_t slot = cursor[from]++;
    csr.targets[slot] = to;
    csr.edge_ids[slot] = i;
  }
  return csr;
}

}  // namespace

Csr build_forward(const AttackGraph& graph, const ViewOptions& options) {
  return build(graph, options, /*reverse=*/false);
}

Csr build_reverse(const AttackGraph& graph, const ViewOptions& options) {
  return build(graph, options, /*reverse=*/true);
}

}  // namespace adsynth::analytics
