// Route Penetration Rate (paper §IV-C):
//
//   "the percentage of shortest paths from regular users to Domain Admins
//    passing through that node.  Nodes with large RP rates are recognized
//    as choke points."
//
// For source s and target t, the number of shortest s→t paths through v is
// σ_st(v) = σ(s,v)·σ(v,t) when d(s,v)+d(v,t) = d(s,t), else 0 (Brandes).
// RP(v) = Σ_s σ_st(v) / Σ_s σ_st over all regular-user sources s with a
// path to t.  Path counts are accumulated in double precision (they grow
// exponentially with graph size; only ratios are reported).
//
// Complexity: one reverse BFS from t plus one forward BFS per contributing
// source.  Secure graphs have very few contributing sources; vulnerable
// graphs can have thousands, so sources beyond `max_sources` are sampled
// uniformly (the result notes how many were evaluated).
//
// The per-source sweeps are independent and run as parallel tasks on
// util::global_pool(), each writing a private accumulator merged in fixed
// chunk order — the result is bit-identical at every thread count (see
// DESIGN.md §"Parallel execution model").
#pragma once

#include <cstdint>
#include <vector>

#include "analytics/graph_view.hpp"
#include "util/rng.hpp"

namespace adsynth::analytics {

struct RpOptions {
  /// Cap on exact per-source sweeps; contributing sources beyond this are
  /// uniformly sampled.  0 means no cap.
  std::size_t max_sources = 400;
  /// Seed for the source sampling (only used when the cap binds).
  std::uint64_t seed = 1;
  /// Also accumulate per-edge traffic (# shortest paths crossing each graph
  /// edge) — the "weakest link" score GoodHound ranks by.
  bool edge_traffic = false;
};

struct RpResult {
  /// RP rate per node, in [0, 1].  The target itself is excluded (defined
  /// as 0) — every path trivially ends there.
  std::vector<double> rate;
  std::size_t contributing_sources = 0;  // sources with a path to the target
  std::size_t evaluated_sources = 0;     // after sampling
  bool sampled = false;
  /// Per graph edge (indexed like AttackGraph::edges()): number of shortest
  /// paths crossing it, normalized by the total path count.  Only filled
  /// when RpOptions::edge_traffic is set.
  std::vector<double> edge_traffic;

  /// Highest RP over all nodes (0 when no paths exist).
  double peak() const;
  /// The `k` nodes with highest RP, descending (ties by node id).
  std::vector<std::pair<NodeIndex, double>> top(std::size_t k) const;
};

/// RP rates toward graph.domain_admins() from the regular-user population.
/// Throws std::logic_error when the graph has no Domain Admins marker.
RpResult route_penetration(const AttackGraph& graph,
                           const RpOptions& options = {},
                           const std::vector<bool>* blocked = nullptr);

}  // namespace adsynth::analytics
