#include "analytics/metrics.hpp"

#include <algorithm>
#include <vector>

#include "util/table.hpp"

namespace adsynth::analytics {

GraphMetrics compute_metrics(const adcore::AttackGraph& graph) {
  GraphMetrics m;
  m.nodes = graph.node_count();
  m.edges = graph.edge_count();
  m.density = graph.density();
  for (adcore::NodeIndex v = 0; v < graph.node_count(); ++v) {
    ++m.nodes_by_kind[static_cast<std::size_t>(graph.kind(v))];
  }
  std::vector<std::uint32_t> out_deg(graph.node_count(), 0);
  std::vector<std::uint32_t> in_deg(graph.node_count(), 0);
  for (const auto& e : graph.edges()) {
    ++m.edges_by_kind[static_cast<std::size_t>(e.kind)];
    m.violations += e.violation ? 1 : 0;
    ++out_deg[e.source];
    ++in_deg[e.target];
  }
  for (adcore::NodeIndex v = 0; v < graph.node_count(); ++v) {
    m.max_out_degree = std::max(m.max_out_degree, out_deg[v]);
    m.max_in_degree = std::max(m.max_in_degree, in_deg[v]);
  }
  m.mean_degree = m.nodes == 0 ? 0.0
                               : static_cast<double>(m.edges) /
                                     static_cast<double>(m.nodes);
  return m;
}

std::string GraphMetrics::describe() const {
  std::string out;
  out += "nodes: " + std::to_string(nodes) +
         "  edges: " + std::to_string(edges) +
         "  density: " + util::sci(density) +
         "  violations: " + std::to_string(violations) + "\n";
  out += "by kind:";
  for (std::size_t k = 0; k < adcore::kObjectKindCount; ++k) {
    if (nodes_by_kind[k] == 0) continue;
    out += " ";
    out += adcore::object_kind_label(static_cast<adcore::ObjectKind>(k));
    out += '=';
    out += std::to_string(nodes_by_kind[k]);
  }
  out += "\nby edge:";
  for (std::size_t k = 0; k < adcore::kEdgeKindCount; ++k) {
    if (edges_by_kind[k] == 0) continue;
    out += " ";
    out += adcore::edge_kind_name(static_cast<adcore::EdgeKind>(k));
    out += '=';
    out += std::to_string(edges_by_kind[k]);
  }
  out += "\nmean degree: " + util::fixed(mean_degree, 2) +
         "  max out: " + std::to_string(max_out_degree) +
         "  max in: " + std::to_string(max_in_degree) + "\n";
  return out;
}

}  // namespace adsynth::analytics
