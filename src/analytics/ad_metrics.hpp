// BloodHound-style Active Directory realism metrics (the "common metrics
// in Active Directory" of §IV-B, after FalconForce's AD-metrics series
// [36], [37]): account hygiene ratios, admin-rights spread, session
// coverage, and group-membership statistics.  These are the numbers AD
// assessors compare across estates, so they double as realism checks for
// generated graphs.
#pragma once

#include <string>

#include "adcore/attack_graph.hpp"

namespace adsynth::analytics {

struct AdMetricsReport {
  // --- population ----------------------------------------------------------
  std::size_t users = 0;
  std::size_t computers = 0;
  std::size_t groups = 0;
  double enabled_user_ratio = 0.0;   // enabled / users
  double admin_user_ratio = 0.0;     // admin-flagged / users

  // --- privilege spread ------------------------------------------------------
  /// Computers with at least one inbound AdminTo edge (directly or from a
  /// group): unadministered machines are a hygiene smell.
  double computers_with_admin_ratio = 0.0;
  /// Mean principals with admin rights per computer (direct edges only).
  double mean_admins_per_computer = 0.0;
  /// Members of the Domain Admins group (direct MemberOf edges).
  std::size_t domain_admin_members = 0;

  // --- sessions ----------------------------------------------------------------
  /// Computers carrying at least one interactive session.
  double computers_with_session_ratio = 0.0;
  double mean_sessions_per_computer = 0.0;

  // --- group structure -----------------------------------------------------------
  double mean_groups_per_user = 0.0;     // direct MemberOf per user
  double mean_members_per_group = 0.0;   // direct members per group
  std::size_t empty_groups = 0;
  /// Maximum nesting depth over group→group MemberOf chains (0 = flat).
  std::size_t max_group_nesting_depth = 0;

  std::string describe() const;
};

/// Scans the graph once (plus a nesting-depth pass over group nodes).
AdMetricsReport compute_ad_metrics(const adcore::AttackGraph& graph);

}  // namespace adsynth::analytics
