// BFS distances and the attack-path reachability metrics of §IV-C:
// which regular users have an attack path to Domain Admins (Fig. 9).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analytics/graph_view.hpp"
#include "util/csr.hpp"

namespace adsynth::analytics {

inline constexpr std::int32_t kUnreachable = util::kBfsUnreachable;

/// Multi-source BFS over a CSR view; returns hop distances (kUnreachable
/// where no path exists).  Large graphs expand the frontier level-
/// synchronously across util::global_pool(); distances are deterministic
/// at every thread count (all claimants of a node offer the same level).
/// The kernel lives in util/csr.cpp so the graphdb query executor can run
/// the same machinery (variable-length patterns stay bit-identical to this
/// oracle); the using-declaration makes the analytics name and the
/// ADL-visible util name one entity, keeping unqualified calls unambiguous.
using util::bfs_distances;

/// One shortest path (as a node sequence source..target) or nullopt.
std::optional<std::vector<NodeIndex>> shortest_path(const Csr& forward,
                                                    NodeIndex source,
                                                    NodeIndex target);

/// The "regular users" population of Fig. 9: enabled, non-admin user nodes.
std::vector<NodeIndex> regular_users(const AttackGraph& graph);

struct DaReachability {
  std::size_t regular_users = 0;
  std::size_t users_with_path = 0;
  /// users_with_path / regular_users (0 when there are no regular users).
  double fraction = 0.0;
  /// Hop distance from each regular user (aligned with the users vector
  /// returned by regular_users()); kUnreachable when no path.
  std::vector<std::int32_t> distances;
};

/// Computes the Fig. 9 metric against graph.domain_admins().  Uses one
/// reverse BFS from Domain Admins, so it is O(V + E) regardless of how many
/// users have paths.  Throws std::logic_error when the graph has no Domain
/// Admins marker.
DaReachability users_reaching_da(const AttackGraph& graph,
                                 const std::vector<bool>* blocked = nullptr);

}  // namespace adsynth::analytics
