// ADSynth generator configuration.
//
// Parameters named in the paper:
//   * num_tiers (k)                — tier-model depth (paper Fig. 3; §III-B.1)
//   * departments / locations      — organisational structure inputs
//   * num_root_folders             — security groups per department (§III-B.1)
//   * p_r (resource_ratio)         — Algorithm 1: fraction of possible target
//                                    resources each admin group gets grants on
//   * p_s (session_ratio)          — Algorithm 2: max fraction of allowed
//                                    computers a user can log on to
//   * perc_misconfig_sessions      — Algorithm 3 violation rate
//   * perc_misconfig_permissions   — Algorithm 4 violation rate
//   * max_sessions_per_user        — the session-count tuning knob §IV-B
//                                    ("a parameter to tune the maximum number
//                                    of sessions per user", ≈20 for AD100)
//   * element_to_element           — output conversion parameter (§III-B)
//
// The two misconfiguration percentages are the "security level" dials:
// high values yield vulnerable networks, low values secure ones (§III-B.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adsynth::core {

/// How Algorithm 2 draws a user's session count.
enum class SessionModel : std::uint8_t {
  /// The paper's model: uniform in [0, min(p_s·|C|, max_sessions_per_user)].
  /// Produces the "constrained spread" of Fig. 8 that the paper reports as
  /// a limitation (the top-30 users crowd the upper bound).
  kUniform,
  /// The paper's stated future work: a long-tailed distribution matching
  /// the University system — most users on 1–2 machines, teaching-staff
  /// profiles on 3–4, and a sparse geometric tail up to the cap.
  kLongTail,
};

struct GeneratorConfig {
  // --- scale --------------------------------------------------------------
  /// Target total node count of the generated graph (users + computers +
  /// structural objects).  The generator first lays out the organisational
  /// skeleton, then fills the remaining budget with users and computers.
  std::size_t target_nodes = 10'000;

  /// Of the non-structural budget, the fraction that becomes users (the
  /// rest becomes computers).
  double user_share = 0.55;

  // --- organisational structure -------------------------------------------
  std::uint32_t num_tiers = 3;  // k; >= 1
  std::vector<std::string> departments;  // empty -> defaults
  std::vector<std::string> locations;    // empty -> defaults
  std::uint32_t num_root_folders = 4;    // security groups per department

  /// Admin (delegation) groups created per administrative tier; tier 0
  /// additionally holds Domain Admins.
  std::uint32_t admin_groups_per_tier = 5;

  /// Domain controllers placed in tier 0.
  std::uint32_t num_domain_controllers = 2;

  std::string domain_fqdn = "corp.local";

  // --- user & computer mix --------------------------------------------------
  /// Fraction of all users that are administrative accounts, split evenly
  /// across the administrative tiers 0..k-2 (all of them when k == 1).
  double admin_user_fraction = 0.01;
  /// Fraction of regular users that are disabled accounts.
  double disabled_user_fraction = 0.12;
  /// Fraction of all computers that are privileged access workstations
  /// (placed in tier 0) and enterprise servers (tier 1) respectively; the
  /// remainder are regular workstations in the last tier.
  double paw_fraction = 0.01;
  double server_fraction = 0.15;

  // --- group membership (node generation, step 3) --------------------------
  std::uint32_t min_groups_per_user = 1;
  std::uint32_t max_groups_per_user = 4;

  // --- edge generation ------------------------------------------------------
  /// p_r: Algorithm 1's cap, as a fraction of total_resources(t, k, is_acl).
  double resource_ratio = 0.30;
  /// p_s: Algorithm 2's cap, as a fraction of |C(t,k)|.
  double session_ratio = 0.001;
  /// Hard cap on sessions per user (paper §IV-B session-tuning parameter).
  std::uint32_t max_sessions_per_user = 20;

  /// Session-count distribution (kUniform = the paper; kLongTail = the
  /// paper's future-work extension fixing the Fig. 8 mismatch).
  SessionModel session_model = SessionModel::kUniform;

  /// Probability that a tier-0 interactive logon (and a tier-0 credential
  /// leak in Algorithm 3) involves the primary operator account rather
  /// than a uniformly drawn tier-0 admin.  Well-run estates concentrate
  /// day-to-day DC maintenance on an on-call account — this concentration
  /// is what produces the high-RP choke points of secure graphs
  /// (Fig. 10c); sloppy estates spread privileged logons widely.
  double primary_operator_bias = 0.90;

  /// Probability that a violated permission (Algorithm 4) targeting an
  /// administrative tier lands on a server (DC/jump host) rather than a
  /// PAW.  Misconfigured non-ACL rights — DCOM, PS remoting, SQL — are
  /// service-hosting misconfigurations, so they concentrate on servers in
  /// disciplined estates; sloppy estates scatter them.
  double misconfig_server_bias = 0.90;

  /// Fraction of tier-0 administrators holding *direct* Domain Admins
  /// membership beyond the primary operator and deputy.  Best practice is
  /// ~0 (administer through delegation groups); bloated DA membership is a
  /// hallmark of poorly run estates.
  double domain_admins_bloat = 0.0;

  // --- misconfiguration (security level) ------------------------------------
  /// Algorithm 3: fraction of users given a violated cross-tier session.
  double perc_misconfig_sessions = 0.0005;
  /// Algorithm 4: fraction of users given a violated non-ACL permission.
  double perc_misconfig_permissions = 0.0002;

  // --- output ----------------------------------------------------------------
  /// When true, the exported graph replaces set-level permission edges by
  /// their element-to-element expansion (§III-B "ADSynth Output").
  bool element_to_element = false;

  std::uint64_t seed = 1;

  /// Throws std::invalid_argument describing the first violated constraint
  /// (k >= 1, fractions within [0,1], non-empty scale, ...).
  void validate() const;

  /// Department/location lists with defaults substituted for empty inputs,
  /// trimmed so that tiny graphs do not drown in structural nodes.
  std::vector<std::string> effective_departments() const;
  std::vector<std::string> effective_locations() const;

  // --- presets matching the paper's experiment settings ---------------------
  /// "highly secure": no violated sessions, vanishing violated permissions.
  static GeneratorConfig highly_secure(std::size_t nodes, std::uint64_t seed);
  /// "secure" (AD100-style): ≈0.02% of regular users can reach DA.
  static GeneratorConfig secure(std::size_t nodes, std::uint64_t seed);
  /// "vulnerable": violation-heavy, dense cross-tier connectivity.
  static GeneratorConfig vulnerable(std::size_t nodes, std::uint64_t seed);

  // --- (de)serialization ------------------------------------------------------
  /// JSON round-trip so experiment configs can live next to their outputs.
  std::string to_json() const;
  static GeneratorConfig from_json(const std::string& text);
};

}  // namespace adsynth::core
