// ADSynth output (paper §III-B "ADSynth Output"): a Neo4j-JSON attack graph
// loadable by BloodHound.  The default export is the set-to-set mapping
// graph (groups/OUs as nodes, permission edges between them); the
// element-to-element parameter instead expands every metagraph permission
// and session edge into direct object-to-object edges.
#pragma once

#include <string>

#include "adcore/attack_graph.hpp"
#include "core/model.hpp"
#include "graphdb/store.hpp"

namespace adsynth::core {

/// Materializes the default (set-to-set) attack graph into a GraphStore.
graphdb::GraphStore to_store(const GeneratedAd& ad,
                             const std::string& domain_fqdn = "corp.local");

/// Builds the element-to-element attack graph: nodes are the metagraph's
/// generating set (users and computers); every set-level permission edge is
/// replaced by its |V|·|W| member pairs; sessions map 1:1.  Edges whose
/// vertex sets contain no elements (e.g. ACLs on group-container OUs, whose
/// members are sets rather than elements) disappear — they have no
/// element-level denotation.
adcore::AttackGraph element_to_element_graph(const GeneratedAd& ad);

/// Writes APOC-style JSON rows to `path`; honours element_to_element.
void export_json(const GeneratedAd& ad, const std::string& path,
                 bool element_to_element,
                 const std::string& domain_fqdn = "corp.local");

}  // namespace adsynth::core
