// The ADSynth generator: the paper's three-stage pipeline (Fig. 1).
//
//  (a) Node generation  — organisational skeleton (structure.hpp), object
//      creation and OU placement, group membership (least privilege: users
//      only join groups of their own tier).
//  (b) Edge generation  — Algorithm 1 (control & management permissions,
//      ACL and non-ACL) and Algorithm 2 (logon sessions under the tier
//      model's restrictions).
//  (c) Misconfiguration — Algorithm 3 (violated cross-tier sessions) and
//      Algorithm 4 (violated permissions), rates set by the two
//      perc_misconfig parameters.
//
// The generator simultaneously maintains the set-to-set metagraph (OUs and
// groups as vertex sets; permissions as set-to-set edges; sessions as
// edges between singleton sets) and the BloodHound-style attack graph.
#pragma once

#include "core/config.hpp"
#include "core/model.hpp"

namespace adsynth::core {

/// Runs the full pipeline.  Deterministic for a given config (incl. seed).
/// Throws std::invalid_argument on invalid configs.
GeneratedAd generate_ad(const GeneratorConfig& config);

}  // namespace adsynth::core
