#include "core/generator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "adcore/naming.hpp"
#include "core/structure.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace adsynth::core {

using adcore::AttackGraph;
using adcore::EdgeKind;
using adcore::NodeIndex;
using adcore::ObjectKind;
using metagraph::ElementId;
using metagraph::SetId;

namespace {

// --- sharded edge generation ------------------------------------------------
//
// The edge stages (Algorithm 1, Algorithm 2, Algorithms 3 & 4) are
// embarrassingly parallel once the node population is fixed: every draw
// depends only on the immutable tier pools.  Each stage is partitioned into
// shards whose boundaries depend only on the config (tier × fixed-size user
// or draw range — never on the thread count), every shard derives its own
// RNG substream from (seed, stage tag, shard ordinal) via Rng::stream, and
// the per-shard edge buffers are merged into the graph and metagraph in
// ascending shard order.  Output is therefore bit-identical at any thread
// count (see DESIGN.md §"Sharded generation & determinism contract").

/// Users per session shard / draws per misconfiguration shard.  Fixed: the
/// shard decomposition is part of the deterministic output contract.
constexpr std::size_t kUsersPerShard = 2048;
constexpr std::size_t kDrawsPerShard = 4096;

/// Stage tags xor-folded into Rng::stream ids so no two stages ever share
/// a substream even when their shard ordinals collide.
constexpr std::uint64_t kStreamSessions = 0x5345'5353ULL << 32;     // "SESS"
constexpr std::uint64_t kStreamControlAcl = 0x4143'4cULL << 32;     // "ACL"
constexpr std::uint64_t kStreamControlNonAcl = 0x4e41'434cULL << 32;
constexpr std::uint64_t kStreamMisconfigSess = 0x4d53'4553ULL << 32;
constexpr std::uint64_t kStreamMisconfigPerm = 0x4d50'4552ULL << 32;

/// One generated edge, staged in a per-shard buffer until the ordered
/// merge.  kNoSet endpoints mean "the singleton set of that node's
/// element" (sessions and misconfigurations); control edges carry their
/// group/resource sets explicitly.
struct ShardEdge {
  NodeIndex src = adcore::kNoNodeIndex;
  NodeIndex dst = adcore::kNoNodeIndex;
  EdgeKind kind = EdgeKind::kContains;
  bool violation = false;
  SetId in_set = metagraph::kNoSet;
  SetId out_set = metagraph::kNoSet;
};
using EdgeShard = std::vector<ShardEdge>;

/// Working state threaded through the pipeline stages.
struct Builder {
  const GeneratorConfig& cfg;
  // adsynth-lint: allow(rng-stream): seeded from config.seed in the ctor init list; stage substreams derive from it via rng.stream(tag ^ shard)
  util::Rng rng;
  util::ThreadPool& pool;
  GeneratedAd out;

  /// Element id per graph node that is a leaf object; kNoElement otherwise.
  std::vector<ElementId> element_of_node;
  /// Lazily created singleton set per element (sessions & violations).
  std::vector<SetId> singleton_of_element;
  /// Department of each regular user node (index into departments).
  std::vector<std::uint32_t> dept_of_node;

  /// Staged metagraph edges of the current stage, flushed per stage as one
  /// batched insertion (exact-capacity adjacency reservation).
  std::vector<metagraph::MetaEdge> meta_batch;

  /// Serial-stage sampling scratch (group membership draws).
  util::SampleScratch sample_scratch;
  std::vector<std::size_t> sample_out;

  /// Computers of tiers 0..t are the first comp_prefix[t + 1] entries of
  /// comp_flat — Algorithm 2's "allowed" pool C(t, k) as a view instead of
  /// a per-tier rebuilt vector.
  std::vector<NodeIndex> comp_flat;
  std::vector<std::size_t> comp_prefix;

  Builder(const GeneratorConfig& config, util::ThreadPool& p)
      : cfg(config), rng(config.seed), pool(p) {}

  std::uint32_t tiers() const { return cfg.num_tiers; }
  std::int8_t regular_tier() const {
    return static_cast<std::int8_t>(cfg.num_tiers - 1);
  }

  // --- element helpers ----------------------------------------------------
  ElementId make_element(NodeIndex node) {
    const ElementId e = out.meta.add_element(out.graph.name(node));
    out.node_of_element.push_back(node);
    if (element_of_node.size() <= node) {
      element_of_node.resize(node + 1, metagraph::kNoElement);
    }
    element_of_node[node] = e;
    return e;
  }

  SetId singleton(ElementId e) {
    if (singleton_of_element.size() <= e) {
      singleton_of_element.resize(e + 1, metagraph::kNoSet);
    }
    if (singleton_of_element[e] == metagraph::kNoSet) {
      const SetId s = out.meta.add_singleton_set(e);
      singleton_of_element[e] = s;
      if (out.node_of_set.size() < out.meta.set_count()) {
        out.node_of_set.resize(out.meta.set_count(), adcore::kNoNodeIndex);
      }
      out.node_of_set[s] = out.node_of_element[e];
    }
    return singleton_of_element[e];
  }

  /// Places a freshly created leaf object into an OU: Contains edge,
  /// metagraph element, OU-set membership.
  ElementId place_in_ou(NodeIndex node, OuIndex ou) {
    out.graph.add_edge(out.org.ous[ou].graph_node, node, EdgeKind::kContains);
    ++out.stats.structural_edges;
    const ElementId e = make_element(node);
    out.meta.add_to_set(out.org.ous[ou].set, e);
    return e;
  }

  void join_group(NodeIndex user, GroupIndex group) {
    out.graph.add_edge(user, out.org.groups[group].graph_node,
                       EdgeKind::kMemberOf);
    ++out.stats.structural_edges;
    out.meta.add_to_set(out.org.groups[group].set, element_of_node[user]);
  }

  // --- shard merge ---------------------------------------------------------
  /// Appends a shard's edges to the graph and mirrors them into the
  /// metagraph; `counter` is the stage's GenerationStats field.
  ///
  /// Two metagraph paths, picked per stage by `batch_meta`:
  ///  * direct add_edge — session/misconfiguration stages, whose endpoints
  ///    are almost all singleton sets: their adjacency lists hold one or
  ///    two edges, so batching buys no reallocation savings and the
  ///    88-byte MetaEdge staging copy is pure overhead (edges_ itself is
  ///    pre-reserved by reserve_edge_capacity);
  ///  * staged meta_batch + flush_meta_batch — control stages, whose edges
  ///    fan out of a few dozen shared group/OU sets: Metagraph::add_edges
  ///    reserves each touched adjacency list exactly once per stage.
  void commit_shard(EdgeShard&& edges, std::size_t GenerationStats::*counter,
                    bool batch_meta = false) {
    for (const ShardEdge& e : edges) {
      out.graph.add_edge(e.src, e.dst, e.kind, e.violation);
      const SetId in = e.in_set != metagraph::kNoSet
                           ? e.in_set
                           : singleton(element_of_node[e.src]);
      const SetId outv = e.out_set != metagraph::kNoSet
                             ? e.out_set
                             : singleton(element_of_node[e.dst]);
      if (batch_meta) {
        meta_batch.push_back(metagraph::MetaEdge{
            in, outv, {std::string(adcore::edge_kind_name(e.kind)), {}}});
      } else {
        out.meta.add_edge(in, outv,
                          {std::string(adcore::edge_kind_name(e.kind)), {}});
      }
    }
    (out.stats.*counter) += edges.size();
  }

  /// One batched metagraph insertion per (control) stage.
  void flush_meta_batch() {
    out.meta.add_edges(std::move(meta_batch));
    meta_batch = {};
  }

  // --- stage (a) step 2: users and computers ------------------------------
  void create_objects();
  // --- stage (a) step 3: group membership ---------------------------------
  void assign_group_members();
  // --- capacity reservation from the now-known node population ------------
  void reserve_edge_capacity();
  // --- stage (b): deterministic tier delegation -----------------------------
  void generate_tier_delegation();
  // --- stage (b): Algorithm 1 ---------------------------------------------
  void generate_control(bool is_acl);
  // --- stage (b): Algorithm 2 ---------------------------------------------
  void build_computer_prefix();
  void generate_sessions();
  // --- stage (c): Algorithms 3 & 4 ----------------------------------------
  void generate_misconfig_sessions();
  void generate_misconfig_permissions();

  // Resource pools for Algorithm 1, precomputed per tier: targets at the
  // group's tier and the tiers below it (numerically >= t).
  struct Resource {
    SetId set;
    NodeIndex node;
    std::int8_t tier;
  };
  std::vector<Resource> acl_resources;      // OUs and groups
  std::vector<Resource> non_acl_resources;  // computer-containing OUs
  void collect_resources();
  std::size_t count_at_or_below(const std::vector<Resource>& pool,
                                std::int8_t tier) const;
  static const Resource& random_resource(util::Rng& rng,
                                         const std::vector<Resource>& pool,
                                         std::int8_t tier);
};

void Builder::create_objects() {
  const std::uint32_t k = tiers();
  const std::size_t structural = out.graph.node_count();
  const std::size_t remaining =
      cfg.target_nodes > structural ? cfg.target_nodes - structural : 0;
  std::size_t users_total =
      static_cast<std::size_t>(std::llround(
          static_cast<double>(remaining) * cfg.user_share));
  users_total = std::min(users_total, remaining);
  const std::size_t computers_total = remaining - users_total;

  // --- users ---------------------------------------------------------------
  // Admin users: split evenly across every tier (tier k-1 admins are the
  // support/helpdesk staff of the regular tier).  At least two per tier so
  // that Domain Admins and each tier's groups are populated.
  std::size_t admin_users = static_cast<std::size_t>(std::llround(
      static_cast<double>(users_total) * cfg.admin_user_fraction));
  admin_users = std::max<std::size_t>(admin_users, 2 * k);
  admin_users = std::min(admin_users, users_total);
  const std::size_t regular_users = users_total - admin_users;
  std::size_t disabled_users = static_cast<std::size_t>(std::llround(
      static_cast<double>(regular_users) * cfg.disabled_user_fraction));
  disabled_users = std::min(disabled_users, regular_users);
  const std::size_t enabled_regular = regular_users - disabled_users;

  std::uint32_t ordinal = 0;
  for (std::uint32_t t = 0; t < k; ++t) {
    const std::size_t count = admin_users / k + (t < admin_users % k ? 1 : 0);
    const auto& target_ous = out.org.account_ous_by_tier[t];
    for (std::size_t i = 0; i < count; ++i) {
      const NodeIndex node = out.graph.add_named_node(
          ObjectKind::kUser,
          "ADM_" + adcore::make_user_logon_name(rng, ordinal++),
          static_cast<std::int8_t>(t),
          adcore::node_flag::kAdmin | adcore::node_flag::kEnabled);
      place_in_ou(node, target_ous[i % target_ous.size()]);
      out.users_by_tier[t].push_back(node);
      out.admin_users_by_tier[t].push_back(node);
      ++out.stats.admin_users;
      ++out.stats.users;
    }
  }

  // Regular enabled users: uniformly over department × location OUs.
  const auto& dls = out.org.dept_locations;
  for (std::size_t i = 0; i < enabled_regular; ++i) {
    const auto& dl = dls[rng.index(dls.size())];
    const NodeIndex node = out.graph.add_named_node(
        ObjectKind::kUser, adcore::make_user_logon_name(rng, ordinal++),
        regular_tier(), adcore::node_flag::kEnabled);
    place_in_ou(node, dl.users_ou);
    if (dept_of_node.size() <= node) dept_of_node.resize(node + 1, kNoOrgIndex);
    dept_of_node[node] = dl.department;
    out.users_by_tier[k - 1].push_back(node);
    out.regular_users_by_tier[k - 1].push_back(node);
    ++out.stats.users;
  }

  // Disabled users: parked in the Disabled Accounts OU, no flags set.
  for (std::size_t i = 0; i < disabled_users; ++i) {
    const NodeIndex node = out.graph.add_named_node(
        ObjectKind::kUser,
        "DIS_" + adcore::make_user_logon_name(rng, ordinal++), regular_tier(),
        0);
    place_in_ou(node, out.org.disabled_ou);
    ++out.stats.disabled_users;
    ++out.stats.users;
  }

  // --- computers -------------------------------------------------------------
  std::size_t paws = static_cast<std::size_t>(std::llround(
      static_cast<double>(computers_total) * cfg.paw_fraction));
  std::size_t dcs = std::min<std::size_t>(cfg.num_domain_controllers,
                                          computers_total);
  std::size_t servers = static_cast<std::size_t>(std::llround(
      static_cast<double>(computers_total) * cfg.server_fraction));
  // Admin tiers each need at least one PAW so admins have a session target.
  const std::size_t admin_tiers = k > 1 ? k - 1 : 1;
  paws = std::max(paws, admin_tiers);
  if (paws + dcs + servers > computers_total) {
    paws = std::min(paws, computers_total);
    dcs = std::min(dcs, computers_total - paws);
    servers = computers_total - paws - dcs;
  }
  const std::size_t workstations = computers_total - paws - dcs - servers;

  std::uint32_t comp_ordinal = 0;
  // PAWs across admin tiers (devices OUs exist for tiers 0..k-2, or tier 0
  // alone when k == 1).
  for (std::size_t i = 0; i < paws; ++i) {
    const std::uint32_t t = static_cast<std::uint32_t>(i % admin_tiers);
    const auto& target_ous = out.org.device_ous_by_tier[t];
    const NodeIndex node = out.graph.add_named_node(
        ObjectKind::kComputer, adcore::make_computer_name("PAW", comp_ordinal++),
        static_cast<std::int8_t>(t), adcore::node_flag::kPaw);
    place_in_ou(node, target_ous[i % target_ous.size()]);
    out.computers_by_tier[t].push_back(node);
    ++out.stats.paws;
    ++out.stats.computers;
  }
  // Domain controllers: tier 0 servers.
  for (std::size_t i = 0; i < dcs; ++i) {
    const auto& target_ous = out.org.server_ous_by_tier[0];
    const NodeIndex node = out.graph.add_named_node(
        ObjectKind::kComputer, adcore::make_computer_name("DC", comp_ordinal++),
        0, adcore::node_flag::kServer);
    place_in_ou(node, target_ous[i % target_ous.size()]);
    out.computers_by_tier[0].push_back(node);
    ++out.stats.servers;
    ++out.stats.computers;
  }
  // Enterprise servers: tier 1 (tier 0 when k == 1).
  const std::uint32_t server_tier = k >= 2 ? 1 : 0;
  for (std::size_t i = 0; i < servers; ++i) {
    const auto& target_ous = out.org.server_ous_by_tier[server_tier];
    const NodeIndex node = out.graph.add_named_node(
        ObjectKind::kComputer, adcore::make_computer_name("SRV", comp_ordinal++),
        static_cast<std::int8_t>(server_tier), adcore::node_flag::kServer);
    place_in_ou(node, target_ous[i % target_ous.size()]);
    out.computers_by_tier[server_tier].push_back(node);
    ++out.stats.servers;
    ++out.stats.computers;
  }
  // Workstations: uniformly over department × location OUs.
  for (std::size_t i = 0; i < workstations; ++i) {
    const auto& dl = dls[rng.index(dls.size())];
    const NodeIndex node = out.graph.add_named_node(
        ObjectKind::kComputer, adcore::make_computer_name("WS", comp_ordinal++),
        regular_tier(), 0);
    place_in_ou(node, dl.workstations_ou);
    out.computers_by_tier[k - 1].push_back(node);
    ++out.stats.computers;
  }
}

void Builder::assign_group_members() {
  const std::uint32_t k = tiers();
  const std::uint32_t span =
      cfg.max_groups_per_user - cfg.min_groups_per_user;
  // Admin users join admin groups of their own tier (least privilege:
  // never a higher tier's groups).  Per best practice, Domain Admins is
  // kept minimal: tier-0 admins are placed in the delegation groups, and
  // only the primary operator account (plus a deputy) holds direct DA
  // membership — everyone else administers through delegated rights.
  for (std::uint32_t t = 0; t < k; ++t) {
    std::vector<GroupIndex> pool = out.org.admin_groups_by_tier[t];
    if (t == 0 && pool.size() > 1) {
      pool.erase(std::find(pool.begin(), pool.end(), out.org.domain_admins));
    }
    for (const NodeIndex user : out.admin_users_by_tier[t]) {
      const std::uint32_t want =
          cfg.min_groups_per_user +
          (span > 0 ? static_cast<std::uint32_t>(rng.uniform(0, span)) : 0);
      rng.sample_indices(pool.size(), std::max<std::uint32_t>(want, 1),
                         sample_scratch, sample_out);
      for (const std::size_t gi : sample_out) join_group(user, pool[gi]);
    }
  }
  // Domain Admins: the primary operator and (when available) a deputy —
  // plus, in poorly run estates, a bloat of direct members.
  {
    const auto& t0 = out.admin_users_by_tier[0];
    if (!t0.empty()) {
      join_group(t0.front(), out.org.domain_admins);
      if (t0.size() > 1) join_group(t0[1], out.org.domain_admins);
      for (std::size_t i = 2; i < t0.size(); ++i) {
        if (rng.chance(cfg.domain_admins_bloat)) {
          join_group(t0[i], out.org.domain_admins);
        }
      }
    }
  }
  // Regular users join their department's distribution/security groups.
  for (const NodeIndex user : out.regular_users_by_tier[k - 1]) {
    const std::uint32_t dept = dept_of_node[user];
    const auto& pool = out.org.department_groups[dept];
    const std::uint32_t want =
        cfg.min_groups_per_user +
        (span > 0 ? static_cast<std::uint32_t>(rng.uniform(0, span)) : 0);
    rng.sample_indices(pool.size(), std::max<std::uint32_t>(want, 1),
                       sample_scratch, sample_out);
    for (const std::size_t gi : sample_out) join_group(user, pool[gi]);
  }
}

void Builder::build_computer_prefix() {
  comp_flat.clear();
  comp_prefix.assign(1, 0);
  for (const auto& tier_comps : out.computers_by_tier) {
    comp_flat.insert(comp_flat.end(), tier_comps.begin(), tier_comps.end());
    comp_prefix.push_back(comp_flat.size());
  }
}

void Builder::reserve_edge_capacity() {
  // Every node exists by now, so the edge stages' expected volumes are a
  // pure function of the pools and the config — reserve the graph edge
  // list and the metagraph columns once, instead of letting the per-shard
  // merges grow them geometrically.
  const std::uint32_t k = tiers();
  double sessions_est = static_cast<double>(out.computers_by_tier[0].size());
  for (std::uint32_t t = 0; t < k; ++t) {
    const std::size_t allowed = comp_prefix[t + 1];
    if (allowed == 0) continue;
    const double cap = std::min<double>(
        cfg.max_sessions_per_user,
        std::floor(cfg.session_ratio * static_cast<double>(allowed)));
    // Uniform draws average cap / 2; the long-tail model averages ≈ 1.6.
    const double per_user =
        cfg.session_model == SessionModel::kUniform ? cap / 2.0 + 1.0 : 2.0;
    sessions_est +=
        per_user * static_cast<double>(out.users_by_tier[t].size());
  }
  double control_est = 0;
  for (const bool is_acl : {true, false}) {
    const auto& pool = is_acl ? acl_resources : non_acl_resources;
    for (std::uint32_t t = 0; t < k; ++t) {
      const std::size_t total =
          count_at_or_below(pool, static_cast<std::int8_t>(t));
      if (total == 0) continue;
      const double n_r = std::max(
          1.0, std::floor(static_cast<double>(total) * cfg.resource_ratio));
      control_est +=
          n_r * static_cast<double>(out.org.admin_groups_by_tier[t].size());
    }
  }
  std::size_t total_users = 0;
  for (const auto& tier_users : out.users_by_tier) {
    total_users += tier_users.size();
  }
  const double misconfig_est =
      (cfg.perc_misconfig_sessions + cfg.perc_misconfig_permissions) *
      static_cast<double>(total_users);
  const auto extra = static_cast<std::size_t>(
      std::llround(sessions_est + control_est + misconfig_est));

  out.graph.reserve(out.graph.node_count(),
                    out.graph.edge_count() + extra + 64);
  // Worst case every leaf element gains a singleton set; metagraph edges
  // mirror the generated graph edges one-to-one.
  out.meta.reserve(out.meta.element_count(),
                   out.meta.set_count() + out.meta.element_count(),
                   out.meta.edge_count() + extra + 64);
  out.node_of_set.reserve(out.meta.set_count() + out.meta.element_count());
  singleton_of_element.reserve(out.meta.element_count());
}

void Builder::collect_resources() {
  for (OuIndex i = 0; i < out.org.ous.size(); ++i) {
    const OuNode& ou = out.org.ous[i];
    switch (ou.role) {
      case OuRole::kAccounts:
      case OuRole::kUsers:
      case OuRole::kGroupsOu:
      case OuRole::kDisabled:
        acl_resources.push_back({ou.set, ou.graph_node, ou.tier});
        break;
      case OuRole::kDevices:
      case OuRole::kServers:
      case OuRole::kWorkstations:
        acl_resources.push_back({ou.set, ou.graph_node, ou.tier});
        non_acl_resources.push_back({ou.set, ou.graph_node, ou.tier});
        break;
      default:
        break;  // structural roots are not delegation targets
    }
  }
  for (const GroupRecord& g : out.org.groups) {
    acl_resources.push_back({g.set, g.graph_node, g.tier});
  }
}

std::size_t Builder::count_at_or_below(const std::vector<Resource>& pool,
                                       std::int8_t tier) const {
  std::size_t n = 0;
  for (const Resource& r : pool) n += r.tier >= tier ? 1 : 0;
  return n;
}

const Builder::Resource& Builder::random_resource(
    util::Rng& rng, const std::vector<Resource>& pool, std::int8_t tier) {
  // Rejection sampling: tier pools are small, and resources at or below a
  // tier always dominate the pool for low tiers.
  for (int attempts = 0; attempts < 1024; ++attempts) {
    const Resource& r = pool[rng.index(pool.size())];
    if (r.tier >= tier) return r;
  }
  // Deterministic fallback (can only be reached when almost all resources
  // sit above the tier): first eligible entry.
  for (const Resource& r : pool) {
    if (r.tier >= tier) return r;
  }
  throw std::logic_error("random_resource: no eligible resource");
}

void Builder::generate_tier_delegation() {
  // Administrative delegation within a tier is not random: the tier's
  // admin groups are, by construction, the groups that administer the
  // tier's accounts and groups containers [20], [31].  These deterministic
  // grants are what Algorithm 1's random draws are layered on top of.
  for (std::uint32_t t = 0; t < tiers(); ++t) {
    const OuIndex accounts_ou = out.org.account_ous_by_tier[t].front();
    const OuIndex groups_ou = out.org.groups_ou_by_tier[t];
    for (const GroupIndex gi : out.org.admin_groups_by_tier[t]) {
      const GroupRecord& g = out.org.groups[gi];
      for (const OuIndex target : {accounts_ou, groups_ou}) {
        if (target == kNoOrgIndex) continue;
        out.graph.add_edge(g.graph_node, out.org.ous[target].graph_node,
                           EdgeKind::kGenericAll);
        out.meta.add_edge(g.set, out.org.ous[target].set,
                          {"GenericAll", {}});
        ++out.stats.permission_edges;
      }
    }
  }
}

void Builder::generate_control(bool is_acl) {
  // Algorithm 1.  For every tier t and admin group g ∈ AG(t): cap the
  // number of grants at p_r × total_resources(t, k, is_acl) and sample
  // targets from the group's tier and the tiers below it.  One shard per
  // (tier, group): each group's grant set is an independent substream.
  const auto& res_pool = is_acl ? acl_resources : non_acl_resources;
  const auto& permissions = is_acl ? adcore::acl_permission_pool()
                                   : adcore::non_acl_permission_pool();
  const std::uint64_t stage =
      is_acl ? kStreamControlAcl : kStreamControlNonAcl;

  struct ControlShard {
    GroupIndex group;
    std::int8_t tier;
    std::size_t n_r;
  };
  std::vector<ControlShard> plan;
  for (std::uint32_t t = 0; t < tiers(); ++t) {
    const auto tier = static_cast<std::int8_t>(t);
    const std::size_t total = count_at_or_below(res_pool, tier);
    if (total == 0) continue;
    const std::size_t n_r = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(
               static_cast<double>(total) * cfg.resource_ratio)));
    for (const GroupIndex gi : out.org.admin_groups_by_tier[t]) {
      plan.push_back({gi, tier, n_r});
    }
  }

  util::parallel_scatter_merge<EdgeShard>(
      pool, plan.size(),
      [&](std::size_t s, EdgeShard& buf) {
        ADSYNTH_SPAN("gen.control.shard");
        const ControlShard& sh = plan[s];
        const GroupRecord& g = out.org.groups[sh.group];
        util::Rng srng = rng.stream(stage ^ s);
        std::unordered_set<std::uint64_t> granted;  // dedupe (target, perm)
        buf.reserve(sh.n_r);
        for (std::size_t it = 0; it < sh.n_r; ++it) {
          const Resource& target = random_resource(srng, res_pool, sh.tier);
          const EdgeKind perm = permissions[srng.index(permissions.size())];
          const std::uint64_t key =
              (static_cast<std::uint64_t>(target.node) << 8) |
              static_cast<std::uint64_t>(perm);
          if (!granted.insert(key).second) continue;
          buf.push_back(
              {g.graph_node, target.node, perm, false, g.set, target.set});
        }
      },
      [&](std::size_t, EdgeShard&& buf) {
        commit_shard(std::move(buf), &GenerationStats::permission_edges,
                     /*batch_meta=*/true);
      });
  flush_meta_batch();
}

void Builder::generate_sessions() {
  // Algorithm 2.  C(t, k): computers at the user's tier and the tiers of
  // equal or higher privilege (numerically <= t) — credentials never land
  // on less-privileged systems.
  const std::uint32_t k = tiers();

  // Tier-0 infrastructure is administered from within the tier, with the
  // logon pattern of real estates: each PAW belongs to an administrator
  // (who is logged on to it), while the domain controllers carry sessions
  // of the primary operator account, which performs the day-to-day DC
  // maintenance (with probability 1 − bias a uniformly drawn admin logs on
  // instead).  Credentials stay at their own tier — these are legal
  // sessions.  Lower tiers rely on Algorithm 2's per-user draws alone, so
  // their coverage is sparse, as in practice.  This block is serial (it is
  // O(|tier-0 computers|), tiny by construction).
  {
    const auto& admins = out.admin_users_by_tier[0];
    if (!admins.empty()) {
      const NodeIndex primary = admins.front();
      std::size_t paw_ordinal = 0;
      EdgeShard infra;
      infra.reserve(out.computers_by_tier[0].size());
      for (const NodeIndex comp : out.computers_by_tier[0]) {
        NodeIndex admin;
        if (out.graph.has_flag(comp, adcore::node_flag::kPaw)) {
          admin = admins[paw_ordinal++ % admins.size()];  // the PAW's owner
        } else {
          admin = rng.chance(cfg.primary_operator_bias)
                      ? primary
                      : admins[rng.index(admins.size())];
        }
        infra.push_back({comp, admin, EdgeKind::kHasSession, false,
                         metagraph::kNoSet, metagraph::kNoSet});
      }
      commit_shard(std::move(infra), &GenerationStats::session_edges);
    }
  }

  // Per-user draws, sharded by tier × fixed-size user range.
  struct SessionShard {
    std::uint32_t tier;
    std::size_t user_lo, user_hi;
    std::size_t allowed;  // |C(t, k)| — prefix length into comp_flat
    std::size_t cap;
  };
  std::vector<SessionShard> plan;
  for (std::uint32_t t = 0; t < k; ++t) {
    const std::size_t allowed = comp_prefix[t + 1];
    if (allowed == 0) continue;
    const double cap_by_ratio =
        cfg.session_ratio * static_cast<double>(allowed);
    const std::size_t cap = std::min<std::size_t>(
        cfg.max_sessions_per_user,
        static_cast<std::size_t>(std::floor(cap_by_ratio)));
    const auto& users = out.users_by_tier[t];
    for (std::size_t lo = 0; lo < users.size(); lo += kUsersPerShard) {
      plan.push_back({t, lo, std::min(users.size(), lo + kUsersPerShard),
                      allowed, cap});
    }
  }

  util::parallel_scatter_merge<EdgeShard>(
      pool, plan.size(),
      [&](std::size_t s, EdgeShard& buf) {
        ADSYNTH_SPAN("gen.sessions.shard");
        const SessionShard& sh = plan[s];
        const auto& users = out.users_by_tier[sh.tier];
        util::Rng srng = rng.stream(kStreamSessions ^ s);
        util::SampleScratch scratch;
        std::vector<std::size_t> picks;
        buf.reserve((sh.user_hi - sh.user_lo) * (sh.cap / 2 + 1));
        for (std::size_t i = sh.user_lo; i < sh.user_hi; ++i) {
          const NodeIndex user = users[i];
          const bool is_admin =
              out.graph.has_flag(user, adcore::node_flag::kAdmin);
          std::size_t num;
          if (cfg.session_model == SessionModel::kLongTail) {
            // Future-work model (§IV-B): most users on 1–2 machines, a 3–4
            // machine staff profile, and a sparse geometric tail to the cap.
            const double roll = srng.real();
            if (roll < 0.15) {
              num = 0;
            } else if (roll < 0.60) {
              num = 1;
            } else if (roll < 0.82) {
              num = 2;
            } else if (roll < 0.92) {
              num = 3;
            } else if (roll < 0.999) {
              num = 4;
            } else {
              num = 5;
              while (num < sh.cap && srng.chance(0.75)) ++num;
            }
            num = std::min<std::size_t>(num, sh.cap);
          } else {
            num = sh.cap > 0
                      ? static_cast<std::size_t>(srng.uniform(0, sh.cap))
                      : 0;
          }
          // Administrators always hold at least one session on their tier's
          // infrastructure (they administer from PAWs) so that control paths
          // terminate in harvestable credentials, as in real estates.
          if (is_admin && num == 0) num = 1;
          if (num == 0) continue;
          srng.sample_indices(sh.allowed, num, scratch, picks);
          for (const std::size_t ci : picks) {
            buf.push_back({comp_flat[ci], user, EdgeKind::kHasSession, false,
                           metagraph::kNoSet, metagraph::kNoSet});
          }
        }
      },
      [&](std::size_t, EdgeShard&& buf) {
        commit_shard(std::move(buf), &GenerationStats::session_edges);
      });
}

void Builder::generate_misconfig_sessions() {
  // Algorithm 3: a privileged user's credentials leak onto a computer in a
  // lower (numerically higher) tier.  Draws are independent, so the draw
  // range is sharded directly.
  const std::uint32_t k = tiers();
  if (k < 2) return;  // no lower tier exists
  std::size_t total_users = 0;
  for (const auto& tier_users : out.users_by_tier) {
    total_users += tier_users.size();
  }
  const auto num_misconfig = static_cast<std::size_t>(std::llround(
      cfg.perc_misconfig_sessions * static_cast<double>(total_users)));
  const std::size_t shards =
      (num_misconfig + kDrawsPerShard - 1) / kDrawsPerShard;

  util::parallel_scatter_merge<EdgeShard>(
      pool, shards,
      [&](std::size_t s, EdgeShard& buf) {
        ADSYNTH_SPAN("gen.misconfig.shard");
        util::Rng srng = rng.stream(kStreamMisconfigSess ^ s);
        const std::size_t lo = s * kDrawsPerShard;
        const std::size_t hi = std::min(num_misconfig, lo + kDrawsPerShard);
        buf.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          const bool is_admin = srng.chance(0.5);
          const auto user_tier =
              static_cast<std::uint32_t>(srng.uniform(0, k - 2));
          // random_user(is_admin, user_tier): tiers below the last hold
          // admin accounts only, so a regular draw falls back to an admin
          // one.
          const auto& admin_pool = out.admin_users_by_tier[user_tier];
          const auto& regular_pool = out.regular_users_by_tier[user_tier];
          const auto& user_pool =
              (!is_admin && !regular_pool.empty()) ? regular_pool : admin_pool;
          if (user_pool.empty()) continue;
          // The most active account is the one whose credentials leak:
          // tier-0 violations predominantly involve the primary operator
          // (whose logons already dominate tier-0 infrastructure, see
          // generate_sessions).
          const bool admin_draw = &user_pool == &admin_pool;
          const NodeIndex user =
              (admin_draw && user_tier == 0 &&
               srng.chance(cfg.primary_operator_bias))
                  ? user_pool.front()
                  : user_pool[srng.index(user_pool.size())];

          const auto comp_tier =
              static_cast<std::uint32_t>(srng.uniform(user_tier + 1, k - 1));
          const auto& comps = out.computers_by_tier[comp_tier];
          if (comps.empty()) continue;
          const NodeIndex comp = comps[srng.index(comps.size())];
          buf.push_back({comp, user, EdgeKind::kHasSession, true,
                         metagraph::kNoSet, metagraph::kNoSet});
        }
      },
      [&](std::size_t, EdgeShard&& buf) {
        commit_shard(std::move(buf), &GenerationStats::violation_sessions);
      });
}

void Builder::generate_misconfig_permissions() {
  // Algorithm 4: a regular (non-admin) user is granted a non-ACL permission
  // on a computer in a higher-privileged tier.
  const std::uint32_t k = tiers();
  if (k < 2) return;
  std::size_t total_users = 0;
  for (const auto& tier_users : out.users_by_tier) {
    total_users += tier_users.size();
  }
  const auto num_misconfig = static_cast<std::size_t>(std::llround(
      cfg.perc_misconfig_permissions * static_cast<double>(total_users)));
  const auto& permissions = adcore::non_acl_permission_pool();
  const std::size_t shards =
      (num_misconfig + kDrawsPerShard - 1) / kDrawsPerShard;

  util::parallel_scatter_merge<EdgeShard>(
      pool, shards,
      [&](std::size_t s, EdgeShard& buf) {
        ADSYNTH_SPAN("gen.misconfig.shard");
        util::Rng srng = rng.stream(kStreamMisconfigPerm ^ s);
        const std::size_t lo = s * kDrawsPerShard;
        const std::size_t hi = std::min(num_misconfig, lo + kDrawsPerShard);
        buf.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          auto user_tier = static_cast<std::uint32_t>(srng.uniform(1, k - 1));
          // Prefer a genuine regular user at the drawn tier; tiers holding
          // only admin accounts fall back to the support/helpdesk
          // population of the regular tier, keeping the "regular user"
          // semantics of Algorithm 4.
          const std::vector<NodeIndex>* user_pool =
              &out.regular_users_by_tier[user_tier];
          if (user_pool->empty()) {
            user_pool = &out.regular_users_by_tier[k - 1];
            if (user_pool->empty()) user_pool = &out.users_by_tier[user_tier];
            else user_tier = k - 1;
          }
          if (user_pool->empty()) continue;
          const NodeIndex user = (*user_pool)[srng.index(user_pool->size())];

          const auto comp_tier =
              static_cast<std::uint32_t>(srng.uniform(0, user_tier - 1));
          const auto& comps = out.computers_by_tier[comp_tier];
          if (comps.empty()) continue;
          // Misconfigured DCOM/PSRemote/SQL rights are service
          // misconfigurations: with misconfig_server_bias they land on the
          // tier's servers (DCs, jump hosts) rather than an arbitrary
          // machine.
          NodeIndex comp = comps[srng.index(comps.size())];
          if (srng.chance(cfg.misconfig_server_bias)) {
            for (int attempts = 0; attempts < 64; ++attempts) {
              const NodeIndex candidate = comps[srng.index(comps.size())];
              if (out.graph.has_flag(candidate, adcore::node_flag::kServer)) {
                comp = candidate;
                break;
              }
            }
          }

          const EdgeKind perm = permissions[srng.index(permissions.size())];
          buf.push_back({user, comp, perm, true, metagraph::kNoSet,
                         metagraph::kNoSet});
        }
      },
      [&](std::size_t, EdgeShard&& buf) {
        commit_shard(std::move(buf), &GenerationStats::violation_permissions);
      });
}

}  // namespace

GeneratedAd generate_ad(const GeneratorConfig& config) {
  ADSYNTH_SPAN("gen.generate_ad");
  config.validate();
  Builder b(config, util::global_pool());

  // Stage (a): nodes.
  {
    ADSYNTH_SPAN("gen.structure");
    build_structure(config, b.rng, b.out);
  }
  {
    ADSYNTH_SPAN("gen.objects");
    b.create_objects();
  }
  {
    ADSYNTH_SPAN("gen.groups");
    b.assign_group_members();
  }

  // Stage (b): edges — sharded, merged in deterministic shard order.
  {
    ADSYNTH_SPAN("gen.delegation");
    b.collect_resources();
    b.build_computer_prefix();
    b.reserve_edge_capacity();
    b.generate_tier_delegation();
  }
  {
    ADSYNTH_SPAN("gen.control_acl");
    b.generate_control(/*is_acl=*/true);
  }
  {
    ADSYNTH_SPAN("gen.control_nonacl");
    b.generate_control(/*is_acl=*/false);
  }
  {
    ADSYNTH_SPAN("gen.sessions");
    b.generate_sessions();
  }

  // Stage (c): misconfigurations.
  {
    ADSYNTH_SPAN("gen.misconfig");
    b.generate_misconfig_sessions();
    b.generate_misconfig_permissions();
  }

  ADSYNTH_METRIC_COUNT("gen.graphs", 1);
  ADSYNTH_METRIC_COUNT("gen.nodes", b.out.graph.node_count());
  ADSYNTH_METRIC_COUNT("gen.edges", b.out.graph.edge_count());
  return std::move(b.out);
}

}  // namespace adsynth::core
