// Output model of the ADSynth generator: the organisational structure, the
// BloodHound-style attack graph, and the set-to-set metagraph, with the
// mappings between them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adcore/attack_graph.hpp"
#include "metagraph/metagraph.hpp"

namespace adsynth::core {

using adcore::NodeIndex;

/// Index into OrgStructure::ous / ::groups.
using OuIndex = std::uint32_t;
using GroupIndex = std::uint32_t;
inline constexpr std::uint32_t kNoOrgIndex = 0xffffffffu;

/// What an OU is for; drives object placement in generation step 2.
enum class OuRole : std::uint8_t {
  kAdminRoot,     // the "Admin" OU holding the tiered admin structure
  kTierRoot,      // "Tier 0", "Tier 1", ...
  kAccounts,      // admin user accounts of a tier
  kGroupsOu,      // groups container (admin tier or department)
  kDevices,       // PAWs of a tier
  kServers,       // servers (tier 1) / domain controllers (tier 0)
  kDepartment,    // department root in the regular tier
  kLocation,      // department × location
  kUsers,         // regular users of a department location
  kWorkstations,  // regular workstations of a department location
  kDisabled,      // disabled accounts
};

struct OuNode {
  std::string name;
  OuIndex parent = kNoOrgIndex;  // kNoOrgIndex for children of the domain
  std::int8_t tier = adcore::kNoTier;
  OuRole role = OuRole::kTierRoot;
  NodeIndex graph_node = adcore::kNoNodeIndex;
  metagraph::SetId set = metagraph::kNoSet;
};

enum class GroupType : std::uint8_t {
  kAdmin,         // tiered administrative/delegation group
  kSecurity,      // department security group (root-folder NTFS access)
  kDistribution,  // department × location distribution group
};

struct GroupRecord {
  std::string name;
  std::int8_t tier = adcore::kNoTier;
  GroupType type = GroupType::kAdmin;
  OuIndex ou = kNoOrgIndex;
  std::uint32_t department = kNoOrgIndex;  // index into config departments
  std::uint32_t location = kNoOrgIndex;
  std::uint32_t folder = kNoOrgIndex;      // root-folder ordinal
  NodeIndex graph_node = adcore::kNoNodeIndex;
  metagraph::SetId set = metagraph::kNoSet;
};

/// The organisational skeleton produced by generation step 1.
struct OrgStructure {
  std::vector<OuNode> ous;
  std::vector<GroupRecord> groups;

  /// Admin group indices per tier (AG(t) of Algorithm 1).
  std::vector<std::vector<GroupIndex>> admin_groups_by_tier;
  /// Department groups of the regular tier, per department: first the
  /// distribution groups (one per location), then the security groups
  /// (one per root folder).
  std::vector<std::vector<GroupIndex>> department_groups;

  GroupIndex domain_admins = kNoOrgIndex;

  /// Admin placement targets (OU indices) per tier.
  std::vector<std::vector<OuIndex>> account_ous_by_tier;  // admin accounts
  /// The tier's "Tn Groups" OU (admin delegation target), one per tier.
  std::vector<OuIndex> groups_ou_by_tier;
  std::vector<std::vector<OuIndex>> device_ous_by_tier;   // PAWs
  std::vector<std::vector<OuIndex>> server_ous_by_tier;   // servers/DCs

  /// Regular placement targets (the last tier): one entry per
  /// department × location pair, carrying its Users / Workstations OUs.
  struct DeptLocation {
    std::uint32_t department = kNoOrgIndex;
    std::uint32_t location = kNoOrgIndex;
    OuIndex users_ou = kNoOrgIndex;
    OuIndex workstations_ou = kNoOrgIndex;
  };
  std::vector<DeptLocation> dept_locations;
  OuIndex disabled_ou = kNoOrgIndex;

  /// GPO graph nodes (one per tier plus one per department).
  std::vector<NodeIndex> gpos;
};

/// Per-kind / per-stage totals, reported by examples and asserted by tests.
struct GenerationStats {
  std::size_t users = 0;
  std::size_t admin_users = 0;
  std::size_t disabled_users = 0;
  std::size_t computers = 0;
  std::size_t servers = 0;
  std::size_t paws = 0;
  std::size_t groups = 0;
  std::size_t ous = 0;
  std::size_t gpos = 0;
  std::size_t structural_edges = 0;    // Contains / GpLink / MemberOf
  std::size_t permission_edges = 0;    // Algorithm 1
  std::size_t session_edges = 0;       // Algorithm 2
  std::size_t violation_sessions = 0;  // Algorithm 3
  std::size_t violation_permissions = 0;  // Algorithm 4
};

/// The complete generator output.
struct GeneratedAd {
  adcore::AttackGraph graph;
  metagraph::Metagraph meta;
  OrgStructure org;
  GenerationStats stats;

  /// graph node of each metagraph element (leaf objects: users, computers).
  std::vector<NodeIndex> node_of_element;
  /// graph node of each metagraph set (groups and OUs).
  std::vector<NodeIndex> node_of_set;

  /// Users per tier (graph node indices) — U(t) of Algorithm 2/3.
  std::vector<std::vector<NodeIndex>> users_by_tier;
  /// Same, admin accounts only / regular accounts only.
  std::vector<std::vector<NodeIndex>> admin_users_by_tier;
  std::vector<std::vector<NodeIndex>> regular_users_by_tier;
  /// Computers per tier — C(t) (enabled for sessions; excludes nothing).
  std::vector<std::vector<NodeIndex>> computers_by_tier;
};

}  // namespace adsynth::core
