#include "core/config.hpp"

#include <algorithm>
#include <stdexcept>

#include "adcore/naming.hpp"
#include "util/json.hpp"

namespace adsynth::core {

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    throw std::invalid_argument(std::string("GeneratorConfig: ") + what);
  }
}

void require_fraction(double v, const char* name) {
  if (!(v >= 0.0 && v <= 1.0)) {
    throw std::invalid_argument(std::string("GeneratorConfig: ") + name +
                                " must lie in [0, 1]");
  }
}

}  // namespace

void GeneratorConfig::validate() const {
  require(target_nodes >= 50, "target_nodes must be at least 50");
  require(num_tiers >= 1, "num_tiers must be >= 1");
  require(num_tiers <= 10, "num_tiers must be <= 10");
  require_fraction(user_share, "user_share");
  require(user_share > 0.0, "user_share must be positive");
  require(num_root_folders >= 1, "num_root_folders must be >= 1");
  require(admin_groups_per_tier >= 1, "admin_groups_per_tier must be >= 1");
  require(num_domain_controllers >= 1, "num_domain_controllers must be >= 1");
  require(!domain_fqdn.empty(), "domain_fqdn must not be empty");
  require_fraction(admin_user_fraction, "admin_user_fraction");
  require_fraction(disabled_user_fraction, "disabled_user_fraction");
  require_fraction(paw_fraction, "paw_fraction");
  require_fraction(server_fraction, "server_fraction");
  require(paw_fraction + server_fraction <= 1.0,
          "paw_fraction + server_fraction must not exceed 1");
  require(min_groups_per_user <= max_groups_per_user,
          "min_groups_per_user must not exceed max_groups_per_user");
  require_fraction(primary_operator_bias, "primary_operator_bias");
  require_fraction(misconfig_server_bias, "misconfig_server_bias");
  require_fraction(domain_admins_bloat, "domain_admins_bloat");
  require_fraction(resource_ratio, "resource_ratio (p_r)");
  require_fraction(session_ratio, "session_ratio (p_s)");
  require_fraction(perc_misconfig_sessions, "perc_misconfig_sessions");
  require_fraction(perc_misconfig_permissions, "perc_misconfig_permissions");
}

std::vector<std::string> GeneratorConfig::effective_departments() const {
  std::vector<std::string> deps =
      departments.empty() ? adcore::default_departments() : departments;
  // Keep structural nodes a small fraction of tiny graphs: with the default
  // ten departments a 1000-node org would spend ~15% of its budget on OUs
  // and groups.  Scale the department count with the target size.
  const std::size_t cap =
      std::max<std::size_t>(2, std::min<std::size_t>(deps.size(),
                                                     target_nodes / 500));
  deps.resize(std::min(deps.size(), cap));
  return deps;
}

std::vector<std::string> GeneratorConfig::effective_locations() const {
  std::vector<std::string> locs =
      locations.empty() ? adcore::default_locations() : locations;
  const std::size_t cap =
      std::max<std::size_t>(1, std::min<std::size_t>(locs.size(),
                                                     target_nodes / 1000));
  locs.resize(std::min(locs.size(), cap));
  return locs;
}

GeneratorConfig GeneratorConfig::highly_secure(std::size_t nodes,
                                               std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  cfg.perc_misconfig_sessions = 0.0;
  cfg.perc_misconfig_permissions = 0.00005;
  return cfg;
}

GeneratorConfig GeneratorConfig::secure(std::size_t nodes,
                                        std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  cfg.perc_misconfig_sessions = 0.0005;
  cfg.perc_misconfig_permissions = 0.0003;
  return cfg;
}

GeneratorConfig GeneratorConfig::vulnerable(std::size_t nodes,
                                            std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  cfg.perc_misconfig_sessions = 0.08;
  cfg.perc_misconfig_permissions = 0.10;
  // Vulnerable systems in the paper also show elevated session volumes and
  // privileged logons spread across many accounts (no operator discipline).
  cfg.session_ratio = 0.002;
  cfg.max_sessions_per_user = 60;
  cfg.primary_operator_bias = 0.0;
  cfg.misconfig_server_bias = 0.3;
  cfg.domain_admins_bloat = 0.5;
  return cfg;
}

std::string GeneratorConfig::to_json() const {
  using util::JsonArray;
  using util::JsonObject;
  using util::JsonValue;
  JsonObject o;
  o["target_nodes"] = JsonValue(static_cast<std::int64_t>(target_nodes));
  o["user_share"] = JsonValue(user_share);
  o["num_tiers"] = JsonValue(static_cast<std::int64_t>(num_tiers));
  JsonArray deps;
  for (const auto& d : departments) deps.emplace_back(d);
  o["departments"] = JsonValue(std::move(deps));
  JsonArray locs;
  for (const auto& l : locations) locs.emplace_back(l);
  o["locations"] = JsonValue(std::move(locs));
  o["num_root_folders"] =
      JsonValue(static_cast<std::int64_t>(num_root_folders));
  o["admin_groups_per_tier"] =
      JsonValue(static_cast<std::int64_t>(admin_groups_per_tier));
  o["num_domain_controllers"] =
      JsonValue(static_cast<std::int64_t>(num_domain_controllers));
  o["domain_fqdn"] = JsonValue(domain_fqdn);
  o["admin_user_fraction"] = JsonValue(admin_user_fraction);
  o["disabled_user_fraction"] = JsonValue(disabled_user_fraction);
  o["paw_fraction"] = JsonValue(paw_fraction);
  o["server_fraction"] = JsonValue(server_fraction);
  o["min_groups_per_user"] =
      JsonValue(static_cast<std::int64_t>(min_groups_per_user));
  o["max_groups_per_user"] =
      JsonValue(static_cast<std::int64_t>(max_groups_per_user));
  o["resource_ratio"] = JsonValue(resource_ratio);
  o["session_ratio"] = JsonValue(session_ratio);
  o["max_sessions_per_user"] =
      JsonValue(static_cast<std::int64_t>(max_sessions_per_user));
  o["session_model"] = JsonValue(std::string(
      session_model == SessionModel::kLongTail ? "long_tail" : "uniform"));
  o["primary_operator_bias"] = JsonValue(primary_operator_bias);
  o["misconfig_server_bias"] = JsonValue(misconfig_server_bias);
  o["domain_admins_bloat"] = JsonValue(domain_admins_bloat);
  o["perc_misconfig_sessions"] = JsonValue(perc_misconfig_sessions);
  o["perc_misconfig_permissions"] = JsonValue(perc_misconfig_permissions);
  o["element_to_element"] = JsonValue(element_to_element);
  o["seed"] = JsonValue(static_cast<std::int64_t>(seed));
  return JsonValue(std::move(o)).dump();
}

GeneratorConfig GeneratorConfig::from_json(const std::string& text) {
  const util::JsonValue doc = util::JsonValue::parse(text);
  GeneratorConfig cfg;
  const auto& o = doc.as_object();
  auto get_int = [&](const char* key, auto& out) {
    if (const auto it = o.find(key); it != o.end()) {
      out = static_cast<std::remove_reference_t<decltype(out)>>(
          it->second.as_int());
    }
  };
  auto get_double = [&](const char* key, double& out) {
    if (const auto it = o.find(key); it != o.end()) out = it->second.as_double();
  };
  auto get_bool = [&](const char* key, bool& out) {
    if (const auto it = o.find(key); it != o.end()) out = it->second.as_bool();
  };
  auto get_strings = [&](const char* key, std::vector<std::string>& out) {
    if (const auto it = o.find(key); it != o.end()) {
      out.clear();
      for (const auto& v : it->second.as_array()) out.push_back(v.as_string());
    }
  };
  get_int("target_nodes", cfg.target_nodes);
  get_double("user_share", cfg.user_share);
  get_int("num_tiers", cfg.num_tiers);
  get_strings("departments", cfg.departments);
  get_strings("locations", cfg.locations);
  get_int("num_root_folders", cfg.num_root_folders);
  get_int("admin_groups_per_tier", cfg.admin_groups_per_tier);
  get_int("num_domain_controllers", cfg.num_domain_controllers);
  if (const auto it = o.find("domain_fqdn"); it != o.end()) {
    cfg.domain_fqdn = it->second.as_string();
  }
  get_double("admin_user_fraction", cfg.admin_user_fraction);
  get_double("disabled_user_fraction", cfg.disabled_user_fraction);
  get_double("paw_fraction", cfg.paw_fraction);
  get_double("server_fraction", cfg.server_fraction);
  get_int("min_groups_per_user", cfg.min_groups_per_user);
  get_int("max_groups_per_user", cfg.max_groups_per_user);
  get_double("resource_ratio", cfg.resource_ratio);
  get_double("session_ratio", cfg.session_ratio);
  get_int("max_sessions_per_user", cfg.max_sessions_per_user);
  if (const auto it = o.find("session_model"); it != o.end()) {
    const std::string& model = it->second.as_string();
    if (model == "long_tail") {
      cfg.session_model = SessionModel::kLongTail;
    } else if (model == "uniform") {
      cfg.session_model = SessionModel::kUniform;
    } else {
      throw std::invalid_argument("GeneratorConfig: unknown session_model '" +
                                  model + "'");
    }
  }
  get_double("primary_operator_bias", cfg.primary_operator_bias);
  get_double("misconfig_server_bias", cfg.misconfig_server_bias);
  get_double("domain_admins_bloat", cfg.domain_admins_bloat);
  get_double("perc_misconfig_sessions", cfg.perc_misconfig_sessions);
  get_double("perc_misconfig_permissions", cfg.perc_misconfig_permissions);
  get_bool("element_to_element", cfg.element_to_element);
  get_int("seed", cfg.seed);
  cfg.validate();
  return cfg;
}

}  // namespace adsynth::core
