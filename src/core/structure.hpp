// Generation stage (a), step 1: the organisational skeleton.
//
// Builds the tiered OU architecture of the Microsoft tier model (paper
// Fig. 3) and the department groups:
//
//   DOMAIN
//   └── OU Admin
//       ├── OU Tier 0 ── {Accounts, Groups, Devices(PAW), Servers(DCs)}
//       ├── OU Tier 1 ── {Accounts, Groups, Devices, Servers}
//       └── ... (one per administrative tier; the last tier also gets a
//                Groups OU for its support/helpdesk admin groups)
//   ├── OU <Department> (regular tier, one per department)
//   │   ├── OU <Location> ── {Users, Workstations}
//   │   └── OU Groups  (distribution groups per location, security groups
//   │                   per root folder — §III-B.1)
//   └── OU Disabled Accounts
//
// Every OU and group becomes (1) a node in the BloodHound-style attack
// graph, (2) a vertex set in the metagraph.  GPOs are created per tier and
// per department and linked with GpLink.
#pragma once

#include "core/config.hpp"
#include "core/model.hpp"
#include "util/rng.hpp"

namespace adsynth::core {

/// Builds OUs, groups, GPOs, the domain head node, and their Contains /
/// GpLink edges into `out`.  Populates out.org and the per-tier placement
/// target lists.  Requires a validated config.
void build_structure(const GeneratorConfig& config, util::Rng& rng,
                     GeneratedAd& out);

}  // namespace adsynth::core
