#include "core/export.hpp"

#include <stdexcept>

#include "adcore/convert.hpp"
#include "graphdb/neo4j_io.hpp"
#include "metagraph/expansion.hpp"

namespace adsynth::core {

graphdb::GraphStore to_store(const GeneratedAd& ad,
                             const std::string& domain_fqdn) {
  return adcore::to_store(ad.graph, domain_fqdn);
}

adcore::AttackGraph element_to_element_graph(const GeneratedAd& ad) {
  adcore::AttackGraph out;
  // Elements keep their ids: element e becomes node e of the new graph.
  for (metagraph::ElementId e = 0; e < ad.meta.element_count(); ++e) {
    const adcore::NodeIndex orig = ad.node_of_element[e];
    out.add_named_node(ad.graph.kind(orig), ad.graph.name(orig),
                       ad.graph.tier(orig), ad.graph.flags(orig));
  }
  const metagraph::ExpandedGraph expanded = metagraph::expand(ad.meta);
  for (const metagraph::ExpandedEdge& e : expanded.edges) {
    const auto kind = adcore::parse_edge_kind(expanded.labels[e.label]);
    if (!kind) {
      throw std::runtime_error("element_to_element_graph: unknown edge label " +
                               expanded.labels[e.label]);
    }
    out.add_edge(e.source, e.target, *kind);
  }
  return out;
}

void export_json(const GeneratedAd& ad, const std::string& path,
                 bool element_to_element, const std::string& domain_fqdn) {
  const graphdb::GraphStore store =
      element_to_element
          ? adcore::to_store(element_to_element_graph(ad), domain_fqdn)
          : to_store(ad, domain_fqdn);
  graphdb::export_apoc_json_file(store, path);
}

}  // namespace adsynth::core
