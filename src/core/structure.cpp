#include "core/structure.hpp"

#include <stdexcept>

#include "adcore/naming.hpp"
#include "util/strings.hpp"

namespace adsynth::core {

using adcore::AttackGraph;
using adcore::EdgeKind;
using adcore::NodeIndex;
using adcore::ObjectKind;

namespace {

/// Creates the twin representations of an OU: attack-graph node + metagraph
/// set, plus the Contains edge from its parent (domain or another OU).
OuIndex make_ou(GeneratedAd& out, std::string name, OuIndex parent,
                std::int8_t tier, OuRole role) {
  OuNode ou;
  ou.name = name;
  ou.parent = parent;
  ou.tier = tier;
  ou.role = role;
  ou.graph_node = out.graph.add_named_node(ObjectKind::kOU, std::move(name),
                                           tier);
  ou.set = out.meta.add_set("OU:" + ou.name + "#" +
                            std::to_string(out.org.ous.size()));
  const NodeIndex parent_node = parent == kNoOrgIndex
                                    ? out.graph.domain_node()
                                    : out.org.ous[parent].graph_node;
  out.graph.add_edge(parent_node, ou.graph_node, EdgeKind::kContains);
  ++out.stats.structural_edges;
  out.org.ous.push_back(std::move(ou));
  if (out.node_of_set.size() < out.meta.set_count()) {
    out.node_of_set.resize(out.meta.set_count(), adcore::kNoNodeIndex);
  }
  out.node_of_set[out.org.ous.back().set] = out.org.ous.back().graph_node;
  return static_cast<OuIndex>(out.org.ous.size() - 1);
}

GroupIndex make_group(GeneratedAd& out, std::string name, std::int8_t tier,
                      GroupType type, OuIndex ou, std::uint32_t department,
                      std::uint32_t location, std::uint32_t folder) {
  GroupRecord g;
  g.name = util::to_upper(name);
  g.tier = tier;
  g.type = type;
  g.ou = ou;
  g.department = department;
  g.location = location;
  g.folder = folder;
  std::uint8_t flags = type == GroupType::kDistribution
                           ? adcore::node_flag::kDistributionGroup
                           : adcore::node_flag::kSecurityGroup;
  g.graph_node =
      out.graph.add_named_node(ObjectKind::kGroup, g.name, tier, flags);
  g.set = out.meta.add_set("G:" + g.name);
  out.graph.add_edge(out.org.ous[ou].graph_node, g.graph_node,
                     EdgeKind::kContains);
  ++out.stats.structural_edges;
  ++out.stats.groups;
  out.org.groups.push_back(std::move(g));
  if (out.node_of_set.size() < out.meta.set_count()) {
    out.node_of_set.resize(out.meta.set_count(), adcore::kNoNodeIndex);
  }
  out.node_of_set[out.org.groups.back().set] =
      out.org.groups.back().graph_node;
  return static_cast<GroupIndex>(out.org.groups.size() - 1);
}

NodeIndex make_gpo(GeneratedAd& out, std::string name, OuIndex target_ou) {
  const NodeIndex gpo =
      out.graph.add_named_node(ObjectKind::kGPO, std::move(name));
  out.graph.add_edge(gpo, out.org.ous[target_ou].graph_node, EdgeKind::kGpLink);
  ++out.stats.structural_edges;
  ++out.stats.gpos;
  out.org.gpos.push_back(gpo);
  return gpo;
}

}  // namespace

void build_structure(const GeneratorConfig& config, util::Rng& rng,
                     GeneratedAd& out) {
  (void)rng;  // the skeleton is deterministic given the config
  const std::uint32_t k = config.num_tiers;
  const std::int8_t regular_tier = static_cast<std::int8_t>(k - 1);
  const auto departments = config.effective_departments();
  const auto locations = config.effective_locations();

  // Domain head node.
  const NodeIndex domain_node = out.graph.add_named_node(
      ObjectKind::kDomain, util::to_upper(config.domain_fqdn), 0);
  out.graph.set_domain_node(domain_node);

  auto& org = out.org;
  org.admin_groups_by_tier.assign(k, {});
  org.department_groups.assign(departments.size(), {});
  org.account_ous_by_tier.assign(k, {});
  org.groups_ou_by_tier.assign(k, kNoOrgIndex);
  org.device_ous_by_tier.assign(k, {});
  org.server_ous_by_tier.assign(k, {});
  out.users_by_tier.assign(k, {});
  out.admin_users_by_tier.assign(k, {});
  out.regular_users_by_tier.assign(k, {});
  out.computers_by_tier.assign(k, {});

  // --- administrative structure: OU Admin > Tier t > {...} ----------------
  const OuIndex admin_root =
      make_ou(out, "Admin", kNoOrgIndex, 0, OuRole::kAdminRoot);
  for (std::uint32_t t = 0; t < k; ++t) {
    const auto tier = static_cast<std::int8_t>(t);
    const OuIndex tier_root = make_ou(out, "Tier " + std::to_string(t),
                                      admin_root, tier, OuRole::kTierRoot);
    const OuIndex accounts =
        make_ou(out, "T" + std::to_string(t) + " Accounts", tier_root, tier,
                OuRole::kAccounts);
    const OuIndex groups_ou =
        make_ou(out, "T" + std::to_string(t) + " Groups", tier_root, tier,
                OuRole::kGroupsOu);
    org.account_ous_by_tier[t].push_back(accounts);
    org.groups_ou_by_tier[t] = groups_ou;

    // Devices OU (PAWs) exists for administrative tiers; servers for tier 0
    // (domain controllers) and tier 1 (enterprise servers).
    if (t + 1 < k || k == 1) {
      const OuIndex devices =
          make_ou(out, "T" + std::to_string(t) + " Devices", tier_root, tier,
                  OuRole::kDevices);
      org.device_ous_by_tier[t].push_back(devices);
    }
    if (t == 0 || t == 1) {
      const OuIndex servers =
          make_ou(out, "T" + std::to_string(t) + " Servers", tier_root, tier,
                  OuRole::kServers);
      org.server_ous_by_tier[t].push_back(servers);
    }

    // Admin groups AG(t).  Tier 0's first group is Domain Admins.
    for (std::uint32_t g = 0; g < config.admin_groups_per_tier; ++g) {
      std::string name;
      if (t == 0 && g == 0) {
        name = "Domain Admins";
      } else {
        name = "Tier" + std::to_string(t) + " Admins " + std::to_string(g);
      }
      const GroupIndex gi =
          make_group(out, std::move(name), tier, GroupType::kAdmin, groups_ou,
                     kNoOrgIndex, kNoOrgIndex, kNoOrgIndex);
      org.admin_groups_by_tier[t].push_back(gi);
      if (t == 0 && g == 0) {
        org.domain_admins = gi;
        out.graph.set_domain_admins(org.groups[gi].graph_node);
      }
    }
    make_gpo(out, "GPO Tier " + std::to_string(t), tier_root);
  }

  // Domain Admins holds GenericAll over the domain head (full control),
  // the canonical top of every attack path.
  out.graph.add_edge(org.groups[org.domain_admins].graph_node, domain_node,
                     EdgeKind::kGenericAll);
  ++out.stats.permission_edges;

  // --- regular (last) tier: departments × locations -----------------------
  for (std::uint32_t d = 0; d < departments.size(); ++d) {
    const OuIndex dept_ou = make_ou(out, departments[d], kNoOrgIndex,
                                    regular_tier, OuRole::kDepartment);
    const OuIndex dept_groups_ou =
        make_ou(out, departments[d] + " Groups", dept_ou, regular_tier,
                OuRole::kGroupsOu);
    for (std::uint32_t l = 0; l < locations.size(); ++l) {
      const OuIndex loc_ou = make_ou(out, departments[d] + " " + locations[l],
                                     dept_ou, regular_tier, OuRole::kLocation);
      const OuIndex users_ou =
          make_ou(out, departments[d] + " " + locations[l] + " Users", loc_ou,
                  regular_tier, OuRole::kUsers);
      const OuIndex ws_ou =
          make_ou(out, departments[d] + " " + locations[l] + " Workstations",
                  loc_ou, regular_tier, OuRole::kWorkstations);
      org.dept_locations.push_back(
          OrgStructure::DeptLocation{d, l, users_ou, ws_ou});

      // Distribution group per department × location (§III-B.1).
      const GroupIndex dl = make_group(
          out, departments[d] + " " + locations[l] + " Distribution",
          regular_tier, GroupType::kDistribution, dept_groups_ou, d, l,
          kNoOrgIndex);
      org.department_groups[d].push_back(dl);
    }
    // Security groups: one per root folder, with NTFS access rights.
    for (std::uint32_t f = 0; f < config.num_root_folders; ++f) {
      const GroupIndex sg = make_group(
          out, departments[d] + " Folder" + std::to_string(f) + " Access",
          regular_tier, GroupType::kSecurity, dept_groups_ou, d, kNoOrgIndex,
          f);
      org.department_groups[d].push_back(sg);
    }
    make_gpo(out, "GPO " + departments[d], dept_ou);
  }

  // --- disabled accounts OU ----------------------------------------------
  org.disabled_ou = make_ou(out, "Disabled Accounts", kNoOrgIndex,
                            regular_tier, OuRole::kDisabled);

  out.stats.ous = org.ous.size();
}

}  // namespace adsynth::core
