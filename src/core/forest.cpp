#include "core/forest.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace adsynth::core {

using adcore::AttackGraph;
using adcore::EdgeKind;
using adcore::NodeIndex;
using adcore::ObjectKind;

void ForestConfig::validate() const {
  if (domains.size() < 2) {
    throw std::invalid_argument(
        "ForestConfig: a forest needs at least two domains");
  }
  std::set<std::string> fqdns;
  for (const GeneratorConfig& d : domains) {
    d.validate();
    if (!fqdns.insert(util::to_lower(d.domain_fqdn)).second) {
      throw std::invalid_argument("ForestConfig: duplicate domain_fqdn " +
                                  d.domain_fqdn);
    }
  }
}

std::size_t GeneratedForest::domain_of(NodeIndex node) const {
  for (std::size_t d = 0; d + 1 < offsets.size(); ++d) {
    if (node >= offsets[d] && node < offsets[d + 1]) return d;
  }
  throw std::out_of_range("GeneratedForest::domain_of: node out of range");
}

GeneratedForest generate_forest(const ForestConfig& config) {
  config.validate();
  util::Rng rng(config.seed);
  GeneratedForest forest;
  forest.offsets.push_back(0);

  // Per-domain pieces needed after the merge.
  std::vector<std::vector<NodeIndex>> t0_admins;     // merged indices
  std::vector<std::vector<NodeIndex>> machines;      // merged indices
  std::vector<NodeIndex> t0_groups_ous;              // merged indices

  // Every domain is an independent generation problem: its config carries
  // its own seed, so the per-domain graphs do not depend on generation
  // order or thread count.  Generate them in parallel (nested parallel
  // regions inside generate_ad run inline on the worker), then merge in
  // ascending domain order — merged node indices are deterministic.
  std::vector<GeneratedAd> ads(config.domains.size());
  {
    ADSYNTH_SPAN("forest.generate_domains");
    util::parallel_for(util::global_pool(), 0, config.domains.size(), 1,
                       [&](std::size_t lo, std::size_t hi, std::size_t) {
                         for (std::size_t d = lo; d < hi; ++d) {
                           ads[d] = generate_ad(config.domains[d]);
                         }
                       });
  }

  {
    std::size_t total_nodes = 1;  // + Enterprise Admins
    std::size_t total_edges =
        1 + 3 * config.domains.size() +  // EA membership/control + trusts
        static_cast<std::size_t>(config.cross_domain_leaks) *
            (config.domains.size() - 1);
    for (const GeneratedAd& ad : ads) {
      total_nodes += ad.graph.node_count();
      total_edges += ad.graph.edge_count();
    }
    forest.graph.reserve(total_nodes, total_edges);
  }

  ADSYNTH_SPAN("forest.merge");
  for (std::size_t d = 0; d < config.domains.size(); ++d) {
    const GeneratedAd& ad = ads[d];
    const NodeIndex offset = forest.offsets.back();
    std::string suffix = "@";
    suffix += util::to_upper(config.domains[d].domain_fqdn);

    for (NodeIndex i = 0; i < ad.graph.node_count(); ++i) {
      const std::string& name = ad.graph.name(i);
      // Domain heads are already named by their FQDN; everything else gets
      // the BloodHound-style "NAME@DOMAIN" qualification.
      const bool qualify =
          !name.empty() && ad.graph.kind(i) != ObjectKind::kDomain;
      forest.graph.add_named_node(ad.graph.kind(i),
                                  qualify ? name + suffix : name,
                                  ad.graph.tier(i), ad.graph.flags(i));
    }
    forest.graph.append_edges(ad.graph.edges(), offset);

    forest.domain_heads.push_back(offset + ad.graph.domain_node());
    forest.domain_admins.push_back(offset + ad.graph.domain_admins());
    std::vector<NodeIndex> admins;
    for (const NodeIndex a : ad.admin_users_by_tier[0]) {
      admins.push_back(offset + a);
    }
    t0_admins.push_back(std::move(admins));
    std::vector<NodeIndex> comps;
    for (const auto& tier : ad.computers_by_tier) {
      for (const NodeIndex c : tier) comps.push_back(offset + c);
    }
    machines.push_back(std::move(comps));
    const OuIndex groups_ou = ad.org.groups_ou_by_tier[0];
    t0_groups_ous.push_back(offset + ad.org.ous[groups_ou].graph_node);

    forest.offsets.push_back(
        static_cast<NodeIndex>(forest.graph.node_count()));
    ads[d] = GeneratedAd{};  // release the domain copy as soon as it's merged
  }

  // The forest-takeover target: the root domain's DA.
  forest.graph.set_domain_node(forest.domain_heads[0]);
  forest.graph.set_domain_admins(forest.domain_admins[0]);

  // --- trusts ---------------------------------------------------------------
  auto add_trust = [&](std::size_t a, std::size_t b) {
    forest.graph.add_edge(forest.domain_heads[a], forest.domain_heads[b],
                          EdgeKind::kTrustedBy);
    forest.graph.add_edge(forest.domain_heads[b], forest.domain_heads[a],
                          EdgeKind::kTrustedBy);
    forest.trusts.emplace_back(a, b);
  };
  switch (config.topology) {
    case TrustTopology::kHubAndSpoke:
      for (std::size_t d = 1; d < config.domains.size(); ++d) add_trust(0, d);
      break;
    case TrustTopology::kChain:
      for (std::size_t d = 1; d < config.domains.size(); ++d) {
        add_trust(d - 1, d);
      }
      break;
    case TrustTopology::kFullMesh:
      for (std::size_t a = 0; a < config.domains.size(); ++a) {
        for (std::size_t b = a + 1; b < config.domains.size(); ++b) {
          add_trust(a, b);
        }
      }
      break;
  }

  // --- Enterprise Admins -----------------------------------------------------
  std::string root_suffix = "@";
  root_suffix += util::to_upper(config.domains[0].domain_fqdn);
  forest.enterprise_admins = forest.graph.add_named_node(
      ObjectKind::kGroup, "ENTERPRISE ADMINS" + root_suffix, 0,
      adcore::node_flag::kSecurityGroup);
  // The root DA administers the forest: DA -> EA membership-equivalent
  // control; EA holds GenericAll over every domain head and every domain's
  // tier-0 Groups OU.
  forest.graph.add_edge(forest.domain_admins[0], forest.enterprise_admins,
                        EdgeKind::kMemberOf);
  for (std::size_t d = 0; d < config.domains.size(); ++d) {
    forest.graph.add_edge(forest.enterprise_admins, forest.domain_heads[d],
                          EdgeKind::kGenericAll);
    forest.graph.add_edge(forest.enterprise_admins, t0_groups_ous[d],
                          EdgeKind::kGenericAll);
  }

  // --- cross-domain credential leaks ------------------------------------------
  for (std::size_t d = 1; d < config.domains.size(); ++d) {
    const auto& root_admins = t0_admins[0];
    const auto& child_machines = machines[d];
    if (root_admins.empty() || child_machines.empty()) continue;
    for (std::uint32_t leak = 0; leak < config.cross_domain_leaks; ++leak) {
      const NodeIndex admin = root_admins[rng.index(root_admins.size())];
      const NodeIndex machine =
          child_machines[rng.index(child_machines.size())];
      forest.graph.add_edge(machine, admin, EdgeKind::kHasSession,
                            /*violation=*/true);
    }
  }
  return forest;
}

}  // namespace adsynth::core
