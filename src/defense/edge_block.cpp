#include "defense/edge_block.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "analytics/reachability.hpp"
#include "analytics/rp_rate.hpp"
#include "defense/whatif.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace adsynth::defense {

using analytics::Csr;
using analytics::EdgeIndex;
using adcore::NodeIndex;

namespace {

/// Number of entry users still reaching the target under a block mask.
std::size_t survivors(const adcore::AttackGraph& graph,
                      const std::vector<bool>& blocked) {
  return analytics::users_reaching_da(graph, &blocked).users_with_path;
}

/// Candidate edges for blocking: the highest-traffic edges on current
/// shortest entry→target paths.
std::vector<EdgeIndex> traffic_candidates(const adcore::AttackGraph& graph,
                                          const std::vector<bool>& blocked,
                                          std::size_t cap,
                                          std::uint64_t seed) {
  analytics::RpOptions rp_options;
  rp_options.edge_traffic = true;
  rp_options.max_sources = 96;
  rp_options.seed = seed;
  const auto rp = analytics::route_penetration(graph, rp_options, &blocked);
  std::vector<std::pair<double, EdgeIndex>> ranked;
  for (EdgeIndex e = 0; e < rp.edge_traffic.size(); ++e) {
    if (rp.edge_traffic[e] > 0.0) ranked.emplace_back(rp.edge_traffic[e], e);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (ranked.size() > cap) ranked.resize(cap);
  std::vector<EdgeIndex> out;
  out.reserve(ranked.size());
  for (const auto& [traffic, e] : ranked) out.push_back(e);
  return out;
}

struct BnbState {
  const adcore::AttackGraph& graph;
  const std::vector<EdgeIndex>& candidates;
  std::size_t budget;
  std::size_t node_limit;
  std::size_t nodes_visited = 0;
  std::size_t best_survivors;
  std::vector<EdgeIndex> best_set;
};

/// Exact branch-and-bound over candidate subsets of size <= budget,
/// minimizing surviving entry users (the "integer program").
void bnb(BnbState& state, std::vector<bool>& blocked,
         std::vector<EdgeIndex>& chosen, std::size_t next) {
  if (state.nodes_visited++ > state.node_limit) return;
  ADSYNTH_METRIC_COUNT("defense.bnb.nodes_visited", 1);
  const std::size_t current = survivors(state.graph, blocked);
  if (current < state.best_survivors) {
    state.best_survivors = current;
    state.best_set = chosen;
  }
  if (current == 0) return;  // cannot improve below zero
  if (chosen.size() == state.budget || next >= state.candidates.size()) {
    return;
  }
  for (std::size_t i = next; i < state.candidates.size(); ++i) {
    const EdgeIndex e = state.candidates[i];
    blocked[e] = true;
    chosen.push_back(e);
    bnb(state, blocked, chosen, i + 1);
    chosen.pop_back();
    blocked[e] = false;
    if (state.nodes_visited > state.node_limit) return;
  }
}

EdgeBlockResult run_ip(const adcore::AttackGraph& graph,
                       const EdgeBlockOptions& options,
                       std::size_t entry_users,
                       std::size_t entry_connected) {
  // Candidate discovery must interleave with blocking: an edge that is not
  // on any *current* shortest path carries zero traffic, but becomes the
  // critical edge once the paths in front of it are cut.  The kernelized
  // instance is therefore built by a block-reveal loop (cut the heaviest
  // edge, recompute) and the branch-and-bound then searches for the best
  // <= budget subset of the revealed candidates.
  std::vector<bool> blocked(graph.edge_count(), false);
  std::vector<EdgeIndex> candidates;
  const std::size_t want = options.budget + 8;
  while (candidates.size() < want) {
    const auto next = traffic_candidates(graph, blocked, 4, options.seed);
    if (next.empty()) break;  // nothing reaches the target any more
    for (const EdgeIndex e : next) {
      if (candidates.size() >= want) break;
      blocked[e] = true;
      candidates.push_back(e);
    }
  }
  std::fill(blocked.begin(), blocked.end(), false);

  // Incumbent: the first `budget` revealed candidates (the greedy cut).
  std::size_t best_survivors;
  std::vector<EdgeIndex> best_set;
  {
    std::vector<bool> greedy_blocked(graph.edge_count(), false);
    std::vector<EdgeIndex> greedy;
    for (std::size_t i = 0; i < candidates.size() && i < options.budget; ++i) {
      greedy_blocked[candidates[i]] = true;
      greedy.push_back(candidates[i]);
    }
    best_survivors = survivors(graph, greedy_blocked);
    best_set = std::move(greedy);
  }

  // Each top-level branch fixes a different first blocked edge and explores
  // its subtree on a private mask with a private share of the node budget —
  // independent candidate blocked-edge sets, evaluated in parallel.  The
  // per-branch bests merge in ascending branch order (strictly-better
  // wins), so the chosen cut set is identical at every thread count.
  if (!candidates.empty() && options.budget > 0) {
    ADSYNTH_SPAN("defense.edge_block.bnb");
    const std::size_t branches = candidates.size();
    const std::size_t per_branch =
        std::max<std::size_t>(1, options.bnb_node_limit / branches);
    constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> branch_survivors(branches, kUnset);
    std::vector<std::vector<EdgeIndex>> branch_set(branches);
    util::parallel_for(
        util::global_pool(), 0, branches, /*grain=*/1,
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          for (std::size_t b = lo; b < hi; ++b) {
            BnbState state{graph,      candidates, options.budget,
                           per_branch, 0,          kUnset,
                           {}};
            std::vector<bool> mask(graph.edge_count(), false);
            std::vector<EdgeIndex> chosen{candidates[b]};
            mask[candidates[b]] = true;
            bnb(state, mask, chosen, b + 1);
            branch_survivors[b] = state.best_survivors;
            branch_set[b] = std::move(state.best_set);
          }
        });
    for (std::size_t b = 0; b < branches; ++b) {
      if (branch_survivors[b] < best_survivors) {
        best_survivors = branch_survivors[b];
        best_set = std::move(branch_set[b]);
      }
    }
  }

  EdgeBlockResult result;
  result.blocked_edges = std::move(best_set);
  result.entry_users = entry_users;
  result.entry_users_connected = entry_connected;
  std::fill(blocked.begin(), blocked.end(), false);
  for (const EdgeIndex e : result.blocked_edges) blocked[e] = true;
  result.attacker_success =
      entry_users == 0 ? 0.0
                       : static_cast<double>(survivors(graph, blocked)) /
                             static_cast<double>(entry_users);
  return result;
}

EdgeBlockResult run_iterlp(const adcore::AttackGraph& graph,
                           const EdgeBlockOptions& options,
                           std::size_t entry_users,
                           std::size_t entry_connected) {
  // Iterative LP with rounding: under shortest-path attacker routing, the
  // per-edge traffic share is the fractional solution of the path-covering
  // LP; each iteration re-solves it (one RP sweep) and rounds the heaviest
  // fractional edge into the integral blocked set, until the budget is
  // spent or no path survives.  Re-solving after each rounding step is
  // what distinguishes IterLP from the one-shot kernel of the IP.
  std::vector<bool> blocked(graph.edge_count(), false);
  EdgeBlockResult result;
  result.entry_users = entry_users;
  result.entry_users_connected = entry_connected;

  const std::size_t iterations =
      std::min(options.budget, options.lp_iterations);
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    const auto next = traffic_candidates(graph, blocked, 1,
                                         options.seed + iter);
    if (next.empty()) break;  // LP infeasible: no surviving path to cover
    blocked[next.front()] = true;
    result.blocked_edges.push_back(next.front());
  }

  result.attacker_success =
      entry_users == 0 ? 0.0
                       : static_cast<double>(survivors(graph, blocked)) /
                             static_cast<double>(entry_users);
  return result;
}

}  // namespace

EdgeBlockResult block_edges(const adcore::AttackGraph& graph,
                            EdgeBlockAlgorithm algorithm,
                            const EdgeBlockOptions& options) {
  ADSYNTH_SPAN("defense.edge_block");
  const NodeIndex target = graph.domain_admins();
  if (target == adcore::kNoNodeIndex) {
    throw std::logic_error("edge_block: graph has no Domain Admins");
  }

  // --- setup validation (the stage that fails on realistic graphs) --------
  const auto reach = analytics::users_reaching_da(graph);
  const std::size_t entry_users = reach.regular_users;
  const std::size_t entry_connected = reach.users_with_path;
  const double connectivity =
      entry_users == 0 ? 0.0
                       : static_cast<double>(entry_connected) /
                             static_cast<double>(entry_users);
  if (connectivity < options.min_entry_connectivity) {
    throw GraphSetupError(
        "edge_block: graph setup error — only " +
        std::to_string(entry_connected) + " of " +
        std::to_string(entry_users) +
        " entry users reach the target (connectivity " +
        std::to_string(connectivity) +
        " < required " + std::to_string(options.min_entry_connectivity) +
        "); the kernelization assumes a connected entry population");
  }
  // Kernel branch-node bound: nodes on entry→target paths with multiple
  // kernel out-neighbours (the FPT "splitting node" parameter).
  {
    const Csr forward = analytics::build_forward(graph);
    const Csr reverse = analytics::build_reverse(graph);
    const auto dist_from_sources =
        analytics::bfs_distances(forward, analytics::regular_users(graph));
    const auto dist_to_target = analytics::bfs_distances(reverse, {target});
    std::vector<bool> in_kernel(graph.node_count(), false);
    for (NodeIndex v = 0; v < graph.node_count(); ++v) {
      in_kernel[v] = dist_from_sources[v] != analytics::kUnreachable &&
                     dist_to_target[v] != analytics::kUnreachable;
    }
    std::size_t splitting = 0;
    for (NodeIndex v = 0; v < graph.node_count(); ++v) {
      if (!in_kernel[v]) continue;
      std::size_t kernel_out = 0;
      for (std::uint32_t i = forward.offsets[v]; i < forward.offsets[v + 1];
           ++i) {
        if (in_kernel[forward.targets[i]] && ++kernel_out >= 2) break;
      }
      if (kernel_out >= 2) ++splitting;
    }
    if (splitting > options.max_splitting_nodes) {
      throw GraphSetupError(
          "edge_block: graph setup error — kernel has " +
          std::to_string(splitting) +
          " splitting nodes (limit " +
          std::to_string(options.max_splitting_nodes) +
          "); the fixed-parameter algorithm's budget is exceeded");
    }
  }

  switch (algorithm) {
    case EdgeBlockAlgorithm::kIpKernelization:
      return run_ip(graph, options, entry_users, entry_connected);
    case EdgeBlockAlgorithm::kIterativeLp:
      return run_iterlp(graph, options, entry_users, entry_connected);
  }
  throw std::logic_error("edge_block: unknown algorithm");
}

LiveEdgeBlockResult block_edges_live(graphdb::GraphStore& store,
                                     std::size_t budget) {
  ADSYNTH_SPAN("defense.edge_block_live");
  WhatIf whatif(store);
  LiveEdgeBlockResult result;
  result.entry_users = whatif.entry_users().size();
  result.entry_users_connected = whatif.survivors();

  // The whole exploration runs under one outer speculation: the chosen cut
  // is reported, not applied, and the store comes back bit-identical.
  whatif.speculate();
  for (std::size_t round = 0; round < budget; ++round) {
    const std::vector<graphdb::RelId> path = whatif.shortest_attack_path();
    if (path.empty()) break;  // every entry user is already cut off
    graphdb::RelId best = graphdb::kNoRel;
    std::size_t best_survivors = std::numeric_limits<std::size_t>::max();
    for (const graphdb::RelId e : path) {
      whatif.speculate();
      whatif.block_edge(e);
      const std::size_t alive = whatif.survivors();
      whatif.rollback();  // unblock: candidate probes never accumulate
      if (alive < best_survivors) {
        best_survivors = alive;
        best = e;
      }
    }
    whatif.block_edge(best);  // adopt the round's winner (still speculative)
    result.blocked_rels.push_back(best);
  }
  const std::size_t alive = whatif.survivors();
  whatif.rollback();

  result.attacker_success =
      result.entry_users == 0
          ? 0.0
          : static_cast<double>(alive) /
                static_cast<double>(result.entry_users);
  return result;
}

LiveEdgeBlockResult block_edges_snapshot(graphdb::GraphStore& store,
                                         std::size_t budget) {
  ADSYNTH_SPAN("defense.edge_block_snapshot");
  const graphdb::Snapshot snap = store.snapshot();
  const SnapshotWhatIf whatif(snap);
  LiveEdgeBlockResult result;
  result.entry_users = whatif.entry_users().size();

  // The accumulated cut set; candidate branches fork from it, winners fold
  // back into it.  The store itself is untouched throughout.
  WhatIfOverlay cut;
  result.entry_users_connected = whatif.survivors(cut);

  for (std::size_t round = 0; round < budget; ++round) {
    const std::vector<graphdb::RelId> path = whatif.shortest_attack_path(cut);
    if (path.empty()) break;  // every entry user is already cut off
    const std::vector<std::size_t> alive =
        parallel_edge_survivors(whatif, cut, path);
    graphdb::RelId best = graphdb::kNoRel;
    std::size_t best_survivors = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (alive[i] < best_survivors) {
        best_survivors = alive[i];
        best = path[i];
      }
    }
    cut.block_edge(best);  // adopt the round's winner
    result.blocked_rels.push_back(best);
  }
  const std::size_t alive = whatif.survivors(cut);

  result.attacker_success =
      result.entry_users == 0
          ? 0.0
          : static_cast<double>(alive) /
                static_cast<double>(result.entry_users);
  return result;
}

}  // namespace adsynth::defense
