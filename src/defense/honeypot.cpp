#include "defense/honeypot.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

#include "analytics/graph_view.hpp"
#include "analytics/reachability.hpp"
#include "defense/whatif.hpp"
#include "util/rng.hpp"

namespace adsynth::defense {

using analytics::Csr;
using adcore::NodeIndex;

namespace {

/// Shortest-path structure of the *original* graph: the attacker commits to
/// a shortest path of the true graph, so distances are fixed once and the
/// honeypot set only filters which of those paths remain undetected.
struct PathSpace {
  Csr forward;
  Csr reverse;
  std::vector<std::int32_t> dist_to_t;  // original hop distance to target
  std::vector<NodeIndex> sources;       // contributing regular users
  std::vector<double> sigma_st;         // original path count per source
  double total_paths = 0.0;
};

/// σ counts toward the target over the original shortest-path DAG, visiting
/// only nodes not in `avoid`.
std::vector<double> sigma_to_target_avoiding(const PathSpace& space,
                                             NodeIndex target,
                                             const std::vector<bool>& avoid) {
  const std::size_t n = space.reverse.node_count();
  std::vector<double> sigma(n, 0.0);
  if (avoid[target]) return sigma;  // degenerate: honeypot on the target
  sigma[target] = 1.0;
  // Process nodes in increasing dist_to_t (BFS order over the reverse DAG).
  std::deque<NodeIndex> frontier{target};
  std::vector<bool> queued(n, false);
  queued[target] = true;
  while (!frontier.empty()) {
    const NodeIndex v = frontier.front();
    frontier.pop_front();
    for (std::uint32_t i = space.reverse.offsets[v];
         i < space.reverse.offsets[v + 1]; ++i) {
      const NodeIndex u = space.reverse.targets[i];
      if (avoid[u]) continue;
      if (space.dist_to_t[u] != space.dist_to_t[v] + 1) continue;
      sigma[u] += sigma[v];
      if (!queued[u]) {
        queued[u] = true;
        frontier.push_back(u);
      }
    }
  }
  return sigma;
}

}  // namespace

HoneypotResult place_honeypots(const adcore::AttackGraph& graph,
                               const HoneypotOptions& options) {
  const NodeIndex target = graph.domain_admins();
  if (target == adcore::kNoNodeIndex) {
    throw std::logic_error("place_honeypots: graph has no Domain Admins");
  }
  const std::size_t n = graph.node_count();

  PathSpace space;
  space.forward = analytics::build_forward(graph);
  space.reverse = analytics::build_reverse(graph);
  space.dist_to_t = analytics::bfs_distances(space.reverse, {target});

  // The attacker entry population never hosts a honeypot — even users whose
  // traffic was sampled out below.
  std::vector<bool> is_source(n, false);
  for (const NodeIndex u : analytics::regular_users(graph)) {
    is_source[u] = true;
    if (space.dist_to_t[u] != analytics::kUnreachable && u != target) {
      space.sources.push_back(u);
    }
  }
  HoneypotResult result;
  if (space.sources.empty()) return result;
  if (options.max_sources > 0 && space.sources.size() > options.max_sources) {
    util::Rng rng(options.seed);
    space.sources = rng.sample(space.sources, options.max_sources);
  }

  // Original per-source path counts (empty honeypot set).
  std::vector<bool> honeypots(n, false);
  {
    const auto sigma_t = sigma_to_target_avoiding(space, target, honeypots);
    space.sigma_st.reserve(space.sources.size());
    for (const NodeIndex s : space.sources) {
      space.sigma_st.push_back(sigma_t[s]);
      space.total_paths += sigma_t[s];
    }
  }
  if (space.total_paths <= 0.0) return result;

  // Greedy max coverage: each round scores every candidate node by the
  // undetected traffic through it, places the best, and re-evaluates.
  std::vector<std::uint32_t> epoch(n, 0);
  std::vector<double> sigma_s(n, 0.0);
  std::uint32_t current_epoch = 0;
  std::deque<NodeIndex> frontier;

  for (std::size_t round = 0; round < options.count; ++round) {
    const auto sigma_t = sigma_to_target_avoiding(space, target, honeypots);
    std::vector<double> through(n, 0.0);
    double uncovered = 0.0;
    for (const NodeIndex s : space.sources) {
      if (honeypots[s] || sigma_t[s] <= 0.0) continue;
      ++current_epoch;
      frontier.clear();
      frontier.push_back(s);
      epoch[s] = current_epoch;
      sigma_s[s] = 1.0;
      while (!frontier.empty()) {
        const NodeIndex v = frontier.front();
        frontier.pop_front();
        through[v] += sigma_s[v] * sigma_t[v];
        if (v == target) continue;
        for (std::uint32_t i = space.forward.offsets[v];
             i < space.forward.offsets[v + 1]; ++i) {
          const NodeIndex w = space.forward.targets[i];
          if (honeypots[w]) continue;
          if (space.dist_to_t[w] != space.dist_to_t[v] - 1) continue;
          if (epoch[w] != current_epoch) {
            epoch[w] = current_epoch;
            sigma_s[w] = sigma_s[v];
            frontier.push_back(w);
          } else {
            sigma_s[w] += sigma_s[v];
          }
        }
      }
      if (epoch[target] == current_epoch) uncovered += sigma_s[target];
    }
    if (uncovered <= 0.0) {
      // Every remaining shortest path already crosses a honeypot.
      result.coverage_after.push_back(1.0);
      break;
    }

    NodeIndex best = adcore::kNoNodeIndex;
    double best_through = 0.0;
    for (NodeIndex v = 0; v < n; ++v) {
      if (v == target || honeypots[v] || is_source[v]) continue;
      if (options.computers_only &&
          graph.kind(v) != adcore::ObjectKind::kComputer) {
        continue;
      }
      if (through[v] > best_through) {
        best_through = through[v];
        best = v;
      }
    }
    if (best == adcore::kNoNodeIndex) break;  // nothing interceptable
    honeypots[best] = true;
    result.placements.push_back(best);
    // Coverage = 1 − undetected/total with the new placement included.
    const double remaining = uncovered - best_through;
    result.coverage_after.push_back(
        1.0 - std::max(0.0, remaining) / space.total_paths);
  }
  return result;
}

LiveHoneypotResult place_honeypots_live(graphdb::GraphStore& store,
                                        std::size_t count) {
  WhatIf whatif(store);
  LiveHoneypotResult result;
  result.entry_users_connected = whatif.survivors();
  if (result.entry_users_connected == 0) return result;
  const double baseline =
      static_cast<double>(result.entry_users_connected);
  const auto& entries = whatif.entry_users();

  whatif.speculate();  // placements accumulate here, then roll back
  for (std::size_t round = 0; round < count; ++round) {
    const std::vector<graphdb::RelId> path = whatif.shortest_attack_path();
    if (path.empty()) break;  // every entry user already stranded
    // Candidate hosts: the path's intermediate nodes — the targets of every
    // hop but the last (which is Domain Admins itself), minus entry users.
    graphdb::NodeId best = graphdb::kNoNode;
    std::size_t best_survivors = std::numeric_limits<std::size_t>::max();
    for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
      const graphdb::NodeId candidate = store.rel(path[hop]).target;
      if (std::find(entries.begin(), entries.end(), candidate) !=
          entries.end()) {
        continue;  // planting on an attacker account detects nothing
      }
      whatif.speculate();
      whatif.block_node(candidate);
      const std::size_t alive = whatif.survivors();
      whatif.rollback();
      if (alive < best_survivors) {
        best_survivors = alive;
        best = candidate;
      }
    }
    if (best == graphdb::kNoNode) break;  // path is entry→target direct
    whatif.block_node(best);
    result.placements.push_back(best);
    result.coverage_after.push_back(
        1.0 - static_cast<double>(whatif.survivors()) / baseline);
  }
  whatif.rollback();
  return result;
}

LiveHoneypotResult place_honeypots_snapshot(graphdb::GraphStore& store,
                                            std::size_t count) {
  const graphdb::Snapshot snap = store.snapshot();
  const SnapshotWhatIf whatif(snap);
  LiveHoneypotResult result;
  WhatIfOverlay placed;  // accumulated placements; branches fork from it
  result.entry_users_connected = whatif.survivors(placed);
  if (result.entry_users_connected == 0) return result;
  const double baseline =
      static_cast<double>(result.entry_users_connected);
  const auto& entries = whatif.entry_users();

  for (std::size_t round = 0; round < count; ++round) {
    const std::vector<graphdb::RelId> path =
        whatif.shortest_attack_path(placed);
    if (path.empty()) break;  // every entry user already stranded
    // Candidate hosts in the serial loop's hop order: the targets of every
    // hop but the last (Domain Admins itself), minus entry users.
    std::vector<graphdb::NodeId> candidates;
    candidates.reserve(path.size());
    for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
      const graphdb::NodeId candidate = whatif.view().rel(path[hop]).target;
      if (std::find(entries.begin(), entries.end(), candidate) !=
          entries.end()) {
        continue;  // planting on an attacker account detects nothing
      }
      candidates.push_back(candidate);
    }
    const std::vector<std::size_t> alive =
        parallel_node_survivors(whatif, placed, candidates);
    graphdb::NodeId best = graphdb::kNoNode;
    std::size_t best_survivors = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (alive[i] < best_survivors) {
        best_survivors = alive[i];
        best = candidates[i];
      }
    }
    if (best == graphdb::kNoNode) break;  // path is entry→target direct
    placed.block_node(best);
    result.placements.push_back(best);
    result.coverage_after.push_back(
        1.0 - static_cast<double>(whatif.survivors(placed)) / baseline);
  }
  return result;
}

}  // namespace adsynth::defense
