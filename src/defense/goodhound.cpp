#include "defense/goodhound.hpp"

#include <algorithm>
#include <stdexcept>

#include "analytics/reachability.hpp"
#include "analytics/rp_rate.hpp"

namespace adsynth::defense {

using analytics::EdgeIndex;

GoodHoundResult eliminate_attack_paths(const adcore::AttackGraph& graph,
                                       const GoodHoundOptions& options) {
  if (options.batch == 0) {
    throw std::invalid_argument("GoodHoundOptions::batch must be positive");
  }
  GoodHoundResult result;
  std::vector<bool> blocked(graph.edge_count(), false);

  analytics::RpOptions rp_options;
  rp_options.edge_traffic = true;
  rp_options.max_sources = options.max_sources;
  rp_options.seed = options.seed;

  while (result.removed.size() < options.max_removals) {
    const auto reach = analytics::users_reaching_da(graph, &blocked);
    if (reach.users_with_path == 0) {
      result.users_remaining.push_back(0);
      return result;
    }
    const auto rp = analytics::route_penetration(graph, rp_options, &blocked);
    // Rank edges by traffic and cut the top `batch`.
    std::vector<std::pair<double, EdgeIndex>> ranked;
    for (EdgeIndex e = 0; e < rp.edge_traffic.size(); ++e) {
      if (rp.edge_traffic[e] > 0.0 && !blocked[e]) {
        ranked.emplace_back(rp.edge_traffic[e], e);
      }
    }
    if (ranked.empty()) {
      // Paths exist but carry no traffic from the evaluated sources; since
      // route_penetration draws sources from the exact contributing set,
      // this indicates an inconsistent mask — fail loudly.
      throw std::logic_error(
          "goodhound: users reach DA but no edge carries traffic");
    }
    const std::size_t take = std::min(options.batch, ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + take, ranked.end(),
                      [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;
                      });
    for (std::size_t i = 0; i < take; ++i) {
      blocked[ranked[i].second] = true;
      result.removed.push_back(ranked[i].second);
    }
    result.users_remaining.push_back(reach.users_with_path);
  }
  result.exhausted = true;
  return result;
}

}  // namespace adsynth::defense
