// Honeypot placement (application of ADSynth data to the paper's cited
// companion work: Ngo, Guo, Nguyen — "Near optimal strategies for honeypots
// placement in dynamic and large active directory networks", AAMAS 2023
// [21]).
//
// The defender plants honeypots on k nodes; an attacker walking a shortest
// attack path toward Domain Admins is detected when the path crosses a
// honeypot.  Maximizing the share of intercepted shortest paths is a
// max-coverage problem; the greedy placement used here carries the classic
// (1 − 1/e) guarantee and is the "near optimal strategy" of the reference.
//
// Candidate nodes exclude the target itself and the attacker entry
// population (planting on the attacker's own account detects nothing).
#pragma once

#include <cstdint>
#include <vector>

#include "adcore/attack_graph.hpp"
#include "graphdb/store.hpp"

namespace adsynth::defense {

struct HoneypotOptions {
  /// Number of honeypots to place.
  std::size_t count = 3;
  /// Per-source cap forwarded to the RP computation.
  std::size_t max_sources = 256;
  std::uint64_t seed = 1;
  /// Restrict candidates to computers (honeypot hosts are machines in the
  /// reference work); when false any intermediate node qualifies.
  bool computers_only = false;
};

struct HoneypotResult {
  std::vector<adcore::NodeIndex> placements;
  /// Fraction of (evaluated) shortest attack paths crossing at least one
  /// honeypot, after each placement (monotone non-decreasing).
  std::vector<double> coverage_after;

  double final_coverage() const {
    return coverage_after.empty() ? 0.0 : coverage_after.back();
  }
};

/// Greedy max-coverage placement of `options.count` honeypots against
/// shortest paths from regular users to graph.domain_admins().  Throws
/// std::logic_error when the graph has no Domain Admins marker.
HoneypotResult place_honeypots(const adcore::AttackGraph& graph,
                               const HoneypotOptions& options = {});

/// Result of the store-backed greedy placement (place_honeypots_live).
struct LiveHoneypotResult {
  /// Chosen honeypot hosts as node ids of the probed store.
  std::vector<graphdb::NodeId> placements;
  /// Fraction of the initially connected entry users cut off from Domain
  /// Admins after each placement (monotone non-decreasing).
  std::vector<double> coverage_after;
  std::size_t entry_users_connected = 0;  // before any placement

  double final_coverage() const {
    return coverage_after.empty() ? 0.0 : coverage_after.back();
  }
};

/// Greedy honeypot placement played directly on a live GraphStore: each
/// round probes the intermediate nodes of the current shortest attack path
/// by speculative DETACH-delete + rollback, keeps the node that strands the
/// most entry users, and finally rolls everything back — the store is
/// returned bit-identical.  Throws std::logic_error when the store has no
/// DOMAIN ADMINS group.
LiveHoneypotResult place_honeypots_live(graphdb::GraphStore& store,
                                        std::size_t count);

/// The same greedy placement against one immutable GraphStore::snapshot():
/// the round's candidate hosts are probed as forked WhatIfOverlay branches
/// evaluated concurrently on the work-stealing pool, with the serial loop's
/// strict-< first-candidate tie-breaking — bit-identical placements to
/// place_honeypots_live for equal committed state, at any thread count.
/// The store is never mutated.
LiveHoneypotResult place_honeypots_snapshot(graphdb::GraphStore& store,
                                            std::size_t count);

}  // namespace adsynth::defense
