// Scalable edge-blocking algorithms (paper §V, "Scalable Edge Blocking
// Algorithms"; Guo et al., AAAI 2022/2023 [4], [5]).
//
// Scenario: the defender blocks a budget of edges, then every attacker
// entry point (regular user) takes the shortest unblocked path toward
// Domain Admins.  The defender minimizes the attackers' success rate (the
// fraction of entry users that still reach the target).
//
// Two algorithms, as evaluated in the paper:
//
//  * kIpKernelization — kernelize to the subgraph of nodes lying on any
//    entry→target path, then run an exact branch-and-bound (the "integer
//    program") over edge subsets of the kernel.
//  * kIterativeLp — iterative LP-style relaxation: repeatedly route the
//    surviving shortest paths, raise fractional blocking weights along
//    them (multiplicative weights), and round the heaviest edges into the
//    blocked set.
//
// §V-C reports that both algorithms run on the ADSimulator graph (attacker
// success 0.149 IP / 0.093 IterLP) but "report an error in the graph setup"
// on the ADSynth-secure and University graphs.  The reproduction keeps the
// reference implementations' setup preconditions, which realistic graphs
// violate: the kernelization assumes a well-connected entry population
// (a dense entry-to-target kernel to contract) and a bounded number of
// branch ("splitting") nodes.  On realistic graphs almost no entry user
// reaches the target and the few paths funnel through hub nodes, so setup
// validation fails with GraphSetupError — reproducing the paper's observed
// behaviour (and its conjecture about why).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "adcore/attack_graph.hpp"
#include "analytics/graph_view.hpp"
#include "graphdb/store.hpp"

namespace adsynth::defense {

/// The "error in the graph setup" of §V-C.
class GraphSetupError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class EdgeBlockAlgorithm : std::uint8_t {
  kIpKernelization,
  kIterativeLp,
};

struct EdgeBlockOptions {
  /// Edge budget the defender may block.
  std::size_t budget = 16;
  /// Setup precondition: minimum fraction of entry users that must reach
  /// the target for the kernelization to be meaningful (reference
  /// implementations assume a connected entry population).
  double min_entry_connectivity = 0.005;
  /// Setup precondition: cap on kernel branch nodes (the FPT parameter of
  /// the reference algorithms).  Generous by default — on the graphs the
  /// paper evaluates, the binding precondition is entry connectivity.
  std::size_t max_splitting_nodes = 1'000'000;
  /// Iterations of the LP-style relaxation.
  std::size_t lp_iterations = 40;
  /// Branch-and-bound node cap for the IP; beyond it the incumbent greedy
  /// solution is returned.  Each node costs one reachability sweep.
  std::size_t bnb_node_limit = 2'000;
  std::uint64_t seed = 1;
};

struct EdgeBlockResult {
  std::vector<analytics::EdgeIndex> blocked_edges;
  /// Attackers' success rate after blocking: the fraction of entry users
  /// still reaching Domain Admins.
  double attacker_success = 0.0;
  std::size_t entry_users = 0;
  std::size_t entry_users_connected = 0;  // before blocking
};

/// Runs the chosen algorithm.  Throws GraphSetupError when the graph
/// violates the setup preconditions (expected for realistic graphs, per
/// the paper) and std::logic_error when no Domain Admins marker exists.
EdgeBlockResult block_edges(const adcore::AttackGraph& graph,
                            EdgeBlockAlgorithm algorithm,
                            const EdgeBlockOptions& options = {});

/// Result of the store-backed greedy interdiction (block_edges_live).
struct LiveEdgeBlockResult {
  /// Chosen cut set as relationship ids of the probed store.
  std::vector<graphdb::RelId> blocked_rels;
  /// Fraction of entry users still reaching Domain Admins under the cut.
  double attacker_success = 0.0;
  std::size_t entry_users = 0;
  std::size_t entry_users_connected = 0;  // before blocking
};

/// Greedy edge interdiction played directly on a live GraphStore (an
/// imported BloodHound dump, a baseline generator's output): each round
/// takes the current shortest attack path and probes every edge on it by
/// speculative delete_relationship + rollback inside nested undo scopes —
/// no CSR views are copied, and the store is returned unchanged.  Throws
/// std::logic_error when the store has no DOMAIN ADMINS group.
LiveEdgeBlockResult block_edges_live(graphdb::GraphStore& store,
                                     std::size_t budget);

/// The same greedy interdiction played against one immutable
/// GraphStore::snapshot(): every edge of the round's shortest path is
/// probed as a forked WhatIfOverlay branch evaluated concurrently on the
/// work-stealing pool, so a path of k edges costs one parallel region
/// instead of k serial speculate/rollback sweeps.  The round winner is the
/// strict-< first-index argmin — identical tie-breaking to the serial probe
/// loop — so the result is bit-identical to block_edges_live for equal
/// committed state, at any thread count.  The store is never mutated.
LiveEdgeBlockResult block_edges_snapshot(graphdb::GraphStore& store,
                                         std::size_t budget);

}  // namespace adsynth::defense
