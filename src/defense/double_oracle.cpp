#include "defense/double_oracle.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>

#include "analytics/reachability.hpp"
#include "defense/whatif.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace adsynth::defense {

using analytics::Csr;
using analytics::EdgeIndex;
using adcore::NodeIndex;

namespace {

/// Depth-limited multi-source BFS avoiding blocked edges; returns the edge
/// sequence of one path source→target with length <= limit, or nullopt.
std::optional<std::vector<EdgeIndex>> attacker_oracle(
    const Csr& forward, const std::vector<NodeIndex>& sources,
    NodeIndex target, std::int32_t limit, const std::vector<bool>& blocked) {
  ADSYNTH_SPAN("defense.attacker_oracle");
  const std::size_t n = forward.node_count();
  std::vector<std::int32_t> dist(n, analytics::kUnreachable);
  std::vector<EdgeIndex> parent_edge(n, analytics::kNoEdgeIndex);
  std::vector<NodeIndex> parent_node(n, adcore::kNoNodeIndex);
  std::deque<NodeIndex> frontier;
  for (const NodeIndex s : sources) {
    if (dist[s] == analytics::kUnreachable) {
      dist[s] = 0;
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    const NodeIndex v = frontier.front();
    frontier.pop_front();
    if (v == target) break;
    if (dist[v] >= limit) continue;
    for (std::uint32_t i = forward.offsets[v]; i < forward.offsets[v + 1];
         ++i) {
      if (blocked[forward.edge_ids[i]]) continue;
      const NodeIndex w = forward.targets[i];
      if (dist[w] != analytics::kUnreachable) continue;
      dist[w] = dist[v] + 1;
      parent_edge[w] = forward.edge_ids[i];
      parent_node[w] = v;
      frontier.push_back(w);
    }
  }
  if (dist[target] == analytics::kUnreachable || dist[target] > limit) {
    return std::nullopt;
  }
  std::vector<EdgeIndex> path;
  for (NodeIndex v = target; parent_node[v] != adcore::kNoNodeIndex;
       v = parent_node[v]) {
    path.push_back(parent_edge[v]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// Greedy hitting set: repeatedly take the edge covering the most paths.
std::vector<EdgeIndex> greedy_hitting_set(
    const std::vector<std::vector<EdgeIndex>>& paths) {
  std::vector<EdgeIndex> cuts;
  std::vector<bool> covered(paths.size(), false);
  std::size_t remaining = paths.size();
  while (remaining > 0) {
    std::map<EdgeIndex, std::size_t> gain;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      if (covered[p]) continue;
      for (const EdgeIndex e : paths[p]) ++gain[e];
    }
    EdgeIndex best = analytics::kNoEdgeIndex;
    std::size_t best_gain = 0;
    for (const auto& [e, g] : gain) {
      if (g > best_gain) {
        best = e;
        best_gain = g;
      }
    }
    cuts.push_back(best);
    for (std::size_t p = 0; p < paths.size(); ++p) {
      if (covered[p]) continue;
      if (std::find(paths[p].begin(), paths[p].end(), best) !=
          paths[p].end()) {
        covered[p] = true;
        --remaining;
      }
    }
  }
  return cuts;
}

/// Exact minimum hitting set by iterative-deepening branch on an uncovered
/// path's edges.  Feasible because collected path sets stay small (the
/// double oracle usually converges within a few iterations).
bool hit_search(const std::vector<std::vector<EdgeIndex>>& paths,
                std::vector<bool>& covered, std::size_t budget,
                std::vector<EdgeIndex>& chosen) {
  // Find the first uncovered path.
  std::size_t open = paths.size();
  for (std::size_t p = 0; p < paths.size(); ++p) {
    if (!covered[p]) {
      open = p;
      break;
    }
  }
  if (open == paths.size()) return true;  // all covered
  if (budget == 0) return false;
  for (const EdgeIndex e : paths[open]) {
    // Cover every path containing e.
    std::vector<std::size_t> newly;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      if (!covered[p] && std::find(paths[p].begin(), paths[p].end(), e) !=
                             paths[p].end()) {
        covered[p] = true;
        newly.push_back(p);
      }
    }
    chosen.push_back(e);
    if (hit_search(paths, covered, budget - 1, chosen)) return true;
    chosen.pop_back();
    for (const std::size_t p : newly) covered[p] = false;
  }
  return false;
}

std::vector<EdgeIndex> min_hitting_set(
    const std::vector<std::vector<EdgeIndex>>& paths, std::size_t exact_limit) {
  ADSYNTH_SPAN("defense.hitting_set");
  const std::vector<EdgeIndex> greedy = greedy_hitting_set(paths);
  if (paths.size() > exact_limit || greedy.size() <= 1) return greedy;

  // The exact searches at budgets 1..|greedy|−1 are independent candidate
  // cut-set evaluations, each on its own covered/chosen state.  A serial
  // pool keeps the early-exit scan; a parallel pool evaluates every budget
  // concurrently and takes the smallest successful one — the same set the
  // sequential loop returns, at any thread count (hit_search is
  // deterministic per budget).
  util::ThreadPool& pool = util::global_pool();
  const std::size_t budgets = greedy.size() - 1;
  if (pool.size() == 1) {
    for (std::size_t budget = 1; budget <= budgets; ++budget) {
      std::vector<bool> covered(paths.size(), false);
      std::vector<EdgeIndex> chosen;
      if (hit_search(paths, covered, budget, chosen)) return chosen;
    }
    return greedy;
  }
  std::vector<std::optional<std::vector<EdgeIndex>>> found(budgets);
  util::parallel_for(pool, 0, budgets, /*grain=*/1,
                     [&](std::size_t lo, std::size_t hi, std::size_t) {
                       for (std::size_t b = lo; b < hi; ++b) {
                         std::vector<bool> covered(paths.size(), false);
                         std::vector<EdgeIndex> chosen;
                         if (hit_search(paths, covered, b + 1, chosen)) {
                           found[b] = std::move(chosen);
                         }
                       }
                     });
  for (auto& candidate : found) {
    if (candidate) return std::move(*candidate);
  }
  return greedy;
}

}  // namespace

DoubleOracleResult harden(const adcore::AttackGraph& graph,
                          const DoubleOracleOptions& options) {
  ADSYNTH_SPAN("defense.double_oracle");
  DoubleOracleResult result;
  const NodeIndex target = graph.domain_admins();
  if (target == adcore::kNoNodeIndex) {
    throw std::logic_error("double_oracle: graph has no Domain Admins");
  }
  const Csr forward = analytics::build_forward(graph);
  const std::vector<NodeIndex> sources = analytics::regular_users(graph);
  if (sources.empty()) return result;

  // Initial shortest attack length L.
  std::vector<bool> blocked(graph.edge_count(), false);
  const auto first =
      attacker_oracle(forward, sources, target,
                      std::numeric_limits<std::int32_t>::max(), blocked);
  if (!first) return result;  // no attack path at all
  result.initial_shortest_length = static_cast<std::int32_t>(first->size());

  std::vector<std::vector<EdgeIndex>> paths{*first};
  while (result.oracle_iterations < options.max_iterations) {
    ++result.oracle_iterations;
    ADSYNTH_METRIC_COUNT("defense.oracle_iterations", 1);
    // Defender oracle: minimal hitting set over enumerated paths.
    result.cuts = min_hitting_set(paths, options.exact_limit);
    std::fill(blocked.begin(), blocked.end(), false);
    for (const EdgeIndex e : result.cuts) blocked[e] = true;
    // Attacker oracle: a surviving path of the original shortest length.
    const auto reply = attacker_oracle(forward, sources, target,
                                       result.initial_shortest_length,
                                       blocked);
    if (!reply) return result;  // converged: no shortest-length path remains
    paths.push_back(*reply);
  }
  result.converged = false;
  return result;
}

LiveDoubleOracleResult harden_live(graphdb::GraphStore& store,
                                   const DoubleOracleOptions& options) {
  ADSYNTH_SPAN("defense.double_oracle_live");
  LiveDoubleOracleResult result;
  WhatIf whatif(store);

  const std::vector<graphdb::RelId> first = whatif.shortest_attack_path();
  if (first.empty()) return result;  // no attack path at all
  result.initial_shortest_length = static_cast<std::int32_t>(first.size());

  // graphdb::RelId and analytics::EdgeIndex are the same 32-bit id type, so
  // the hitting-set machinery above works unchanged on relationship ids.
  std::vector<std::vector<graphdb::RelId>> paths{first};
  whatif.speculate();  // the current cut set lives in this scope
  while (result.oracle_iterations < options.max_iterations) {
    ++result.oracle_iterations;
    // Defender oracle: minimal hitting set over enumerated paths, applied
    // speculatively (drop the previous candidate cut, tombstone the new one).
    result.cuts = min_hitting_set(paths, options.exact_limit);
    whatif.rollback();
    whatif.speculate();
    for (const graphdb::RelId e : result.cuts) whatif.block_edge(e);
    // Attacker oracle: a surviving path of the original shortest length.
    const std::vector<graphdb::RelId> reply = whatif.shortest_attack_path();
    if (reply.empty() || static_cast<std::int32_t>(reply.size()) >
                             result.initial_shortest_length) {
      whatif.rollback();  // converged — hand the store back unchanged
      return result;
    }
    paths.push_back(reply);
  }
  whatif.rollback();
  result.converged = false;
  return result;
}

}  // namespace adsynth::defense
