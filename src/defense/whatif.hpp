// Store-level what-if exploration for the defense algorithms.
//
// The mask-based algorithms (edge_block, double_oracle, honeypot) run over
// immutable CSR views of an AttackGraph and express every probe as a fresh
// blocked mask.  This module asks the same questions directly of a live
// GraphStore — e.g. an imported BloodHound dump or a baseline generator's
// output — using the store's undo scopes: blocking an edge tombstones the
// relationship, placing a honeypot tombstones the node, and rollback
// restores the store bit-identically.  Candidates are explored by
// speculative mutation + rollback instead of copying graph views, which is
// what lets the defender loops (edge blocking, double oracle, honeypots)
// scale to dynamic stores that are mutated between evaluations.
//
// WhatIf is inherently serial: every probe mutates the one store, so probes
// must run one at a time.  SnapshotWhatIf lifts the same questions onto an
// immutable GraphStore::snapshot(): each speculative branch is a cheap
// copy-on-write WhatIfOverlay (a sorted set of blocked rel/node ids layered
// over the shared view), so any number of branches evaluate concurrently on
// the work-stealing pool — see parallel_edge_survivors().  The two lenses
// are exchange-equivalent: blocking an edge in an overlay answers exactly
// like delete_relationship + rollback, and blocking a node answers exactly
// like DETACH delete_node + rollback, so the `_snapshot` defender loops in
// edge_block/honeypot produce bit-identical picks to their `_live` twins.
#pragma once

#include <cstdint>
#include <vector>

#include "graphdb/snapshot.hpp"
#include "graphdb/store.hpp"

namespace adsynth::defense {

/// A speculative lens over a live GraphStore holding a BloodHound-style AD
/// graph.  Construction resolves the attack target (the "DOMAIN ADMINS"
/// group), the entry population (enabled non-admin users) and the
/// traversable relationship types; throws std::logic_error when the store
/// has no Domain Admins group.
class WhatIf {
 public:
  explicit WhatIf(graphdb::GraphStore& store);

  graphdb::GraphStore& store() { return store_; }
  graphdb::NodeId target() const { return target_; }
  const std::vector<graphdb::NodeId>& entry_users() const {
    return entry_users_;
  }

  /// True when the relationship is live and attacker-traversable
  /// (identity-snowball semantics, adcore::is_traversable).
  bool traversable(graphdb::RelId rel) const;

  // --- speculation --------------------------------------------------------
  /// Opens a nested undo scope; mutations until the matching rollback()/
  /// keep() are speculative.
  void speculate() { store_.begin_undo_scope(); }
  /// Undoes everything since the innermost speculate().
  void rollback() { store_.abort_scope(); }
  /// Keeps the innermost speculation (folds into the enclosing scope).
  void keep() { store_.commit_scope(); }
  std::size_t depth() const { return store_.undo_depth(); }

  /// Blocks an attack edge: tombstones the relationship.
  void block_edge(graphdb::RelId rel) { store_.delete_relationship(rel); }
  /// Places a honeypot: tombstones the node (with detach), removing it
  /// from the attacker's undetected path space.
  void block_node(graphdb::NodeId node) { store_.delete_node(node, true); }

  // --- evaluation over the live store -------------------------------------
  /// Entry users with a live traversable path to the target (one reverse
  /// BFS over store adjacency; deleted nodes/relationships are skipped).
  std::size_t survivors() const;

  /// One shortest entry→target attack path as relationship ids, found by
  /// deterministic multi-source BFS; empty when no path survives.
  std::vector<graphdb::RelId> shortest_attack_path() const;

 private:
  graphdb::GraphStore& store_;
  graphdb::NodeId target_ = graphdb::kNoNode;
  std::vector<graphdb::NodeId> entry_users_;
  std::vector<bool> type_traversable_;  // indexed by RelTypeId
};

/// A speculative branch over a snapshot: the set of blocked relationships
/// and nodes, kept as sorted id vectors (membership is a binary search).
/// Copying an overlay forks the branch — the copy-on-write unit of the
/// parallel what-if fan-out.  Blocking a node has DETACH semantics for
/// reachability: its incident relationships are skipped via the endpoint
/// check, exactly as delete_node(detach=true) tombstones them.
struct WhatIfOverlay {
  std::vector<graphdb::RelId> blocked_rels;
  std::vector<graphdb::NodeId> blocked_nodes;

  void block_edge(graphdb::RelId rel);
  void block_node(graphdb::NodeId node);
  bool edge_blocked(graphdb::RelId rel) const;
  bool node_blocked(graphdb::NodeId node) const;
};

/// WhatIf's questions asked of an immutable snapshot instead of the live
/// store.  Construction resolves the same target / entry population /
/// traversable types (throwing std::logic_error without a DOMAIN ADMINS
/// group); evaluation takes a WhatIfOverlay describing the branch under
/// test.  The object is immutable after construction and every method is
/// const, so one SnapshotWhatIf is safely shared by all pool workers — the
/// per-branch state lives entirely in the overlay each caller passes.
class SnapshotWhatIf {
 public:
  explicit SnapshotWhatIf(graphdb::Snapshot snapshot);

  const graphdb::SnapshotView& view() const { return *snapshot_; }
  graphdb::NodeId target() const { return target_; }
  const std::vector<graphdb::NodeId>& entry_users() const {
    return entry_users_;
  }

  /// True when the relationship is live in the snapshot, not blocked by the
  /// overlay, and attacker-traversable.
  bool traversable(graphdb::RelId rel, const WhatIfOverlay& overlay) const;

  /// Entry users that still reach the target under the overlay's blocks
  /// (same reverse BFS as WhatIf::survivors, same visit order).
  std::size_t survivors(const WhatIfOverlay& overlay) const;

  /// One shortest surviving entry→target path under the overlay (same
  /// deterministic multi-source BFS as WhatIf::shortest_attack_path).
  std::vector<graphdb::RelId> shortest_attack_path(
      const WhatIfOverlay& overlay) const;

 private:
  graphdb::Snapshot snapshot_;
  graphdb::NodeId target_ = graphdb::kNoNode;
  std::vector<graphdb::NodeId> entry_users_;
  std::vector<bool> type_traversable_;  // indexed by RelTypeId
};

/// Probes every candidate edge concurrently: slot i receives the survivor
/// count of `base` + block_edge(candidates[i]).  Branches are forked
/// overlays evaluated on the global work-stealing pool, one candidate per
/// grain — results land in candidate order, so any reduction over them is
/// deterministic at every thread count.
std::vector<std::size_t> parallel_edge_survivors(
    const SnapshotWhatIf& whatif, const WhatIfOverlay& base,
    const std::vector<graphdb::RelId>& candidates);

/// Node-blocking twin of parallel_edge_survivors (honeypot placement).
std::vector<std::size_t> parallel_node_survivors(
    const SnapshotWhatIf& whatif, const WhatIfOverlay& base,
    const std::vector<graphdb::NodeId>& candidates);

}  // namespace adsynth::defense
