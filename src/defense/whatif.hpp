// Store-level what-if exploration for the defense algorithms.
//
// The mask-based algorithms (edge_block, double_oracle, honeypot) run over
// immutable CSR views of an AttackGraph and express every probe as a fresh
// blocked mask.  This module asks the same questions directly of a live
// GraphStore — e.g. an imported BloodHound dump or a baseline generator's
// output — using the store's undo scopes: blocking an edge tombstones the
// relationship, placing a honeypot tombstones the node, and rollback
// restores the store bit-identically.  Candidates are explored by
// speculative mutation + rollback instead of copying graph views, which is
// what lets the defender loops (edge blocking, double oracle, honeypots)
// scale to dynamic stores that are mutated between evaluations.
#pragma once

#include <cstdint>
#include <vector>

#include "graphdb/store.hpp"

namespace adsynth::defense {

/// A speculative lens over a live GraphStore holding a BloodHound-style AD
/// graph.  Construction resolves the attack target (the "DOMAIN ADMINS"
/// group), the entry population (enabled non-admin users) and the
/// traversable relationship types; throws std::logic_error when the store
/// has no Domain Admins group.
class WhatIf {
 public:
  explicit WhatIf(graphdb::GraphStore& store);

  graphdb::GraphStore& store() { return store_; }
  graphdb::NodeId target() const { return target_; }
  const std::vector<graphdb::NodeId>& entry_users() const {
    return entry_users_;
  }

  /// True when the relationship is live and attacker-traversable
  /// (identity-snowball semantics, adcore::is_traversable).
  bool traversable(graphdb::RelId rel) const;

  // --- speculation --------------------------------------------------------
  /// Opens a nested undo scope; mutations until the matching rollback()/
  /// keep() are speculative.
  void speculate() { store_.begin_undo_scope(); }
  /// Undoes everything since the innermost speculate().
  void rollback() { store_.abort_scope(); }
  /// Keeps the innermost speculation (folds into the enclosing scope).
  void keep() { store_.commit_scope(); }
  std::size_t depth() const { return store_.undo_depth(); }

  /// Blocks an attack edge: tombstones the relationship.
  void block_edge(graphdb::RelId rel) { store_.delete_relationship(rel); }
  /// Places a honeypot: tombstones the node (with detach), removing it
  /// from the attacker's undetected path space.
  void block_node(graphdb::NodeId node) { store_.delete_node(node, true); }

  // --- evaluation over the live store -------------------------------------
  /// Entry users with a live traversable path to the target (one reverse
  /// BFS over store adjacency; deleted nodes/relationships are skipped).
  std::size_t survivors() const;

  /// One shortest entry→target attack path as relationship ids, found by
  /// deterministic multi-source BFS; empty when no path survives.
  std::vector<graphdb::RelId> shortest_attack_path() const;

 private:
  graphdb::GraphStore& store_;
  graphdb::NodeId target_ = graphdb::kNoNode;
  std::vector<graphdb::NodeId> entry_users_;
  std::vector<bool> type_traversable_;  // indexed by RelTypeId
};

}  // namespace adsynth::defense
