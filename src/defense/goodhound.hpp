// GoodHound-style weakest-link analysis (paper §V, Fig. 11).
//
// GoodHound "identifies the weakest edges in an AD system ... allowing AD
// defenders to eliminate edges with substantial attack traffic in a
// prioritized order".  The Fig. 11 experiment removes weakest links until
// no shortest attack path from a regular user to Domain Admins remains and
// reports how many removals that took (≈600 on ADSimulator data vs ≈29 on
// ADSynth-secure, matching the University graph).
//
// Implementation: iterated greedy interdiction.  Each round scores every
// edge by the fraction of current shortest user→DA paths crossing it (the
// RP machinery's edge-traffic accumulator), removes the highest-traffic
// edge, and repeats until users_reaching_da() reports zero.
#pragma once

#include <cstdint>
#include <vector>

#include "adcore/attack_graph.hpp"
#include "analytics/graph_view.hpp"

namespace adsynth::defense {

struct GoodHoundOptions {
  /// Safety valve: stop after this many removals even if paths remain.
  std::size_t max_removals = 100'000;
  /// Edges removed per scoring round.  1 is the exact greedy; larger
  /// batches trade fidelity for speed on dense baseline graphs.
  std::size_t batch = 1;
  /// Source sampling cap forwarded to the RP computation.
  std::size_t max_sources = 128;
  std::uint64_t seed = 1;
};

struct GoodHoundResult {
  /// Edge indices (into AttackGraph::edges()) in removal order.
  std::vector<analytics::EdgeIndex> removed;
  /// Users still reaching DA after each round (parallel to rounds).
  std::vector<std::size_t> users_remaining;
  /// True when max_removals was hit before the paths were eliminated.
  bool exhausted = false;

  std::size_t removals() const { return removed.size(); }
};

/// Runs the removal loop.  The graph is not mutated; removals are tracked
/// in an edge mask.  Throws std::logic_error when the graph lacks a Domain
/// Admins marker.
GoodHoundResult eliminate_attack_paths(const adcore::AttackGraph& graph,
                                       const GoodHoundOptions& options = {});

}  // namespace adsynth::defense
