// Scalable Double Oracle hardening (paper §V, Fig. 12; Zhang et al.,
// AsiaCCS 2023 [14]).
//
// Defender-attacker edge-interdiction game: the attacker routes over
// shortest attack paths from regular users to Domain Admins; the defender
// cuts edges.  Strategy sets are built lazily, double-oracle style:
//
//   repeat
//     attacker oracle: find an attack path of the original shortest length
//                      L that avoids every currently-cut edge
//     if none exists: the cut set eliminates all shortest-length paths; stop
//     add the path to the attacker's strategy set
//     defender oracle: recompute a minimal hitting set over the collected
//                      paths (exact branch-and-bound for small instances,
//                      greedy otherwise) and adopt it as the new cut set
//
// Fig. 12 reports the number of cuts needed to fully eliminate attack
// paths of the shortest length — ≈8 (median) on ADSimulator data, ≤2 on
// ADSynth-secure and the University graph.
#pragma once

#include <cstdint>
#include <vector>

#include "adcore/attack_graph.hpp"
#include "analytics/graph_view.hpp"
#include "graphdb/store.hpp"

namespace adsynth::defense {

struct DoubleOracleOptions {
  /// Exact hitting set is attempted up to this many collected paths /
  /// candidate edges; beyond it the defender oracle is greedy.
  std::size_t exact_limit = 24;
  /// Safety valve on oracle iterations.
  std::size_t max_iterations = 5'000;
};

struct DoubleOracleResult {
  /// The final cut set (edge indices into AttackGraph::edges()).
  std::vector<analytics::EdgeIndex> cuts;
  /// Shortest user→DA length L the game was played at (-1: no path at all).
  std::int32_t initial_shortest_length = -1;
  /// Attacker paths enumerated before convergence.
  std::size_t oracle_iterations = 0;
  bool converged = true;

  std::size_t cut_count() const { return cuts.size(); }
};

/// Plays the game on the traversable subgraph toward graph.domain_admins().
DoubleOracleResult harden(const adcore::AttackGraph& graph,
                          const DoubleOracleOptions& options = {});

/// Result of the store-backed game (harden_live).
struct LiveDoubleOracleResult {
  /// The final cut set as relationship ids of the probed store.
  std::vector<graphdb::RelId> cuts;
  /// Shortest user→DA length L the game was played at (-1: no path at all).
  std::int32_t initial_shortest_length = -1;
  std::size_t oracle_iterations = 0;
  bool converged = true;

  std::size_t cut_count() const { return cuts.size(); }
};

/// Plays the same game directly on a live GraphStore: candidate cut sets
/// are applied as speculative relationship tombstones inside undo scopes
/// and the attacker oracle walks the mutated store's adjacency, so no CSR
/// view is ever copied.  The store is returned bit-identical.  Throws
/// std::logic_error when the store has no DOMAIN ADMINS group.
LiveDoubleOracleResult harden_live(graphdb::GraphStore& store,
                                   const DoubleOracleOptions& options = {});

}  // namespace adsynth::defense
