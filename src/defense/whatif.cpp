#include "defense/whatif.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "adcore/schema.hpp"

namespace adsynth::defense {

using graphdb::GraphStore;
using graphdb::kNoNode;
using graphdb::kNoRel;
using graphdb::NodeId;
using graphdb::PropertyValue;
using graphdb::RelId;

WhatIf::WhatIf(GraphStore& store) : store_(store) {
  // Attack target: the Domain Admins group, by conventional name (the same
  // recovery rule adcore::from_store applies).
  const auto da =
      store_.find_nodes("Group", "name", PropertyValue("DOMAIN ADMINS"));
  if (da.empty()) {
    throw std::logic_error("WhatIf: store has no DOMAIN ADMINS group");
  }
  target_ = da.front();

  // Entry population: enabled, non-administrative users.  `admin` is
  // optional (baseline generators omit it); absence means false.
  const auto key_enabled = store_.find_key("enabled");
  const auto key_admin = store_.find_key("admin");
  for (const NodeId u : store_.nodes_with_label("User")) {
    const PropertyValue* enabled =
        key_enabled ? store_.node_property(u, *key_enabled) : nullptr;
    if (enabled == nullptr || !enabled->is_bool() || !enabled->as_bool()) {
      continue;
    }
    const PropertyValue* admin =
        key_admin ? store_.node_property(u, *key_admin) : nullptr;
    if (admin != nullptr && admin->is_bool() && admin->as_bool()) continue;
    entry_users_.push_back(u);
  }

  // Traversability by interned relationship type.
  const std::size_t type_count = store_.rel_type_count();
  type_traversable_.resize(type_count, false);
  for (std::size_t t = 0; t < type_count; ++t) {
    const auto kind = adcore::parse_edge_kind(
        store_.rel_type_name(static_cast<graphdb::RelTypeId>(t)));
    type_traversable_[t] = kind.has_value() && adcore::is_traversable(*kind);
  }
}

bool WhatIf::traversable(RelId rel) const {
  const auto& rec = store_.rel(rel);
  return !rec.deleted && rec.type < type_traversable_.size() &&
         type_traversable_[rec.type];
}

std::size_t WhatIf::survivors() const {
  if (store_.node(target_).deleted) return 0;
  // Reverse BFS from the target over live traversable relationships: marks
  // every node that can still reach Domain Admins.
  std::vector<char> reaches(store_.node_capacity(), 0);
  reaches[target_] = 1;
  std::deque<NodeId> frontier{target_};
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (const RelId r : store_.node(v).in_rels) {
      if (!traversable(r)) continue;
      const NodeId u = store_.rel(r).source;
      if (reaches[u] || store_.node(u).deleted) continue;
      reaches[u] = 1;
      frontier.push_back(u);
    }
  }
  std::size_t alive = 0;
  for (const NodeId u : entry_users_) {
    if (!store_.node(u).deleted && reaches[u]) ++alive;
  }
  return alive;
}

std::vector<RelId> WhatIf::shortest_attack_path() const {
  if (store_.node(target_).deleted) return {};
  std::vector<char> visited(store_.node_capacity(), 0);
  std::vector<RelId> parent_rel(store_.node_capacity(), kNoRel);
  std::vector<NodeId> parent_node(store_.node_capacity(), kNoNode);
  std::deque<NodeId> frontier;
  for (const NodeId u : entry_users_) {
    if (store_.node(u).deleted || visited[u]) continue;
    visited[u] = 1;
    frontier.push_back(u);
  }
  bool found = false;
  while (!frontier.empty() && !found) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (const RelId r : store_.node(v).out_rels) {
      if (!traversable(r)) continue;
      const NodeId w = store_.rel(r).target;
      if (visited[w] || store_.node(w).deleted) continue;
      visited[w] = 1;
      parent_rel[w] = r;
      parent_node[w] = v;
      if (w == target_) {
        found = true;
        break;
      }
      frontier.push_back(w);
    }
  }
  if (!found) return {};
  std::vector<RelId> path;
  for (NodeId v = target_; parent_node[v] != kNoNode; v = parent_node[v]) {
    path.push_back(parent_rel[v]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace adsynth::defense
