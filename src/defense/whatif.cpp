#include "defense/whatif.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

#include "adcore/schema.hpp"
#include "util/parallel.hpp"

namespace adsynth::defense {

using graphdb::GraphStore;
using graphdb::kNoNode;
using graphdb::kNoRel;
using graphdb::NodeId;
using graphdb::PropertyValue;
using graphdb::RelId;

WhatIf::WhatIf(GraphStore& store) : store_(store) {
  // Attack target: the Domain Admins group, by conventional name (the same
  // recovery rule adcore::from_store applies).
  const auto da =
      store_.find_nodes("Group", "name", PropertyValue("DOMAIN ADMINS"));
  if (da.empty()) {
    throw std::logic_error("WhatIf: store has no DOMAIN ADMINS group");
  }
  target_ = da.front();

  // Entry population: enabled, non-administrative users.  `admin` is
  // optional (baseline generators omit it); absence means false.
  const auto key_enabled = store_.find_key("enabled");
  const auto key_admin = store_.find_key("admin");
  for (const NodeId u : store_.nodes_with_label("User")) {
    const PropertyValue* enabled =
        key_enabled ? store_.node_property(u, *key_enabled) : nullptr;
    if (enabled == nullptr || !enabled->is_bool() || !enabled->as_bool()) {
      continue;
    }
    const PropertyValue* admin =
        key_admin ? store_.node_property(u, *key_admin) : nullptr;
    if (admin != nullptr && admin->is_bool() && admin->as_bool()) continue;
    entry_users_.push_back(u);
  }

  // Traversability by interned relationship type.
  const std::size_t type_count = store_.rel_type_count();
  type_traversable_.resize(type_count, false);
  for (std::size_t t = 0; t < type_count; ++t) {
    const auto kind = adcore::parse_edge_kind(
        store_.rel_type_name(static_cast<graphdb::RelTypeId>(t)));
    type_traversable_[t] = kind.has_value() && adcore::is_traversable(*kind);
  }
}

bool WhatIf::traversable(RelId rel) const {
  const auto& rec = store_.rel(rel);
  return !rec.deleted && rec.type < type_traversable_.size() &&
         type_traversable_[rec.type];
}

std::size_t WhatIf::survivors() const {
  if (store_.node(target_).deleted) return 0;
  // Reverse BFS from the target over live traversable relationships: marks
  // every node that can still reach Domain Admins.
  std::vector<char> reaches(store_.node_capacity(), 0);
  reaches[target_] = 1;
  std::deque<NodeId> frontier{target_};
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (const RelId r : store_.node(v).in_rels) {
      if (!traversable(r)) continue;
      const NodeId u = store_.rel(r).source;
      if (reaches[u] || store_.node(u).deleted) continue;
      reaches[u] = 1;
      frontier.push_back(u);
    }
  }
  std::size_t alive = 0;
  for (const NodeId u : entry_users_) {
    if (!store_.node(u).deleted && reaches[u]) ++alive;
  }
  return alive;
}

std::vector<RelId> WhatIf::shortest_attack_path() const {
  if (store_.node(target_).deleted) return {};
  std::vector<char> visited(store_.node_capacity(), 0);
  std::vector<RelId> parent_rel(store_.node_capacity(), kNoRel);
  std::vector<NodeId> parent_node(store_.node_capacity(), kNoNode);
  std::deque<NodeId> frontier;
  for (const NodeId u : entry_users_) {
    if (store_.node(u).deleted || visited[u]) continue;
    visited[u] = 1;
    frontier.push_back(u);
  }
  bool found = false;
  while (!frontier.empty() && !found) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (const RelId r : store_.node(v).out_rels) {
      if (!traversable(r)) continue;
      const NodeId w = store_.rel(r).target;
      if (visited[w] || store_.node(w).deleted) continue;
      visited[w] = 1;
      parent_rel[w] = r;
      parent_node[w] = v;
      if (w == target_) {
        found = true;
        break;
      }
      frontier.push_back(w);
    }
  }
  if (!found) return {};
  std::vector<RelId> path;
  for (NodeId v = target_; parent_node[v] != kNoNode; v = parent_node[v]) {
    path.push_back(parent_rel[v]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void WhatIfOverlay::block_edge(RelId rel) {
  const auto it =
      std::lower_bound(blocked_rels.begin(), blocked_rels.end(), rel);
  if (it == blocked_rels.end() || *it != rel) blocked_rels.insert(it, rel);
}

void WhatIfOverlay::block_node(NodeId node) {
  const auto it =
      std::lower_bound(blocked_nodes.begin(), blocked_nodes.end(), node);
  if (it == blocked_nodes.end() || *it != node) blocked_nodes.insert(it, node);
}

bool WhatIfOverlay::edge_blocked(RelId rel) const {
  return std::binary_search(blocked_rels.begin(), blocked_rels.end(), rel);
}

bool WhatIfOverlay::node_blocked(NodeId node) const {
  return std::binary_search(blocked_nodes.begin(), blocked_nodes.end(), node);
}

SnapshotWhatIf::SnapshotWhatIf(graphdb::Snapshot snapshot)
    : snapshot_(std::move(snapshot)) {
  if (!snapshot_) {
    throw std::logic_error("SnapshotWhatIf: null snapshot");
  }
  const graphdb::SnapshotView& view = *snapshot_;
  // Same resolution rules as WhatIf's constructor, asked of the view: the
  // two must agree on target/entries/types for equal committed state.
  const auto da =
      view.find_nodes("Group", "name", PropertyValue("DOMAIN ADMINS"));
  if (da.empty()) {
    throw std::logic_error("SnapshotWhatIf: store has no DOMAIN ADMINS group");
  }
  target_ = da.front();

  const auto key_enabled = view.find_key("enabled");
  const auto key_admin = view.find_key("admin");
  for (const NodeId u : view.nodes_with_label("User")) {
    const PropertyValue* enabled =
        key_enabled ? view.node_property(u, *key_enabled) : nullptr;
    if (enabled == nullptr || !enabled->is_bool() || !enabled->as_bool()) {
      continue;
    }
    const PropertyValue* admin =
        key_admin ? view.node_property(u, *key_admin) : nullptr;
    if (admin != nullptr && admin->is_bool() && admin->as_bool()) continue;
    entry_users_.push_back(u);
  }

  const std::size_t type_count = view.rel_type_count();
  type_traversable_.resize(type_count, false);
  for (std::size_t t = 0; t < type_count; ++t) {
    const auto kind = adcore::parse_edge_kind(
        view.rel_type_name(static_cast<graphdb::RelTypeId>(t)));
    type_traversable_[t] = kind.has_value() && adcore::is_traversable(*kind);
  }
}

bool SnapshotWhatIf::traversable(RelId rel,
                                 const WhatIfOverlay& overlay) const {
  const auto& rec = snapshot_->rel(rel);
  return !rec.deleted && !overlay.edge_blocked(rel) &&
         rec.type < type_traversable_.size() && type_traversable_[rec.type];
}

std::size_t SnapshotWhatIf::survivors(const WhatIfOverlay& overlay) const {
  const graphdb::SnapshotView& view = *snapshot_;
  if (view.node(target_).deleted || overlay.node_blocked(target_)) return 0;
  // Identical reverse BFS to WhatIf::survivors; a blocked node counts as
  // deleted everywhere a deleted node is skipped (its incident rels are
  // then unreachable through it — DETACH semantics).
  std::vector<char> reaches(view.node_capacity(), 0);
  reaches[target_] = 1;
  std::deque<NodeId> frontier{target_};
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (const RelId r : view.node(v).in_rels) {
      if (!traversable(r, overlay)) continue;
      const NodeId u = view.rel(r).source;
      if (reaches[u] || view.node(u).deleted || overlay.node_blocked(u)) {
        continue;
      }
      reaches[u] = 1;
      frontier.push_back(u);
    }
  }
  std::size_t alive = 0;
  for (const NodeId u : entry_users_) {
    if (!view.node(u).deleted && !overlay.node_blocked(u) && reaches[u]) {
      ++alive;
    }
  }
  return alive;
}

std::vector<RelId> SnapshotWhatIf::shortest_attack_path(
    const WhatIfOverlay& overlay) const {
  const graphdb::SnapshotView& view = *snapshot_;
  if (view.node(target_).deleted || overlay.node_blocked(target_)) return {};
  std::vector<char> visited(view.node_capacity(), 0);
  std::vector<RelId> parent_rel(view.node_capacity(), kNoRel);
  std::vector<NodeId> parent_node(view.node_capacity(), kNoNode);
  std::deque<NodeId> frontier;
  for (const NodeId u : entry_users_) {
    if (view.node(u).deleted || overlay.node_blocked(u) || visited[u]) {
      continue;
    }
    visited[u] = 1;
    frontier.push_back(u);
  }
  bool found = false;
  while (!frontier.empty() && !found) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (const RelId r : view.node(v).out_rels) {
      if (!traversable(r, overlay)) continue;
      const NodeId w = view.rel(r).target;
      if (visited[w] || view.node(w).deleted || overlay.node_blocked(w)) {
        continue;
      }
      visited[w] = 1;
      parent_rel[w] = r;
      parent_node[w] = v;
      if (w == target_) {
        found = true;
        break;
      }
      frontier.push_back(w);
    }
  }
  if (!found) return {};
  std::vector<RelId> path;
  for (NodeId v = target_; parent_node[v] != kNoNode; v = parent_node[v]) {
    path.push_back(parent_rel[v]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::size_t> parallel_edge_survivors(
    const SnapshotWhatIf& whatif, const WhatIfOverlay& base,
    const std::vector<RelId>& candidates) {
  std::vector<std::size_t> alive(candidates.size(), 0);
  util::parallel_for(
      util::global_pool(), 0, candidates.size(), 1,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          WhatIfOverlay branch = base;  // fork the branch under test
          branch.block_edge(candidates[i]);
          alive[i] = whatif.survivors(branch);
        }
      });
  return alive;
}

std::vector<std::size_t> parallel_node_survivors(
    const SnapshotWhatIf& whatif, const WhatIfOverlay& base,
    const std::vector<NodeId>& candidates) {
  std::vector<std::size_t> alive(candidates.size(), 0);
  util::parallel_for(
      util::global_pool(), 0, candidates.size(), 1,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          WhatIfOverlay branch = base;
          branch.block_node(candidates[i]);
          alive[i] = whatif.survivors(branch);
        }
      });
  return alive;
}

}  // namespace adsynth::defense
