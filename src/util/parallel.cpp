#include "util/parallel.hpp"

#include <memory>

namespace adsynth::util {

namespace {

std::size_t resolve(std::size_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// True while this thread is executing chunks of some region.  A nested
/// run() (e.g. a parallel BFS invoked from inside a parallel candidate
/// evaluation) then executes its chunks inline, in ascending order — same
/// results by the ordered-reduction rule, and no deadlock on the pool.
thread_local bool tl_in_region = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t total = resolve(threads);
  workers_.reserve(total - 1);
  for (std::size_t slot = 1; slot < total; ++slot) {
    workers_.emplace_back([this, slot] { worker_main(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain(std::size_t slot, std::size_t chunks, const Job& fn) {
  tl_in_region = true;
  for (;;) {
    // adsynth-lint: allow(atomic-relaxed): chunk claiming only needs atomicity — each index is claimed once; the pool's mutex/cv handshake publishes the job and results
    const std::size_t chunk = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= chunks) break;
    fn(chunk, slot);
  }
  tl_in_region = false;
}

void ThreadPool::run(std::size_t chunks, const Job& fn) {
  if (chunks == 0) return;
  if (workers_.empty() || chunks == 1 || tl_in_region) {
    for (std::size_t c = 0; c < chunks; ++c) fn(c, 0);
    return;
  }
  {
    MutexLock lock(mutex_);
    job_ = &fn;
    chunks_ = chunks;
    // adsynth-lint: allow(atomic-relaxed): reset is published to workers by the mutex_/generation_ handshake below, not by this store
    cursor_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    ++generation_;
  }
  wake_.notify_all();
  drain(0, chunks, fn);  // the caller is participant 0
  {
    MutexLock lock(mutex_);
    while (active_workers_ != 0) done_.wait(mutex_);
    job_ = nullptr;
  }
}

void ThreadPool::worker_main(std::size_t slot) {
  std::uint64_t seen = 0;
  for (;;) {
    const Job* job = nullptr;
    std::size_t chunks = 0;
    {
      MutexLock lock(mutex_);
      while (!stop_ && generation_ == seen) wake_.wait(mutex_);
      if (stop_) return;
      seen = generation_;
      job = job_;
      chunks = chunks_;
    }
    drain(slot, chunks, *job);
    {
      MutexLock lock(mutex_);
      if (--active_workers_ == 0) done_.notify_one();
    }
  }
}

namespace {

std::unique_ptr<ThreadPool> g_pool;
std::size_t g_threads = 0;  // what g_pool was built with (resolved)

}  // namespace

ThreadPool& global_pool() {
  if (!g_pool) {
    g_threads = resolve(0);
    g_pool = std::make_unique<ThreadPool>(g_threads);
  }
  return *g_pool;
}

void set_global_threads(std::size_t n) {
  const std::size_t want = resolve(n);
  if (g_pool && g_threads == want) return;
  g_pool.reset();  // join old workers before spawning replacements
  g_threads = want;
  g_pool = std::make_unique<ThreadPool>(want);
}

std::size_t global_threads() { return global_pool().size(); }

}  // namespace adsynth::util
