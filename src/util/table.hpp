// Fixed-width text table rendering for bench output, matching the row/column
// presentation of the paper's tables and figure data series.
#pragma once

#include <string>
#include <vector>

namespace adsynth::util {

/// Accumulates rows of string cells and renders them with aligned columns.
/// Missing trailing cells render as empty; the paper's "did not finish"
/// entries are plain "-" cells supplied by the caller.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with a header underline and two-space column gaps.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `decimals` fractional digits.
std::string fixed(double v, int decimals);

/// Formats a double in scientific shorthand like "1.2e-04".
std::string sci(double v);

/// Formats a fraction as a percentage string like "0.02%".
std::string percent(double fraction, int decimals = 2);

}  // namespace adsynth::util
