#include "util/csr.hpp"

#include <atomic>
#include <deque>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace adsynth::util {

namespace {

/// Below this node count a multi-source BFS runs serially: the frontier
/// bookkeeping of the level-synchronous expansion costs more than it saves
/// on small graphs.
constexpr std::size_t kParallelBfsNodes = 4'096;

/// Level-synchronous parallel expansion.  Each level splits the frontier
/// into chunks; workers claim newly reached nodes by CAS-ing their distance
/// from kBfsUnreachable to the level, so every node joins exactly one
/// chunk's local next-frontier.  Which chunk wins a contended node is racy,
/// but the distance it receives is not (all writers offer the same level) —
/// the returned distances are deterministic at every thread count.
std::vector<std::int32_t> bfs_distances_parallel(
    const Csr& csr, std::vector<std::int32_t> dist,
    std::vector<std::uint32_t> frontier, ThreadPool& pool) {
  std::int32_t level = 0;
  while (!frontier.empty()) {
    const std::int32_t next_level = level + 1;
    const std::size_t grain = std::max<std::size_t>(
        128, frontier.size() / (pool.size() * 4));
    frontier = parallel_map_reduce(
        pool, 0, frontier.size(), grain, std::vector<std::uint32_t>{},
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          ADSYNTH_SPAN("util.bfs.chunk");
          std::vector<std::uint32_t> next;
          for (std::size_t f = lo; f < hi; ++f) {
            const std::uint32_t v = frontier[f];
            for (std::uint32_t i = csr.offsets[v]; i < csr.offsets[v + 1];
                 ++i) {
              const std::uint32_t w = csr.targets[i];
              std::atomic_ref<std::int32_t> slot(dist[w]);
              // adsynth-lint: allow(atomic-relaxed): racy pre-check — the CAS below is the authoritative claim; a stale read only costs a retry
              if (slot.load(std::memory_order_relaxed) != kBfsUnreachable) {
                continue;
              }
              std::int32_t expected = kBfsUnreachable;
              // adsynth-lint: allow(atomic-relaxed): frontier CAS writes one immutable level value per node; the ordered reduction's join publishes it
              if (slot.compare_exchange_strong(expected, next_level,
                                               std::memory_order_relaxed)) {
                next.push_back(w);
              }
            }
          }
          return next;
        },
        [](std::vector<std::uint32_t>& acc, std::vector<std::uint32_t>&& part) {
          acc.insert(acc.end(), part.begin(), part.end());
        });
    level = next_level;
  }
  return dist;
}

}  // namespace

std::vector<std::int32_t> bfs_distances(
    const Csr& csr, const std::vector<std::uint32_t>& sources) {
  ADSYNTH_SPAN("util.bfs");
  ADSYNTH_METRIC_COUNT("util.bfs.runs", 1);
  std::vector<std::int32_t> dist(csr.node_count(), kBfsUnreachable);
  std::deque<std::uint32_t> frontier;
  for (const std::uint32_t s : sources) {
    if (s >= csr.node_count()) {
      throw std::out_of_range("bfs_distances: source out of range");
    }
    if (dist[s] == kBfsUnreachable) {
      dist[s] = 0;
      frontier.push_back(s);
    }
  }
  ThreadPool& pool = global_pool();
  if (pool.size() > 1 && csr.node_count() >= kParallelBfsNodes) {
    return bfs_distances_parallel(
        csr, std::move(dist),
        std::vector<std::uint32_t>(frontier.begin(), frontier.end()), pool);
  }
  while (!frontier.empty()) {
    const std::uint32_t v = frontier.front();
    frontier.pop_front();
    const std::int32_t dv = dist[v];
    for (std::uint32_t i = csr.offsets[v]; i < csr.offsets[v + 1]; ++i) {
      const std::uint32_t w = csr.targets[i];
      if (dist[w] == kBfsUnreachable) {
        dist[w] = dv + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

void bfs_distances_bounded(const Csr& csr, std::uint32_t source,
                           std::int32_t max_depth,
                           std::vector<std::int32_t>& scratch,
                           std::vector<std::uint32_t>& reached) {
  if (source >= csr.node_count()) {
    throw std::out_of_range("bfs_distances_bounded: source out of range");
  }
  if (scratch.size() != csr.node_count()) {
    scratch.assign(csr.node_count(), kBfsUnreachable);
  } else {
    // Undo only the entries the previous call touched: expanding S sources
    // costs O(sum of reached sets), not O(S * nodes).
    for (const std::uint32_t v : reached) scratch[v] = kBfsUnreachable;
  }
  reached.clear();
  scratch[source] = 0;
  reached.push_back(source);
  // `reached` doubles as the BFS queue: nodes are appended in discovery
  // order, which is exactly level order.
  for (std::size_t head = 0; head < reached.size(); ++head) {
    const std::uint32_t v = reached[head];
    const std::int32_t dv = scratch[v];
    if (dv >= max_depth) break;  // level order: everything after is deeper
    for (std::uint32_t i = csr.offsets[v]; i < csr.offsets[v + 1]; ++i) {
      const std::uint32_t w = csr.targets[i];
      if (scratch[w] == kBfsUnreachable) {
        scratch[w] = dv + 1;
        reached.push_back(w);
      }
    }
  }
}

}  // namespace adsynth::util
