// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace adsynth::util {

/// Uppercases ASCII letters (AD principal names are conventionally upper).
std::string to_upper(std::string_view s);

/// Lowercases ASCII letters.
std::string to_lower(std::string_view s);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True when `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Formats a count with thousands separators, e.g. 1000000 -> "1,000,000".
std::string with_commas(std::uint64_t n);

}  // namespace adsynth::util
