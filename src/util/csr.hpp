// Generic compressed-sparse-row adjacency plus the BFS kernels that run on
// it.  This is the layer shared by the analytics/defense algorithms (which
// view an AttackGraph through it, see analytics/graph_view.hpp) and the
// graphdb query executor (which compiles variable-length relationship
// patterns onto it); keeping the kernel in util breaks the dependency
// cycle graphdb -> analytics -> adcore -> graphdb that placing it in either
// consumer would create.
#pragma once

#include <cstdint>
#include <vector>

namespace adsynth::util {

inline constexpr std::int32_t kBfsUnreachable = -1;

/// CSR adjacency: for node v, neighbours are targets[offsets[v]..offsets[v+1]).
/// edge_ids keeps the position of each adjacency entry in the producer's
/// edge list, so masks and cut-sets can be reported in the producer's terms.
struct Csr {
  std::vector<std::uint32_t> offsets;  // size n+1
  std::vector<std::uint32_t> targets;
  std::vector<std::uint32_t> edge_ids;

  std::size_t node_count() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::size_t arc_count() const { return targets.size(); }
};

/// Multi-source BFS; returns hop distances (kBfsUnreachable where no path
/// exists).  Large graphs expand the frontier level-synchronously across
/// global_pool(); distances are deterministic at every thread count (all
/// claimants of a node offer the same level).  Throws std::out_of_range on
/// a source outside the CSR.
std::vector<std::int32_t> bfs_distances(
    const Csr& csr, const std::vector<std::uint32_t>& sources);

/// Depth-bounded single-source BFS, the expansion kernel behind
/// variable-length relationship patterns (`-[:T*min..max]->`): stops once
/// the frontier passes `max_depth` hops.  Serial — callers fan sources out
/// across the pool themselves when they hold many.  `scratch` is reused
/// across calls (resized/reset internally) so a caller expanding thousands
/// of sources does not reallocate the distance array per source.
void bfs_distances_bounded(const Csr& csr, std::uint32_t source,
                           std::int32_t max_depth,
                           std::vector<std::int32_t>& scratch,
                           std::vector<std::uint32_t>& reached);

}  // namespace adsynth::util
