#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace adsynth::util {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("JsonValue: not a ") + want);
}

/// Renders a finite double so it round-trips as a double: %.17g alone
/// prints 2.0 as "2", which the parser reads back as an int (a silent type
/// change across export -> import).  Append ".0" when the rendering lacks
/// any of '.', 'e', 'E'.
void append_double(double d, std::string& out) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  std::string_view text(buf);
  out += text;
  if (text.find_first_of(".eE") == std::string_view::npos) out += ".0";
}

}  // namespace

bool JsonValue::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  type_error("bool");
}

std::int64_t JsonValue::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  type_error("int");
}

double JsonValue::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  type_error("number");
}

const std::string& JsonValue::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  type_error("string");
}

const JsonArray& JsonValue::as_array() const {
  if (const auto* a = std::get_if<JsonArray>(&value_)) return *a;
  type_error("array");
}

const JsonObject& JsonValue::as_object() const {
  if (const auto* o = std::get_if<JsonObject>(&value_)) return *o;
  type_error("object");
}

JsonArray& JsonValue::as_array() {
  if (auto* a = std::get_if<JsonArray>(&value_)) return *a;
  type_error("array");
}

JsonObject& JsonValue::as_object() {
  if (auto* o = std::get_if<JsonObject>(&value_)) return *o;
  type_error("object");
}

const JsonValue& JsonValue::at(const std::string& key) const {
  return as_object().at(key);
}

bool JsonValue::contains(const std::string& key) const {
  const auto* o = std::get_if<JsonObject>(&value_);
  return o != nullptr && o->count(key) > 0;
}

void json_escape(std::string_view s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void JsonValue::dump_to(std::string& out) const {
  struct Visitor {
    std::string& out;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool b) const { out += b ? "true" : "false"; }
    void operator()(std::int64_t i) const { out += std::to_string(i); }
    void operator()(double d) const {
      if (!std::isfinite(d)) {
        out += "null";  // JSON has no Inf/NaN; match common serializers
        return;
      }
      append_double(d, out);
    }
    void operator()(const std::string& s) const { json_escape(s, out); }
    void operator()(const JsonArray& a) const {
      out.push_back('[');
      bool first = true;
      for (const auto& v : a) {
        if (!first) out.push_back(',');
        first = false;
        v.dump_to(out);
      }
      out.push_back(']');
    }
    void operator()(const JsonObject& o) const {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : o) {
        if (!first) out.push_back(',');
        first = false;
        json_escape(k, out);
        out.push_back(':');
        v.dump_to(out);
      }
      out.push_back('}');
    }
  };
  std::visit(Visitor{out}, value_);
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw std::runtime_error("JSON parse error: unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue(std::move(obj));
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad hex digit in \\u escape");
              }
            }
            // Encode the code point (BMP only; surrogate pairs are combined).
            unsigned cp = code;
            if (code >= 0xd800 && code <= 0xdbff) {
              if (pos_ + 6 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                fail("unpaired surrogate");
              }
              pos_ += 2;
              unsigned low = 0;
              for (int i = 0; i < 4; ++i) {
                const char h = text_[pos_++];
                low <<= 4;
                if (h >= '0' && h <= '9') {
                  low |= static_cast<unsigned>(h - '0');
                } else if (h >= 'a' && h <= 'f') {
                  low |= static_cast<unsigned>(h - 'a' + 10);
                } else if (h >= 'A' && h <= 'F') {
                  low |= static_cast<unsigned>(h - 'A' + 10);
                } else {
                  fail("bad hex digit in low surrogate");
                }
              }
              if (low < 0xdc00 || low > 0xdfff) fail("bad low surrogate");
              cp = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
            }
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            } else if (cp < 0x10000) {
              out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            }
            break;
          }
          default: fail("bad escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    if (!is_double) {
      std::int64_t i = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc{} && p == tok.data() + tok.size()) {
        return JsonValue(i);
      }
      // Overflowing integers fall through to double.
    }
    double d = 0.0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc{} || p != tok.data() + tok.size()) fail("bad number");
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == Frame::kObject && !have_key_) {
    throw std::logic_error("JsonWriter: value in object without key");
  }
  if (need_comma_) out_ << ',';
  have_key_ = false;
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Frame::kObject);
  need_comma_ = false;
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject) {
    throw std::logic_error("JsonWriter: end_object outside object");
  }
  if (have_key_) throw std::logic_error("JsonWriter: dangling key");
  stack_.pop_back();
  out_ << '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Frame::kArray);
  need_comma_ = false;
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: end_array outside array");
  }
  stack_.pop_back();
  out_ << ']';
  need_comma_ = true;
}

void JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Frame::kObject) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (have_key_) throw std::logic_error("JsonWriter: consecutive keys");
  if (need_comma_) out_ << ',';
  std::string buf;
  json_escape(name, buf);
  out_ << buf << ':';
  need_comma_ = false;
  have_key_ = true;
}

void JsonWriter::value(std::nullptr_t) {
  before_value();
  out_ << "null";
  need_comma_ = true;
}

void JsonWriter::value(bool b) {
  before_value();
  out_ << (b ? "true" : "false");
  need_comma_ = true;
}

void JsonWriter::value(std::int64_t i) {
  before_value();
  out_ << i;
  need_comma_ = true;
}

void JsonWriter::value(double d) {
  before_value();
  if (!std::isfinite(d)) {
    out_ << "null";
  } else {
    std::string buf;
    append_double(d, buf);
    out_ << buf;
  }
  need_comma_ = true;
}

void JsonWriter::value(std::string_view s) {
  before_value();
  std::string buf;
  buf.reserve(s.size() + 2);
  json_escape(s, buf);
  out_ << buf;
  need_comma_ = true;
}

void JsonWriter::value(const JsonValue& v) {
  before_value();
  out_ << v.dump();
  need_comma_ = true;
}

}  // namespace adsynth::util
