// Tiny command-line option parser shared by the bench harness and examples.
//
// Supports "--name value", "--name=value", and boolean "--flag" forms plus
// positional arguments.  Unknown options throw, so bench invocations fail
// loudly instead of silently running the wrong experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace adsynth::util {

class CliArgs {
 public:
  /// Declares a boolean flag (present/absent, no value).
  void add_flag(const std::string& name, const std::string& help);

  /// Declares a valued option with a default rendered in --help.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parses argv.  Returns false (after printing usage) when --help/-h is
  /// given; throws std::invalid_argument on unknown or malformed options.
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::string str(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  double real(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the usage text (also printed on --help).
  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    std::string default_value;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace adsynth::util
