#include "util/binio.hpp"

#include <array>
#include <cstring>

namespace adsynth::util {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

// --------------------------------------------------------------------------
// ByteWriter / ByteReader
// --------------------------------------------------------------------------

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(std::string_view s) {
  if (s.size() > 0xFFFFFFFFULL) {
    throw BinIoError("binio: string exceeds u32 length prefix");
  }
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void ByteWriter::truncate(std::size_t size) {
  if (size > buf_.size()) {
    throw BinIoError("binio: truncate beyond buffer end");
  }
  buf_.resize(size);
}

void ByteReader::need(std::size_t count) const {
  if (bytes_.size() - pos_ < count) {
    throw BinIoError("binio: truncated input (need " + std::to_string(count) +
                     " bytes at offset " + std::to_string(pos_) + " of " +
                     std::to_string(bytes_.size()) + ")");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_++]))
         << shift;
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_++]))
         << shift;
  }
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  const std::uint32_t size = u32();
  need(size);
  std::string out(bytes_.substr(pos_, size));
  pos_ += size;
  return out;
}

std::string_view ByteReader::view(std::size_t size) {
  need(size);
  const std::string_view out = bytes_.substr(pos_, size);
  pos_ += size;
  return out;
}

// --------------------------------------------------------------------------
// CheckedFile
// --------------------------------------------------------------------------

namespace {

std::FILE* open_or_throw(const std::string& path, const char* mode) {
  std::FILE* file = std::fopen(path.c_str(), mode);
  if (file == nullptr) {
    throw BinIoError("binio: cannot open '" + path + "' (mode " + mode + ")");
  }
  return file;
}

}  // namespace

CheckedFile CheckedFile::open_read(const std::string& path) {
  return CheckedFile(open_or_throw(path, "rb"), path);
}

CheckedFile CheckedFile::open_write(const std::string& path) {
  return CheckedFile(open_or_throw(path, "wb"), path);
}

CheckedFile CheckedFile::open_append(const std::string& path) {
  // "r+b" + explicit seek instead of "ab": append mode pins every write to
  // the end, but the WAL needs to position at the last *valid* record
  // boundary (torn tails are overwritten, not appended after).
  CheckedFile file(open_or_throw(path, "r+b"), path);
  file.seek(file.size());
  return file;
}

CheckedFile::CheckedFile(CheckedFile&& other) noexcept
    : file_(other.file_), path_(std::move(other.path_)) {
  other.file_ = nullptr;
}

CheckedFile& CheckedFile::operator=(CheckedFile&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) {
      if (std::fclose(file_) != 0) {
        // Destructor-adjacent path: nothing useful to do with the failure.
      }
    }
    file_ = other.file_;
    path_ = std::move(other.path_);
    other.file_ = nullptr;
  }
  return *this;
}

CheckedFile::~CheckedFile() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0) {
      // Swallowed: destructors must not throw.  Callers that care about
      // close failures (the WAL flush path) call close() explicitly.
    }
  }
}

void CheckedFile::write(const void* data, std::size_t size) {
  if (size == 0) return;
  if (std::fwrite(data, 1, size, file_) != size) {
    throw BinIoError("binio: short write to '" + path_ + "'");
  }
}

void CheckedFile::read(void* data, std::size_t size) {
  if (size == 0) return;
  if (std::fread(data, 1, size, file_) != size) {
    throw BinIoError("binio: short read from '" + path_ + "'");
  }
}

std::size_t CheckedFile::read_up_to(void* data, std::size_t size) {
  if (size == 0) return 0;
  const std::size_t got = std::fread(data, 1, size, file_);
  if (got != size && std::ferror(file_) != 0) {
    throw BinIoError("binio: read error on '" + path_ + "'");
  }
  return got;
}

void CheckedFile::seek(std::uint64_t offset) {
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    throw BinIoError("binio: seek failed on '" + path_ + "'");
  }
}

std::uint64_t CheckedFile::tell() const {
  const long pos = std::ftell(file_);
  if (pos < 0) {
    throw BinIoError("binio: tell failed on '" + path_ + "'");
  }
  return static_cast<std::uint64_t>(pos);
}

std::uint64_t CheckedFile::size() const {
  const std::uint64_t here = tell();
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    throw BinIoError("binio: seek-to-end failed on '" + path_ + "'");
  }
  const std::uint64_t end = tell();
  if (std::fseek(file_, static_cast<long>(here), SEEK_SET) != 0) {
    throw BinIoError("binio: seek-restore failed on '" + path_ + "'");
  }
  return end;
}

void CheckedFile::flush() {
  if (std::fflush(file_) != 0) {
    throw BinIoError("binio: flush failed on '" + path_ + "'");
  }
}

void CheckedFile::close() {
  if (file_ == nullptr) return;
  std::FILE* file = file_;
  file_ = nullptr;
  if (std::fclose(file) != 0) {
    throw BinIoError("binio: close failed on '" + path_ + "'");
  }
}

}  // namespace adsynth::util
