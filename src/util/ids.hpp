// Globally unique identifiers (GUIDs) and Windows security identifiers
// (SIDs) as used by Active Directory objects.
//
// The paper notes that object uniqueness within metagraph sets is determined
// by a GUID; BloodHound additionally keys principals by SID.  Both are
// generated deterministically from the run's RNG so that a seed fully
// reproduces a graph, including its identifiers.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace adsynth::util {

/// 128-bit GUID, formatted in the canonical 8-4-4-4-12 hexadecimal layout.
struct Guid {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  auto operator<=>(const Guid&) const = default;

  /// Canonical lowercase "xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx" form.
  std::string to_string() const;

  /// Draws a version-4-shaped GUID from the generator.
  static Guid random(Rng& rng);

  /// Parses the canonical form; throws std::invalid_argument on malformed
  /// input (wrong length, misplaced dashes, non-hex digits).
  static Guid parse(const std::string& text);
};

/// A Windows SID restricted to the shape AD uses for domain principals:
/// "S-1-5-21-<d1>-<d2>-<d3>-<rid>".  The three domain subauthorities
/// identify the domain; the relative identifier (RID) identifies the
/// principal within it.  Well-known RIDs: 512 = Domain Admins,
/// 513 = Domain Users, 516 = Domain Controllers, 519 = Enterprise Admins.
struct Sid {
  std::uint32_t d1 = 0;
  std::uint32_t d2 = 0;
  std::uint32_t d3 = 0;
  std::uint32_t rid = 0;

  auto operator<=>(const Sid&) const = default;

  std::string to_string() const;

  /// The domain identity part "S-1-5-21-<d1>-<d2>-<d3>" without a RID,
  /// used as the domain object's own SID in BloodHound exports.
  std::string domain_part() const;

  /// Parses "S-1-5-21-a-b-c-rid"; throws std::invalid_argument otherwise.
  static Sid parse(const std::string& text);
};

/// Domain-wide SID allocator: fixes the three domain subauthorities from the
/// RNG once, then hands out RIDs.  Well-known RIDs (< 1000) are reserved and
/// requested explicitly; generated principals start at RID 1000 like real AD.
class SidFactory {
 public:
  explicit SidFactory(Rng& rng);

  /// SID with an explicit well-known RID (e.g. 512 for Domain Admins).
  Sid well_known(std::uint32_t rid) const;

  /// Next sequential principal SID (RID 1000, 1001, ...).
  Sid next();

  /// Count of sequential SIDs handed out so far.
  std::uint32_t issued() const { return next_rid_ - kFirstRid; }

 private:
  static constexpr std::uint32_t kFirstRid = 1000;
  std::uint32_t d1_;
  std::uint32_t d2_;
  std::uint32_t d3_;
  std::uint32_t next_rid_ = kFirstRid;
};

}  // namespace adsynth::util
