#include "util/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>

#include "util/annotations.hpp"
#include "util/timer.hpp"

namespace adsynth::util {

// util::monotonic_ns is the only clock trace ever reads; pin down that it
// really is monotonic so span durations cannot go backwards.
// adsynth-lint: allow(wall-clock): compile-time assert on the clock type only; the runtime read goes through util::monotonic_ns()
static_assert(std::chrono::steady_clock::is_steady,
              "trace spans require a monotonic sanctioned clock");

#if ADSYNTH_TRACE_ENABLED

namespace {

/// Per-span aggregate local to one thread buffer (merged at trace_end).
struct LocalAgg {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  Histogram hist;  // span durations in ns; relaxed atomics, single writer
};

/// One thread's capture state.  Owned by the registry (so merging outlives
/// worker threads); written only by its owning thread while armed.
struct ThreadBuffer {
  std::vector<TraceEvent> events;
  // Keyed by the literal pointer (fast); re-keyed by string at merge time
  // so the report order never depends on pointer values.
  std::map<const void*, LocalAgg> aggs;
  std::uint64_t top_level_ns = 0;
  std::uint64_t dropped = 0;
  std::uint32_t depth = 0;
  std::uint64_t epoch = 0;  // capture generation this state belongs to

  void reset(std::uint64_t new_epoch) {
    events.clear();
    aggs.clear();
    top_level_ns = 0;
    dropped = 0;
    depth = 0;
    epoch = new_epoch;
  }
};

struct TraceRegistry {
  // Capability-annotated (util/annotations.hpp) so the ADSYNTH_ANALYZE
  // lane audits the registration/merge discipline.  armed/epoch are the
  // deliberately lock-free members (the arm protocol), and max_events is
  // written only inside trace_begin while disarmed, then read lock-free
  // by Span::end — both stay unannotated per the repo convention that an
  // annotation asserts "always under the lock".
  Mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers  // registration order
      ADSYNTH_GUARDED_BY(mutex);
  std::atomic<bool> armed{false};
  std::atomic<std::uint64_t> epoch{0};
  std::uint64_t start_ns ADSYNTH_GUARDED_BY(mutex) = 0;  // capture start
  std::size_t max_events = 0;
  ThreadBuffer* coordinator  // the thread that called trace_begin
      ADSYNTH_GUARDED_BY(mutex) = nullptr;
};

TraceRegistry& registry() {
  static TraceRegistry* r = new TraceRegistry();  // never destroyed: worker
  return *r;  // threads may outlive static destructors in exotic teardowns
}

thread_local ThreadBuffer* tls_buffer = nullptr;

ThreadBuffer* this_thread_buffer() {
  TraceRegistry& reg = registry();
  if (tls_buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    tls_buffer = owned.get();
    MutexLock lock(reg.mutex);
    tls_buffer->epoch = reg.epoch.load(std::memory_order_relaxed);
    reg.buffers.push_back(std::move(owned));
  }
  // A buffer created before the current capture still holds the previous
  // capture's events; lazily reset it on first use in the new epoch.
  const std::uint64_t epoch = reg.epoch.load(std::memory_order_relaxed);
  if (tls_buffer->epoch != epoch) tls_buffer->reset(epoch);
  return tls_buffer;
}

}  // namespace

void Span::begin(const char* name) {
  if (!registry().armed.load(std::memory_order_relaxed)) return;
  ThreadBuffer* buf = this_thread_buffer();
  name_ = name;
  depth_ = buf->depth++;
  armed_ = true;
  start_ns_ = monotonic_ns();  // last: exclude setup from the measurement
}

void Span::end() {
  const std::uint64_t end_ns = monotonic_ns();
  TraceRegistry& reg = registry();
  ThreadBuffer* buf = tls_buffer;  // begin() guaranteed it exists
  // A capture boundary crossed mid-span (contract violation or a span held
  // across trace_end by the coordinator itself): drop the measurement
  // rather than attribute it to the wrong capture.
  if (buf == nullptr ||
      buf->epoch != reg.epoch.load(std::memory_order_relaxed)) {
    return;
  }
  if (buf->depth > 0) --buf->depth;
  const std::uint64_t dur = end_ns - start_ns_;
  if (buf->events.size() < reg.max_events) {
    buf->events.push_back(TraceEvent{name_, 0, depth_, start_ns_, dur});
  } else {
    ++buf->dropped;
  }
  LocalAgg& agg = buf->aggs[static_cast<const void*>(name_)];
  ++agg.count;
  agg.total_ns += dur;
  agg.hist.record(dur);
  if (depth_ == 0) buf->top_level_ns += dur;
}

bool trace_active() {
  return registry().armed.load(std::memory_order_relaxed);
}

void trace_begin(std::size_t max_events_per_thread) {
  TraceRegistry& reg = registry();
  MutexLock lock(reg.mutex);
  // Register the calling thread inline (this_thread_buffer would re-take
  // the mutex): its depth-0 spans define the capture's accounted wall time.
  if (tls_buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    tls_buffer = owned.get();
    reg.buffers.push_back(std::move(owned));
  }
  reg.coordinator = tls_buffer;
  const std::uint64_t epoch =
      reg.epoch.load(std::memory_order_relaxed) + 1;
  for (auto& buf : reg.buffers) buf->reset(epoch);
  reg.max_events = max_events_per_thread;
  reg.epoch.store(epoch, std::memory_order_relaxed);
  reg.start_ns = monotonic_ns();
  reg.armed.store(true, std::memory_order_release);
}

TraceReport trace_end() {
  TraceRegistry& reg = registry();
  TraceReport report;
  MutexLock lock(reg.mutex);
  if (!reg.armed.load(std::memory_order_relaxed)) return report;
  reg.armed.store(false, std::memory_order_release);

  const std::uint64_t epoch = reg.epoch.load(std::memory_order_relaxed);
  // Deterministic merge: integer aggregates keyed by span *name* (string
  // order), independent of thread registration order and event timing.
  struct MergedAgg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    Histogram hist;
  };
  std::map<std::string, MergedAgg> merged;
  std::uint32_t tid = 0;
  for (auto& buf : reg.buffers) {
    if (buf->epoch != epoch) continue;  // never touched this capture
    for (TraceEvent event : buf->events) {
      event.tid = tid;
      event.start_ns -= std::min(event.start_ns, reg.start_ns);
      report.events_.push_back(event);
    }
    report.dropped_events_ += buf->dropped;
    // Only the coordinator's depth-0 spans count as accounted wall time:
    // pool workers' outermost spans run concurrently with (and inside) a
    // coordinator-side span, so summing them would double-count.
    if (buf.get() == reg.coordinator) {
      report.top_level_total_ns_ += buf->top_level_ns;
    }
    for (const auto& [name_ptr, agg] : buf->aggs) {
      MergedAgg& m = merged[static_cast<const char*>(name_ptr)];
      m.count += agg.count;
      m.total_ns += agg.total_ns;
      m.hist.merge(agg.hist);
    }
    ++tid;
  }
  std::sort(report.events_.begin(), report.events_.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.depth < b.depth;
            });
  report.spans_.reserve(merged.size());
  for (const auto& [name, agg] : merged) {
    SpanStats stats;
    stats.name = name;
    stats.count = agg.count;
    stats.total_ns = agg.total_ns;
    stats.p50_ns = agg.hist.quantile(0.5);
    stats.p95_ns = agg.hist.quantile(0.95);
    report.spans_.push_back(std::move(stats));
  }
  return report;
}

#else  // !ADSYNTH_TRACE_ENABLED — the layer compiles to nothing.

void Span::begin(const char*) {}
void Span::end() {}
bool trace_active() { return false; }
void trace_begin(std::size_t) {}
TraceReport trace_end() { return TraceReport{}; }

#endif

void TraceReport::write_chrome_trace(std::ostream& out) const {
  JsonWriter writer(out);
  writer.begin_object();
  writer.member("displayTimeUnit", "ms");
  writer.key("traceEvents");
  writer.begin_array();
  for (const TraceEvent& event : events_) {
    writer.begin_object();
    writer.member("name", event.name);
    writer.member("cat", "adsynth");
    writer.member("ph", "X");
    writer.member("pid", 0);
    writer.member("tid", static_cast<std::int64_t>(event.tid));
    writer.member("ts", static_cast<double>(event.start_ns) / 1e3);
    writer.member("dur", static_cast<double>(event.dur_ns) / 1e3);
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
}

JsonValue TraceReport::phases_json() const {
  JsonArray phases;
  for (const SpanStats& span : spans_) {
    JsonObject record;
    record["name"] = span.name;
    record["count"] = static_cast<std::int64_t>(span.count);
    record["total_ms"] = static_cast<double>(span.total_ns) / 1e6;
    record["p50_ns"] = static_cast<std::int64_t>(span.p50_ns);
    record["p95_ns"] = static_cast<std::int64_t>(span.p95_ns);
    phases.emplace_back(std::move(record));
  }
  return JsonValue(std::move(phases));
}

ScopedCapture::ScopedCapture(std::string path) : path_(std::move(path)) {
  if (!path_.empty()) trace_begin();
}

ScopedCapture::~ScopedCapture() {
  if (path_.empty()) return;
  const TraceReport report = trace_end();
  std::ofstream out(path_);
  report.write_chrome_trace(out);
  std::fprintf(stderr, "wrote Chrome trace to %s (%zu events, %zu spans)\n",
               path_.c_str(), report.events().size(), report.spans().size());
}

}  // namespace adsynth::util
