#include "util/ids.hpp"

#include <array>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace adsynth::util {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string Guid::to_string() const {
  char buf[37];
  std::snprintf(buf, sizeof buf, "%08x-%04x-%04x-%04x-%012llx",
                static_cast<unsigned>(hi >> 32),
                static_cast<unsigned>((hi >> 16) & 0xffff),
                static_cast<unsigned>(hi & 0xffff),
                static_cast<unsigned>(lo >> 48),
                static_cast<unsigned long long>(lo & 0xffffffffffffULL));
  return std::string(buf, 36);
}

Guid Guid::random(Rng& rng) {
  Guid g{rng.next(), rng.next()};
  // Stamp the version (4) and variant (10xx) bits like RFC 4122 random GUIDs.
  g.hi = (g.hi & ~0xf000ULL) | 0x4000ULL;
  g.lo = (g.lo & ~(0xc000ULL << 48)) | (0x8000ULL << 48);
  return g;
}

Guid Guid::parse(const std::string& text) {
  if (text.size() != 36 || text[8] != '-' || text[13] != '-' ||
      text[18] != '-' || text[23] != '-') {
    throw std::invalid_argument("Guid::parse: malformed GUID: " + text);
  }
  std::array<int, 32> nibbles{};
  std::size_t n = 0;
  for (std::size_t i = 0; i < 36; ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) continue;
    const int d = hex_digit(text[i]);
    if (d < 0) throw std::invalid_argument("Guid::parse: non-hex digit");
    nibbles[n++] = d;
  }
  Guid g;
  for (std::size_t i = 0; i < 16; ++i) {
    g.hi = (g.hi << 4) | static_cast<std::uint64_t>(nibbles[i]);
  }
  for (std::size_t i = 16; i < 32; ++i) {
    g.lo = (g.lo << 4) | static_cast<std::uint64_t>(nibbles[i]);
  }
  return g;
}

std::string Sid::to_string() const {
  return domain_part() + "-" + std::to_string(rid);
}

std::string Sid::domain_part() const {
  return "S-1-5-21-" + std::to_string(d1) + "-" + std::to_string(d2) + "-" +
         std::to_string(d3);
}

Sid Sid::parse(const std::string& text) {
  const std::string prefix = "S-1-5-21-";
  if (text.rfind(prefix, 0) != 0) {
    throw std::invalid_argument("Sid::parse: expected S-1-5-21 prefix: " +
                                text);
  }
  std::array<std::uint32_t, 4> parts{};
  const char* p = text.data() + prefix.size();
  const char* end = text.data() + text.size();
  for (std::size_t i = 0; i < 4; ++i) {
    auto [next, ec] = std::from_chars(p, end, parts[i]);
    if (ec != std::errc{}) {
      throw std::invalid_argument("Sid::parse: bad subauthority: " + text);
    }
    p = next;
    if (i < 3) {
      if (p == end || *p != '-') {
        throw std::invalid_argument("Sid::parse: expected 4 subauthorities: " +
                                    text);
      }
      ++p;
    }
  }
  if (p != end) throw std::invalid_argument("Sid::parse: trailing data");
  return Sid{parts[0], parts[1], parts[2], parts[3]};
}

SidFactory::SidFactory(Rng& rng)
    : d1_(static_cast<std::uint32_t>(rng.uniform(1, 0xffffffffULL))),
      d2_(static_cast<std::uint32_t>(rng.uniform(1, 0xffffffffULL))),
      d3_(static_cast<std::uint32_t>(rng.uniform(1, 0xffffffffULL))) {}

Sid SidFactory::well_known(std::uint32_t rid) const {
  return Sid{d1_, d2_, d3_, rid};
}

Sid SidFactory::next() { return Sid{d1_, d2_, d3_, next_rid_++}; }

}  // namespace adsynth::util
