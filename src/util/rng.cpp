#include "util/rng.hpp"

#include <algorithm>
#include <unordered_set>

namespace adsynth::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t state = value;
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  const std::uint64_t span = hi - lo;
  if (span == std::numeric_limits<std::uint64_t>::max()) return next();
  const std::uint64_t n = span + 1;
  // Lemire's method: multiply-shift with rejection of the biased region.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n must be positive");
  return static_cast<std::size_t>(uniform(0, n - 1));
}

double Rng::real() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real() < p;
}

Rng Rng::fork() { return Rng(mix64(next())); }

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) k = n;
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // Floyd's algorithm when the sample is sparse: expected O(k) with a set.
  if (k < n / 16) {
    std::unordered_set<std::size_t> chosen;
    chosen.reserve(k * 2);
    for (std::size_t j = n - k; j < n; ++j) {
      const std::size_t t = index(j + 1);
      if (chosen.insert(t).second) {
        out.push_back(t);
      } else {
        chosen.insert(j);
        out.push_back(j);
      }
    }
    return out;
  }
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
    out.push_back(idx[i]);
  }
  return out;
}

}  // namespace adsynth::util
