#include "util/rng.hpp"

#include <algorithm>

namespace adsynth::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// Smallest power of two >= n (and >= 8, so tiny tables still probe well).
std::size_t table_capacity(std::size_t n) noexcept {
  std::size_t cap = 8;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t state = value;
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  const std::uint64_t span = hi - lo;
  if (span == std::numeric_limits<std::uint64_t>::max()) return next();
  const std::uint64_t n = span + 1;
  // Lemire's method: multiply-shift with rejection of the biased region.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n must be positive");
  return static_cast<std::size_t>(uniform(0, n - 1));
}

double Rng::real() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real() < p;
}

Rng Rng::fork() { return Rng(mix64(next())); }

bool SampleScratch::insert(std::size_t key) noexcept {
  std::size_t slot = static_cast<std::size_t>(
                         mix64(static_cast<std::uint64_t>(key))) &
                     mask_;
  for (;;) {
    if (stamps_[slot] != epoch_) {  // free (stale from an earlier epoch)
      stamps_[slot] = epoch_;
      slots_[slot] = key;
      return true;
    }
    if (slots_[slot] == key) return false;
    slot = (slot + 1) & mask_;  // linear probe; load factor <= 0.5
  }
}

void SampleScratch::prepare_table(std::size_t k) {
  const std::size_t cap = table_capacity(k * 2);
  if (slots_.size() < cap) {
    slots_.assign(cap, 0);
    stamps_.assign(cap, 0);
    epoch_ = 0;
  }
  mask_ = slots_.size() - 1;
  if (++epoch_ == 0) {  // epoch wrapped: stale stamps could alias, reset
    std::fill(stamps_.begin(), stamps_.end(), 0u);
    epoch_ = 1;
  }
}

void SampleScratch::prepare_identity(std::size_t n) {
  const std::size_t old = identity_.size();
  if (old >= n) return;
  identity_.resize(n);
  for (std::size_t i = old; i < n; ++i) identity_[i] = i;
}

void Rng::sample_indices(std::size_t n, std::size_t k, SampleScratch& scratch,
                         std::vector<std::size_t>& out) {
  if (k > n) k = n;
  out.clear();
  if (k == 0) return;
  // Floyd's algorithm when the sample is sparse: exactly k draws, and the
  // open-addressed scratch table makes membership O(1) without allocating.
  if (k < n / 16) {
    scratch.prepare_table(k);
    out.reserve(k);
    for (std::size_t j = n - k; j < n; ++j) {
      const std::size_t t = index(j + 1);
      if (scratch.insert(t)) {
        out.push_back(t);
      } else {
        scratch.insert(j);
        out.push_back(j);
      }
    }
    return;
  }
  // Partial Fisher-Yates over the persistent identity permutation; the swap
  // trail is unwound afterwards so the permutation is identity again on
  // return — initialisation is paid once per distinct n, not per call.
  scratch.prepare_identity(n);
  auto& idx = scratch.identity_;
  auto& swaps = scratch.swaps_;
  swaps.clear();
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
    swaps.push_back(j);
    out.push_back(idx[i]);
  }
  for (std::size_t i = k; i-- > 0;) std::swap(idx[i], idx[swaps[i]]);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  SampleScratch scratch;
  std::vector<std::size_t> out;
  sample_indices(n, k, scratch, out);
  return out;
}

}  // namespace adsynth::util
