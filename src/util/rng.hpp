// Deterministic pseudo-random number generation for ADSynth.
//
// Every generator in this repository takes an explicit 64-bit seed and
// produces identical output for identical seeds across platforms.  We use
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, which is the
// recommended seeding procedure and avoids correlated low-entropy states.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace adsynth::util {

/// splitmix64 step: advances `state` and returns the next 64-bit output.
/// Used to expand a single seed into the xoshiro256** state vector; also
/// useful on its own as a fast stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Mixes a value through one splitmix64 round without retaining state.
/// Handy for deriving independent stream seeds: `mix64(seed ^ stream_id)`.
std::uint64_t mix64(std::uint64_t value) noexcept;

/// xoshiro256** engine.  Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, but the helper members below are
/// preferred: they are reproducible across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words via splitmix64(seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  /// Uses Lemire's nearly-divisionless bounded rejection method.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform size_t in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double real();

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool chance(double p);

  /// Forks an independent generator: the child stream is decorrelated from
  /// the parent by mixing a fresh draw through splitmix64.
  Rng fork();

  /// Fisher-Yates shuffle of a whole vector, reproducible across platforms.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      using std::swap;
      swap(items[i], items[index(i + 1)]);
    }
  }

  /// Uniformly picks one element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty vector");
    return items[index(items.size())];
  }

  /// Samples `k` distinct elements of `items` without replacement (order is
  /// randomized).  If k >= items.size() returns a shuffled copy of all items.
  /// Uses a partial Fisher-Yates over an index vector: O(items.size()).
  template <typename T>
  std::vector<T> sample(const std::vector<T>& items, std::size_t k) {
    const std::size_t n = items.size();
    if (k > n) k = n;
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    std::vector<T> out;
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + index(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(items[idx[i]]);
    }
    return out;
  }

  /// Samples `k` distinct indices from [0, n) without materializing a pool
  /// when k is small relative to n (Floyd's algorithm); falls back to partial
  /// Fisher-Yates otherwise.  Result order is unspecified but deterministic.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace adsynth::util
