// Deterministic pseudo-random number generation for ADSynth.
//
// Every generator in this repository takes an explicit 64-bit seed and
// produces identical output for identical seeds across platforms.  We use
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, which is the
// recommended seeding procedure and avoids correlated low-entropy states.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace adsynth::util {

/// splitmix64 step: advances `state` and returns the next 64-bit output.
/// Used to expand a single seed into the xoshiro256** state vector; also
/// useful on its own as a fast stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Mixes a value through one splitmix64 round without retaining state.
/// Handy for deriving independent stream seeds: `mix64(seed ^ stream_id)`.
std::uint64_t mix64(std::uint64_t value) noexcept;

/// Reusable working storage for Rng::sample_indices.  One instance per
/// call site (or per worker thread) turns every sample into an
/// allocation-free operation after warm-up:
///
///  * sparse path — an open-addressed table with epoch-stamped slots, so
///    clearing between calls is a single counter bump, not a memset;
///  * dense path — an identity permutation that partial Fisher-Yates
///    swaps into and then *unwinds*, so the O(n) initialisation is paid
///    once per distinct n, not once per call.
class SampleScratch {
 public:
  SampleScratch() = default;

 private:
  friend class Rng;

  /// True when `key` was absent and has been inserted.  The table must
  /// have been sized by prepare_table().
  bool insert(std::size_t key) noexcept;
  /// Sizes the table for up to `k` insertions and starts a fresh epoch.
  void prepare_table(std::size_t k);
  /// Extends the identity permutation to cover [0, n).
  void prepare_identity(std::size_t n);

  // Open-addressed table (sparse path).  A slot holds a key iff its stamp
  // equals the current epoch; stale slots are free without clearing.
  std::vector<std::size_t> slots_;
  std::vector<std::uint32_t> stamps_;
  std::uint32_t epoch_ = 0;
  std::size_t mask_ = 0;

  // Identity permutation (dense path) and the swap trail used to restore
  // it after a partial Fisher-Yates pass.
  std::vector<std::size_t> identity_;
  std::vector<std::size_t> swaps_;
};

/// xoshiro256** engine.  Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, but the helper members below are
/// preferred: they are reproducible across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words via splitmix64(seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  /// Uses Lemire's nearly-divisionless bounded rejection method.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform size_t in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double real();

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool chance(double p);

  /// Forks an independent generator: the child stream is decorrelated from
  /// the parent by mixing a fresh draw through splitmix64.  The child's
  /// state depends on how many draws the parent has made — use stream()
  /// when the derivation must not depend on call order.
  Rng fork();

  /// Derives the `stream_id`-th substream of this generator's *seed*: a
  /// pure function of (construction seed, stream_id), independent of any
  /// draws made on this generator, so shards of a parallel computation can
  /// derive their generators in any order (or concurrently) and still
  /// produce identical output.  Substreams are decorrelated from each
  /// other and from the parent sequence by double splitmix64 mixing.
  Rng stream(std::uint64_t stream_id) const noexcept {
    return Rng(mix64(seed_ ^ mix64(stream_id + 0x9e3779b97f4a7c15ULL)));
  }

  /// The seed this generator was constructed with (stream derivation key).
  std::uint64_t seed() const noexcept { return seed_; }

  /// Fisher-Yates shuffle of a whole vector, reproducible across platforms.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      using std::swap;
      swap(items[i], items[index(i + 1)]);
    }
  }

  /// Uniformly picks one element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty vector");
    return items[index(items.size())];
  }

  /// Samples `k` distinct elements of `items` without replacement (order is
  /// randomized).  If k >= items.size() returns a shuffled copy of all items.
  /// Uses a partial Fisher-Yates over an index vector: O(items.size()).
  template <typename T>
  std::vector<T> sample(const std::vector<T>& items, std::size_t k) {
    const std::size_t n = items.size();
    if (k > n) k = n;
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    std::vector<T> out;
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + index(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(items[idx[i]]);
    }
    return out;
  }

  /// Samples `k` distinct indices from [0, n) without materializing a pool
  /// when k is small relative to n (Floyd's algorithm); falls back to partial
  /// Fisher-Yates otherwise.  Result order is unspecified but deterministic.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Allocation-free variant for hot loops: identical draws and output to
  /// the allocating overload, but all working storage lives in `scratch`
  /// and the sample is appended to `out` (cleared first).  Reusing one
  /// scratch across calls amortizes every allocation away.
  void sample_indices(std::size_t n, std::size_t k, SampleScratch& scratch,
                      std::vector<std::size_t>& out);

 private:
  std::array<std::uint64_t, 4> state_;
  std::uint64_t seed_ = 0;
};

}  // namespace adsynth::util
