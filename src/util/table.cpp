#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace adsynth::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += cell;
      if (c + 1 < widths.size()) {
        out.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  emit_row(header_, out);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out.append(total >= 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1e", v);
  return buf;
}

std::string percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace adsynth::util
