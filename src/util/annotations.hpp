// Clang thread-safety annotations (a.k.a. -Wthread-safety capability
// analysis) plus capability-aware mutex wrappers.
//
// The macros expand to Clang's `capability` attribute family when the
// analysis is available and to nothing elsewhere, so annotated code builds
// identically under GCC/MSVC.  The `ADSYNTH_ANALYZE=ON` CMake lane compiles
// the tree with Clang and `-Werror=thread-safety`, turning every
// lock-discipline violation (touching a GUARDED_BY member without its
// mutex, unbalanced ACQUIRE/RELEASE, ...) into a build failure.
//
// std::mutex carries no capability attributes, so the analysis cannot see
// through it.  Locks that protect annotated state therefore use the
// `Mutex` wrapper below — same code generation (it is a bare std::mutex
// underneath), but lock()/unlock() declare their effect on the capability.
// Condition-variable waits go through std::condition_variable_any, which
// accepts any BasicLockable and hence works with `Mutex` directly.
//
// Conventions (DESIGN.md §"Static analysis & invariants"):
//  * every member field protected by a lock is declared GUARDED_BY(lock);
//  * data read outside the lock (atomics, immutable-after-construction
//    state) is NOT annotated — the annotation asserts the discipline, so
//    annotating something the code deliberately reads lock-free would
//    force spurious NO_THREAD_SAFETY_ANALYSIS escapes;
//  * functions that expect the caller to hold a lock say REQUIRES(lock);
//  * scope-based locking uses MutexLock (SCOPED_CAPABILITY), never a bare
//    lock()/unlock() pair.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ADSYNTH_TSA(x) __attribute__((x))
#endif
#endif
#ifndef ADSYNTH_TSA
#define ADSYNTH_TSA(x)  // no-op off Clang
#endif

#define ADSYNTH_CAPABILITY(name) ADSYNTH_TSA(capability(name))
#define ADSYNTH_SCOPED_CAPABILITY ADSYNTH_TSA(scoped_lockable)
#define ADSYNTH_GUARDED_BY(x) ADSYNTH_TSA(guarded_by(x))
#define ADSYNTH_PT_GUARDED_BY(x) ADSYNTH_TSA(pt_guarded_by(x))
#define ADSYNTH_ACQUIRE(...) ADSYNTH_TSA(acquire_capability(__VA_ARGS__))
#define ADSYNTH_RELEASE(...) ADSYNTH_TSA(release_capability(__VA_ARGS__))
#define ADSYNTH_TRY_ACQUIRE(...) ADSYNTH_TSA(try_acquire_capability(__VA_ARGS__))
#define ADSYNTH_REQUIRES(...) ADSYNTH_TSA(requires_capability(__VA_ARGS__))
#define ADSYNTH_EXCLUDES(...) ADSYNTH_TSA(locks_excluded(__VA_ARGS__))
#define ADSYNTH_ACQUIRED_BEFORE(...) ADSYNTH_TSA(acquired_before(__VA_ARGS__))
#define ADSYNTH_ACQUIRED_AFTER(...) ADSYNTH_TSA(acquired_after(__VA_ARGS__))
#define ADSYNTH_RETURN_CAPABILITY(x) ADSYNTH_TSA(lock_returned(x))
#define ADSYNTH_ASSERT_CAPABILITY(x) ADSYNTH_TSA(assert_capability(x))
#define ADSYNTH_NO_THREAD_SAFETY_ANALYSIS \
  ADSYNTH_TSA(no_thread_safety_analysis)

namespace adsynth::util {

/// std::mutex with capability attributes.  Satisfies Lockable, so it works
/// with std::lock_guard / std::unique_lock / std::condition_variable_any;
/// prefer MutexLock below, whose scope the analysis understands.
class ADSYNTH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ADSYNTH_ACQUIRE() { m_.lock(); }
  void unlock() ADSYNTH_RELEASE() { m_.unlock(); }
  bool try_lock() ADSYNTH_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Scoped lock for Mutex: acquires in the constructor, releases in the
/// destructor.  SCOPED_CAPABILITY tells the analysis the capability is
/// held for exactly this object's lifetime.
class ADSYNTH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) ADSYNTH_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() ADSYNTH_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

}  // namespace adsynth::util
