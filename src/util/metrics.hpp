// Named counters, gauges and fixed-bucket latency histograms in a global
// registry — the metrics half of the observability layer (DESIGN.md
// §Observability; util/trace.hpp is the spans half).
//
// Design rules:
//
//  * Lock-free fast path.  Counter/Gauge are single relaxed atomics and a
//    Histogram is a fixed array of relaxed atomic buckets; the registry
//    mutex is taken once per *site* (the ADSYNTH_METRIC_* macros cache the
//    returned reference in a function-local static), never per update.
//  * Deterministic readout.  Buckets have value-derived edges (log2 with
//    kSubBits fractional bits), registration is name-keyed in a std::map,
//    and snapshot() renders names in sorted order — two runs that perform
//    the same operations produce byte-identical snapshots.
//  * Compile-out.  With -DADSYNTH_TRACE=OFF (which defines
//    ADSYNTH_TRACE_DISABLED) every ADSYNTH_METRIC_* / ADSYNTH_SPAN site
//    expands to ((void)0): no atomics, no statics, no registry lookup.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/annotations.hpp"
#include "util/json.hpp"

#if !defined(ADSYNTH_TRACE_DISABLED)
#define ADSYNTH_TRACE_ENABLED 1
#else
#define ADSYNTH_TRACE_ENABLED 0
#endif

namespace adsynth::util {

/// Monotonically increasing event count (statements executed, undo ops
/// replayed, index entries written, ...).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (pool size, live node count, ...).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram.  Values 0..2^(kSubBits+1)-1 get exact
/// buckets; above that, each power-of-two octave splits into 2^kSubBits
/// sub-buckets (~12.5% relative resolution at kSubBits = 3), so quantile
/// readouts are stable enough for regression gating without per-sample
/// storage.  record() is three relaxed fetch_adds — safe from any thread.
class Histogram {
 public:
  static constexpr unsigned kSubBits = 3;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;
  // Largest index produced by a 64-bit value, see bucket_index():
  // exponent 63 → ((63 - kSubBits) << kSubBits) + sub + kSubBuckets.
  static constexpr std::size_t kBuckets =
      ((63 - kSubBits) << kSubBits) + (kSubBuckets - 1) + kSubBuckets + 1;

  /// Bucket covering `v`: identity below 2^(kSubBits+1), log-linear above.
  static std::size_t bucket_index(std::uint64_t v) {
    if (v < (kSubBuckets << 1)) return static_cast<std::size_t>(v);
    const unsigned exponent = std::bit_width(v) - 1;  // >= kSubBits + 1
    const std::uint64_t sub =
        (v >> (exponent - kSubBits)) & (kSubBuckets - 1);
    return ((exponent - kSubBits) << kSubBits) +
           static_cast<std::size_t>(sub) + kSubBuckets;
  }

  /// Smallest value mapping to bucket `b` (buckets partition [0, 2^64)).
  static std::uint64_t bucket_lower(std::size_t b) {
    if (b < (kSubBuckets << 1)) return b;
    const std::uint64_t t = b - kSubBuckets;
    const unsigned shift = static_cast<unsigned>(t >> kSubBits);
    const std::uint64_t sub = t & (kSubBuckets - 1);
    return (kSubBuckets + sub) << shift;
  }

  /// One past the largest value mapping to bucket `b`.
  static std::uint64_t bucket_upper(std::size_t b) {
    return b + 1 < kBuckets ? bucket_lower(b + 1) : ~std::uint64_t{0};
  }

  void record(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Folds another histogram in bucket-by-bucket (O(kBuckets), not
  /// O(count)); the trace merge uses it to combine per-thread span stats.
  void merge(const Histogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t n = other.bucket_count(b);
      if (n > 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Upper-edge estimate of the q-quantile (q in [0, 1]): the largest value
  /// of the first bucket whose cumulative count reaches ceil(q·count).
  /// 0 when empty.  Deterministic for a given multiset of samples.
  std::uint64_t quantile(double q) const;

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Process-wide name → metric registry.  Lookup interns the metric under
/// its name (mutex-guarded); the returned reference is stable for the
/// process lifetime, so sites pay the lock once and update lock-free after.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// All metrics as {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, p50, p95}}}, names sorted (std::map order).
  JsonObject snapshot() const;

  /// Zeroes every value but keeps registrations (references stay valid) —
  /// test fixtures and bench captures call this between measurements.
  void reset();

 private:
  MetricsRegistry() = default;
  // Capability-annotated (util/annotations.hpp) so the ADSYNTH_ANALYZE
  // lane sees the registry's lock discipline: the maps are only touched
  // under mutex_; the metric objects they own are updated lock-free
  // through the references lookup hands out (deliberately unannotated —
  // their atomics are the synchronization).
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      ADSYNTH_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      ADSYNTH_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      ADSYNTH_GUARDED_BY(mutex_);
};

}  // namespace adsynth::util

// Instrumentation macros.  `name` must be a string literal; the registry
// reference is resolved once per site and the update itself is lock-free.
#if ADSYNTH_TRACE_ENABLED
#define ADSYNTH_METRIC_COUNT(name, delta)                              \
  do {                                                                 \
    static ::adsynth::util::Counter& adsynth_metric_site =             \
        ::adsynth::util::MetricsRegistry::instance().counter(name);    \
    adsynth_metric_site.add(delta);                                    \
  } while (0)
#define ADSYNTH_METRIC_GAUGE_SET(name, v)                              \
  do {                                                                 \
    static ::adsynth::util::Gauge& adsynth_metric_site =               \
        ::adsynth::util::MetricsRegistry::instance().gauge(name);      \
    adsynth_metric_site.set(v);                                        \
  } while (0)
#define ADSYNTH_METRIC_RECORD(name, v)                                 \
  do {                                                                 \
    static ::adsynth::util::Histogram& adsynth_metric_site =           \
        ::adsynth::util::MetricsRegistry::instance().histogram(name);  \
    adsynth_metric_site.record(v);                                     \
  } while (0)
#else
#define ADSYNTH_METRIC_COUNT(name, delta) ((void)0)
#define ADSYNTH_METRIC_GAUGE_SET(name, v) ((void)0)
#define ADSYNTH_METRIC_RECORD(name, v) ((void)0)
#endif
