#include "util/strings.hpp"

#include <cctype>

namespace adsynth::util {

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string with_commas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace adsynth::util
