// Hierarchical scoped tracing spans — the spans half of the observability
// layer (DESIGN.md §Observability; util/metrics.hpp is the metrics half).
//
// A Span is an RAII scope timed on the sanctioned monotonic clock
// (util::monotonic_ns — trace never reads std::chrono directly, so the
// determinism lint stays clean).  Spans nest: each thread keeps a
// thread-local buffer with a depth counter, so "gen.sessions" inside
// "gen.generate_ad" records depth 1 under depth 0, and worker threads of
// util::ThreadPool record into their own buffers with zero cross-thread
// contention.
//
// Capture protocol (single coordinator thread, between parallel regions):
//
//   trace_begin();            // clears buffers, arms the spans
//   ... instrumented work, any number of threads ...
//   TraceReport r = trace_end();   // disarms, merges deterministically
//
// The merge is deterministic where it can be: per-span aggregates (count,
// total, latency histogram) are integer sums keyed by span name and
// reported in sorted-name order, so two captures of the same work produce
// the same span table at any thread count.  Raw events keep their measured
// timestamps (inherently run-dependent) and are only exported on request
// as Chrome trace_event JSON for chrome://tracing / Perfetto.
//
// Cost model: an armed span is two monotonic_ns reads plus a bounded
// buffer append (~100 ns); a disarmed span is one relaxed atomic load.
// With -DADSYNTH_TRACE=OFF every ADSYNTH_SPAN site compiles to ((void)0)
// and trace_begin/trace_end become no-ops returning an empty report.
//
// Event buffers are bounded (max_events_per_thread, default 1<<18): past
// the cap, events are dropped (counted in dropped_events()) but the
// per-span aggregates stay exact — phase breakdowns in BENCH_*.json are
// never truncated, only the Chrome timeline is.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/metrics.hpp"

namespace adsynth::util {

/// One completed span occurrence.  `start_ns` is relative to the capture
/// start, so exported traces carry no absolute clock state.
struct TraceEvent {
  const char* name;       // string literal supplied to the Span
  std::uint32_t tid;      // capture-local thread slot
  std::uint32_t depth;    // nesting depth at entry (0 = top level)
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

/// Deterministic per-name aggregate over a capture.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t p50_ns = 0;  // from a Histogram over span durations
  std::uint64_t p95_ns = 0;
};

/// Merged result of one capture.
class TraceReport {
 public:
  /// Events across all threads, ordered by (start, tid); bounded per
  /// thread by the capture's max_events_per_thread.
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Per-span aggregates in sorted-name order (the deterministic merge).
  const std::vector<SpanStats>& spans() const { return spans_; }

  /// Exact sum of the coordinator thread's depth-0 span durations (the
  /// thread that called trace_begin) — the "accounted" wall time.  Worker
  /// threads' outermost spans are excluded: they run concurrently inside a
  /// coordinator-side span and would double-count.
  std::uint64_t top_level_total_ns() const { return top_level_total_ns_; }

  /// Events discarded because a thread buffer hit its cap.
  std::uint64_t dropped_events() const { return dropped_events_; }

  /// Chrome trace_event JSON ("X" complete events, µs timestamps); load
  /// the file in chrome://tracing or https://ui.perfetto.dev.
  void write_chrome_trace(std::ostream& out) const;

  /// Span table as a JSON array for BENCH_*.json "phases" records:
  /// [{"name", "count", "total_ms", "p50_ns", "p95_ns"}, ...].
  JsonValue phases_json() const;

 private:
  friend TraceReport trace_end();
  std::vector<TraceEvent> events_;
  std::vector<SpanStats> spans_;
  std::uint64_t top_level_total_ns_ = 0;
  std::uint64_t dropped_events_ = 0;
};

/// True between trace_begin() and trace_end().
bool trace_active();

/// Arms span collection: clears every thread buffer and the capture clock.
/// Call from one thread while no instrumented parallel region runs.
void trace_begin(std::size_t max_events_per_thread = std::size_t{1} << 18);

/// Disarms collection and merges all thread buffers.  Safe to call when no
/// capture is active (returns an empty report).
TraceReport trace_end();

/// RAII span.  Construct with a string literal; the scope's duration is
/// recorded into the current thread's buffer when a capture is active.
class Span {
 public:
  explicit Span(const char* name) {
#if ADSYNTH_TRACE_ENABLED
    begin(name);
#else
    (void)name;
#endif
  }
  ~Span() {
#if ADSYNTH_TRACE_ENABLED
    if (armed_) end();
#endif
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name);
  void end();
#if ADSYNTH_TRACE_ENABLED
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool armed_ = false;
#endif
};

/// Convenience for examples: arms a capture when `path` is non-empty and
/// writes the Chrome trace there on destruction.
class ScopedCapture {
 public:
  explicit ScopedCapture(std::string path);
  ~ScopedCapture();
  ScopedCapture(const ScopedCapture&) = delete;
  ScopedCapture& operator=(const ScopedCapture&) = delete;

 private:
  std::string path_;
};

}  // namespace adsynth::util

// ADSYNTH_SPAN("subsystem.phase"); — names a scope in the span taxonomy
// (DESIGN.md §Observability).  Compiles out entirely under
// -DADSYNTH_TRACE=OFF.
#if ADSYNTH_TRACE_ENABLED
#define ADSYNTH_SPAN_CAT2(a, b) a##b
#define ADSYNTH_SPAN_CAT(a, b) ADSYNTH_SPAN_CAT2(a, b)
#define ADSYNTH_SPAN(name) \
  ::adsynth::util::Span ADSYNTH_SPAN_CAT(adsynth_span_, __LINE__)(name)
#else
#define ADSYNTH_SPAN(name) ((void)0)
#endif
