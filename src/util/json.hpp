// Minimal JSON support used by the graph database's Neo4j/APOC-style export
// and import.  Two layers:
//
//  * JsonValue — a DOM for parsing and for small documents (configs, tests).
//  * JsonWriter — a forward-only streaming writer so that million-node graph
//    exports never materialize the document in memory.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace adsynth::util {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
// std::map keeps exports byte-stable across runs (insertion-order containers
// would leak generation order into the serialized form).
using JsonObject = std::map<std::string, JsonValue>;

/// A parsed JSON document node.  Numbers are stored as int64 when the text
/// has no fraction/exponent and fits, double otherwise.
class JsonValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, std::int64_t, double,
                               std::string, JsonArray, JsonObject>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(int i) : value_(static_cast<std::int64_t>(i)) {}
  JsonValue(std::int64_t i) : value_(i) {}
  JsonValue(std::uint64_t i) : value_(static_cast<std::int64_t>(i)) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; each throws std::runtime_error on a type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;  // accepts int, widening to double
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  /// Object member lookup; throws std::out_of_range when absent.
  const JsonValue& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  bool contains(const std::string& key) const;

  /// Serializes compactly (no whitespace).  Mainly for tests and configs;
  /// bulk export uses JsonWriter.
  std::string dump() const;

  /// Parses a complete JSON document; throws std::runtime_error with a
  /// byte-offset message on malformed input or trailing garbage.
  static JsonValue parse(std::string_view text);

 private:
  void dump_to(std::string& out) const;
  Storage value_;
};

/// Escapes and quotes `s` per RFC 8259 into `out`.
void json_escape(std::string_view s, std::string& out);

/// Forward-only streaming JSON writer.  begin/end calls must nest correctly;
/// violations throw std::logic_error (cheap state checks, not a validator).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Writes an object key; must be inside an object, before a value.
  void key(std::string_view name);

  void value(std::nullptr_t);
  void value(bool b);
  void value(std::int64_t i);
  void value(std::uint64_t i) { value(static_cast<std::int64_t>(i)); }
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void value(double d);
  void value(std::string_view s);
  void value(const std::string& s) { value(std::string_view(s)); }
  void value(const char* s) { value(std::string_view(s)); }
  void value(const JsonValue& v);

  /// Convenience: key followed by a scalar value.
  template <typename T>
  void member(std::string_view name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void before_value();
  std::ostream& out_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;
  bool have_key_ = false;
};

}  // namespace adsynth::util
