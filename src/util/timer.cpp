#include "util/timer.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace adsynth::util {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double RunStats::min() const {
  if (samples_.empty()) throw std::logic_error("RunStats::min: no samples");
  return *std::min_element(samples_.begin(), samples_.end());
}

double RunStats::max() const {
  if (samples_.empty()) throw std::logic_error("RunStats::max: no samples");
  return *std::max_element(samples_.begin(), samples_.end());
}

double RunStats::median() const {
  if (samples_.empty()) throw std::logic_error("RunStats::median: no samples");
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

std::string RunStats::summary() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f±%.3f", mean(), stdev());
  return buf;
}

}  // namespace adsynth::util
