// Work-stealing thread pool for the analytics and defense hot loops.
//
// Design rules (see DESIGN.md §"Parallel execution model"):
//
//  * One pool, persistent workers.  A parallel region splits an index range
//    into chunks; idle threads steal the next unclaimed chunk from a shared
//    atomic cursor, so load imbalance between chunks (e.g. BFS sweeps of
//    very different sizes) self-balances.
//  * Determinism: chunk boundaries depend only on the range and the grain,
//    NEVER on the thread count, and `parallel_map_reduce` folds the chunk
//    results in ascending chunk order.  Floating-point accumulations
//    therefore see the exact same bracketing at 1, 2 or 64 threads — results
//    are bit-identical regardless of parallelism.
//  * A pool of size 1 (or a single-chunk region) runs inline on the calling
//    thread: `--threads 1` is the plain serial loop, no queues, no atomics
//    contended, and — by the rule above — the same numbers.
//
// The region functor must not throw (a throwing task terminates); analytics
// kernels only touch preallocated buffers.
//
// Lock discipline is machine-checked: the pool state below carries Clang
// thread-safety annotations (util/annotations.hpp) and the ADSYNTH_ANALYZE
// CMake lane builds with -Werror=thread-safety, so touching a guarded field
// without `mutex_` fails the build.  `cursor_` is deliberately unguarded:
// chunk claiming is a lock-free atomic fetch_add.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace adsynth::util {

class ThreadPool {
 public:
  using Job = std::function<void(std::size_t, std::size_t)>;

  /// `threads` counts every participant including the calling thread, so
  /// `ThreadPool(4)` spawns 3 workers.  0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Participants in a region (workers + the calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  /// Runs fn(chunk, worker) for every chunk in [0, chunks), blocking until
  /// all chunks finish.  `worker` is a stable slot in [0, size()) so callers
  /// can keep per-worker scratch buffers.  Chunks are claimed dynamically;
  /// do not nest run() calls and do not call it from two threads at once.
  void run(std::size_t chunks, const Job& fn);

 private:
  void worker_main(std::size_t slot);
  /// Claims chunks off `cursor_` until `chunks` are exhausted.  The region
  /// description is passed by value/reference from a lock-held snapshot, so
  /// draining itself runs without the pool mutex.
  void drain(std::size_t slot, std::size_t chunks, const Job& fn)
      ADSYNTH_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  // condition_variable_any: waits directly on the annotated Mutex.
  std::condition_variable_any wake_;  // workers: a region (or stop) is ready
  std::condition_variable_any done_;  // caller: every worker left the region
  const Job* job_ ADSYNTH_GUARDED_BY(mutex_) = nullptr;
  std::size_t chunks_ ADSYNTH_GUARDED_BY(mutex_) = 0;
  std::atomic<std::size_t> cursor_{0};  // next unclaimed chunk (lock-free)
  /// Workers still inside the region.
  std::size_t active_workers_ ADSYNTH_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ ADSYNTH_GUARDED_BY(mutex_) = 0;  // bumped per region
  bool stop_ ADSYNTH_GUARDED_BY(mutex_) = false;
};

/// Process-wide pool used by the analytics/defense kernels.  Sized by
/// set_global_threads() (default: hardware_concurrency()).
ThreadPool& global_pool();

/// Resizes the global pool; n = 0 restores hardware_concurrency().  Call
/// from one thread while no parallel region runs (startup / test setup).
void set_global_threads(std::size_t n);

/// Current global pool size (>= 1).
std::size_t global_threads();

/// Number of grain-sized chunks covering `items` indices.  This is the
/// unit of determinism: it depends on the range and the grain only.
inline std::size_t chunk_count(std::size_t items, std::size_t grain) {
  if (grain == 0) grain = 1;
  return (items + grain - 1) / grain;
}

/// fn(lo, hi, worker) over grain-sized slices of [begin, end).  A
/// single-slice range runs inline.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain, Fn&& fn) {
  const std::size_t items = end > begin ? end - begin : 0;
  if (items == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(items, grain);
  if (chunks == 1 || pool.size() == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * grain;
      fn(lo, std::min(end, lo + grain), std::size_t{0});
    }
    return;
  }
  pool.run(chunks, [&](std::size_t chunk, std::size_t worker) {
    const std::size_t lo = begin + chunk * grain;
    fn(lo, std::min(end, lo + grain), worker);
  });
}

/// Deterministic scatter/merge: `gen(shard, buffer)` fills one Buffer per
/// shard (shards claimed dynamically, one chunk each), then `merge(shard,
/// buffer)` consumes every buffer serially in ascending shard order on the
/// calling thread.  The merge order — and therefore anything built by
/// appending in it — depends only on the shard decomposition, never on the
/// thread count.  Buffer must be default-constructible; gen must not touch
/// shared mutable state (it runs concurrently).
template <typename Buffer, typename Gen, typename Merge>
void parallel_scatter_merge(ThreadPool& pool, std::size_t shards, Gen&& gen,
                            Merge&& merge) {
  if (shards == 0) return;
  std::vector<Buffer> buffers(shards);
  parallel_for(pool, 0, shards, 1,
               [&](std::size_t lo, std::size_t hi, std::size_t) {
                 for (std::size_t s = lo; s < hi; ++s) gen(s, buffers[s]);
               });
  for (std::size_t s = 0; s < shards; ++s) merge(s, std::move(buffers[s]));
}

/// Deterministic ordered reduction: map(lo, hi, worker) -> T per grain-sized
/// slice, then reduce(acc, slice_result) folded in ascending slice order —
/// the floating-point bracketing is fixed by the grain, not by which thread
/// finished first.
template <typename T, typename Map, typename Reduce>
T parallel_map_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                      std::size_t grain, T init, Map&& map, Reduce&& reduce) {
  const std::size_t items = end > begin ? end - begin : 0;
  if (items == 0) return init;
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(items, grain);
  std::vector<T> partial(chunks);
  parallel_for(pool, begin, end, grain,
               [&](std::size_t lo, std::size_t hi, std::size_t worker) {
                 partial[(lo - begin) / grain] = map(lo, hi, worker);
               });
  T acc = std::move(init);
  for (T& p : partial) reduce(acc, std::move(p));
  return acc;
}

}  // namespace adsynth::util
