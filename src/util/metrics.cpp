#include "util/metrics.hpp"

#include <cmath>

namespace adsynth::util {

std::uint64_t Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(n))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += bucket_count(b);
    if (cumulative >= rank) return bucket_upper(b) - 1;
  }
  return bucket_upper(kBuckets - 1) - 1;  // unreachable when counts match
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

JsonObject MetricsRegistry::snapshot() const {
  MutexLock lock(mutex_);
  JsonObject counters;
  for (const auto& [name, c] : counters_) {
    counters[name] = static_cast<std::int64_t>(c->value());
  }
  JsonObject gauges;
  for (const auto& [name, g] : gauges_) gauges[name] = g->value();
  JsonObject histograms;
  for (const auto& [name, h] : histograms_) {
    JsonObject record;
    record["count"] = static_cast<std::int64_t>(h->count());
    record["sum"] = static_cast<std::int64_t>(h->sum());
    record["p50"] = static_cast<std::int64_t>(h->quantile(0.5));
    record["p95"] = static_cast<std::int64_t>(h->quantile(0.95));
    histograms[name] = std::move(record);
  }
  JsonObject out;
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

void MetricsRegistry::reset() {
  MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace adsynth::util
