// Wall-clock timing and run statistics for the benchmark harness.
//
// Table I of the paper reports mean ± standard deviation over 20 runs; the
// RunStats accumulator reproduces exactly that presentation.
#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adsynth::util {

/// Nanoseconds on the process-wide monotonic clock.  This is the single
/// sanctioned clock read of the codebase: Stopwatch and the tracing spans
/// (util/trace) are both built on it, and the determinism lint rejects
/// direct steady_clock calls anywhere else.  The value is only meaningful
/// as a difference between two reads — never persist it into an output.
std::uint64_t monotonic_ns();

/// Monotonic stopwatch.  Starts on construction; `seconds()` reads the
/// elapsed time without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates per-run samples and reports mean and sample stdev, formatted
/// "m.mmm±s.sss" like the paper's Table I cells.
class RunStats {
 public:
  void add(double sample) { samples_.push_back(sample); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (const double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  /// Sample (n-1) standard deviation; 0 for fewer than two samples.
  double stdev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (const double s : samples_) acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  double min() const;
  double max() const;
  /// Median (average of the two middle samples for even counts).
  double median() const;

  /// "mean±stdev" with three decimals, e.g. "21.304±0.958".
  std::string summary() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace adsynth::util
