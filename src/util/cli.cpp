#include "util/cli.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/strings.hpp"

namespace adsynth::util {

void CliArgs::add_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{help, /*is_flag=*/true, "false"};
}

void CliArgs::add_option(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  specs_[name] = Spec{help, /*is_flag=*/false, default_value};
}

bool CliArgs::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      throw std::invalid_argument("unknown option --" + name);
    }
    if (it->second.is_flag) {
      if (has_value) {
        throw std::invalid_argument("flag --" + name + " takes no value");
      }
      values_[name] = "true";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          throw std::invalid_argument("option --" + name + " needs a value");
        }
        value = argv[++i];
      }
      values_[name] = value;
    }
  }
  return true;
}

bool CliArgs::flag(const std::string& name) const {
  const auto spec = specs_.find(name);
  if (spec == specs_.end() || !spec->second.is_flag) {
    throw std::logic_error("undeclared flag --" + name);
  }
  return values_.count(name) > 0;
}

std::string CliArgs::str(const std::string& name) const {
  const auto spec = specs_.find(name);
  if (spec == specs_.end()) throw std::logic_error("undeclared option --" + name);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : spec->second.default_value;
}

std::int64_t CliArgs::integer(const std::string& name) const {
  const std::string v = str(name);
  try {
    std::size_t used = 0;
    const std::int64_t out = std::stoll(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects an integer, got '" +
                                v + "'");
  }
}

double CliArgs::real(const std::string& name) const {
  const std::string v = str(name);
  try {
    std::size_t used = 0;
    const double out = std::stod(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects a number, got '" +
                                v + "'");
  }
}

std::string CliArgs::usage(const std::string& program) const {
  std::string out = "usage: " + program + " [options]\n";
  for (const auto& [name, spec] : specs_) {
    out += "  --" + name;
    if (!spec.is_flag) out += " <value> (default: " + spec.default_value + ")";
    out += "\n      " + spec.help + "\n";
  }
  return out;
}

}  // namespace adsynth::util
