// Binary codec primitives for the durable-storage layer (graphdb/persist,
// graphdb/wal): little-endian fixed-width encoders/decoders over an
// in-memory buffer, a CRC32 (IEEE 802.3, reflected 0xEDB88320) checksum, an
// FNV-1a streaming hasher, and a stdio wrapper whose every operation checks
// the libc result and throws on failure (the io-error-checked lint rule
// enforces the same discipline on any direct stdio use).
//
// Encoding is byte-shifted, not memcpy'd, so files written on any host read
// back identically regardless of endianness; integers are fixed-width
// (u8/u32/u64, two's-complement i64, IEEE-754 bit-pattern f64) and strings
// are u32-length-prefixed raw bytes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>

namespace adsynth::util {

/// Thrown by ByteReader on malformed/truncated input and by CheckedFile on
/// any failing stdio call.  Catchable separately from logic errors so the
/// recovery path can distinguish "bad bytes" from "bad code".
class BinIoError : public std::runtime_error {
 public:
  explicit BinIoError(const std::string& what) : std::runtime_error(what) {}
};

/// CRC32 over a byte range (IEEE, init/final xor 0xFFFFFFFF).
std::uint32_t crc32(const void* data, std::size_t size);
inline std::uint32_t crc32(std::string_view bytes) {
  return crc32(bytes.data(), bytes.size());
}

/// Streaming 64-bit FNV-1a — the fingerprint hash of graphdb/persist.
/// Deterministic across platforms (byte-oriented, no seeding).
class Fnv1a {
 public:
  void update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= 0x100000001b3ULL;
    }
  }
  void update(std::string_view bytes) { update(bytes.data(), bytes.size()); }
  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

/// Append-only little-endian encoder into an owned byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      buf_.push_back(static_cast<char>((v >> shift) & 0xFF));
    }
  }
  void u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      buf_.push_back(static_cast<char>((v >> shift) & 0xFF));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  // IEEE-754 bit pattern via memcpy
  void str(std::string_view s);
  void bytes(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }
  /// Truncates back to `size` bytes (scope-abort support in the WAL).
  void truncate(std::size_t size);
  void clear() { buf_.clear(); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a non-owned byte range; every
/// underflow throws BinIoError instead of reading garbage.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();
  std::string_view view(std::size_t size);

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool at_end() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t count) const;
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// RAII stdio file whose every operation checks the libc result and throws
/// BinIoError on failure — short reads, short writes, failed seeks.  The
/// durable-storage layer does all its file IO through this wrapper so no
/// stream-op result is ever silently discarded.
class CheckedFile {
 public:
  CheckedFile() = default;
  static CheckedFile open_read(const std::string& path);    // "rb"
  static CheckedFile open_write(const std::string& path);   // "wb" (truncate)
  static CheckedFile open_append(const std::string& path);  // "r+b" at end

  CheckedFile(const CheckedFile&) = delete;
  CheckedFile& operator=(const CheckedFile&) = delete;
  CheckedFile(CheckedFile&& other) noexcept;
  CheckedFile& operator=(CheckedFile&& other) noexcept;
  ~CheckedFile();

  bool is_open() const { return file_ != nullptr; }
  void write(const void* data, std::size_t size);
  void write(std::string_view bytes) { write(bytes.data(), bytes.size()); }
  /// Reads exactly `size` bytes; throws on a short read.
  void read(void* data, std::size_t size);
  /// Reads up to `size` bytes; returns the count (0 at EOF), throws only on
  /// a stream error.
  std::size_t read_up_to(void* data, std::size_t size);
  void seek(std::uint64_t offset);
  std::uint64_t tell() const;
  std::uint64_t size() const;  // seek-to-end + restore
  void flush();
  /// Explicit close that surfaces the fclose result; the destructor closes
  /// silently (it must not throw).
  void close();

 private:
  explicit CheckedFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace adsynth::util
