#include "adcore/schema.hpp"

#include <array>
#include <stdexcept>

namespace adsynth::adcore {

namespace {

struct EdgeInfo {
  EdgeKind kind;
  std::string_view name;
  bool acl;
  bool traversable;
};

// One row per EdgeKind, in enum order (static_assert below keeps it honest).
constexpr std::array<EdgeInfo, kEdgeKindCount> kEdgeTable{{
    {EdgeKind::kContains, "Contains", false, true},
    {EdgeKind::kGpLink, "GpLink", false, true},
    {EdgeKind::kMemberOf, "MemberOf", false, true},
    {EdgeKind::kGenericAll, "GenericAll", true, true},
    {EdgeKind::kGenericWrite, "GenericWrite", true, true},
    {EdgeKind::kWriteDacl, "WriteDacl", true, true},
    {EdgeKind::kWriteOwner, "WriteOwner", true, true},
    {EdgeKind::kOwns, "Owns", true, true},
    {EdgeKind::kForceChangePassword, "ForceChangePassword", true, true},
    {EdgeKind::kAddMember, "AddMember", true, true},
    {EdgeKind::kAllExtendedRights, "AllExtendedRights", true, true},
    {EdgeKind::kDCSync, "DCSync", true, true},
    // GetChanges / GetChangesAll are only useful combined (that combination
    // is DCSync), so neither alone is attacker-traversable.
    {EdgeKind::kGetChanges, "GetChanges", true, false},
    {EdgeKind::kGetChangesAll, "GetChangesAll", true, false},
    {EdgeKind::kAdminTo, "AdminTo", false, true},
    // RDP yields an unprivileged interactive session, not local-admin
    // control, so it cannot harvest other users' credentials on its own.
    {EdgeKind::kCanRDP, "CanRDP", false, false},
    {EdgeKind::kExecuteDCOM, "ExecuteDCOM", false, true},
    {EdgeKind::kCanPSRemote, "CanPSRemote", false, true},
    {EdgeKind::kSQLAdmin, "SQLAdmin", false, true},
    {EdgeKind::kAllowedToDelegate, "AllowedToDelegate", false, true},
    {EdgeKind::kHasSession, "HasSession", false, true},
    // A trust lets principals authenticate across domains; it is not by
    // itself an escalation (control crosses via foreign memberships,
    // ACLs and sessions, which are their own edges).
    {EdgeKind::kTrustedBy, "TrustedBy", false, false},
}};

const EdgeInfo& info(EdgeKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  if (idx >= kEdgeTable.size() || kEdgeTable[idx].kind != kind) {
    throw std::logic_error("EdgeKind table out of sync");
  }
  return kEdgeTable[idx];
}

constexpr std::array<std::string_view, kObjectKindCount> kKindLabels{
    "Domain", "User", "Computer", "Group", "OU", "GPO"};

}  // namespace

std::string_view object_kind_label(ObjectKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  if (idx >= kKindLabels.size()) {
    throw std::out_of_range("object_kind_label: bad kind");
  }
  return kKindLabels[idx];
}

std::optional<ObjectKind> parse_object_kind(std::string_view label) {
  for (std::size_t i = 0; i < kKindLabels.size(); ++i) {
    if (kKindLabels[i] == label) return static_cast<ObjectKind>(i);
  }
  return std::nullopt;
}

std::string_view edge_kind_name(EdgeKind kind) { return info(kind).name; }

std::optional<EdgeKind> parse_edge_kind(std::string_view name) {
  for (const auto& row : kEdgeTable) {
    if (row.name == name) return row.kind;
  }
  return std::nullopt;
}

bool is_acl_permission(EdgeKind kind) { return info(kind).acl; }

bool is_non_acl_permission(EdgeKind kind) {
  // Structural edges (Contains, GpLink, MemberOf) and sessions are neither
  // ACL nor "non-ACL permissions" in the paper's sense; the non-ACL pool is
  // the computer-rights family.
  switch (kind) {
    case EdgeKind::kAdminTo:
    case EdgeKind::kCanRDP:
    case EdgeKind::kExecuteDCOM:
    case EdgeKind::kCanPSRemote:
    case EdgeKind::kSQLAdmin:
    case EdgeKind::kAllowedToDelegate:
      return true;
    default:
      return false;
  }
}

bool is_traversable(EdgeKind kind) { return info(kind).traversable; }

const std::vector<EdgeKind>& acl_permission_pool() {
  // The pool Algorithm 1 samples from for ACL grants on OUs/objects.
  // DCSync/GetChanges* are domain-object rights and are granted separately,
  // so they are not in the random pool.
  static const std::vector<EdgeKind> pool{
      EdgeKind::kGenericAll,     EdgeKind::kGenericWrite,
      EdgeKind::kWriteDacl,      EdgeKind::kWriteOwner,
      EdgeKind::kOwns,           EdgeKind::kForceChangePassword,
      EdgeKind::kAddMember,      EdgeKind::kAllExtendedRights,
  };
  return pool;
}

const std::vector<EdgeKind>& non_acl_permission_pool() {
  static const std::vector<EdgeKind> pool{
      EdgeKind::kAdminTo,     EdgeKind::kCanRDP,
      EdgeKind::kExecuteDCOM, EdgeKind::kCanPSRemote,
      EdgeKind::kSQLAdmin,    EdgeKind::kAllowedToDelegate,
  };
  return pool;
}

}  // namespace adsynth::adcore
