// Realistic name material for generated AD objects: person names, department
// names, branch locations, OS versions, and distinguished-name composition.
//
// ADSynth "uses lists of departments in an enterprise, branch locations, and
// the number of root folders" (paper §III-B step 1); these are the default
// lists, overridable through GeneratorConfig.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace adsynth::adcore {

/// Default enterprise department list (IT and HR first, matching Fig. 3).
const std::vector<std::string>& default_departments();

/// Default branch locations ("City A", "City B" generalized).
const std::vector<std::string>& default_locations();

/// First/last name pools for user display names.
const std::vector<std::string>& first_names();
const std::vector<std::string>& last_names();

/// Windows OS versions for computer objects (workstation and server pools).
const std::vector<std::string>& workstation_os_pool();
const std::vector<std::string>& server_os_pool();

/// Composes a sAMAccountName-style user name: "JSMITH01234".
std::string make_user_logon_name(util::Rng& rng, std::uint32_t ordinal);

/// Composes a computer host name: "<PREFIX><ordinal>", e.g. "WS04211".
std::string make_computer_name(std::string_view prefix, std::uint32_t ordinal);

/// Builds an OU distinguished name from leaf to domain, e.g.
/// "OU=Workstations,OU=Tier 2,DC=corp,DC=local".
std::string make_ou_dn(const std::vector<std::string>& path_from_leaf,
                       const std::string& domain_dn);

/// "corp.local" -> "DC=corp,DC=local".
std::string domain_to_dn(const std::string& domain_fqdn);

}  // namespace adsynth::adcore
