#include "adcore/convert.hpp"

#include <stdexcept>
#include <string>

#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace adsynth::adcore {

using graphdb::GraphStore;
using graphdb::NodeId;
using graphdb::PropertyList;

GraphStore to_store(const AttackGraph& graph, const std::string& domain_fqdn,
                    std::uint64_t id_seed) {
  ADSYNTH_SPAN("adcore.to_store");
  GraphStore store;
  const auto key_name = store.intern_key("name");
  const auto key_objectid = store.intern_key("objectid");
  const auto key_sid = store.intern_key("objectsid");
  const auto key_tier = store.intern_key("tier");
  const auto key_admin = store.intern_key("admin");
  const auto key_enabled = store.intern_key("enabled");
  const auto key_domain = store.intern_key("domain");
  const auto key_violation = store.intern_key("violation");

  util::Rng id_rng(id_seed);
  util::SidFactory sids(id_rng);

  // Pre-intern one label per ObjectKind.
  std::vector<graphdb::LabelId> kind_labels;
  kind_labels.reserve(kObjectKindCount);
  for (std::size_t k = 0; k < kObjectKindCount; ++k) {
    kind_labels.push_back(store.intern_label(
        object_kind_label(static_cast<ObjectKind>(k))));
  }
  const auto base_label = store.intern_label("Base");

  for (NodeIndex i = 0; i < graph.node_count(); ++i) {
    PropertyList props;
    const std::string& name = graph.name(i);
    graphdb::put_property(
        props, key_name,
        name.empty()
            ? std::string(object_kind_label(graph.kind(i))) + "-" +
                  std::to_string(i)
            : name);
    graphdb::put_property(props, key_domain, domain_fqdn);
    graphdb::put_property(props, key_objectid,
                          util::Guid::random(id_rng).to_string());
    switch (graph.kind(i)) {
      case ObjectKind::kUser:
      case ObjectKind::kComputer:
      case ObjectKind::kGroup:
        graphdb::put_property(props, key_sid, sids.next().to_string());
        break;
      case ObjectKind::kDomain:
        graphdb::put_property(props, key_sid,
                              sids.well_known(0).domain_part());
        break;
      default: break;  // OUs and GPOs are identified by GUID alone
    }
    if (graph.tier(i) != kNoTier) {
      graphdb::put_property(props, key_tier,
                            static_cast<std::int64_t>(graph.tier(i)));
    }
    if (graph.kind(i) == ObjectKind::kUser) {
      graphdb::put_property(props, key_admin,
                            graph.has_flag(i, node_flag::kAdmin));
      graphdb::put_property(props, key_enabled,
                            graph.has_flag(i, node_flag::kEnabled));
    }
    store.create_node_interned(
        {base_label, kind_labels[static_cast<std::size_t>(graph.kind(i))]},
        std::move(props));
  }

  // Pre-intern relationship types.
  std::vector<graphdb::RelTypeId> rel_types;
  rel_types.reserve(kEdgeKindCount);
  for (std::size_t k = 0; k < kEdgeKindCount; ++k) {
    rel_types.push_back(
        store.intern_rel_type(edge_kind_name(static_cast<EdgeKind>(k))));
  }

  for (const AttackEdge& e : graph.edges()) {
    PropertyList props;
    if (e.violation) graphdb::put_property(props, key_violation, true);
    store.create_relationship_interned(
        e.source, e.target, rel_types[static_cast<std::size_t>(e.kind)],
        std::move(props));
  }
  return store;
}

namespace {

/// Shared reader body of from_store / from_snapshot: StoreT is GraphStore
/// or graphdb::SnapshotView, whose read APIs agree by construction.
template <typename StoreT>
AttackGraph attack_graph_from(const StoreT& store) {
  AttackGraph graph;
  graph.reserve(store.node_count(), store.rel_count());

  // The store may contain tombstones; map store ids to dense indices.
  std::vector<NodeIndex> remap(store.node_capacity(), kNoNodeIndex);
  for (NodeId id = 0; id < store.node_capacity(); ++id) {
    const auto& rec = store.node(id);
    if (rec.deleted) continue;
    ObjectKind kind = ObjectKind::kUser;
    bool kind_found = false;
    for (const auto label : rec.labels) {
      if (const auto parsed = parse_object_kind(store.label_name(label))) {
        kind = *parsed;
        kind_found = true;
        break;
      }
    }
    if (!kind_found) {
      throw std::runtime_error("from_store: node " + std::to_string(id) +
                               " has no recognized AD label");
    }
    std::int8_t tier = kNoTier;
    std::uint8_t flags = 0;
    if (const auto* t = store.node_property(id, "tier"); t && t->is_int()) {
      tier = static_cast<std::int8_t>(t->as_int());
    }
    if (const auto* a = store.node_property(id, "admin");
        a && a->is_bool() && a->as_bool()) {
      flags |= node_flag::kAdmin;
    }
    if (const auto* e = store.node_property(id, "enabled");
        e && e->is_bool() && e->as_bool()) {
      flags |= node_flag::kEnabled;
    }
    std::string name;
    if (const auto* n = store.node_property(id, "name"); n && n->is_string()) {
      name = n->as_string();
    }
    remap[id] = graph.add_named_node(kind, std::move(name), tier, flags);
    // Recover the Domain Admins marker by conventional name.
    if (kind == ObjectKind::kGroup && graph.name(remap[id]) == "DOMAIN ADMINS") {
      graph.set_domain_admins(remap[id]);
    }
    if (kind == ObjectKind::kDomain) graph.set_domain_node(remap[id]);
  }

  for (graphdb::RelId id = 0; id < store.rel_capacity(); ++id) {
    const auto& rec = store.rel(id);
    if (rec.deleted) continue;
    const auto kind = parse_edge_kind(store.rel_type_name(rec.type));
    if (!kind) {
      throw std::runtime_error("from_store: unknown relationship type " +
                               store.rel_type_name(rec.type));
    }
    bool violation = false;
    if (const auto key = store.find_key("violation")) {
      if (const auto* v = graphdb::get_property(rec.properties, *key);
          v && v->is_bool()) {
        violation = v->as_bool();
      }
    }
    graph.add_edge(remap[rec.source], remap[rec.target], *kind, violation);
  }
  return graph;
}

}  // namespace

AttackGraph from_store(const GraphStore& store) {
  ADSYNTH_SPAN("adcore.from_store");
  return attack_graph_from(store);
}

AttackGraph from_snapshot(const graphdb::SnapshotView& view) {
  ADSYNTH_SPAN("adcore.from_snapshot");
  return attack_graph_from(view);
}

}  // namespace adsynth::adcore
