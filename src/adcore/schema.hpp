// Active Directory domain model: the six basic object kinds (paper §II-A)
// and the BloodHound relationship vocabulary ADSynth emits, partitioned into
// ACL and non-ACL permissions exactly as §III does.
//
// The traversability table encodes identity-snowball attack semantics: an
// edge is traversable when an attacker controlling the source can come to
// control the target (MemberOf grants the group's privileges, HasSession
// lets a machine-owner harvest the logged-on user's credentials, ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adsynth::adcore {

/// The six basic AD object types (paper §II-A).
enum class ObjectKind : std::uint8_t {
  kDomain,
  kUser,
  kComputer,
  kGroup,
  kOU,
  kGPO,
};

inline constexpr std::size_t kObjectKindCount = 6;

/// BloodHound node label for a kind ("User", "Computer", ...).
std::string_view object_kind_label(ObjectKind kind);

/// Parses a BloodHound label; std::nullopt for unknown labels.
std::optional<ObjectKind> parse_object_kind(std::string_view label);

/// Relationship vocabulary.  Order is stable (serialized by name, never by
/// value, but tests rely on the enumeration covering all names below).
enum class EdgeKind : std::uint8_t {
  // --- structural -------------------------------------------------------
  kContains,      // OU/Domain -> contained object
  kGpLink,        // GPO -> OU
  kMemberOf,      // principal -> group
  // --- ACL permissions (paper: rights recorded in security descriptors) --
  kGenericAll,
  kGenericWrite,
  kWriteDacl,
  kWriteOwner,
  kOwns,
  kForceChangePassword,
  kAddMember,
  kAllExtendedRights,
  kDCSync,
  kGetChanges,
  kGetChangesAll,
  // --- non-ACL permissions (mostly rights on computers) ------------------
  kAdminTo,
  kCanRDP,
  kExecuteDCOM,
  kCanPSRemote,
  kSQLAdmin,
  kAllowedToDelegate,
  kHasSession,    // computer -> user (interactive logon session)
  kTrustedBy,     // domain -> domain (the source trusts the target)
};

inline constexpr std::size_t kEdgeKindCount = 22;

std::string_view edge_kind_name(EdgeKind kind);
std::optional<EdgeKind> parse_edge_kind(std::string_view name);

/// True for permissions recorded in an object's ACL (paper §III-A).
bool is_acl_permission(EdgeKind kind);

/// True for non-ACL permissions, "mostly permissions on computers".
bool is_non_acl_permission(EdgeKind kind);

/// True when an attacker controlling the edge's source can extend control
/// to its target (identity-snowball semantics).
bool is_traversable(EdgeKind kind);

/// The ACL permission kinds Algorithm 1 draws from when is_acl = true.
const std::vector<EdgeKind>& acl_permission_pool();

/// The non-ACL permission kinds used when is_acl = false (Algorithms 1 & 4).
const std::vector<EdgeKind>& non_acl_permission_pool();

/// Well-known RIDs of builtin domain groups.
namespace rid {
inline constexpr std::uint32_t kAdministrator = 500;
inline constexpr std::uint32_t kGuest = 501;
inline constexpr std::uint32_t kDomainAdmins = 512;
inline constexpr std::uint32_t kDomainUsers = 513;
inline constexpr std::uint32_t kDomainComputers = 515;
inline constexpr std::uint32_t kDomainControllers = 516;
inline constexpr std::uint32_t kEnterpriseAdmins = 519;
}  // namespace rid

}  // namespace adsynth::adcore
