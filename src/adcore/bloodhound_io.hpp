// BloodHound collector-style JSON export.
//
// SharpHound-era BloodHound ingests one JSON document per object class:
//
//   { "data": [ {object}, ... ], "meta": { "type": "users",
//     "count": N, "version": 4 } }
//
// Every object carries ObjectIdentifier plus a Properties map; containment
// and privilege data ride on the objects themselves (group "Members",
// computer "Sessions", OU "ChildObjects", ...).  This writer emits that
// shape from an AttackGraph-backed GraphStore, complementing the APOC row
// format (neo4j_io.hpp) that mirrors a database dump.
//
// Files written into `directory`: users.json, computers.json, groups.json,
// ous.json, gpos.json, domains.json.
#pragma once

#include <string>

#include "adcore/attack_graph.hpp"

namespace adsynth::adcore {

/// Writes the six collector documents.  Identifier assignment matches
/// to_store (same id_seed → same objectids).  Throws
/// std::runtime_error on I/O failure.
void export_bloodhound_collection(const AttackGraph& graph,
                                  const std::string& directory,
                                  const std::string& domain_fqdn = "corp.local",
                                  std::uint64_t id_seed = 0x5eed);

}  // namespace adsynth::adcore
