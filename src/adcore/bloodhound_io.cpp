#include "adcore/bloodhound_io.hpp"

#include <fstream>
#include <map>
#include <stdexcept>
#include <vector>

#include "util/ids.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace adsynth::adcore {

using util::JsonWriter;

namespace {

struct Identifiers {
  std::vector<std::string> object_id;  // GUID or SID string per node
};

/// Assigns identifiers exactly like adcore::to_store: a GUID per node and,
/// for security principals, a SID used as the BloodHound ObjectIdentifier.
Identifiers assign_ids(const AttackGraph& graph, std::uint64_t id_seed) {
  util::Rng rng(id_seed);
  util::SidFactory sids(rng);
  Identifiers ids;
  ids.object_id.reserve(graph.node_count());
  for (NodeIndex i = 0; i < graph.node_count(); ++i) {
    const std::string guid = util::Guid::random(rng).to_string();
    switch (graph.kind(i)) {
      case ObjectKind::kUser:
      case ObjectKind::kComputer:
      case ObjectKind::kGroup:
        ids.object_id.push_back(sids.next().to_string());
        break;
      case ObjectKind::kDomain:
        ids.object_id.push_back(sids.well_known(0).domain_part());
        break;
      default:
        ids.object_id.push_back(util::to_upper(guid));
        break;
    }
  }
  return ids;
}

/// Per-node relationship material gathered in one edge pass.
struct Adjacency {
  std::map<NodeIndex, std::vector<NodeIndex>> group_members;   // group -> members
  std::map<NodeIndex, std::vector<NodeIndex>> sessions;        // computer -> users
  std::map<NodeIndex, std::vector<NodeIndex>> contains;        // container -> children
  std::map<NodeIndex, std::vector<NodeIndex>> gplinks;         // gpo -> ous
  std::map<NodeIndex, std::vector<std::pair<NodeIndex, EdgeKind>>> aces;
};

Adjacency gather(const AttackGraph& graph) {
  Adjacency adj;
  for (const auto& e : graph.edges()) {
    switch (e.kind) {
      case EdgeKind::kMemberOf: adj.group_members[e.target].push_back(e.source); break;
      case EdgeKind::kHasSession: adj.sessions[e.source].push_back(e.target); break;
      case EdgeKind::kContains: adj.contains[e.source].push_back(e.target); break;
      case EdgeKind::kGpLink: adj.gplinks[e.source].push_back(e.target); break;
      default:
        if (is_acl_permission(e.kind) ||
            is_non_acl_permission(e.kind)) {
          // ACEs are stored on the TARGET object (who has rights on me).
          adj.aces[e.target].emplace_back(e.source, e.kind);
        }
        break;
    }
  }
  return adj;
}

const char* kind_label(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::kUser: return "User";
    case ObjectKind::kComputer: return "Computer";
    case ObjectKind::kGroup: return "Group";
    case ObjectKind::kOU: return "OU";
    case ObjectKind::kGPO: return "GPO";
    case ObjectKind::kDomain: return "Domain";
  }
  return "Base";
}

void write_object(JsonWriter& w, const AttackGraph& graph,
                  const Identifiers& ids, const Adjacency& adj,
                  const std::string& domain_upper, NodeIndex i) {
  w.begin_object();
  w.member("ObjectIdentifier", ids.object_id[i]);
  w.key("Properties");
  w.begin_object();
  const std::string& name = graph.name(i);
  w.member("name", name.empty()
                       ? std::string(kind_label(graph.kind(i))) + "-" +
                             std::to_string(i)
                       : name);
  w.member("domain", domain_upper);
  if (graph.tier(i) != kNoTier) {
    w.member("tier", static_cast<std::int64_t>(graph.tier(i)));
  }
  if (graph.kind(i) == ObjectKind::kUser) {
    w.member("enabled", graph.has_flag(i, node_flag::kEnabled));
    w.member("admincount", graph.has_flag(i, node_flag::kAdmin));
  }
  w.end_object();

  // Relationship payloads by object class.
  if (graph.kind(i) == ObjectKind::kGroup) {
    w.key("Members");
    w.begin_array();
    if (const auto it = adj.group_members.find(i);
        it != adj.group_members.end()) {
      for (const NodeIndex m : it->second) {
        w.begin_object();
        w.member("ObjectIdentifier", ids.object_id[m]);
        w.member("ObjectType", kind_label(graph.kind(m)));
        w.end_object();
      }
    }
    w.end_array();
  }
  if (graph.kind(i) == ObjectKind::kComputer) {
    w.key("Sessions");
    w.begin_array();
    if (const auto it = adj.sessions.find(i); it != adj.sessions.end()) {
      for (const NodeIndex u : it->second) {
        w.begin_object();
        w.member("UserSID", ids.object_id[u]);
        w.member("ComputerSID", ids.object_id[i]);
        w.end_object();
      }
    }
    w.end_array();
  }
  if (graph.kind(i) == ObjectKind::kOU ||
      graph.kind(i) == ObjectKind::kDomain) {
    w.key("ChildObjects");
    w.begin_array();
    if (const auto it = adj.contains.find(i); it != adj.contains.end()) {
      for (const NodeIndex c : it->second) {
        w.begin_object();
        w.member("ObjectIdentifier", ids.object_id[c]);
        w.member("ObjectType", kind_label(graph.kind(c)));
        w.end_object();
      }
    }
    w.end_array();
  }
  if (graph.kind(i) == ObjectKind::kGPO) {
    w.key("Links");
    w.begin_array();
    if (const auto it = adj.gplinks.find(i); it != adj.gplinks.end()) {
      for (const NodeIndex ou : it->second) {
        w.begin_object();
        w.member("Guid", ids.object_id[ou]);
        w.member("IsEnforced", false);
        w.end_object();
      }
    }
    w.end_array();
  }
  // Inbound ACEs (rights other principals hold on this object).
  w.key("Aces");
  w.begin_array();
  if (const auto it = adj.aces.find(i); it != adj.aces.end()) {
    for (const auto& [principal, kind] : it->second) {
      w.begin_object();
      w.member("PrincipalSID", ids.object_id[principal]);
      w.member("PrincipalType", kind_label(graph.kind(principal)));
      w.member("RightName", std::string(edge_kind_name(kind)));
      w.member("IsInherited", false);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
}

void write_class_file(const AttackGraph& graph, const Identifiers& ids,
                      const Adjacency& adj, const std::string& domain_upper,
                      ObjectKind kind, const std::string& path,
                      const char* meta_type) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  JsonWriter w(out);
  w.begin_object();
  w.key("data");
  w.begin_array();
  std::size_t count = 0;
  for (NodeIndex i = 0; i < graph.node_count(); ++i) {
    if (graph.kind(i) != kind) continue;
    write_object(w, graph, ids, adj, domain_upper, i);
    ++count;
  }
  w.end_array();
  w.key("meta");
  w.begin_object();
  w.member("type", meta_type);
  w.member("count", static_cast<std::int64_t>(count));
  w.member("version", std::int64_t{4});
  w.end_object();
  w.end_object();
  out << '\n';
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

void export_bloodhound_collection(const AttackGraph& graph,
                                  const std::string& directory,
                                  const std::string& domain_fqdn,
                                  std::uint64_t id_seed) {
  ADSYNTH_SPAN("adcore.bloodhound_export");
  const Identifiers ids = assign_ids(graph, id_seed);
  const Adjacency adj = gather(graph);
  const std::string domain_upper = util::to_upper(domain_fqdn);
  const struct {
    ObjectKind kind;
    const char* file;
    const char* type;
  } classes[] = {
      {ObjectKind::kUser, "users.json", "users"},
      {ObjectKind::kComputer, "computers.json", "computers"},
      {ObjectKind::kGroup, "groups.json", "groups"},
      {ObjectKind::kOU, "ous.json", "ous"},
      {ObjectKind::kGPO, "gpos.json", "gpos"},
      {ObjectKind::kDomain, "domains.json", "domains"},
  };
  for (const auto& c : classes) {
    write_class_file(graph, ids, adj, domain_upper, c.kind,
                     directory + "/" + c.file, c.type);
  }
}

}  // namespace adsynth::adcore
