#include "adcore/attack_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace adsynth::adcore {

NodeIndex AttackGraph::add_node(ObjectKind kind, std::int8_t tier,
                                std::uint8_t flags) {
  const auto id = static_cast<NodeIndex>(kinds_.size());
  kinds_.push_back(kind);
  tiers_.push_back(tier);
  flags_.push_back(flags);
  names_.emplace_back();
  return id;
}

NodeIndex AttackGraph::add_named_node(ObjectKind kind, std::string name,
                                      std::int8_t tier, std::uint8_t flags) {
  const NodeIndex id = add_node(kind, tier, flags);
  names_[id] = std::move(name);
  return id;
}

void AttackGraph::add_edge(NodeIndex source, NodeIndex target, EdgeKind kind,
                           bool violation) {
  if (source >= kinds_.size() || target >= kinds_.size()) {
    throw std::out_of_range("AttackGraph::add_edge: invalid endpoint");
  }
  edges_.push_back(AttackEdge{source, target, kind, violation});
}

void AttackGraph::append_edges(const std::vector<AttackEdge>& edges,
                               NodeIndex offset) {
  NodeIndex max_endpoint = 0;
  for (const AttackEdge& e : edges) {
    max_endpoint = std::max({max_endpoint, e.source, e.target});
  }
  if (!edges.empty() &&
      static_cast<std::size_t>(max_endpoint) + offset >= kinds_.size()) {
    throw std::out_of_range("AttackGraph::append_edges: invalid endpoint");
  }
  edges_.reserve(edges_.size() + edges.size());
  for (const AttackEdge& e : edges) {
    edges_.push_back(AttackEdge{static_cast<NodeIndex>(e.source + offset),
                                static_cast<NodeIndex>(e.target + offset),
                                e.kind, e.violation});
  }
}

const std::string& AttackGraph::name(NodeIndex n) const {
  return names_.at(n);
}

void AttackGraph::set_name(NodeIndex n, std::string name) {
  names_.at(n) = std::move(name);
}

std::vector<NodeIndex> AttackGraph::nodes_of_kind(ObjectKind kind) const {
  std::vector<NodeIndex> out;
  for (NodeIndex i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == kind) out.push_back(i);
  }
  return out;
}

double AttackGraph::density() const {
  const double v = static_cast<double>(node_count());
  if (v < 2.0) return 0.0;
  return static_cast<double>(edge_count()) / (v * (v - 1.0));
}

std::size_t AttackGraph::violation_count() const {
  std::size_t n = 0;
  for (const auto& e : edges_) n += e.violation ? 1 : 0;
  return n;
}

void AttackGraph::reserve(std::size_t nodes, std::size_t edges) {
  kinds_.reserve(nodes);
  tiers_.reserve(nodes);
  flags_.reserve(nodes);
  names_.reserve(nodes);
  edges_.reserve(edges);
}

}  // namespace adsynth::adcore
