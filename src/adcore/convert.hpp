// Conversions between the compact AttackGraph and the property-graph store
// (for Neo4j-JSON export/import and Cypher-lite querying).
#pragma once

#include "adcore/attack_graph.hpp"
#include "graphdb/snapshot.hpp"
#include "graphdb/store.hpp"

namespace adsynth::adcore {

/// Materializes an AttackGraph into a GraphStore with BloodHound-style
/// labels and properties: every node gets `name` (falling back to
/// "<Kind>-<index>"), an `objectid` GUID, `tier` when assigned, and
/// flag-derived booleans (`admin`, `enabled`, ...).  Security principals
/// (users, computers, groups) additionally carry an `objectsid` under a
/// shared domain SID; the domain node carries the domain SID itself.
/// Identifiers derive deterministically from `id_seed`, so the same graph
/// and seed export byte-identical files.  Violation edges carry
/// `violation: true`.
graphdb::GraphStore to_store(const AttackGraph& graph,
                             const std::string& domain_fqdn = "corp.local",
                             std::uint64_t id_seed = 0x5eed);

/// Reads a GraphStore (e.g. freshly imported from APOC JSON) back into an
/// AttackGraph.  Unknown labels/relationship types throw std::runtime_error;
/// tier/flags are restored from properties when present.
AttackGraph from_store(const graphdb::GraphStore& store);

/// from_store asked of an immutable snapshot — the same reader body
/// compiled against SnapshotView, so analytics can rebuild an AttackGraph
/// from a committed epoch while the writer keeps mutating the store.
/// Produces the identical AttackGraph from_store would for the state the
/// snapshot captured.
AttackGraph from_snapshot(const graphdb::SnapshotView& view);

}  // namespace adsynth::adcore
