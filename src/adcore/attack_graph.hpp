// The element-level AD attack graph: the common exchange type produced by
// all three generators (ADSynth, DBCreator port, ADSimulator port) and
// consumed by the analytics and defense layers.
//
// Storage is column-oriented and index-based so that million-node graphs
// stay compact: per-node kind/tier/flag columns, a flat edge list, and an
// optional name column (generators fill it; analytics never needs it).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "adcore/schema.hpp"

namespace adsynth::adcore {

using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kNoNodeIndex =
    std::numeric_limits<NodeIndex>::max();

/// Per-node flag bits.
namespace node_flag {
inline constexpr std::uint8_t kAdmin = 1u << 0;    // administrative account
inline constexpr std::uint8_t kEnabled = 1u << 1;  // enabled user account
inline constexpr std::uint8_t kServer = 1u << 2;   // server computer
inline constexpr std::uint8_t kPaw = 1u << 3;      // privileged workstation
inline constexpr std::uint8_t kSecurityGroup = 1u << 4;
inline constexpr std::uint8_t kDistributionGroup = 1u << 5;
/// Set on edges... (unused on nodes) — reserved.
}  // namespace node_flag

/// Tier value for objects outside the tier model (baseline generators).
inline constexpr std::int8_t kNoTier = -1;

struct AttackEdge {
  NodeIndex source = kNoNodeIndex;
  NodeIndex target = kNoNodeIndex;
  EdgeKind kind = EdgeKind::kContains;
  /// True when the edge was produced by the misconfiguration stage
  /// (Algorithms 3 & 4) rather than by best-practice generation.
  bool violation = false;

  bool operator==(const AttackEdge&) const = default;
};

class AttackGraph {
 public:
  /// Appends a node; returns its index.  `tier` may be kNoTier.
  NodeIndex add_node(ObjectKind kind, std::int8_t tier = kNoTier,
                     std::uint8_t flags = 0);

  /// Appends a node with a display name (kept in a parallel column).
  NodeIndex add_named_node(ObjectKind kind, std::string name,
                           std::int8_t tier = kNoTier,
                           std::uint8_t flags = 0);

  void add_edge(NodeIndex source, NodeIndex target, EdgeKind kind,
                bool violation = false);

  /// Bulk append of another graph's edge list, endpoints shifted by
  /// `offset` (the forest merge path).  One bounds validation for the
  /// whole block instead of two range checks per edge.
  void append_edges(const std::vector<AttackEdge>& edges, NodeIndex offset);

  std::size_t node_count() const { return kinds_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  ObjectKind kind(NodeIndex n) const { return kinds_.at(n); }
  std::int8_t tier(NodeIndex n) const { return tiers_.at(n); }
  std::uint8_t flags(NodeIndex n) const { return flags_.at(n); }
  bool has_flag(NodeIndex n, std::uint8_t flag) const {
    return (flags_.at(n) & flag) != 0;
  }

  /// Display name; empty when the generator skipped names.
  const std::string& name(NodeIndex n) const;
  void set_name(NodeIndex n, std::string name);

  const std::vector<AttackEdge>& edges() const { return edges_; }
  const std::vector<ObjectKind>& kinds() const { return kinds_; }

  /// All node indices of a kind (scan; generators cache their own lists).
  std::vector<NodeIndex> nodes_of_kind(ObjectKind kind) const;

  /// The Domain Admins group — the attack target in every experiment.
  /// kNoNodeIndex until a generator sets it.
  NodeIndex domain_admins() const { return domain_admins_; }
  void set_domain_admins(NodeIndex n) { domain_admins_ = n; }

  /// The domain head object, when the generator modelled one.
  NodeIndex domain_node() const { return domain_node_; }
  void set_domain_node(NodeIndex n) { domain_node_ = n; }

  /// Graph density |E| / (|V|·(|V|−1)) as defined in paper §IV-B.
  double density() const;

  /// Count of edges from the misconfiguration stage.
  std::size_t violation_count() const;

  /// Reserves node/edge capacity up front (generators know their sizes).
  void reserve(std::size_t nodes, std::size_t edges);

 private:
  std::vector<ObjectKind> kinds_;
  std::vector<std::int8_t> tiers_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::string> names_;
  std::vector<AttackEdge> edges_;
  NodeIndex domain_admins_ = kNoNodeIndex;
  NodeIndex domain_node_ = kNoNodeIndex;
};

}  // namespace adsynth::adcore
