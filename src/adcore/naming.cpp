#include "adcore/naming.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace adsynth::adcore {

const std::vector<std::string>& default_departments() {
  static const std::vector<std::string> v{
      "IT",        "HR",        "Finance", "Engineering", "Sales",
      "Marketing", "Legal",     "Research", "Operations",  "Support",
  };
  return v;
}

const std::vector<std::string>& default_locations() {
  static const std::vector<std::string> v{
      "CityA", "CityB", "CityC", "CityD",
  };
  return v;
}

const std::vector<std::string>& first_names() {
  static const std::vector<std::string> v{
      "James",  "Mary",    "Robert",  "Patricia", "John",   "Jennifer",
      "Michael","Linda",   "David",   "Elizabeth","William","Barbara",
      "Richard","Susan",   "Joseph",  "Jessica",  "Thomas", "Sarah",
      "Charles","Karen",   "Daniel",  "Lisa",     "Matthew","Nancy",
      "Anthony","Betty",   "Mark",    "Sandra",   "Donald", "Margaret",
      "Steven", "Ashley",  "Andrew",  "Kimberly", "Paul",   "Emily",
      "Joshua", "Donna",   "Kenneth", "Michelle", "Kevin",  "Carol",
      "Brian",  "Amanda",  "George",  "Dorothy",  "Timothy","Melissa",
  };
  return v;
}

const std::vector<std::string>& last_names() {
  static const std::vector<std::string> v{
      "Smith",   "Johnson", "Williams", "Brown",   "Jones",   "Garcia",
      "Miller",  "Davis",   "Rodriguez","Martinez","Hernandez","Lopez",
      "Gonzalez","Wilson",  "Anderson", "Thomas",  "Taylor",  "Moore",
      "Jackson", "Martin",  "Lee",      "Perez",   "Thompson","White",
      "Harris",  "Sanchez", "Clark",    "Ramirez", "Lewis",   "Robinson",
      "Walker",  "Young",   "Allen",    "King",    "Wright",  "Scott",
      "Torres",  "Nguyen",  "Hill",     "Flores",  "Green",   "Adams",
      "Nelson",  "Baker",   "Hall",     "Rivera",  "Campbell","Mitchell",
  };
  return v;
}

const std::vector<std::string>& workstation_os_pool() {
  static const std::vector<std::string> v{
      "Windows 10 Pro", "Windows 10 Enterprise", "Windows 11 Pro",
      "Windows 11 Enterprise",
  };
  return v;
}

const std::vector<std::string>& server_os_pool() {
  static const std::vector<std::string> v{
      "Windows Server 2016 Standard", "Windows Server 2019 Standard",
      "Windows Server 2019 Datacenter", "Windows Server 2022 Standard",
  };
  return v;
}

std::string make_user_logon_name(util::Rng& rng, std::uint32_t ordinal) {
  const std::string& first = rng.pick(first_names());
  const std::string& last = rng.pick(last_names());
  char buf[16];
  std::snprintf(buf, sizeof buf, "%05u", ordinal);
  return util::to_upper(first.substr(0, 1) + last) + buf;
}

std::string make_computer_name(std::string_view prefix,
                               std::uint32_t ordinal) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%05u", ordinal);
  return util::to_upper(std::string(prefix)) + buf;
}

std::string make_ou_dn(const std::vector<std::string>& path_from_leaf,
                       const std::string& domain_dn) {
  std::string dn;
  for (const auto& part : path_from_leaf) {
    dn += "OU=" + part + ",";
  }
  return dn + domain_dn;
}

std::string domain_to_dn(const std::string& domain_fqdn) {
  const auto parts = util::split(domain_fqdn, '.');
  std::vector<std::string> dcs;
  dcs.reserve(parts.size());
  for (const auto& p : parts) dcs.push_back("DC=" + p);
  return util::join(dcs, ",");
}

}  // namespace adsynth::adcore
