// C++ port of ADSimulator's generation logic (the second baseline).
//
// ADSimulator models a richer default domain than DBCreator (an OU per
// location, default groups, probabilistic per-object attributes) but, as
// the paper observes, still assigns access control at random and has no
// tier model.  Like the original it drives the database one statement per
// object/edge; unlike our DBCreator port it creates property indexes first
// (near-linear scaling), which is why the paper could push it to 100k nodes
// while DBCreator stopped at 10k — and why it still trails ADSynth by the
// per-transaction constant.
#pragma once

#include <cstdint>

#include "adcore/attack_graph.hpp"
#include "baselines/dbcreator.hpp"  // BaselineRun

namespace adsynth::baselines {

struct AdSimulatorConfig {
  std::size_t target_nodes = 1000;
  double user_share = 0.50;
  double computer_share = 0.35;
  double group_share = 0.12;  // remainder: OUs, GPOs, domain
  std::uint32_t num_locations = 4;
  std::uint32_t max_groups_per_user = 4;
  /// Probability that a computer has an interactive session at all, and
  /// sessions drawn per computer when it does.
  double session_probability = 0.6;
  std::uint32_t max_sessions_per_computer = 3;
  /// Random permission edges as a fraction of target_nodes.
  double acl_ratio = 0.20;
  /// Probability a user can RDP to a random computer.
  double rdp_probability = 0.10;
  std::uint64_t seed = 1;
};

BaselineRun run_adsimulator(const AdSimulatorConfig& config);

adcore::AttackGraph adsimulator_graph(const AdSimulatorConfig& config);

}  // namespace adsynth::baselines
