#include "baselines/adsimulator.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "adcore/convert.hpp"
#include "graphdb/cypher.hpp"
#include "util/rng.hpp"

namespace adsynth::baselines {

using graphdb::CypherSession;

namespace {

std::string q(const std::string& s) { return "'" + s + "'"; }

}  // namespace

BaselineRun run_adsimulator(const AdSimulatorConfig& config) {
  util::Rng rng(config.seed);
  BaselineRun run;
  CypherSession session(run.store);

  // ADSimulator prepares the schema first; the indexes keep endpoint
  // lookups constant-time, which is what lets it scale past DBCreator.
  session.run("CREATE INDEX ON :User(name)");
  session.run("CREATE INDEX ON :Computer(name)");
  session.run("CREATE INDEX ON :Group(name)");
  session.run("CREATE INDEX ON :OU(name)");

  const std::size_t n = config.target_nodes;
  const auto users = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * config.user_share));
  const auto computers = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * config.computer_share));
  const auto groups = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * config.group_share));

  std::vector<std::string> user_names;
  std::vector<std::string> computer_names;
  std::vector<std::string> group_names;
  std::vector<std::string> ou_names;
  user_names.reserve(users);
  computer_names.reserve(computers);
  group_names.reserve(groups);

  session.run("CREATE (n:Domain {name: 'SIMLAB.LOCAL'})");
  session.run("CREATE (n:Group {name: 'DOMAIN ADMINS'})");
  group_names.push_back("DOMAIN ADMINS");
  session.run("CREATE (n:Group {name: 'DOMAIN USERS'})");
  group_names.push_back("DOMAIN USERS");
  session.run(
      "MATCH (a:Group {name: 'DOMAIN ADMINS'}), (b:Domain {name: "
      "'SIMLAB.LOCAL'}) CREATE (a)-[:GenericAll]->(b)");

  // One OU per location (ADSimulator's geographic default layout).
  for (std::uint32_t l = 0; l < config.num_locations; ++l) {
    std::string name = "LOCATION" + std::to_string(l) + "@SIMLAB.LOCAL";
    session.run("CREATE (n:OU {name: " + q(name) + "})");
    ou_names.push_back(std::move(name));
  }

  for (std::size_t i = 0; i < users; ++i) {
    std::string name = "SIMUSER" + std::to_string(i) + "@SIMLAB.LOCAL";
    const bool enabled = rng.chance(0.9);
    session.run("CREATE (n:User {name: " + q(name) +
                ", enabled: " + (enabled ? "true" : "false") + "})");
    user_names.push_back(std::move(name));
  }
  for (std::size_t i = 0; i < computers; ++i) {
    std::string name = "SIMCOMP" + std::to_string(i) + ".SIMLAB.LOCAL";
    session.run("CREATE (n:Computer {name: " + q(name) + "})");
    computer_names.push_back(std::move(name));
  }
  for (std::size_t i = 2; i < groups; ++i) {
    std::string name = "SIMGROUP" + std::to_string(i) + "@SIMLAB.LOCAL";
    session.run("CREATE (n:Group {name: " + q(name) + "})");
    group_names.push_back(std::move(name));
  }

  // Containment: objects into a random location OU.
  for (const std::string& user : user_names) {
    const std::string& ou = rng.pick(ou_names);
    session.run("MATCH (a:OU {name: " + q(ou) + "}), (b:User {name: " +
                q(user) + "}) CREATE (a)-[:Contains]->(b)");
  }
  for (const std::string& comp : computer_names) {
    const std::string& ou = rng.pick(ou_names);
    session.run("MATCH (a:OU {name: " + q(ou) + "}), (b:Computer {name: " +
                q(comp) + "}) CREATE (a)-[:Contains]->(b)");
  }

  // Memberships: everyone in Domain Users plus random groups.
  for (const std::string& user : user_names) {
    session.run("MATCH (a:User {name: " + q(user) +
                "}), (b:Group {name: 'DOMAIN USERS'}) CREATE "
                "(a)-[:MemberOf]->(b)");
    const std::uint32_t count = static_cast<std::uint32_t>(
        rng.uniform(0, config.max_groups_per_user));
    for (std::uint32_t j = 0; j < count; ++j) {
      const std::string& group = rng.pick(group_names);
      session.run("MATCH (a:User {name: " + q(user) + "}), (b:Group {name: " +
                  q(group) + "}) CREATE (a)-[:MemberOf]->(b)");
    }
  }

  // Local admin groups per computer + sessions.
  for (const std::string& comp : computer_names) {
    const std::string& group = rng.pick(group_names);
    session.run("MATCH (a:Group {name: " + q(group) +
                "}), (b:Computer {name: " + q(comp) +
                "}) CREATE (a)-[:AdminTo]->(b)");
    if (rng.chance(config.session_probability) && !user_names.empty()) {
      const std::uint32_t count = static_cast<std::uint32_t>(
          rng.uniform(1, config.max_sessions_per_computer));
      for (std::uint32_t j = 0; j < count; ++j) {
        const std::string& user = rng.pick(user_names);
        session.run("MATCH (a:Computer {name: " + q(comp) +
                    "}), (b:User {name: " + q(user) +
                    "}) CREATE (a)-[:HasSession]->(b)");
      }
    }
  }

  // Random permissions (ACL and non-ACL), no tier discipline.
  static const char* kAcls[] = {"GenericAll",  "GenericWrite",
                                "WriteDacl",   "WriteOwner",
                                "AddMember",   "ForceChangePassword",
                                "Owns",        "AllExtendedRights"};
  const auto acl_count = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * config.acl_ratio));
  for (std::size_t i = 0; i < acl_count; ++i) {
    const bool src_user = rng.chance(0.4);
    const std::string& src =
        src_user ? rng.pick(user_names) : rng.pick(group_names);
    const char* src_label = src_user ? "User" : "Group";
    const double pick = rng.real();
    const std::string* dst;
    const char* dst_label;
    if (pick < 0.4 && !user_names.empty()) {
      dst = &rng.pick(user_names);
      dst_label = "User";
    } else if (pick < 0.7 && !computer_names.empty()) {
      dst = &rng.pick(computer_names);
      dst_label = "Computer";
    } else {
      dst = &rng.pick(group_names);
      dst_label = "Group";
    }
    if (*dst == src) continue;
    const char* acl = kAcls[rng.index(std::size(kAcls))];
    session.run(std::string("MATCH (a:") + src_label + " {name: " + q(src) +
                "}), (b:" + dst_label + " {name: " + q(*dst) + "}) CREATE " +
                "(a)-[:" + acl + "]->(b)");
  }

  // CanRDP sprinkles.
  for (const std::string& user : user_names) {
    if (rng.chance(config.rdp_probability) && !computer_names.empty()) {
      const std::string& comp = rng.pick(computer_names);
      session.run("MATCH (a:User {name: " + q(user) +
                  "}), (b:Computer {name: " + q(comp) +
                  "}) CREATE (a)-[:CanRDP]->(b)");
    }
  }

  // Domain Admins: dedicated administrative accounts with sessions on
  // random machines (ADSimulator's default privileged population).
  for (std::size_t i = 0; i < std::max<std::size_t>(2, users / 1000); ++i) {
    const std::string name = "SIMADMIN" + std::to_string(i) + "@SIMLAB.LOCAL";
    session.run("CREATE (n:User {name: " + q(name) +
                ", enabled: true, admin: true})");
    session.run("MATCH (a:User {name: " + q(name) +
                "}), (b:Group {name: 'DOMAIN ADMINS'}) CREATE "
                "(a)-[:MemberOf]->(b)");
    const std::uint32_t sessions = static_cast<std::uint32_t>(
        rng.uniform(1, 3));
    for (std::uint32_t s = 0; s < sessions && !computer_names.empty(); ++s) {
      const std::string& comp = rng.pick(computer_names);
      session.run("MATCH (a:Computer {name: " + q(comp) +
                  "}), (b:User {name: " + q(name) +
                  "}) CREATE (a)-[:HasSession]->(b)");
    }
  }

  run.statements = session.statements();
  run.transactions = session.transactions();
  return run;
}

adcore::AttackGraph adsimulator_graph(const AdSimulatorConfig& config) {
  BaselineRun run = run_adsimulator(config);
  return adcore::from_store(run.store);
}

}  // namespace adsynth::baselines
