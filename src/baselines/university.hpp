// The University reference graph.
//
// The paper validates ADSynth against a confidential University AD system
// (100K nodes, 1.2M edges).  That dataset cannot be released, so this
// module generates a synthetic stand-in calibrated to every statistic the
// paper reports about it (see DESIGN.md §3, substitution 1):
//
//   * ≈30% users (the paper mentions 30K users), computer-heavy remainder
//     (teaching labs), density ≈ 1e-4;
//   * long-tailed session distribution: most users log on to 1–2 machines,
//     teaching staff 3–4, a tiny tail up to ≈20 (Fig. 8's University curve);
//   * 0.02% of regular users with an attack path to Domain Admins (Fig. 9);
//   * a small number of management servers through which all those paths
//     funnel, yielding choke points with RP rates above 80% (Fig. 10c).
#pragma once

#include <cstdint>

#include "adcore/attack_graph.hpp"

namespace adsynth::baselines {

struct UniversityConfig {
  std::size_t target_nodes = 100'000;
  double user_share = 0.30;
  double group_share = 0.025;
  /// Fraction of regular users with an attack path to Domain Admins.
  double breach_fraction = 0.0002;  // 0.02%
  /// Management ("jump") servers hosting Domain Admin sessions; breached
  /// users are routed predominantly through the first, creating the >80%
  /// choke point of Fig. 10c.
  std::uint32_t num_management_servers = 2;
  std::uint32_t num_domain_admins = 2;
  /// Course/lab groups' mean CanRDP fan-out, as a multiple of computers.
  double rdp_edges_per_computer = 4.0;
  std::uint64_t seed = 7;
};

adcore::AttackGraph university_graph(const UniversityConfig& config = {});

}  // namespace adsynth::baselines
