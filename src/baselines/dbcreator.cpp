#include "baselines/dbcreator.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "adcore/convert.hpp"
#include "graphdb/cypher.hpp"
#include "util/rng.hpp"

namespace adsynth::baselines {

using graphdb::CypherSession;

namespace {

std::string q(const std::string& s) { return "'" + s + "'"; }

}  // namespace

BaselineRun run_dbcreator(const DbCreatorConfig& config) {
  util::Rng rng(config.seed);
  BaselineRun run;
  CypherSession session(run.store);

  const std::size_t n = config.target_nodes;
  const auto users = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * config.user_share));
  const auto computers = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * config.computer_share));
  const auto groups = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * config.group_share));
  const std::size_t structural = n > users + computers + groups
                                     ? n - users - computers - groups
                                     : 1;

  std::vector<std::string> user_names;
  std::vector<std::string> computer_names;
  std::vector<std::string> group_names;
  user_names.reserve(users);
  computer_names.reserve(computers);
  group_names.reserve(groups);

  // Domain head and Domain Admins (DBCreator creates the default groups).
  session.run("CREATE (n:Domain {name: 'TESTLAB.LOCAL'})");
  session.run("CREATE (n:Group {name: 'DOMAIN ADMINS'})");
  group_names.push_back("DOMAIN ADMINS");
  session.run(
      "MATCH (a:Group {name: 'DOMAIN ADMINS'}), (b:Domain {name: "
      "'TESTLAB.LOCAL'}) CREATE (a)-[:GenericAll]->(b)");

  // --- node creation, one statement per object ----------------------------
  for (std::size_t i = 0; i < users; ++i) {
    std::string name = "USER" + std::to_string(i) + "@TESTLAB.LOCAL";
    session.run("CREATE (n:User {name: " + q(name) + ", enabled: true})");
    user_names.push_back(std::move(name));
  }
  for (std::size_t i = 0; i < computers; ++i) {
    std::string name = "COMP" + std::to_string(i) + ".TESTLAB.LOCAL";
    session.run("CREATE (n:Computer {name: " + q(name) + "})");
    computer_names.push_back(std::move(name));
  }
  for (std::size_t i = 1; i < groups; ++i) {  // index 0 is Domain Admins
    std::string name = "GROUP" + std::to_string(i) + "@TESTLAB.LOCAL";
    session.run("CREATE (n:Group {name: " + q(name) + "})");
    group_names.push_back(std::move(name));
  }
  for (std::size_t i = 0; i + 1 < structural; ++i) {
    session.run("CREATE (n:OU {name: 'OU" + std::to_string(i) +
                "@TESTLAB.LOCAL'})");
  }

  // --- group membership: users into random groups -------------------------
  for (const std::string& user : user_names) {
    const std::uint32_t count = static_cast<std::uint32_t>(
        rng.uniform(1, config.max_groups_per_user));
    for (std::uint32_t j = 0; j < count; ++j) {
      const std::string& group = rng.pick(group_names);
      session.run("MATCH (a:User {name: " + q(user) + "}), (b:Group {name: " +
                  q(group) + "}) CREATE (a)-[:MemberOf]->(b)");
    }
  }
  // Nested groups.
  for (const std::string& group : group_names) {
    if (group == "DOMAIN ADMINS") continue;
    if (rng.chance(config.nested_group_probability)) {
      const std::string& parent = rng.pick(group_names);
      if (parent == group) continue;
      session.run("MATCH (a:Group {name: " + q(group) +
                  "}), (b:Group {name: " + q(parent) +
                  "}) CREATE (a)-[:MemberOf]->(b)");
    }
  }

  // --- local admins: a random group AdminTo each computer ------------------
  for (const std::string& comp : computer_names) {
    const std::string& group = rng.pick(group_names);
    session.run("MATCH (a:Group {name: " + q(group) +
                "}), (b:Computer {name: " + q(comp) +
                "}) CREATE (a)-[:AdminTo]->(b)");
  }

  // --- sessions: random users on each computer -----------------------------
  if (!user_names.empty()) {
    for (const std::string& comp : computer_names) {
      const std::uint32_t count = static_cast<std::uint32_t>(
          rng.uniform(0, config.max_sessions_per_computer));
      for (std::uint32_t j = 0; j < count; ++j) {
        const std::string& user = rng.pick(user_names);
        session.run("MATCH (a:Computer {name: " + q(comp) +
                    "}), (b:User {name: " + q(user) +
                    "}) CREATE (a)-[:HasSession]->(b)");
      }
    }
  }

  // --- random ACLs: uniformly chosen principals, targets and rights -------
  static const char* kAcls[] = {"GenericAll",         "GenericWrite",
                                "WriteOwner",         "WriteDacl",
                                "AddMember",          "ForceChangePassword",
                                "Owns"};
  const auto acl_count = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * config.acl_ratio));
  for (std::size_t i = 0; i < acl_count; ++i) {
    // Principal: a user or a group; target: user, group or computer.
    const bool src_user = rng.chance(0.5);
    const std::string& src = src_user ? rng.pick(user_names)
                                      : rng.pick(group_names);
    const char* src_label = src_user ? "User" : "Group";
    const double pick = rng.real();
    const std::string* dst = nullptr;
    const char* dst_label = nullptr;
    if (pick < 0.34 && !user_names.empty()) {
      dst = &rng.pick(user_names);
      dst_label = "User";
    } else if (pick < 0.67 && !computer_names.empty()) {
      dst = &rng.pick(computer_names);
      dst_label = "Computer";
    } else {
      dst = &rng.pick(group_names);
      dst_label = "Group";
    }
    if (*dst == src) continue;
    const char* acl = kAcls[rng.index(std::size(kAcls))];
    session.run(std::string("MATCH (a:") + src_label + " {name: " + q(src) +
                "}), (b:" + dst_label + " {name: " + q(*dst) + "}) CREATE " +
                "(a)-[:" + acl + "]->(b)");
  }

  // Domain Admins: dedicated administrative accounts (DBCreator creates a
  // separate privileged population) whose interactive sessions on random
  // computers are the classic snowball entry points.
  for (std::size_t i = 0; i < std::max<std::size_t>(2, users / 200); ++i) {
    const std::string name = "DAUSER" + std::to_string(i) + "@TESTLAB.LOCAL";
    session.run("CREATE (n:User {name: " + q(name) +
                ", enabled: true, admin: true})");
    session.run("MATCH (a:User {name: " + q(name) +
                "}), (b:Group {name: 'DOMAIN ADMINS'}) CREATE "
                "(a)-[:MemberOf]->(b)");
    const std::uint32_t sessions = static_cast<std::uint32_t>(
        rng.uniform(1, 2));
    for (std::uint32_t s = 0; s < sessions && !computer_names.empty(); ++s) {
      const std::string& comp = rng.pick(computer_names);
      session.run("MATCH (a:Computer {name: " + q(comp) +
                  "}), (b:User {name: " + q(name) +
                  "}) CREATE (a)-[:HasSession]->(b)");
    }
  }

  run.statements = session.statements();
  run.transactions = session.transactions();
  return run;
}

adcore::AttackGraph dbcreator_graph(const DbCreatorConfig& config) {
  BaselineRun run = run_dbcreator(config);
  return adcore::from_store(run.store);
}

}  // namespace adsynth::baselines
