// C++ port of BloodHound-Tools DBCreator's generation logic (baseline of
// Table I and Figs 5–10).
//
// Faithful to the original in the properties the paper measures:
//  * every node and edge is created by its own Cypher statement through an
//    auto-commit session (the original drives Neo4j over Bolt one query at
//    a time),
//  * relationship endpoints are looked up by name WITHOUT property indexes,
//    so each edge statement label-scans — the quadratic behaviour that kept
//    DBCreator from producing 50k+ node graphs in the paper's Table I,
//  * access-control assignment is uniformly random over principals and
//    targets (no tier model, no design guidelines), which produces the
//    elevated density and the flat 20–40% RP band of Figs 5/10b.
#pragma once

#include <cstdint>

#include "adcore/attack_graph.hpp"
#include "graphdb/store.hpp"

namespace adsynth::baselines {

struct DbCreatorConfig {
  std::size_t target_nodes = 1000;
  /// Node mix, matching DBCreator's defaults approximately.
  double user_share = 0.48;
  double computer_share = 0.32;
  double group_share = 0.18;  // remainder: OUs, GPOs, the domain
  /// Memberships sampled per user.
  std::uint32_t max_groups_per_user = 3;
  /// Probability a group is nested inside another group.
  double nested_group_probability = 0.30;
  /// Sessions created per computer (uniform 0..this).
  std::uint32_t max_sessions_per_computer = 2;
  /// Random ACL edges as a fraction of target_nodes.
  double acl_ratio = 0.40;
  std::uint64_t seed = 1;
};

struct BaselineRun {
  graphdb::GraphStore store;
  std::size_t statements = 0;    // Cypher statements executed
  std::size_t transactions = 0;  // commits (auto-commit: one per statement)
};

/// Runs the generator; the returned store holds the produced graph.
BaselineRun run_dbcreator(const DbCreatorConfig& config);

/// Convenience: run and convert to the common AttackGraph form.
adcore::AttackGraph dbcreator_graph(const DbCreatorConfig& config);

}  // namespace adsynth::baselines
