#include "baselines/university.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace adsynth::baselines {

using adcore::AttackGraph;
using adcore::EdgeKind;
using adcore::NodeIndex;
using adcore::ObjectKind;
namespace node_flag = adcore::node_flag;

adcore::AttackGraph university_graph(const UniversityConfig& config) {
  util::Rng rng(config.seed);
  AttackGraph g;

  const std::size_t n = config.target_nodes;
  const auto users_total = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * config.user_share));
  const auto groups_total = std::max<std::size_t>(
      8, static_cast<std::size_t>(
             std::llround(static_cast<double>(n) * config.group_share)));
  const std::size_t ous_total = std::max<std::size_t>(4, n / 2000);
  const std::size_t fixed = 1 /*domain*/ + config.num_domain_admins +
                            config.num_management_servers;
  const std::size_t computers_total =
      n > users_total + groups_total + ous_total + fixed
          ? n - users_total - groups_total - ous_total - fixed
          : 16;

  // --- skeleton -------------------------------------------------------------
  const NodeIndex domain =
      g.add_named_node(ObjectKind::kDomain, "UNI.EDU", 0);
  g.set_domain_node(domain);
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DOMAIN ADMINS", 0,
                                        node_flag::kSecurityGroup);
  g.set_domain_admins(da);
  g.add_edge(da, domain, EdgeKind::kGenericAll);

  std::vector<NodeIndex> ous;
  ous.reserve(ous_total);
  for (std::size_t i = 0; i < ous_total; ++i) {
    const NodeIndex ou = g.add_named_node(
        ObjectKind::kOU, "FACULTY-OU-" + std::to_string(i));
    g.add_edge(domain, ou, EdgeKind::kContains);
    ous.push_back(ou);
  }

  // --- privileged core: admins and management servers ----------------------
  std::vector<NodeIndex> admins;
  for (std::uint32_t i = 0; i < config.num_domain_admins; ++i) {
    const NodeIndex a = g.add_named_node(
        ObjectKind::kUser, "UNIADM" + std::to_string(i), 0,
        node_flag::kAdmin | node_flag::kEnabled);
    g.add_edge(ous[0], a, EdgeKind::kContains);
    g.add_edge(a, da, EdgeKind::kMemberOf);
    admins.push_back(a);
  }
  std::vector<NodeIndex> mgmt;
  for (std::uint32_t i = 0; i < config.num_management_servers; ++i) {
    const NodeIndex s = g.add_named_node(
        ObjectKind::kComputer, "MGMT" + std::to_string(i), 0,
        node_flag::kServer);
    g.add_edge(ous[0], s, EdgeKind::kContains);
    g.add_edge(da, s, EdgeKind::kAdminTo);
    mgmt.push_back(s);
  }
  // Every admin holds sessions on the management servers (the credentials
  // an intruder would harvest there).
  for (const NodeIndex a : admins) {
    for (const NodeIndex s : mgmt) {
      g.add_edge(s, a, EdgeKind::kHasSession);
    }
  }

  // --- population -----------------------------------------------------------
  std::vector<NodeIndex> groups;
  groups.reserve(groups_total);
  for (std::size_t i = 0; i < groups_total; ++i) {
    const NodeIndex gr = g.add_named_node(
        ObjectKind::kGroup, "COURSE" + std::to_string(i),
        adcore::kNoTier, node_flag::kSecurityGroup);
    g.add_edge(ous[rng.index(ous.size())], gr, EdgeKind::kContains);
    groups.push_back(gr);
  }
  std::vector<NodeIndex> users;
  users.reserve(users_total);
  for (std::size_t i = 0; i < users_total; ++i) {
    const NodeIndex u = g.add_named_node(
        ObjectKind::kUser, "STU" + std::to_string(i), adcore::kNoTier,
        node_flag::kEnabled);
    g.add_edge(ous[rng.index(ous.size())], u, EdgeKind::kContains);
    users.push_back(u);
  }
  std::vector<NodeIndex> computers;
  computers.reserve(computers_total);
  for (std::size_t i = 0; i < computers_total; ++i) {
    const NodeIndex c = g.add_named_node(
        ObjectKind::kComputer, "LAB" + std::to_string(i), adcore::kNoTier);
    g.add_edge(ous[rng.index(ous.size())], c, EdgeKind::kContains);
    computers.push_back(c);
  }

  // --- memberships: students sit in several course groups ------------------
  for (const NodeIndex u : users) {
    const std::uint32_t count = static_cast<std::uint32_t>(rng.uniform(3, 8));
    for (const std::size_t gi : rng.sample_indices(groups.size(), count)) {
      g.add_edge(u, groups[gi], EdgeKind::kMemberOf);
    }
  }

  // --- lab access: course groups RDP to blocks of lab machines -------------
  // Dead-end edges security-wise (labs hold no privileged sessions), but
  // they carry most of the graph's volume, as in the real estate.
  const auto rdp_total = static_cast<std::size_t>(
      std::llround(config.rdp_edges_per_computer *
                   static_cast<double>(computers_total)));
  const std::size_t block = std::max<std::size_t>(
      8, rdp_total / std::max<std::size_t>(1, groups.size()));
  std::size_t emitted = 0;
  for (const NodeIndex gr : groups) {
    if (emitted >= rdp_total || computers.empty()) break;
    const std::size_t start = rng.index(computers.size());
    for (std::size_t j = 0; j < block && emitted < rdp_total; ++j) {
      g.add_edge(gr, computers[(start + j) % computers.size()],
                 EdgeKind::kCanRDP);
      ++emitted;
    }
  }

  // --- IT support: admin staff groups administer the labs -------------------
  const std::size_t it_groups = std::max<std::size_t>(4, groups_total / 50);
  for (std::size_t i = 0; i < it_groups; ++i) {
    const NodeIndex itg = g.add_named_node(
        ObjectKind::kGroup, "IT-SUPPORT" + std::to_string(i),
        adcore::kNoTier, node_flag::kSecurityGroup);
    g.add_edge(ous[0], itg, EdgeKind::kContains);
    // Support staff are admin-flagged (not part of Fig. 9's population).
    for (std::size_t s = 0; s < 4; ++s) {
      const NodeIndex staff = g.add_named_node(
          ObjectKind::kUser, "IT" + std::to_string(i) + "_" + std::to_string(s),
          adcore::kNoTier, node_flag::kAdmin | node_flag::kEnabled);
      g.add_edge(ous[0], staff, EdgeKind::kContains);
      g.add_edge(staff, itg, EdgeKind::kMemberOf);
    }
    for (const std::size_t ci :
         rng.sample_indices(computers.size(),
                            computers.size() / std::max<std::size_t>(1, it_groups))) {
      g.add_edge(itg, computers[ci], EdgeKind::kAdminTo);
    }
  }

  // --- sessions: the long-tailed per-user distribution ----------------------
  for (const NodeIndex u : users) {
    const double roll = rng.real();
    std::uint32_t count;
    if (roll < 0.15) {
      count = 0;
    } else if (roll < 0.60) {
      count = 1;
    } else if (roll < 0.82) {
      count = 2;
    } else if (roll < 0.92) {
      count = 3;
    } else if (roll < 0.999) {
      count = 4;
    } else {
      // The sparse tail: a handful of power users up to ≈20 machines.
      count = 5;
      while (count < 20 && rng.chance(0.75)) ++count;
    }
    for (const std::size_t ci : rng.sample_indices(computers.size(), count)) {
      g.add_edge(computers[ci], u, EdgeKind::kHasSession);
    }
  }

  // --- the breach population (0.02%): misconfigured DCOM rights on the
  // management servers, funnelled through the first server so that Fig. 10c
  // shows a choke point above 80%.
  const auto breaches = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             config.breach_fraction * static_cast<double>(users.size()))));
  const auto breached = rng.sample_indices(users.size(), breaches);
  for (std::size_t i = 0; i < breached.size(); ++i) {
    const NodeIndex u = users[breached[i]];
    // ~5 of 6 through mgmt[0]; the remainder spread over the others.
    const NodeIndex target = (i % 6 != 5 || mgmt.size() == 1)
                                 ? mgmt[0]
                                 : mgmt[1 + (i / 6) % (mgmt.size() - 1)];
    g.add_edge(u, target, EdgeKind::kExecuteDCOM, /*violation=*/true);
  }

  return g;
}

}  // namespace adsynth::baselines
