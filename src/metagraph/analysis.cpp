#include "metagraph/analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace adsynth::metagraph {

std::vector<EdgeId> reachable_edges(const Metagraph& mg,
                                    const std::vector<ElementId>& sources,
                                    ReachMode mode) {
  const ReachResult r = reach(mg, sources, mode);
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < mg.edge_count(); ++e) {
    if (r.edge_fired[e]) out.push_back(e);
  }
  return out;
}

bool is_bridge(const Metagraph& mg, const std::vector<ElementId>& sources,
               ElementId target, EdgeId candidate, ReachMode mode) {
  if (candidate >= mg.edge_count()) {
    throw std::out_of_range("is_bridge: invalid edge id");
  }
  if (target >= mg.element_count()) {
    throw std::out_of_range("is_bridge: invalid target element");
  }
  // Only meaningful when target is reachable at all.
  const ReachResult base = reach(mg, sources, mode);
  if (!base.element_reached[target]) return false;
  std::vector<bool> blocked(mg.edge_count(), false);
  blocked[candidate] = true;
  const ReachResult cut = reach(mg, sources, mode, &blocked);
  return !cut.element_reached[target];
}

std::vector<EdgeId> bridge_edges(const Metagraph& mg,
                                 const std::vector<ElementId>& sources,
                                 ElementId target, ReachMode mode) {
  std::vector<EdgeId> bridges;
  const ReachResult base = reach(mg, sources, mode);
  if (target >= mg.element_count()) {
    throw std::out_of_range("bridge_edges: invalid target element");
  }
  if (!base.element_reached[target]) return bridges;
  std::vector<bool> blocked(mg.edge_count(), false);
  for (EdgeId e = 0; e < mg.edge_count(); ++e) {
    if (!base.edge_fired[e]) continue;  // unfired edges cannot be bridges
    blocked[e] = true;
    const ReachResult cut = reach(mg, sources, mode, &blocked);
    if (!cut.element_reached[target]) bridges.push_back(e);
    blocked[e] = false;
  }
  return bridges;
}

std::vector<EdgeId> greedy_cutset(const Metagraph& mg,
                                  const std::vector<ElementId>& sources,
                                  ElementId target, ReachMode mode) {
  if (target >= mg.element_count()) {
    throw std::out_of_range("greedy_cutset: invalid target element");
  }
  std::vector<EdgeId> cut;
  std::vector<bool> blocked(mg.edge_count(), false);
  while (true) {
    const ReachResult r = reach(mg, sources, mode, &blocked);
    if (!r.element_reached[target]) return cut;
    const auto witness = witness_edges(mg, r, target);
    if (!witness || witness->empty()) {
      // Target is a source (empty witness): no edge cut can separate it.
      throw std::logic_error(
          "greedy_cutset: target reachable without edges (it is a source)");
    }
    // Cut the last edge of the witness chain — the one that produced the
    // target — which is always effective for this particular chain.
    const EdgeId choke = witness->back();
    blocked[choke] = true;
    cut.push_back(choke);
    if (cut.size() > mg.edge_count()) {
      throw std::logic_error("greedy_cutset: failed to converge");
    }
  }
}

Projection project(const Metagraph& mg, const std::vector<ElementId>& keep) {
  Projection out;
  std::vector<ElementId> remap(mg.element_count(), kNoElement);
  std::vector<ElementId> sorted = keep;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (const ElementId e : sorted) {
    if (e >= mg.element_count()) {
      throw std::out_of_range("project: invalid element id");
    }
    remap[e] = out.graph.add_element(mg.element_name(e));
    out.original_element.push_back(e);
  }
  // Intersect each set with the kept elements; drop empty intersections.
  std::vector<SetId> set_remap(mg.set_count(), kNoSet);
  for (SetId s = 0; s < mg.set_count(); ++s) {
    std::vector<ElementId> members;
    for (const ElementId e : mg.members(s)) {
      if (remap[e] != kNoElement) members.push_back(remap[e]);
    }
    if (members.empty()) continue;
    set_remap[s] = out.graph.add_set(mg.set_name(s), std::move(members));
    out.original_set.push_back(s);
  }
  // Keep edges whose both endpoints survived.
  for (EdgeId e = 0; e < mg.edge_count(); ++e) {
    const MetaEdge& edge = mg.edge(e);
    const SetId v = set_remap[edge.invertex];
    const SetId w = set_remap[edge.outvertex];
    if (v == kNoSet || w == kNoSet) continue;
    out.graph.add_edge(v, w, edge.attributes);
    out.original_edge.push_back(e);
  }
  return out;
}

}  // namespace adsynth::metagraph
