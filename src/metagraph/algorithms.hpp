// Metagraph algorithms: set-to-set reachability (metapaths), per-element
// reachability under attack semantics, and structural statistics.
//
// Basu & Blanning's classical metapath notion is *conjunctive*: an edge may
// fire only once its entire invertex is available.  AD attack propagation is
// *disjunctive*: compromising ANY member of a group grants the group's
// permissions.  Both semantics are provided; ADSynth's security analysis
// uses the disjunctive mode.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "metagraph/metagraph.hpp"

namespace adsynth::metagraph {

enum class ReachMode : std::uint8_t {
  /// Edge fires when its whole invertex has been reached (metapath algebra).
  kConjunctive,
  /// Edge fires when any invertex member has been reached (attack semantics).
  kDisjunctive,
};

/// Result of a reachability sweep: which elements/edges were reached, and
/// for each reached element the edge that first produced it (for witness
/// path reconstruction; kNoEdge for sources).
struct ReachResult {
  std::vector<bool> element_reached;
  std::vector<bool> edge_fired;
  /// Producing edge per element; EdgeId max() when source / unreached.
  std::vector<EdgeId> producer;

  std::size_t reached_count() const;
};

/// Computes the closure of `sources` under the metagraph's edges.
/// Conjunctive mode is the metagraph "dominance" sweep; disjunctive mode is
/// attacker propagation.  Runs in O(|X| + Σ|V_e| + Σ|W_e|).
/// `blocked_edges`, when non-null (size |E|), marks edges excluded from the
/// sweep — the mask the bridge/cutset analyses use.
ReachResult reach(const Metagraph& mg, const std::vector<ElementId>& sources,
                  ReachMode mode,
                  const std::vector<bool>* blocked_edges = nullptr);

/// True when a metapath exists from `source_set` to `target` under `mode`
/// (i.e. target becomes reached starting from the members of source_set).
bool has_metapath(const Metagraph& mg, SetId source_set, ElementId target,
                  ReachMode mode);

/// Reconstructs one witness chain of edges leading to `target` from a reach
/// result (most-recent-producer chain).  Empty when target was a source;
/// std::nullopt when target is unreached.
std::optional<std::vector<EdgeId>> witness_edges(const Metagraph& mg,
                                                 const ReachResult& result,
                                                 ElementId target);

/// Structural statistics used by tests and the ablation benches.
struct MetagraphStats {
  std::size_t elements = 0;
  std::size_t sets = 0;
  std::size_t edges = 0;
  std::size_t membership = 0;      // Σ|set|
  double mean_invertex_size = 0;   // Σ|V_e| / |E|
  double mean_outvertex_size = 0;  // Σ|W_e| / |E|
  /// Lower bound on the element-to-element edge count this metagraph
  /// expands to: Σ |V_e| · |W_e|.
  std::uint64_t expanded_edge_count = 0;
};

MetagraphStats compute_stats(const Metagraph& mg);

}  // namespace adsynth::metagraph
