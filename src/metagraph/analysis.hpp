// Metagraph analysis operations from Basu & Blanning's treatment:
// metapath edge sets, bridges (edges critical to connectivity), cutsets
// (edge sets disconnecting a source from a target), and projections onto a
// subset of the generating set.
//
// In the AD mapping these answer defender questions directly: a bridge is
// a single permission whose removal severs an escalation, a cutset is a
// minimal remediation plan at the set-to-set level, and a projection is
// "the same policy structure restricted to one department's objects".
#pragma once

#include <vector>

#include "metagraph/algorithms.hpp"
#include "metagraph/metagraph.hpp"

namespace adsynth::metagraph {

/// Edges participating in the closure from `sources` (i.e. fired during the
/// reach sweep).  A superset of any single witness metapath.
std::vector<EdgeId> reachable_edges(const Metagraph& mg,
                                    const std::vector<ElementId>& sources,
                                    ReachMode mode);

/// True when removing edge `candidate` breaks reachability of `target`
/// from `sources` under `mode` — the edge is a *bridge* of the metapath.
bool is_bridge(const Metagraph& mg, const std::vector<ElementId>& sources,
               ElementId target, EdgeId candidate, ReachMode mode);

/// All bridges for (sources → target).  O(|E_fired| · reach).
std::vector<EdgeId> bridge_edges(const Metagraph& mg,
                                 const std::vector<ElementId>& sources,
                                 ElementId target, ReachMode mode);

/// A small (greedy, not necessarily minimum) edge cutset whose removal
/// makes `target` unreachable from `sources`.  Returns an empty vector when
/// target is already unreachable.  Greedy loop: find a witness chain,
/// remove its most-constrained edge, repeat.
std::vector<EdgeId> greedy_cutset(const Metagraph& mg,
                                  const std::vector<ElementId>& sources,
                                  ElementId target, ReachMode mode);

/// Projection of the metagraph onto `keep` ⊂ X: the generating set shrinks
/// to `keep` (elements are renumbered densely, in ascending original id
/// order); every vertex set is intersected with `keep`; edges whose
/// invertex or outvertex become empty are dropped; empty sets are dropped.
struct Projection {
  Metagraph graph;
  /// Original element id of each projected element.
  std::vector<ElementId> original_element;
  /// Original set id of each projected set.
  std::vector<SetId> original_set;
  /// Original edge id of each projected edge.
  std::vector<EdgeId> original_edge;
};

Projection project(const Metagraph& mg, const std::vector<ElementId>& keep);

}  // namespace adsynth::metagraph
