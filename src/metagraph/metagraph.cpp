#include "metagraph/metagraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace adsynth::metagraph {

ElementId Metagraph::add_element(std::string name) {
  const auto id = static_cast<ElementId>(element_names_.size());
  element_names_.push_back(std::move(name));
  element_sets_.emplace_back();
  return id;
}

SetId Metagraph::add_set(std::string name) {
  return add_set(std::move(name), {});
}

SetId Metagraph::add_set(std::string name, std::vector<ElementId> members) {
  for (const ElementId m : members) check_element(m);
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  const auto id = static_cast<SetId>(sets_.size());
  for (const ElementId m : members) element_sets_[m].push_back(id);
  membership_size_ += members.size();
  SetRecord rec;
  rec.name = std::move(name);
  rec.members = std::move(members);
  set_index_.emplace(rec.name, id);
  sets_.push_back(std::move(rec));
  return id;
}

SetId Metagraph::add_singleton_set(ElementId member) {
  check_element(member);
  const auto id = static_cast<SetId>(sets_.size());
  element_sets_[member].push_back(id);
  ++membership_size_;
  SetRecord rec;
  const std::string& inner = element_names_[member];
  rec.name.reserve(inner.size() + 2);
  rec.name += '{';
  rec.name += inner;
  rec.name += '}';
  rec.members.push_back(member);
  sets_.push_back(std::move(rec));  // deliberately not in set_index_
  return id;
}

void Metagraph::add_to_set(SetId set, ElementId element) {
  check_set(set);
  check_element(element);
  auto& members = sets_[set].members;
  const auto it = std::lower_bound(members.begin(), members.end(), element);
  if (it != members.end() && *it == element) return;
  members.insert(it, element);
  element_sets_[element].push_back(set);
  ++membership_size_;
}

EdgeId Metagraph::add_edge(SetId invertex, SetId outvertex,
                           EdgeAttributes attributes) {
  check_set(invertex);
  check_set(outvertex);
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(MetaEdge{invertex, outvertex, std::move(attributes)});
  sets_[invertex].out_edges.push_back(id);
  sets_[outvertex].in_edges.push_back(id);
  return id;
}

EdgeId Metagraph::add_edges(std::vector<MetaEdge> batch) {
  const auto first = static_cast<EdgeId>(edges_.size());
  if (batch.empty()) return first;
  for (const MetaEdge& e : batch) {
    check_set(e.invertex);
    check_set(e.outvertex);
  }
  // Count per-set degree deltas, then reserve each touched list exactly
  // once — the per-edge push_backs below never reallocate.
  std::vector<std::uint32_t> out_delta(sets_.size(), 0);
  std::vector<std::uint32_t> in_delta(sets_.size(), 0);
  for (const MetaEdge& e : batch) {
    ++out_delta[e.invertex];
    ++in_delta[e.outvertex];
  }
  for (const MetaEdge& e : batch) {
    if (out_delta[e.invertex] > 0) {
      auto& out = sets_[e.invertex].out_edges;
      out.reserve(out.size() + out_delta[e.invertex]);
      out_delta[e.invertex] = 0;
    }
    if (in_delta[e.outvertex] > 0) {
      auto& in = sets_[e.outvertex].in_edges;
      in.reserve(in.size() + in_delta[e.outvertex]);
      in_delta[e.outvertex] = 0;
    }
  }
  edges_.reserve(edges_.size() + batch.size());
  EdgeId id = first;
  for (MetaEdge& e : batch) {
    sets_[e.invertex].out_edges.push_back(id);
    sets_[e.outvertex].in_edges.push_back(id);
    edges_.push_back(std::move(e));
    ++id;
  }
  return first;
}

void Metagraph::reserve(std::size_t elements, std::size_t sets,
                        std::size_t edges) {
  element_names_.reserve(elements);
  element_sets_.reserve(elements);
  sets_.reserve(sets);
  edges_.reserve(edges);
}

const std::string& Metagraph::element_name(ElementId id) const {
  check_element(id);
  return element_names_[id];
}

const std::string& Metagraph::set_name(SetId id) const {
  check_set(id);
  return sets_[id].name;
}

const std::vector<ElementId>& Metagraph::members(SetId id) const {
  check_set(id);
  return sets_[id].members;
}

const MetaEdge& Metagraph::edge(EdgeId id) const {
  if (id >= edges_.size()) {
    throw std::out_of_range("Metagraph: invalid edge id " + std::to_string(id));
  }
  return edges_[id];
}

bool Metagraph::contains(SetId set, ElementId element) const {
  check_set(set);
  const auto& members = sets_[set].members;
  return std::binary_search(members.begin(), members.end(), element);
}

const std::vector<EdgeId>& Metagraph::edges_from(SetId set) const {
  check_set(set);
  return sets_[set].out_edges;
}

const std::vector<EdgeId>& Metagraph::edges_into(SetId set) const {
  check_set(set);
  return sets_[set].in_edges;
}

const std::vector<SetId>& Metagraph::sets_of(ElementId element) const {
  check_element(element);
  return element_sets_[element];
}

std::optional<SetId> Metagraph::find_set(const std::string& name) const {
  const auto it = set_index_.find(name);
  if (it == set_index_.end()) return std::nullopt;
  return it->second;
}

void Metagraph::check_element(ElementId id) const {
  if (id >= element_names_.size()) {
    throw std::out_of_range("Metagraph: invalid element id " +
                            std::to_string(id));
  }
}

void Metagraph::check_set(SetId id) const {
  if (id >= sets_.size()) {
    throw std::out_of_range("Metagraph: invalid set id " + std::to_string(id));
  }
}

}  // namespace adsynth::metagraph
