// Element-to-element expansion of a metagraph.
//
// ADSynth's default output is the set-to-set attack graph; a parameter
// converts it to an element-to-element graph (paper §III-B, "ADSynth
// Output").  The expansion replaces each metagraph edge <V, W> by the
// |V|·|W| element pairs it denotes, keeping the edge label.  Expansion is
// also what the analytics layer consumes when set-level structure is not
// wanted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metagraph/metagraph.hpp"

namespace adsynth::metagraph {

/// One element-level edge of the expanded graph.
struct ExpandedEdge {
  ElementId source = kNoElement;
  ElementId target = kNoElement;
  /// Index into ExpandedGraph::labels.
  std::uint32_t label = 0;
  /// The metagraph edge this pair came from.
  EdgeId origin = kNoEdge;
};

/// A flat element-to-element digraph produced from a metagraph.  Labels are
/// interned: each distinct metagraph edge label appears once in `labels`.
struct ExpandedGraph {
  std::size_t element_count = 0;
  std::vector<std::string> labels;
  std::vector<ExpandedEdge> edges;

  /// Number of distinct (source,target,label) triples may be lower than
  /// edges.size() when several metagraph edges imply the same pair; the
  /// expansion does NOT deduplicate (matching how overlapping AD permissions
  /// really stack); call `deduplicate()` when a simple graph is needed.
  void deduplicate();
};

/// Options controlling the expansion.
struct ExpandOptions {
  /// When true, edges whose invertex or outvertex is empty are skipped
  /// (they denote no element pairs); when false they throw.
  bool allow_empty_sets = true;
  /// Upper bound on produced element edges; exceeding it throws
  /// std::length_error.  Guards against accidentally expanding a dense
  /// metagraph into a graph that cannot fit in memory.
  std::uint64_t max_edges = 2'000'000'000ULL;
};

/// Expands every metagraph edge into element pairs.
ExpandedGraph expand(const Metagraph& mg, const ExpandOptions& options = {});

}  // namespace adsynth::metagraph
