#include "metagraph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace adsynth::metagraph {

std::size_t ReachResult::reached_count() const {
  return static_cast<std::size_t>(
      std::count(element_reached.begin(), element_reached.end(), true));
}

ReachResult reach(const Metagraph& mg, const std::vector<ElementId>& sources,
                  ReachMode mode, const std::vector<bool>* blocked_edges) {
  const std::size_t n = mg.element_count();
  const std::size_t m = mg.edge_count();
  if (blocked_edges != nullptr && blocked_edges->size() != m) {
    throw std::invalid_argument("reach: blocked_edges mask size mismatch");
  }
  ReachResult result;
  result.element_reached.assign(n, false);
  result.edge_fired.assign(m, false);
  result.producer.assign(n, kNoEdge);

  // Remaining unreached invertex members per edge (conjunctive trigger).
  std::vector<std::uint32_t> pending(m, 0);
  for (EdgeId e = 0; e < m; ++e) {
    pending[e] =
        static_cast<std::uint32_t>(mg.members(mg.edge(e).invertex).size());
  }

  std::deque<ElementId> frontier;
  for (const ElementId s : sources) {
    if (s >= n) {
      throw std::out_of_range("reach: invalid source element " +
                              std::to_string(s));
    }
    if (!result.element_reached[s]) {
      result.element_reached[s] = true;
      frontier.push_back(s);
    }
  }

  auto fire = [&](EdgeId e) {
    if (blocked_edges != nullptr && (*blocked_edges)[e]) return;
    if (result.edge_fired[e]) return;
    result.edge_fired[e] = true;
    for (const ElementId w : mg.members(mg.edge(e).outvertex)) {
      if (!result.element_reached[w]) {
        result.element_reached[w] = true;
        result.producer[w] = e;
        frontier.push_back(w);
      }
    }
  };

  while (!frontier.empty()) {
    const ElementId x = frontier.front();
    frontier.pop_front();
    for (const SetId s : mg.sets_of(x)) {
      for (const EdgeId e : mg.edges_from(s)) {
        if (result.edge_fired[e]) continue;
        if (mode == ReachMode::kDisjunctive) {
          fire(e);
        } else {
          // x newly reached; decrement the edge's pending counter once per
          // (element, edge) pair.  An element may sit in several sets that
          // all feed the same edge only if the edge's invertex is that set,
          // so each (x, e) pair is visited at most once per containing set;
          // guard with the membership test on the edge's own invertex.
          if (!mg.contains(mg.edge(e).invertex, x)) continue;
          if (pending[e] > 0) --pending[e];
          if (pending[e] == 0) fire(e);
        }
      }
    }
  }
  return result;
}

bool has_metapath(const Metagraph& mg, SetId source_set, ElementId target,
                  ReachMode mode) {
  const ReachResult r = reach(mg, mg.members(source_set), mode);
  if (target >= mg.element_count()) {
    throw std::out_of_range("has_metapath: invalid target element");
  }
  return r.element_reached[target];
}

std::optional<std::vector<EdgeId>> witness_edges(const Metagraph& mg,
                                                 const ReachResult& result,
                                                 ElementId target) {
  if (target >= result.element_reached.size()) {
    throw std::out_of_range("witness_edges: invalid target element");
  }
  if (!result.element_reached[target]) return std::nullopt;
  std::vector<EdgeId> chain;
  ElementId cur = target;
  while (result.producer[cur] != kNoEdge) {
    const EdgeId e = result.producer[cur];
    chain.push_back(e);
    // Step to some invertex member of e that is itself reached with an
    // earlier producer; pick the first reached member.
    const auto& inv = mg.members(mg.edge(e).invertex);
    ElementId next = kNoElement;
    for (const ElementId v : inv) {
      if (result.element_reached[v] && result.producer[v] != e) {
        next = v;
        break;
      }
    }
    if (next == kNoElement) break;  // invertex fed only by this edge (cycle)
    cur = next;
    if (chain.size() > result.element_reached.size()) break;  // cycle guard
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

MetagraphStats compute_stats(const Metagraph& mg) {
  MetagraphStats s;
  s.elements = mg.element_count();
  s.sets = mg.set_count();
  s.edges = mg.edge_count();
  s.membership = mg.membership_size();
  std::uint64_t inv_total = 0;
  std::uint64_t out_total = 0;
  for (EdgeId e = 0; e < mg.edge_count(); ++e) {
    const auto& edge = mg.edge(e);
    const auto inv = mg.members(edge.invertex).size();
    const auto out = mg.members(edge.outvertex).size();
    inv_total += inv;
    out_total += out;
    s.expanded_edge_count += static_cast<std::uint64_t>(inv) * out;
  }
  if (s.edges > 0) {
    s.mean_invertex_size =
        static_cast<double>(inv_total) / static_cast<double>(s.edges);
    s.mean_outvertex_size =
        static_cast<double>(out_total) / static_cast<double>(s.edges);
  }
  return s;
}

}  // namespace adsynth::metagraph
