// Metagraph core, after Basu & Blanning ("Metagraphs and their
// applications", Springer 2007), the formalism ADSynth models AD with.
//
// A metagraph S = <X, E> consists of a generating set X = {x_1..x_n} and a
// set of edges; each edge e = <V_e, W_e> joins an *invertex* V_e ⊂ X to an
// *outvertex* W_e ⊂ X and carries an attribute list P_e (here: a label plus
// key/value properties — ADSynth stores the AD permission type this way).
//
// In the AD mapping: elements are concrete objects (users, computers, ...);
// vertex sets are Groups and Organisational Units; an edge
// <{admins}, {workstations OU}> labelled "GenericAll" is a permission grant
// from a set of principals onto a set of resources.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace adsynth::metagraph {

/// Index of an element of the generating set X.
using ElementId = std::uint32_t;
/// Index of a registered vertex set (a named subset of X).
using SetId = std::uint32_t;
/// Index of a metagraph edge.
using EdgeId = std::uint32_t;

inline constexpr ElementId kNoElement = std::numeric_limits<ElementId>::max();
inline constexpr SetId kNoSet = std::numeric_limits<SetId>::max();
inline constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();

/// Attribute list P_e of an edge: a primary label (the permission type in
/// the AD mapping) plus optional string properties.
struct EdgeAttributes {
  std::string label;
  std::map<std::string, std::string> properties;
};

/// An edge e = <V_e, W_e>; the vertex sets are referenced by SetId so that
/// many edges can share the same group/OU without copying memberships.
struct MetaEdge {
  SetId invertex = kNoSet;
  SetId outvertex = kNoSet;
  EdgeAttributes attributes;
};

/// A mutable metagraph.  Elements and sets are append-only; membership of a
/// set may grow after creation (AD groups gain members over time).  All
/// element lists inside sets are kept sorted and duplicate-free.
class Metagraph {
 public:
  /// Adds an element to the generating set; `name` is for diagnostics and
  /// export, uniqueness is NOT enforced (AD GUIDs are handled a layer up).
  ElementId add_element(std::string name);

  /// Registers an empty named vertex set.
  SetId add_set(std::string name);

  /// Registers a vertex set with initial members (deduplicated, sorted).
  SetId add_set(std::string name, std::vector<ElementId> members);

  /// Fast path for the generators' per-object singleton sets {x}: same
  /// result as add_set("{" + element_name(member) + "}", {member}) except
  /// that the set is NOT entered into the find_set() name index — at
  /// million-object scale the singletons would dominate the index while
  /// never being looked up by name (analytics address them by SetId).
  SetId add_singleton_set(ElementId member);

  /// Inserts `element` into `set` (no-op when already present).
  /// Throws std::out_of_range on an invalid set or element id.
  void add_to_set(SetId set, ElementId element);

  /// Creates an edge <invertex, outvertex> with the given attributes.
  EdgeId add_edge(SetId invertex, SetId outvertex, EdgeAttributes attributes);

  /// Bulk edge insertion: one validation sweep, exact-capacity reservation
  /// of every touched set's in/out edge list, then appends — equivalent to
  /// calling add_edge per entry in order, minus the growth reallocations.
  /// Returns the id of the first inserted edge (ids are consecutive).
  EdgeId add_edges(std::vector<MetaEdge> batch);

  /// Pre-sizes the element/set/edge columns (generators know their scale).
  void reserve(std::size_t elements, std::size_t sets, std::size_t edges);

  std::size_t element_count() const { return element_names_.size(); }
  std::size_t set_count() const { return sets_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const std::string& element_name(ElementId id) const;
  const std::string& set_name(SetId id) const;

  /// Sorted member list of a set.
  const std::vector<ElementId>& members(SetId id) const;

  const MetaEdge& edge(EdgeId id) const;

  /// True when `element` ∈ set (binary search over the sorted members).
  bool contains(SetId set, ElementId element) const;

  /// Ids of edges whose invertex is `set` / whose outvertex is `set`.
  const std::vector<EdgeId>& edges_from(SetId set) const;
  const std::vector<EdgeId>& edges_into(SetId set) const;

  /// All sets an element belongs to (ascending SetId order).
  const std::vector<SetId>& sets_of(ElementId element) const;

  /// Finds a registered set by exact name; linear in the number of sets
  /// with that name is not needed — a name->id index is maintained.  Returns
  /// std::nullopt when no set has the name; if several do, the first wins.
  std::optional<SetId> find_set(const std::string& name) const;

  /// Total of |members| over all sets (size of the set-membership relation).
  std::size_t membership_size() const { return membership_size_; }

 private:
  struct SetRecord {
    std::string name;
    std::vector<ElementId> members;  // sorted, unique
    std::vector<EdgeId> out_edges;   // edges with this set as invertex
    std::vector<EdgeId> in_edges;    // edges with this set as outvertex
  };

  void check_element(ElementId id) const;
  void check_set(SetId id) const;

  std::vector<std::string> element_names_;
  std::vector<std::vector<SetId>> element_sets_;
  std::vector<SetRecord> sets_;
  std::vector<MetaEdge> edges_;
  std::map<std::string, SetId> set_index_;
  std::size_t membership_size_ = 0;
};

}  // namespace adsynth::metagraph
