#include "metagraph/expansion.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace adsynth::metagraph {

void ExpandedGraph::deduplicate() {
  std::sort(edges.begin(), edges.end(),
            [](const ExpandedEdge& a, const ExpandedEdge& b) {
              if (a.source != b.source) return a.source < b.source;
              if (a.target != b.target) return a.target < b.target;
              return a.label < b.label;
            });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const ExpandedEdge& a, const ExpandedEdge& b) {
                            return a.source == b.source &&
                                   a.target == b.target && a.label == b.label;
                          }),
              edges.end());
}

ExpandedGraph expand(const Metagraph& mg, const ExpandOptions& options) {
  ExpandedGraph out;
  out.element_count = mg.element_count();
  std::map<std::string, std::uint32_t> label_index;

  // Pre-size: Σ |V_e|·|W_e|.
  std::uint64_t total = 0;
  for (EdgeId e = 0; e < mg.edge_count(); ++e) {
    const auto& edge = mg.edge(e);
    total += static_cast<std::uint64_t>(mg.members(edge.invertex).size()) *
             mg.members(edge.outvertex).size();
  }
  if (total > options.max_edges) {
    throw std::length_error("expand: expansion would produce " +
                            std::to_string(total) + " edges (cap " +
                            std::to_string(options.max_edges) + ")");
  }
  out.edges.reserve(static_cast<std::size_t>(total));

  for (EdgeId e = 0; e < mg.edge_count(); ++e) {
    const auto& edge = mg.edge(e);
    const auto& inv = mg.members(edge.invertex);
    const auto& outv = mg.members(edge.outvertex);
    if (inv.empty() || outv.empty()) {
      if (!options.allow_empty_sets) {
        throw std::invalid_argument(
            "expand: edge " + std::to_string(e) +
            " touches an empty vertex set and allow_empty_sets is false");
      }
      continue;
    }
    const auto [it, inserted] = label_index.try_emplace(
        edge.attributes.label,
        static_cast<std::uint32_t>(label_index.size()));
    if (inserted) out.labels.push_back(edge.attributes.label);
    const std::uint32_t label = it->second;
    for (const ElementId v : inv) {
      for (const ElementId w : outv) {
        out.edges.push_back(ExpandedEdge{v, w, label, e});
      }
    }
  }
  return out;
}

}  // namespace adsynth::metagraph
