#include "graphdb/store.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/trace.hpp"

namespace adsynth::graphdb {

void put_property(PropertyList& list, PropertyKeyId key, PropertyValue value) {
  const auto it = std::lower_bound(
      list.begin(), list.end(), key,
      [](const auto& entry, PropertyKeyId k) { return entry.first < k; });
  if (it != list.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    list.insert(it, {key, std::move(value)});
  }
}

const PropertyValue* get_property(const PropertyList& list,
                                  PropertyKeyId key) {
  const auto it = std::lower_bound(
      list.begin(), list.end(), key,
      [](const auto& entry, PropertyKeyId k) { return entry.first < k; });
  if (it != list.end() && it->first == key) return &it->second;
  return nullptr;
}

std::uint32_t GraphStore::Interner::intern(std::string_view name) {
  const auto it = index.find(std::string(name));
  if (it != index.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names.size());
  names.emplace_back(name);
  index.emplace(names.back(), id);
  return id;
}

std::optional<std::uint32_t> GraphStore::Interner::find(
    std::string_view name) const {
  const auto it = index.find(std::string(name));
  if (it == index.end()) return std::nullopt;
  return it->second;
}

// The intern hooks compare the table size around the intern so the WAL only
// records genuinely fresh tokens (one extra size_t read, not a second hash
// probe — intern_key sits on the set_node_property hot path).
LabelId GraphStore::intern_label(std::string_view name) {
  const std::size_t before = labels_.names.size();
  const LabelId id = labels_.intern(name);
  if (id >= label_buckets_.size()) label_buckets_.resize(id + 1);
  if (wal_ != nullptr && labels_.names.size() != before) {
    wal_->wal_intern_label(name);
  }
  return id;
}

RelTypeId GraphStore::intern_rel_type(std::string_view name) {
  const std::size_t before = rel_types_.names.size();
  const RelTypeId id = rel_types_.intern(name);
  if (wal_ != nullptr && rel_types_.names.size() != before) {
    wal_->wal_intern_rel_type(name);
  }
  return id;
}

PropertyKeyId GraphStore::intern_key(std::string_view name) {
  const std::size_t before = keys_.names.size();
  const PropertyKeyId id = keys_.intern(name);
  if (wal_ != nullptr && keys_.names.size() != before) {
    wal_->wal_intern_key(name);
  }
  return id;
}

const std::string& GraphStore::label_name(LabelId id) const {
  if (id >= labels_.names.size()) {
    throw std::out_of_range("GraphStore: invalid label id");
  }
  return labels_.names[id];
}

const std::string& GraphStore::rel_type_name(RelTypeId id) const {
  if (id >= rel_types_.names.size()) {
    throw std::out_of_range("GraphStore: invalid relationship type id");
  }
  return rel_types_.names[id];
}

const std::string& GraphStore::key_name(PropertyKeyId id) const {
  if (id >= keys_.names.size()) {
    throw std::out_of_range("GraphStore: invalid property key id");
  }
  return keys_.names[id];
}

std::optional<LabelId> GraphStore::find_label(std::string_view name) const {
  return labels_.find(name);
}

std::optional<RelTypeId> GraphStore::find_rel_type(
    std::string_view name) const {
  return rel_types_.find(name);
}

std::optional<PropertyKeyId> GraphStore::find_key(
    std::string_view name) const {
  return keys_.find(name);
}

NodeId GraphStore::create_node(const std::vector<std::string>& labels,
                               PropertyList properties) {
  std::vector<LabelId> ids;
  ids.reserve(labels.size());
  for (const auto& l : labels) ids.push_back(intern_label(l));
  return create_node_interned(std::move(ids), std::move(properties));
}

NodeId GraphStore::create_node_interned(std::vector<LabelId> labels,
                                        PropertyList properties) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  // Validate before any side effect so a throw leaves the store untouched.
  for (const LabelId l : labels) {
    if (l >= label_buckets_.size()) {
      throw std::out_of_range("GraphStore: label id not interned");
    }
  }
  note_unscoped_mutation();
  const auto id = static_cast<NodeId>(nodes_.size());
  for (const LabelId l : labels) label_buckets_[l].push_back(id);
  NodeRecord rec;
  rec.labels = std::move(labels);
  rec.properties = std::move(properties);
  rec.mutated_epoch = pending_epoch();
  nodes_.push_back(std::move(rec));
  index_node(id);
  if (recording()) {
    UndoOp op;
    op.kind = UndoOp::Kind::kUncreateNode;
    op.id = id;
    undo_log_.push_back(std::move(op));
  }
  if (wal_ != nullptr) {
    wal_->wal_create_node(nodes_.back().labels, nodes_.back().properties);
  }
  return id;
}

RelId GraphStore::create_relationship(NodeId source, NodeId target,
                                      std::string_view type,
                                      PropertyList properties) {
  return create_relationship_interned(source, target, intern_rel_type(type),
                                      std::move(properties));
}

RelId GraphStore::create_relationship_interned(NodeId source, NodeId target,
                                               RelTypeId type,
                                               PropertyList properties) {
  check_live_node(source);
  check_live_node(target);
  if (type >= rel_types_.names.size()) {
    throw std::out_of_range("GraphStore: relationship type not interned");
  }
  note_unscoped_mutation();
  const auto id = static_cast<RelId>(rels_.size());
  rels_.push_back(RelRecord{source, target, type, std::move(properties), false,
                            pending_epoch()});
  if (recording()) {
    UndoOp op;
    op.kind = UndoOp::Kind::kUncreateRel;
    op.id = id;
    // Adjacency growth re-versions both endpoints; replay restores them.
    op.old_epoch = nodes_[source].mutated_epoch;
    op.old_epoch2 = nodes_[target].mutated_epoch;
    undo_log_.push_back(std::move(op));
  }
  nodes_[source].out_rels.push_back(id);
  nodes_[source].mutated_epoch = pending_epoch();
  nodes_[target].in_rels.push_back(id);
  nodes_[target].mutated_epoch = pending_epoch();
  if (wal_ != nullptr) {
    wal_->wal_create_rel(source, target, type, rels_.back().properties);
  }
  return id;
}

void GraphStore::set_node_property(NodeId node, std::string_view key,
                                   PropertyValue v) {
  check_live_node(node);
  const PropertyKeyId key_id = intern_key(key);
  const PropertyValue* old = get_property(nodes_[node].properties, key_id);
  if (old != nullptr && *old == v) return;  // no-op write

  note_unscoped_mutation();
  if (recording()) {
    UndoOp op;
    op.kind = UndoOp::Kind::kRestoreProperty;
    op.id = node;
    op.key = key_id;
    op.had_value = old != nullptr;
    if (old != nullptr) op.old_value = *old;
    op.old_epoch = nodes_[node].mutated_epoch;
    undo_log_.push_back(std::move(op));
  }
  nodes_[node].mutated_epoch = pending_epoch();
  // A changed value is re-indexed under the new bucket only (not the whole
  // node); the entry left behind in the old value's bucket is stale and
  // filtered at read time (find_nodes re-checks the property).  Stale
  // accounting feeds the compaction trigger.
  const bool had_old = old != nullptr;
  put_property(nodes_[node].properties, key_id, std::move(v));
  const NodeRecord& rec = nodes_[node];
  for (auto& idx : indexes_) {
    if (idx.key != key_id) continue;
    if (!std::binary_search(rec.labels.begin(), rec.labels.end(), idx.label)) {
      continue;
    }
    if (had_old) ++idx.stale;
  }
  index_node_key(node, key_id);
  if (wal_ != nullptr) {
    wal_->wal_set_property(node, key_id,
                           *get_property(nodes_[node].properties, key_id));
  }
  maybe_compact();
}

void GraphStore::delete_relationship(RelId rel) {
  check_rel(rel);
  if (!rels_[rel].deleted) {
    note_unscoped_mutation();
    if (recording()) {
      UndoOp op;
      op.kind = UndoOp::Kind::kUndeleteRel;
      op.id = rel;
      op.old_epoch = rels_[rel].mutated_epoch;
      undo_log_.push_back(std::move(op));
    }
    rels_[rel].deleted = true;
    rels_[rel].mutated_epoch = pending_epoch();
    ++deleted_rels_;
    if (wal_ != nullptr) wal_->wal_delete_rel(rel);
  }
}

void GraphStore::delete_node(NodeId node, bool detach) {
  check_node(node);
  NodeRecord& rec = nodes_[node];
  if (rec.deleted) return;  // idempotent, like delete_relationship
  std::size_t live_rels = 0;
  for (const RelId r : rec.out_rels) live_rels += !rels_[r].deleted;
  for (const RelId r : rec.in_rels) live_rels += !rels_[r].deleted;
  if (live_rels > 0 && !detach) {
    throw std::logic_error(
        "GraphStore: cannot delete node " + std::to_string(node) + " with " +
        std::to_string(live_rels) +
        " live relationship(s); use detach (DETACH DELETE)");
  }
  note_unscoped_mutation();
  // Detach first (each tombstone records its own inverse), then tombstone
  // the node itself.  Self-loops appear in both adjacency lists; the
  // idempotence of delete_relationship keeps them single-counted.
  for (const RelId r : rec.out_rels) delete_relationship(r);
  for (const RelId r : rec.in_rels) delete_relationship(r);
  const std::uint64_t pre_delete_epoch = rec.mutated_epoch;
  rec.deleted = true;
  rec.mutated_epoch = pending_epoch();
  ++deleted_nodes_;
  // Index entries of a tombstoned node turn stale in place.
  for (auto& idx : indexes_) {
    if (!std::binary_search(rec.labels.begin(), rec.labels.end(), idx.label)) {
      continue;
    }
    if (get_property(rec.properties, idx.key) != nullptr) ++idx.stale;
  }
  if (recording()) {
    UndoOp op;
    op.kind = UndoOp::Kind::kUndeleteNode;
    op.id = node;
    op.old_epoch = pre_delete_epoch;
    undo_log_.push_back(std::move(op));
  }
  // The detach loop above already logged one wal_delete_rel per tombstoned
  // incident relationship; replaying those before this op reproduces the
  // exact detach order.
  if (wal_ != nullptr) wal_->wal_delete_node(node);
  maybe_compact();
}

const NodeRecord& GraphStore::node(NodeId id) const {
  check_node(id);
  return nodes_[id];
}

const RelRecord& GraphStore::rel(RelId id) const {
  check_rel(id);
  return rels_[id];
}

bool GraphStore::node_has_label(NodeId id, LabelId label) const {
  check_node(id);
  const auto& labels = nodes_[id].labels;
  return std::binary_search(labels.begin(), labels.end(), label);
}

const PropertyValue* GraphStore::node_property(NodeId id,
                                               PropertyKeyId key) const {
  check_node(id);
  return get_property(nodes_[id].properties, key);
}

const PropertyValue* GraphStore::node_property(NodeId id,
                                               std::string_view key) const {
  const auto key_id = keys_.find(key);
  if (!key_id) return nullptr;
  return node_property(id, *key_id);
}

std::vector<NodeId> GraphStore::nodes_with_label(std::string_view label) const {
  const auto id = labels_.find(label);
  if (!id) return {};
  std::vector<NodeId> out;
  // Deleted nodes are rare, so the bucket size is the right capacity —
  // a million-node label scan must not reallocate its way up.
  out.reserve(label_buckets_[*id].size());
  for (const NodeId n : label_buckets_[*id]) {
    if (!nodes_[n].deleted) out.push_back(n);
  }
  return out;
}

const std::vector<NodeId>& GraphStore::nodes_with_label_interned(
    LabelId label) const {
  if (label >= label_buckets_.size()) return empty_bucket_;
  return label_buckets_[label];
}

void GraphStore::create_index(std::string_view label, std::string_view key) {
  if (recording()) {
    throw std::logic_error(
        "GraphStore: schema operations (create_index) cannot run inside an "
        "open undo scope / transaction");
  }
  ADSYNTH_SPAN("graphdb.index.build");
  // A new index changes find_nodes plans; published views keep serving the
  // old (still-correct) label-scan path, but the chain re-roots so the next
  // epoch picks the index up.
  note_unscoped_mutation();
  const LabelId l = intern_label(label);
  const PropertyKeyId k = intern_key(key);  // via the hook: WAL sees tokens
  for (const auto& idx : indexes_) {
    if (idx.label == l && idx.key == k) return;
  }
  PropertyIndex idx;
  idx.label = l;
  idx.key = k;
  for (const NodeId n : label_buckets_[l]) {
    if (nodes_[n].deleted) continue;
    if (const PropertyValue* v = get_property(nodes_[n].properties, k)) {
      idx.buckets[v->index_key()].push_back(n);
      ++idx.entries;
    }
  }
  indexes_.push_back(std::move(idx));
  ++schema_version_;
  if (wal_ != nullptr) wal_->wal_create_index(l, k);
}

std::size_t GraphStore::label_cardinality(std::string_view label) const {
  const auto id = labels_.find(label);
  if (!id) return 0;
  return label_buckets_[*id].size();
}

std::vector<NodeId> GraphStore::find_nodes(std::string_view label,
                                           std::string_view key,
                                           const PropertyValue& value) const {
  const auto l = labels_.find(label);
  const auto k = keys_.find(key);
  if (!l || !k) return {};
  const std::string needle = value.index_key();
  for (const auto& idx : indexes_) {
    if (idx.label != *l || idx.key != *k) continue;
    const auto it = idx.buckets.find(needle);
    if (it == idx.buckets.end()) return {};
    std::vector<NodeId> out;
    for (const NodeId n : it->second) {
      if (nodes_[n].deleted) continue;
      const PropertyValue* v = get_property(nodes_[n].properties, *k);
      if (v != nullptr && *v == value) out.push_back(n);
    }
    // Re-indexing on property change can leave duplicates in the bucket.
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
  // No index: label scan.
  std::vector<NodeId> out;
  for (const NodeId n : label_buckets_[*l]) {
    if (nodes_[n].deleted) continue;
    const PropertyValue* v = get_property(nodes_[n].properties, *k);
    if (v != nullptr && *v == value) out.push_back(n);
  }
  return out;
}

std::optional<GraphStore::IndexStats> GraphStore::index_stats(
    std::string_view label, std::string_view key) const {
  const auto l = labels_.find(label);
  const auto k = keys_.find(key);
  if (!l || !k) return std::nullopt;
  for (const auto& idx : indexes_) {
    if (idx.label == *l && idx.key == *k) {
      return IndexStats{idx.entries, idx.stale, idx.buckets.size()};
    }
  }
  return std::nullopt;
}

std::size_t GraphStore::approximate_bytes() const {
  std::size_t bytes = 0;
  bytes += nodes_.capacity() * sizeof(NodeRecord);
  bytes += rels_.capacity() * sizeof(RelRecord);
  for (const auto& n : nodes_) {
    bytes += n.labels.capacity() * sizeof(LabelId);
    bytes += n.out_rels.capacity() * sizeof(RelId);
    bytes += n.in_rels.capacity() * sizeof(RelId);
    bytes += n.properties.capacity() *
             sizeof(std::pair<PropertyKeyId, PropertyValue>);
    for (const auto& [k, v] : n.properties) {
      (void)k;
      if (v.is_string()) bytes += v.as_string().capacity();
    }
  }
  for (const auto& bucket : label_buckets_) {
    bytes += bucket.capacity() * sizeof(NodeId);
  }
  return bytes;
}

void GraphStore::check_node(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("GraphStore: invalid node id " +
                            std::to_string(id));
  }
}

void GraphStore::check_rel(RelId id) const {
  if (id >= rels_.size()) {
    throw std::out_of_range("GraphStore: invalid relationship id " +
                            std::to_string(id));
  }
}

void GraphStore::check_live_node(NodeId id) const {
  check_node(id);
  if (nodes_[id].deleted) {
    throw std::invalid_argument("GraphStore: node " + std::to_string(id) +
                                " is deleted");
  }
}

void GraphStore::index_node(NodeId id) {
  if (indexes_.empty()) return;
  const NodeRecord& rec = nodes_[id];
  for (auto& idx : indexes_) {
    if (!std::binary_search(rec.labels.begin(), rec.labels.end(), idx.label)) {
      continue;
    }
    if (const PropertyValue* v = get_property(rec.properties, idx.key)) {
      idx.buckets[v->index_key()].push_back(id);
      ++idx.entries;
      ADSYNTH_METRIC_COUNT("graphdb.index.entries_added", 1);
    }
  }
}

void GraphStore::index_node_key(NodeId id, PropertyKeyId key) {
  if (indexes_.empty()) return;
  const NodeRecord& rec = nodes_[id];
  const PropertyValue* v = get_property(rec.properties, key);
  if (v == nullptr) return;
  for (auto& idx : indexes_) {
    if (idx.key != key) continue;
    if (!std::binary_search(rec.labels.begin(), rec.labels.end(), idx.label)) {
      continue;
    }
    idx.buckets[v->index_key()].push_back(id);
    ++idx.entries;
    ADSYNTH_METRIC_COUNT("graphdb.index.entries_added", 1);
  }
}

void GraphStore::unindex_node_key(NodeId id, PropertyKeyId key) {
  if (indexes_.empty()) return;
  const NodeRecord& rec = nodes_[id];
  const PropertyValue* v = get_property(rec.properties, key);
  if (v == nullptr) return;
  const std::string bucket_key = v->index_key();
  for (auto& idx : indexes_) {
    if (idx.key != key) continue;
    if (!std::binary_search(rec.labels.begin(), rec.labels.end(), idx.label)) {
      continue;
    }
    const auto it = idx.buckets.find(bucket_key);
    if (it == idx.buckets.end()) continue;
    // Undo replays LIFO, so the entry to drop is the most recent one.
    auto& ids = it->second;
    for (auto rit = ids.rbegin(); rit != ids.rend(); ++rit) {
      if (*rit == id) {
        ids.erase(std::next(rit).base());
        --idx.entries;
        break;
      }
    }
    if (ids.empty()) idx.buckets.erase(it);
  }
}

std::size_t GraphStore::begin_undo_scope() {
  scope_marks_.push_back(undo_log_.size());
  if (wal_ != nullptr) wal_->wal_begin_scope();
  return scope_marks_.size();
}

void GraphStore::commit_scope() {
  if (scope_marks_.empty()) {
    throw std::logic_error("GraphStore: commit_scope without an open scope");
  }
  scope_marks_.pop_back();
  // Outermost commit: the batch is final.  With a published snapshot the
  // undo log doubles as the version chain — publish_delta() derives the
  // committed epoch's overlay from it — then the inverses are discarded
  // (the vector keeps its capacity, bounded by the largest committed
  // batch).  An empty log publishes nothing: no mutations, no new epoch.
  if (scope_marks_.empty()) {
    if (snap_.tail != nullptr && !undo_log_.empty()) publish_delta();
    undo_log_.clear();
  }
  // After the store-side commit: the sink flushes the batch to disk when
  // this pop reached depth 0 (a WAL-flush failure then surfaces after the
  // in-memory commit, which the durability layer documents).
  if (wal_ != nullptr) wal_->wal_commit_scope();
}

void GraphStore::abort_scope() {
  if (scope_marks_.empty()) {
    throw std::logic_error("GraphStore: abort_scope without an open scope");
  }
  ADSYNTH_SPAN("graphdb.undo.replay");
  const std::size_t mark = scope_marks_.back();
  std::uint64_t replayed = 0;
  while (undo_log_.size() > mark) {
    const UndoOp op = std::move(undo_log_.back());
    undo_log_.pop_back();
    undo(op);
    ++replayed;
  }
  scope_marks_.pop_back();
  ADSYNTH_METRIC_COUNT("graphdb.undo.ops_replayed", replayed);
  // undo() mutates internals directly, so the replay above recorded nothing;
  // the sink just discards the ops buffered since the matching begin.
  if (wal_ != nullptr) wal_->wal_abort_scope();
}

void GraphStore::undo(const UndoOp& op) {
  switch (op.kind) {
    case UndoOp::Kind::kUncreateNode: {
      // LIFO replay guarantees the node is the newest record and its label
      // bucket / index entries sit at the tails.
      const NodeId id = op.id;
      NodeRecord& rec = nodes_[id];
      for (const auto& [key, value] : rec.properties) {
        (void)value;
        unindex_node_key(id, key);
      }
      for (const LabelId l : rec.labels) {
        auto& bucket = label_buckets_[l];
        if (!bucket.empty() && bucket.back() == id) bucket.pop_back();
      }
      nodes_.pop_back();
      break;
    }
    case UndoOp::Kind::kUncreateRel: {
      const RelRecord& rec = rels_[op.id];
      auto& out = nodes_[rec.source].out_rels;
      if (!out.empty() && out.back() == op.id) out.pop_back();
      auto& in = nodes_[rec.target].in_rels;
      if (!in.empty() && in.back() == op.id) in.pop_back();
      // Restore the endpoint stamps the adjacency growth advanced (for a
      // self-loop both saves hold the same pre-mutation value).
      nodes_[rec.source].mutated_epoch = op.old_epoch;
      nodes_[rec.target].mutated_epoch = op.old_epoch2;
      rels_.pop_back();
      break;
    }
    case UndoOp::Kind::kRestoreProperty: {
      // Drop the entry the re-index appended under the new value, then
      // restore the old value (whose bucket entry, if any, turns valid
      // again — reverse the stale bookkeeping of set_node_property).
      unindex_node_key(op.id, op.key);
      nodes_[op.id].mutated_epoch = op.old_epoch;
      auto& props = nodes_[op.id].properties;
      if (op.had_value) {
        put_property(props, op.key, op.old_value);
        const NodeRecord& rec = nodes_[op.id];
        for (auto& idx : indexes_) {
          if (idx.key != op.key) continue;
          if (!std::binary_search(rec.labels.begin(), rec.labels.end(),
                                  idx.label)) {
            continue;
          }
          if (idx.stale > 0) --idx.stale;
        }
      } else {
        const auto it = std::lower_bound(
            props.begin(), props.end(), op.key,
            [](const auto& entry, PropertyKeyId k) { return entry.first < k; });
        if (it != props.end() && it->first == op.key) props.erase(it);
      }
      break;
    }
    case UndoOp::Kind::kUndeleteRel: {
      rels_[op.id].deleted = false;
      rels_[op.id].mutated_epoch = op.old_epoch;
      --deleted_rels_;
      break;
    }
    case UndoOp::Kind::kUndeleteNode: {
      NodeRecord& rec = nodes_[op.id];
      rec.deleted = false;
      rec.mutated_epoch = op.old_epoch;
      --deleted_nodes_;
      for (auto& idx : indexes_) {
        if (!std::binary_search(rec.labels.begin(), rec.labels.end(),
                                idx.label)) {
          continue;
        }
        if (get_property(rec.properties, idx.key) != nullptr &&
            idx.stale > 0) {
          --idx.stale;
        }
      }
      break;
    }
  }
}

GraphStore::InvariantReport GraphStore::check_invariants(
    bool require_at_rest) const {
  InvariantReport report;
  // A corrupted store can violate thousands of invariants at once (e.g. a
  // truncated adjacency vector); cap the report so the audit stays readable
  // and O(violations) string work stays bounded.
  constexpr std::size_t kMaxViolations = 100;
  const auto add = [&](std::string msg) {
    if (report.violations.size() < kMaxViolations) {
      report.violations.push_back(std::move(msg));
    }
  };

  // --- record sanity ------------------------------------------------------
  std::size_t tombstoned_nodes = 0;
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    const NodeRecord& rec = nodes_[n];
    if (rec.deleted) ++tombstoned_nodes;
    for (std::size_t i = 0; i < rec.labels.size(); ++i) {
      if (rec.labels[i] >= labels_.names.size()) {
        add("node " + std::to_string(n) + ": label id " +
            std::to_string(rec.labels[i]) + " not interned");
      }
      if (i > 0 && rec.labels[i - 1] >= rec.labels[i]) {
        add("node " + std::to_string(n) + ": labels not sorted/unique");
      }
    }
    for (std::size_t i = 0; i < rec.properties.size(); ++i) {
      if (rec.properties[i].first >= keys_.names.size()) {
        add("node " + std::to_string(n) + ": property key id " +
            std::to_string(rec.properties[i].first) + " not interned");
      }
      if (i > 0 && rec.properties[i - 1].first >= rec.properties[i].first) {
        add("node " + std::to_string(n) + ": properties not sorted/unique");
      }
    }
  }
  if (tombstoned_nodes != deleted_nodes_) {
    add("tombstone accounting: deleted_nodes_=" +
        std::to_string(deleted_nodes_) + " but " +
        std::to_string(tombstoned_nodes) + " node records are tombstoned");
  }

  // --- adjacency symmetry -------------------------------------------------
  // Pass 1 over the adjacency lists: every entry must be a valid rel id
  // whose endpoint is this node; count per-rel occurrences so pass 2 can
  // check every rel appears exactly once per side.
  std::vector<std::uint32_t> out_seen(rels_.size(), 0);
  std::vector<std::uint32_t> in_seen(rels_.size(), 0);
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    for (const RelId r : nodes_[n].out_rels) {
      if (r >= rels_.size()) {
        add("node " + std::to_string(n) + ": out-adjacency entry " +
            std::to_string(r) + " is not a relationship id");
      } else {
        if (rels_[r].source != n) {
          add("node " + std::to_string(n) + ": out-adjacency lists rel " +
              std::to_string(r) + " whose source is " +
              std::to_string(rels_[r].source));
        }
        ++out_seen[r];
      }
    }
    for (const RelId r : nodes_[n].in_rels) {
      if (r >= rels_.size()) {
        add("node " + std::to_string(n) + ": in-adjacency entry " +
            std::to_string(r) + " is not a relationship id");
      } else {
        if (rels_[r].target != n) {
          add("node " + std::to_string(n) + ": in-adjacency lists rel " +
              std::to_string(r) + " whose target is " +
              std::to_string(rels_[r].target));
        }
        ++in_seen[r];
      }
    }
  }
  std::size_t tombstoned_rels = 0;
  for (RelId r = 0; r < rels_.size(); ++r) {
    const RelRecord& rec = rels_[r];
    if (rec.deleted) ++tombstoned_rels;
    if (rec.source >= nodes_.size() || rec.target >= nodes_.size()) {
      add("rel " + std::to_string(r) + ": endpoint out of range");
      continue;
    }
    if (rec.type >= rel_types_.names.size()) {
      add("rel " + std::to_string(r) + ": type id not interned");
    }
    if (out_seen[r] != 1) {
      add("rel " + std::to_string(r) + ": appears " +
          std::to_string(out_seen[r]) + "x in source " +
          std::to_string(rec.source) + " out-adjacency (want exactly 1)");
    }
    if (in_seen[r] != 1) {
      add("rel " + std::to_string(r) + ": appears " +
          std::to_string(in_seen[r]) + "x in target " +
          std::to_string(rec.target) + " in-adjacency (want exactly 1)");
    }
    // A live edge incident to a tombstoned node is unreachable from label
    // scans yet alive for adjacency walks — the resurrection/dangling class
    // delete_node's detach requirement exists to prevent.
    if (!rec.deleted &&
        (nodes_[rec.source].deleted || nodes_[rec.target].deleted)) {
      add("rel " + std::to_string(r) +
          ": live relationship touches tombstoned endpoint (source " +
          std::to_string(rec.source) + " target " +
          std::to_string(rec.target) + ")");
    }
  }
  if (tombstoned_rels != deleted_rels_) {
    add("tombstone accounting: deleted_rels_=" + std::to_string(deleted_rels_) +
        " but " + std::to_string(tombstoned_rels) +
        " relationship records are tombstoned");
  }

  // --- label buckets ------------------------------------------------------
  if (label_buckets_.size() != labels_.names.size()) {
    add("label buckets: " + std::to_string(label_buckets_.size()) +
        " buckets for " + std::to_string(labels_.names.size()) + " labels");
  }
  // seen_in_bucket is reused across labels; only touched slots are reset,
  // keeping the whole pass O(nodes + total bucket entries).
  std::vector<std::uint32_t> seen_in_bucket(nodes_.size(), 0);
  const std::size_t bucket_count =
      std::min(label_buckets_.size(), labels_.names.size());
  for (LabelId l = 0; l < bucket_count; ++l) {
    const auto& bucket = label_buckets_[l];
    for (const NodeId n : bucket) {
      if (n >= nodes_.size()) {
        add("label bucket '" + labels_.names[l] + "': entry " +
            std::to_string(n) + " is not a node id");
        continue;
      }
      ++seen_in_bucket[n];
      if (!std::binary_search(nodes_[n].labels.begin(), nodes_[n].labels.end(),
                              l)) {
        add("label bucket '" + labels_.names[l] + "': node " +
            std::to_string(n) + " does not carry the label");
      }
    }
    for (NodeId n = 0; n < nodes_.size(); ++n) {
      const bool has_label = std::binary_search(
          nodes_[n].labels.begin(), nodes_[n].labels.end(), l);
      if (has_label && seen_in_bucket[n] != 1) {
        add("label bucket '" + labels_.names[l] + "': node " +
            std::to_string(n) + " appears " +
            std::to_string(seen_in_bucket[n]) + "x (want exactly 1)");
      }
    }
    for (const NodeId n : bucket) {
      if (n < nodes_.size()) seen_in_bucket[n] = 0;
    }
  }

  // --- property indexes ---------------------------------------------------
  for (const PropertyIndex& idx : indexes_) {
    const std::string where = "index (:" +
                              (idx.label < labels_.names.size()
                                   ? labels_.names[idx.label]
                                   : "?" + std::to_string(idx.label)) +
                              "." +
                              (idx.key < keys_.names.size()
                                   ? keys_.names[idx.key]
                                   : "?" + std::to_string(idx.key)) +
                              ")";
    if (idx.label >= labels_.names.size() || idx.key >= keys_.names.size()) {
      add(where + ": label/key id not interned");
      continue;
    }
    std::size_t total = 0;
    std::size_t computed_stale = 0;
    for (const auto& [value_key, ids] : idx.buckets) {
      if (ids.empty()) {
        add(where + ": empty bucket row for value '" + value_key + "'");
      }
      total += ids.size();
      for (const NodeId n : ids) {
        if (n >= nodes_.size()) {
          add(where + ": bucket '" + value_key + "' entry " +
              std::to_string(n) + " is not a node id");
          continue;
        }
        const NodeRecord& rec = nodes_[n];
        const PropertyValue* v = get_property(rec.properties, idx.key);
        const bool live =
            !rec.deleted &&
            std::binary_search(rec.labels.begin(), rec.labels.end(),
                               idx.label) &&
            v != nullptr && v->index_key() == value_key;
        if (!live) ++computed_stale;
      }
    }
    if (total != idx.entries) {
      add(where + ": entries=" + std::to_string(idx.entries) +
          " but buckets hold " + std::to_string(total));
    }
    if (computed_stale > idx.stale) {
      add(where + ": stale counter " + std::to_string(idx.stale) +
          " undercounts " + std::to_string(computed_stale) +
          " actually-stale entries");
    }
    if (idx.stale > total) {
      add(where + ": stale counter " + std::to_string(idx.stale) +
          " exceeds " + std::to_string(total) + " entries");
    }
    // Coverage: every live node carrying (label, key) must be findable
    // under its current value.
    if (idx.label < label_buckets_.size()) {
      for (const NodeId n : label_buckets_[idx.label]) {
        if (n >= nodes_.size() || nodes_[n].deleted) continue;
        const PropertyValue* v = get_property(nodes_[n].properties, idx.key);
        if (v == nullptr) continue;
        const auto it = idx.buckets.find(v->index_key());
        const bool found =
            it != idx.buckets.end() &&
            std::find(it->second.begin(), it->second.end(), n) !=
                it->second.end();
        if (!found) {
          add(where + ": live node " + std::to_string(n) +
              " missing from bucket '" + v->index_key() + "'");
        }
      }
    }
  }

  // --- undo machinery -----------------------------------------------------
  for (std::size_t i = 0; i < scope_marks_.size(); ++i) {
    if (scope_marks_[i] > undo_log_.size() ||
        (i > 0 && scope_marks_[i - 1] > scope_marks_[i])) {
      add("undo scopes: mark " + std::to_string(i) + " (" +
          std::to_string(scope_marks_[i]) + ") not monotone within log of " +
          std::to_string(undo_log_.size()));
    }
  }
  if (require_at_rest) {
    if (!scope_marks_.empty()) {
      add("at rest: " + std::to_string(scope_marks_.size()) +
          " undo scope(s) still open");
    }
    if (!undo_log_.empty()) {
      add("at rest: undo log holds " + std::to_string(undo_log_.size()) +
          " record(s)");
    }
  }

  // --- version chains / snapshots (body in snapshot.cpp) ------------------
  audit_snapshots(report, require_at_rest, kMaxViolations);

  return report;
}

void GraphStore::maybe_compact() {
  // Compaction moves the bucket-tail entries undo replay relies on, so it
  // is deferred while any scope is open; the next unscoped mutation (or a
  // session commit boundary) triggers it.
  if (recording()) return;
  for (auto& idx : indexes_) {
    if (idx.entries >= kCompactMinEntries &&
        idx.stale * 2 > idx.entries) {
      compact_index(idx);
    }
  }
}

void GraphStore::compact_index(PropertyIndex& idx) {
  ADSYNTH_SPAN("graphdb.index.compact");
  ADSYNTH_METRIC_COUNT("graphdb.index.compactions", 1);
  std::size_t kept_total = 0;
  for (auto it = idx.buckets.begin(); it != idx.buckets.end();) {
    auto& ids = it->second;
    std::vector<NodeId> kept;
    kept.reserve(ids.size());
    for (const NodeId n : ids) {
      if (nodes_[n].deleted) continue;
      const NodeRecord& rec = nodes_[n];
      if (!std::binary_search(rec.labels.begin(), rec.labels.end(),
                              idx.label)) {
        continue;
      }
      const PropertyValue* v = get_property(rec.properties, idx.key);
      if (v == nullptr || v->index_key() != it->first) continue;
      kept.push_back(n);
    }
    // Re-setting a value back can leave duplicates; reads sort anyway.
    std::sort(kept.begin(), kept.end());
    kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
    if (kept.empty()) {
      it = idx.buckets.erase(it);
      continue;
    }
    kept_total += kept.size();
    ids = std::move(kept);
    ++it;
  }
  idx.entries = kept_total;
  idx.stale = 0;
}

}  // namespace adsynth::graphdb
