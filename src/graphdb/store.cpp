#include "graphdb/store.hpp"

#include <algorithm>
#include <stdexcept>

namespace adsynth::graphdb {

void put_property(PropertyList& list, PropertyKeyId key, PropertyValue value) {
  const auto it = std::lower_bound(
      list.begin(), list.end(), key,
      [](const auto& entry, PropertyKeyId k) { return entry.first < k; });
  if (it != list.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    list.insert(it, {key, std::move(value)});
  }
}

const PropertyValue* get_property(const PropertyList& list,
                                  PropertyKeyId key) {
  const auto it = std::lower_bound(
      list.begin(), list.end(), key,
      [](const auto& entry, PropertyKeyId k) { return entry.first < k; });
  if (it != list.end() && it->first == key) return &it->second;
  return nullptr;
}

std::uint32_t GraphStore::Interner::intern(std::string_view name) {
  const auto it = index.find(std::string(name));
  if (it != index.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names.size());
  names.emplace_back(name);
  index.emplace(names.back(), id);
  return id;
}

std::optional<std::uint32_t> GraphStore::Interner::find(
    std::string_view name) const {
  const auto it = index.find(std::string(name));
  if (it == index.end()) return std::nullopt;
  return it->second;
}

LabelId GraphStore::intern_label(std::string_view name) {
  const LabelId id = labels_.intern(name);
  if (id >= label_buckets_.size()) label_buckets_.resize(id + 1);
  return id;
}

RelTypeId GraphStore::intern_rel_type(std::string_view name) {
  return rel_types_.intern(name);
}

PropertyKeyId GraphStore::intern_key(std::string_view name) {
  return keys_.intern(name);
}

const std::string& GraphStore::label_name(LabelId id) const {
  if (id >= labels_.names.size()) {
    throw std::out_of_range("GraphStore: invalid label id");
  }
  return labels_.names[id];
}

const std::string& GraphStore::rel_type_name(RelTypeId id) const {
  if (id >= rel_types_.names.size()) {
    throw std::out_of_range("GraphStore: invalid relationship type id");
  }
  return rel_types_.names[id];
}

const std::string& GraphStore::key_name(PropertyKeyId id) const {
  if (id >= keys_.names.size()) {
    throw std::out_of_range("GraphStore: invalid property key id");
  }
  return keys_.names[id];
}

std::optional<LabelId> GraphStore::find_label(std::string_view name) const {
  return labels_.find(name);
}

std::optional<RelTypeId> GraphStore::find_rel_type(
    std::string_view name) const {
  return rel_types_.find(name);
}

std::optional<PropertyKeyId> GraphStore::find_key(
    std::string_view name) const {
  return keys_.find(name);
}

NodeId GraphStore::create_node(const std::vector<std::string>& labels,
                               PropertyList properties) {
  std::vector<LabelId> ids;
  ids.reserve(labels.size());
  for (const auto& l : labels) ids.push_back(intern_label(l));
  return create_node_interned(std::move(ids), std::move(properties));
}

NodeId GraphStore::create_node_interned(std::vector<LabelId> labels,
                                        PropertyList properties) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  const auto id = static_cast<NodeId>(nodes_.size());
  for (const LabelId l : labels) {
    if (l >= label_buckets_.size()) {
      throw std::out_of_range("GraphStore: label id not interned");
    }
    label_buckets_[l].push_back(id);
  }
  NodeRecord rec;
  rec.labels = std::move(labels);
  rec.properties = std::move(properties);
  nodes_.push_back(std::move(rec));
  index_node(id);
  return id;
}

RelId GraphStore::create_relationship(NodeId source, NodeId target,
                                      std::string_view type,
                                      PropertyList properties) {
  return create_relationship_interned(source, target, intern_rel_type(type),
                                      std::move(properties));
}

RelId GraphStore::create_relationship_interned(NodeId source, NodeId target,
                                               RelTypeId type,
                                               PropertyList properties) {
  check_node(source);
  check_node(target);
  if (type >= rel_types_.names.size()) {
    throw std::out_of_range("GraphStore: relationship type not interned");
  }
  const auto id = static_cast<RelId>(rels_.size());
  rels_.push_back(RelRecord{source, target, type, std::move(properties), false});
  nodes_[source].out_rels.push_back(id);
  nodes_[target].in_rels.push_back(id);
  return id;
}

void GraphStore::set_node_property(NodeId node, std::string_view key,
                                   PropertyValue v) {
  check_node(node);
  put_property(nodes_[node].properties, intern_key(key), std::move(v));
  // Property indexes are append-only buckets; a changed value is re-indexed
  // under the new key.  Stale entries are filtered at read time by
  // re-checking the property (see find_nodes).
  index_node(node);
}

void GraphStore::delete_relationship(RelId rel) {
  check_rel(rel);
  if (!rels_[rel].deleted) {
    rels_[rel].deleted = true;
    ++deleted_rels_;
  }
}

const NodeRecord& GraphStore::node(NodeId id) const {
  check_node(id);
  return nodes_[id];
}

const RelRecord& GraphStore::rel(RelId id) const {
  check_rel(id);
  return rels_[id];
}

bool GraphStore::node_has_label(NodeId id, LabelId label) const {
  check_node(id);
  const auto& labels = nodes_[id].labels;
  return std::binary_search(labels.begin(), labels.end(), label);
}

const PropertyValue* GraphStore::node_property(NodeId id,
                                               PropertyKeyId key) const {
  check_node(id);
  return get_property(nodes_[id].properties, key);
}

const PropertyValue* GraphStore::node_property(NodeId id,
                                               std::string_view key) const {
  const auto key_id = keys_.find(key);
  if (!key_id) return nullptr;
  return node_property(id, *key_id);
}

std::vector<NodeId> GraphStore::nodes_with_label(std::string_view label) const {
  const auto id = labels_.find(label);
  if (!id) return {};
  std::vector<NodeId> out;
  // Deleted nodes are rare, so the bucket size is the right capacity —
  // a million-node label scan must not reallocate its way up.
  out.reserve(label_buckets_[*id].size());
  for (const NodeId n : label_buckets_[*id]) {
    if (!nodes_[n].deleted) out.push_back(n);
  }
  return out;
}

const std::vector<NodeId>& GraphStore::nodes_with_label_interned(
    LabelId label) const {
  if (label >= label_buckets_.size()) return empty_bucket_;
  return label_buckets_[label];
}

void GraphStore::create_index(std::string_view label, std::string_view key) {
  const LabelId l = intern_label(label);
  const PropertyKeyId k = keys_.intern(key);
  for (const auto& idx : indexes_) {
    if (idx.label == l && idx.key == k) return;
  }
  PropertyIndex idx;
  idx.label = l;
  idx.key = k;
  for (const NodeId n : label_buckets_[l]) {
    if (const PropertyValue* v = get_property(nodes_[n].properties, k)) {
      idx.buckets[v->index_key()].push_back(n);
    }
  }
  indexes_.push_back(std::move(idx));
}

std::vector<NodeId> GraphStore::find_nodes(std::string_view label,
                                           std::string_view key,
                                           const PropertyValue& value) const {
  const auto l = labels_.find(label);
  const auto k = keys_.find(key);
  if (!l || !k) return {};
  const std::string needle = value.index_key();
  for (const auto& idx : indexes_) {
    if (idx.label != *l || idx.key != *k) continue;
    const auto it = idx.buckets.find(needle);
    if (it == idx.buckets.end()) return {};
    std::vector<NodeId> out;
    for (const NodeId n : it->second) {
      if (nodes_[n].deleted) continue;
      const PropertyValue* v = get_property(nodes_[n].properties, *k);
      if (v != nullptr && *v == value) out.push_back(n);
    }
    // Re-indexing on property change can leave duplicates in the bucket.
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
  // No index: label scan.
  std::vector<NodeId> out;
  for (const NodeId n : label_buckets_[*l]) {
    if (nodes_[n].deleted) continue;
    const PropertyValue* v = get_property(nodes_[n].properties, *k);
    if (v != nullptr && *v == value) out.push_back(n);
  }
  return out;
}

std::size_t GraphStore::approximate_bytes() const {
  std::size_t bytes = 0;
  bytes += nodes_.capacity() * sizeof(NodeRecord);
  bytes += rels_.capacity() * sizeof(RelRecord);
  for (const auto& n : nodes_) {
    bytes += n.labels.capacity() * sizeof(LabelId);
    bytes += n.out_rels.capacity() * sizeof(RelId);
    bytes += n.in_rels.capacity() * sizeof(RelId);
    bytes += n.properties.capacity() *
             sizeof(std::pair<PropertyKeyId, PropertyValue>);
    for (const auto& [k, v] : n.properties) {
      (void)k;
      if (v.is_string()) bytes += v.as_string().capacity();
    }
  }
  for (const auto& bucket : label_buckets_) {
    bytes += bucket.capacity() * sizeof(NodeId);
  }
  return bytes;
}

void GraphStore::check_node(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("GraphStore: invalid node id " +
                            std::to_string(id));
  }
}

void GraphStore::check_rel(RelId id) const {
  if (id >= rels_.size()) {
    throw std::out_of_range("GraphStore: invalid relationship id " +
                            std::to_string(id));
  }
}

void GraphStore::index_node(NodeId id) {
  if (indexes_.empty()) return;
  const NodeRecord& rec = nodes_[id];
  for (auto& idx : indexes_) {
    if (!std::binary_search(rec.labels.begin(), rec.labels.end(), idx.label)) {
      continue;
    }
    if (const PropertyValue* v = get_property(rec.properties, idx.key)) {
      idx.buckets[v->index_key()].push_back(id);
    }
  }
}

}  // namespace adsynth::graphdb
