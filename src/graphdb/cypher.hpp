// Cypher-lite: a statement executor over GraphStore covering the query
// shapes the DBCreator / ADSimulator generation scripts issue against Neo4j.
//
// Supported grammar (case-insensitive keywords):
//
//   CREATE (var:Label[:Label2] {key: value, ...})
//   MERGE  (var:Label {key: value, ...})
//   MATCH (a:Label {k: v})[, (b:Label {k: v})] CREATE (a)-[:TYPE {..}]->(b)
//   MATCH (a:Label {k: v})[, (b:Label {k: v})] MERGE  (a)-[:TYPE {..}]->(b)
//   MATCH (n:Label [{k: v}]) RETURN n | RETURN count(n)
//   MATCH (n:Label {k: v}) SET n.key = value
//   MATCH (a:L [{..}])-[r:TYPE]->(b:M [{..}]) RETURN count(r)
//   MATCH (a:L [{..}])-[r:TYPE]->(b:M [{..}]) DELETE r
//   CREATE INDEX ON :Label(key)
//
// Values: 'string', "string", integers, floats, true/false/null, and
// [ 'a', 'b' ] string lists.
//
// Every `run()` call is an auto-commit transaction, like the Neo4j drivers
// the original Python tools use: the statement is parsed from scratch, then
// executed, then a commit record is appended to an in-memory journal.  That
// per-statement cost is deliberate — it reproduces the transaction overhead
// the paper identifies as the baselines' bottleneck (Table I) — and is
// ablated in bench_ablation_txn.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graphdb/store.hpp"

namespace adsynth::graphdb {

/// Outcome of one statement.
struct QueryResult {
  std::vector<NodeId> nodes;  // matched/created nodes (RETURN n, CREATE ...)
  std::vector<RelId> rels;    // created relationships
  std::int64_t count = 0;     // RETURN count(n)
  std::size_t nodes_created = 0;
  std::size_t rels_created = 0;
  std::size_t rels_deleted = 0;
  std::size_t properties_set = 0;
};

/// Thrown on grammar or execution errors, with the offending statement.
class CypherError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CypherSession {
 public:
  explicit CypherSession(GraphStore& store) : store_(store) {}

  /// Executes a single statement as an auto-commit transaction (or, inside
  /// an explicit transaction, as one statement of that transaction).
  QueryResult run(std::string_view statement);

  /// Begins an explicit transaction: subsequent run() calls batch under a
  /// single commit record (the `session.begin_transaction()` pattern of the
  /// Neo4j drivers — what the baseline tools *could* have used to amortize
  /// their per-statement overhead).  Nested begins throw std::logic_error.
  void begin_transaction();

  /// Commits the open transaction (one journal record for the whole
  /// batch); throws std::logic_error when none is open.
  void commit();

  /// True while an explicit transaction is open.
  bool in_transaction() const { return in_transaction_; }

  /// Number of transactions committed so far.
  std::size_t transactions() const { return transactions_; }

  /// Statements executed so far (each parsed individually regardless of
  /// transaction batching).
  std::size_t statements() const { return statements_; }

  /// Commit journal (one line per transaction, WAL-style).  Exists so the
  /// transaction cost is real work, not an artificial sleep; tests also use
  /// it to assert statement counts.
  const std::string& journal() const { return journal_; }

 private:
  void commit_record(const QueryResult& result);

  GraphStore& store_;
  std::size_t transactions_ = 0;
  std::size_t statements_ = 0;
  bool in_transaction_ = false;
  std::size_t pending_nodes_ = 0;
  std::size_t pending_rels_ = 0;
  std::string journal_;
};

}  // namespace adsynth::graphdb
