// Cypher: a layered query frontend over GraphStore — recursive-descent
// parser (cypher_parser.hpp) -> typed AST (cypher_ast.hpp) -> cost-based
// planner (cypher_planner.hpp) -> executor (cypher_exec.hpp) — covering the
// query shapes the DBCreator / ADSimulator generation scripts issue against
// Neo4j, plus multi-hop traversals, variable-length paths, WHERE filters,
// RETURN projections and prepared statements.
//
// Supported grammar (case-insensitive keywords):
//
//   [EXPLAIN] statement [';']
//
//   CREATE (var:Label[:Label2] {key: value, ...})[, (...)]
//   MERGE  (var:Label {key: value, ...})
//   MATCH (a:Label {k: v})[, (b:Label {k: v})] CREATE (a)-[:TYPE {..}]->(b)
//   MATCH (a:Label {k: v})[, (b:Label {k: v})] MERGE  (a)-[:TYPE {..}]->(b)
//   MATCH path [WHERE pred [AND pred]...] RETURN items [LIMIT n]
//   MATCH (n:Label {k: v}) SET n.key = value
//   MATCH (n:Label [{k: v}]) [DETACH] DELETE n
//   MATCH (a:L)-[r:TYPE]->(b:M) DELETE r
//   CREATE INDEX ON :Label(key)
//
//   path  := (n:Label [{..}]) [ -[r:TYPE[*min..max] {..}]-> (m:Label) ]...
//   pred  := var.key (= | <> | < | <= | > | >=) value
//   items := count(x) | var | var.key  [, ...]
//   value := 'string' | "string" | 42 | 1.5 | true | false | null
//            | ['a', 'b'] | $param
//
// Variable-length patterns `-[:TYPE*min..max]->` (also `*`, `*n`, `*..max`,
// `*min..`) have shortest-distance semantics: (a, b) matches when the BFS
// hop distance from a to b over TYPE edges lies in [min, max] — each node
// pair appears once, exactly what `analytics::bfs_distances` computes.
//
// EXPLAIN returns the chosen plan in QueryResult::plan without executing:
//
//   EXPLAIN MATCH (n:User {name: $name})-[:MemberOf*1..3]->(g:Group)
//   RETURN count(g)
//     -> IndexSeek :User(name = $name) ~rows=1
//        ExpandVarLength -[:MemberOf*1..3]-> (BFS, ...)
//        Project count(g)
//
// $param placeholders bind at execution time, so one parsed+planned
// statement is reusable:
//
//   auto stmt = session.prepare(
//       "MATCH (n:User {name: $name}) RETURN count(n)");
//   session.execute(stmt, {{"name", PropertyValue("ALICE")}});
//
// run() consults an LRU plan cache keyed on normalized statement text, so
// hot statement shapes skip the parser; the cache re-plans when
// GraphStore::schema_version() moves (a new index can change the plan).
//
// Transaction semantics follow the Neo4j drivers the original Python tools
// use.  Every `run()` call outside an explicit transaction is an
// auto-commit transaction: the statement is executed atomically (a
// mid-statement failure rolls the store back to the statement boundary)
// and one commit record is appended to the journal.  That per-statement
// cost is deliberate — it reproduces the transaction overhead the paper
// identifies as the baselines' bottleneck (Table I) — and is ablated in
// bench_ablation_txn.  Inside begin_transaction() / commit(), each
// statement runs under a savepoint: a failed statement rolls back to the
// statement boundary and the transaction stays open, and rollback() undoes
// the whole batch.  The journal is a bounded ring of structured commit
// records: memory stays flat across million-statement imports.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graphdb/cypher_ast.hpp"
#include "graphdb/cypher_exec.hpp"
#include "graphdb/store.hpp"

namespace adsynth::graphdb {

/// One committed transaction, WAL-record style.  The journal keeps the most
/// recent kJournalCapacity of these; lifetime totals live in the session
/// counters (transactions(), statements()).
struct CommitRecord {
  std::uint64_t sequence = 0;  // 1-based commit number
  std::uint32_t statements = 0;
  std::uint32_t nodes_created = 0;
  std::uint32_t rels_created = 0;
  std::uint32_t nodes_deleted = 0;
  std::uint32_t rels_deleted = 0;
  std::uint32_t properties_set = 0;
};

/// A parsed + planned statement, ready to execute with any $param binding.
/// Immutable once built; shared between the session's plan cache and any
/// handles prepare() returned, so cache eviction never invalidates a
/// handle.
struct PreparedQuery {
  std::string normalized;  // cache key: whitespace-collapsed statement text
  cypher::PlannedQuery plan;
};

using PreparedStatement = std::shared_ptr<const PreparedQuery>;

class CypherSession {
 public:
  /// Most recent commit records retained by journal().
  static constexpr std::size_t kJournalCapacity = 1024;

  /// Plan-cache capacity (distinct normalized statement texts).
  static constexpr std::size_t kPlanCacheCapacity = 256;

  explicit CypherSession(GraphStore& store) : store_(store) {
    ring_.reserve(kJournalCapacity);
  }

  /// Executes a single statement as an auto-commit transaction (or, inside
  /// an explicit transaction, as one savepointed statement of that
  /// transaction).  A statement that throws leaves the store exactly as it
  /// was at the statement boundary.  Plans are cached: re-running the same
  /// statement text skips the parser and planner.
  QueryResult run(std::string_view statement);

  /// run() with $param bindings.
  QueryResult run(std::string_view statement, const Params& params);

  /// Parses and plans a statement without executing it.  The returned
  /// handle stays valid for the life of the session and executes with
  /// execute(); it is also inserted into the plan cache.
  PreparedStatement prepare(std::string_view statement);

  /// Executes a prepared statement (same transaction semantics as run()).
  /// Re-plans transparently when an index was created since preparation.
  QueryResult execute(const PreparedStatement& statement,
                      const Params& params = {});

  /// Executes a prepared read statement against an immutable snapshot —
  /// the concurrent-serving path: any number of reader threads call this
  /// with views of the store one writer session keeps committing to.
  /// Static on purpose: it touches no session state (no journal, no undo
  /// scope, no plan-cache traffic), so it is safe to call from any thread
  /// while the owning session executes writes.  Reuses the prepared plan
  /// as-is; a snapshot whose root predates an index simply serves the seek
  /// through its label scan (same rows).  Mutating statements throw
  /// CypherError.
  static QueryResult execute_read(const SnapshotView& view,
                                  const PreparedStatement& statement,
                                  const Params& params = {});

  /// Convenience overload taking the shared handle GraphStore::snapshot()
  /// returns.
  static QueryResult execute_read(const Snapshot& snapshot,
                                  const PreparedStatement& statement,
                                  const Params& params = {});

  /// Begins an explicit transaction: subsequent run() calls batch under a
  /// single commit record (the `session.begin_transaction()` pattern of the
  /// Neo4j drivers — what the baseline tools *could* have used to amortize
  /// their per-statement overhead).  Nested begins throw std::logic_error.
  void begin_transaction();

  /// Commits the open transaction (one journal record for the whole
  /// batch); throws std::logic_error when none is open.
  void commit();

  /// Rolls the open transaction back: every mutation since
  /// begin_transaction() is undone and no commit record is written.
  /// Throws std::logic_error when none is open.
  void rollback();

  /// True while an explicit transaction is open.
  bool in_transaction() const { return in_transaction_; }

  /// Number of transactions committed so far.
  std::size_t transactions() const { return transactions_; }

  /// Statements executed successfully so far.
  std::size_t statements() const { return statements_; }

  /// Explicit-transaction rollbacks performed via rollback().
  std::size_t rollbacks() const { return rollbacks_; }

  /// Statements undone at their savepoint because execution threw.
  std::size_t statement_rollbacks() const { return statement_rollbacks_; }

  /// Plan-cache accounting: run() calls served from / missing the cache,
  /// and entries evicted by the LRU capacity bound.  Mirrored into the
  /// metrics registry as graphdb.plan_cache.{hits,misses,evictions}.
  std::size_t plan_cache_hits() const { return plan_cache_hits_; }
  std::size_t plan_cache_misses() const { return plan_cache_misses_; }
  std::size_t plan_cache_evictions() const { return plan_cache_evictions_; }
  std::size_t plan_cache_size() const { return plan_cache_.size(); }

  /// The retained commit records, oldest first (at most kJournalCapacity).
  /// Exists so the transaction cost is real work, not an artificial sleep;
  /// tests also use it to assert commit batching.
  std::vector<CommitRecord> journal() const;

  /// Records currently retained.
  std::size_t journal_size() const { return ring_.size(); }

  /// Resident bytes of the journal ring — constant once the ring is full,
  /// however many statements a session executes (asserted by the
  /// million-statement import test).
  std::size_t journal_bytes() const {
    return ring_.capacity() * sizeof(CommitRecord);
  }

  /// Installs the durability hook: a callable that snapshots the store and
  /// resets its WAL (typically `[&] { durability.checkpoint(store); }` —
  /// see graphdb/persist.hpp).  The session never checkpoints mid-
  /// transaction: the hook fires only at commit boundaries.
  void set_checkpoint_handler(std::function<void()> handler) {
    checkpoint_handler_ = std::move(handler);
  }

  /// Auto-checkpoint cadence: fire the handler after every N committed
  /// transactions (0 disables, the default).  Counted against
  /// transactions(), so explicit commits and auto-commit statements both
  /// advance it.
  void set_auto_checkpoint(std::size_t every_n_commits) {
    auto_checkpoint_every_ = every_n_commits;
  }

  /// Invokes the checkpoint handler now.  Throws std::logic_error inside an
  /// open transaction or when no handler is installed.
  void checkpoint();

  /// Checkpoints taken (manual + automatic).
  std::size_t checkpoints() const { return checkpoints_; }

 private:
  /// Cache lookup + parse/plan on miss.  Throws CypherError on bad
  /// statements (parse failures are not cached).
  PreparedStatement prepare_cached(std::string_view statement);

  /// Transaction/savepoint wrapper shared by every execution entry point.
  QueryResult run_prepared(const PreparedQuery& prepared,
                           const Params& params);

  void commit_record(const QueryResult& result, std::size_t statement_count);
  void push_record(CommitRecord record);
  /// Fires the checkpoint handler when the auto cadence says so.
  void maybe_auto_checkpoint();

  GraphStore& store_;
  std::size_t transactions_ = 0;
  std::size_t statements_ = 0;
  std::size_t rollbacks_ = 0;
  std::size_t statement_rollbacks_ = 0;
  bool in_transaction_ = false;
  std::function<void()> checkpoint_handler_;
  std::size_t auto_checkpoint_every_ = 0;
  std::size_t checkpoints_ = 0;
  CommitRecord pending_{};  // accumulates the open transaction's totals
  std::vector<CommitRecord> ring_;  // bounded commit journal
  std::size_t ring_head_ = 0;       // insertion point once the ring is full

  // LRU plan cache: list front = most recently used; map points into the
  // list.  Entries are shared_ptrs, so eviction cannot invalidate a
  // PreparedStatement a caller still holds.
  struct CacheEntry {
    std::string key;
    PreparedStatement stmt;
  };
  std::list<CacheEntry> plan_lru_;
  std::unordered_map<std::string_view, std::list<CacheEntry>::iterator>
      plan_cache_;
  std::size_t plan_cache_hits_ = 0;
  std::size_t plan_cache_misses_ = 0;
  std::size_t plan_cache_evictions_ = 0;
};

}  // namespace adsynth::graphdb
