// Cypher-lite: a statement executor over GraphStore covering the query
// shapes the DBCreator / ADSimulator generation scripts issue against Neo4j.
//
// Supported grammar (case-insensitive keywords):
//
//   CREATE (var:Label[:Label2] {key: value, ...})
//   MERGE  (var:Label {key: value, ...})
//   MATCH (a:Label {k: v})[, (b:Label {k: v})] CREATE (a)-[:TYPE {..}]->(b)
//   MATCH (a:Label {k: v})[, (b:Label {k: v})] MERGE  (a)-[:TYPE {..}]->(b)
//   MATCH (n:Label [{k: v}]) RETURN n | RETURN count(n)
//   MATCH (n:Label {k: v}) SET n.key = value
//   MATCH (n:Label [{k: v}]) [DETACH] DELETE n
//   MATCH (a:L [{..}])-[r:TYPE]->(b:M [{..}]) RETURN count(r)
//   MATCH (a:L [{..}])-[r:TYPE]->(b:M [{..}]) DELETE r
//   CREATE INDEX ON :Label(key)
//
// Values: 'string', "string", integers, floats, true/false/null, and
// [ 'a', 'b' ] string lists.
//
// Transaction semantics follow the Neo4j drivers the original Python tools
// use.  Every `run()` call outside an explicit transaction is an
// auto-commit transaction: the statement is parsed from scratch, executed
// atomically (a mid-statement failure rolls the store back to the
// statement boundary), and one commit record is appended to the journal.
// That per-statement cost is deliberate — it reproduces the transaction
// overhead the paper identifies as the baselines' bottleneck (Table I) —
// and is ablated in bench_ablation_txn.  Inside begin_transaction() /
// commit(), each statement runs under a savepoint: a failed statement
// rolls back to the statement boundary and the transaction stays open,
// and rollback() undoes the whole batch.  The journal is a bounded ring
// of structured commit records: memory stays flat across million-statement
// imports.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graphdb/store.hpp"

namespace adsynth::graphdb {

/// Outcome of one statement.
struct QueryResult {
  std::vector<NodeId> nodes;  // matched/created nodes (RETURN n, CREATE ...)
  std::vector<RelId> rels;    // created relationships
  std::int64_t count = 0;     // RETURN count(n)
  std::size_t nodes_created = 0;
  std::size_t rels_created = 0;
  std::size_t nodes_deleted = 0;
  std::size_t rels_deleted = 0;
  std::size_t properties_set = 0;
};

/// One committed transaction, WAL-record style.  The journal keeps the most
/// recent kJournalCapacity of these; lifetime totals live in the session
/// counters (transactions(), statements()).
struct CommitRecord {
  std::uint64_t sequence = 0;  // 1-based commit number
  std::uint32_t statements = 0;
  std::uint32_t nodes_created = 0;
  std::uint32_t rels_created = 0;
  std::uint32_t nodes_deleted = 0;
  std::uint32_t rels_deleted = 0;
  std::uint32_t properties_set = 0;
};

/// Thrown on grammar or execution errors, with the offending statement.
class CypherError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CypherSession {
 public:
  /// Most recent commit records retained by journal().
  static constexpr std::size_t kJournalCapacity = 1024;

  explicit CypherSession(GraphStore& store) : store_(store) {
    ring_.reserve(kJournalCapacity);
  }

  /// Executes a single statement as an auto-commit transaction (or, inside
  /// an explicit transaction, as one savepointed statement of that
  /// transaction).  A statement that throws leaves the store exactly as it
  /// was at the statement boundary.
  QueryResult run(std::string_view statement);

  /// Begins an explicit transaction: subsequent run() calls batch under a
  /// single commit record (the `session.begin_transaction()` pattern of the
  /// Neo4j drivers — what the baseline tools *could* have used to amortize
  /// their per-statement overhead).  Nested begins throw std::logic_error.
  void begin_transaction();

  /// Commits the open transaction (one journal record for the whole
  /// batch); throws std::logic_error when none is open.
  void commit();

  /// Rolls the open transaction back: every mutation since
  /// begin_transaction() is undone and no commit record is written.
  /// Throws std::logic_error when none is open.
  void rollback();

  /// True while an explicit transaction is open.
  bool in_transaction() const { return in_transaction_; }

  /// Number of transactions committed so far.
  std::size_t transactions() const { return transactions_; }

  /// Statements executed successfully so far (each parsed individually
  /// regardless of transaction batching).
  std::size_t statements() const { return statements_; }

  /// Explicit-transaction rollbacks performed via rollback().
  std::size_t rollbacks() const { return rollbacks_; }

  /// Statements undone at their savepoint because execution threw.
  std::size_t statement_rollbacks() const { return statement_rollbacks_; }

  /// The retained commit records, oldest first (at most kJournalCapacity).
  /// Exists so the transaction cost is real work, not an artificial sleep;
  /// tests also use it to assert commit batching.
  std::vector<CommitRecord> journal() const;

  /// Records currently retained.
  std::size_t journal_size() const { return ring_.size(); }

  /// Resident bytes of the journal ring — constant once the ring is full,
  /// however many statements a session executes (asserted by the
  /// million-statement import test).
  std::size_t journal_bytes() const {
    return ring_.capacity() * sizeof(CommitRecord);
  }

 private:
  void commit_record(const QueryResult& result, std::size_t statement_count);
  void push_record(CommitRecord record);

  GraphStore& store_;
  std::size_t transactions_ = 0;
  std::size_t statements_ = 0;
  std::size_t rollbacks_ = 0;
  std::size_t statement_rollbacks_ = 0;
  bool in_transaction_ = false;
  CommitRecord pending_{};  // accumulates the open transaction's totals
  std::vector<CommitRecord> ring_;  // bounded commit journal
  std::size_t ring_head_ = 0;       // insertion point once the ring is full
};

}  // namespace adsynth::graphdb
