// Epoch-based MVCC snapshots over GraphStore (ROADMAP item 3).
//
// The store stays a single-writer structure; what this layer adds is
// lock-free *readers*.  Every mutation stamps the touched records with the
// pending epoch, and committing the outermost undo scope re-reads the undo
// log — the inverse records double as the version chain — to publish an
// immutable `SnapshotView` of the new epoch.  Analytics (graph_view /
// BFS / RP-rate / CSR builds via adcore::from_snapshot), the Cypher read
// executor (cypher::execute_read_query) and the defense what-if fan-out
// (defense::SnapshotWhatIf) all read through a view without ever taking a
// store lock: the only synchronized operation is the shared_ptr copy that
// hands a reader the current view.
//
// Representation.  A view is a shared immutable *root* (flat copies of the
// record vectors, label buckets and index buckets, materialized O(V+E)
// once) plus a committed *overlay* (copies of every record mutated since
// the root epoch, label-bucket appends for nodes created since).  Each
// commit publishes a new view whose overlay is the predecessor's overlay
// plus the batch delta, so lookups never walk a version chain: overlay
// first, else root, two probes worst case.  Once the overlay grows past a
// quarter of the root the publisher re-materializes a fresh root
// (compaction), bounding both lookup constants and per-commit copy cost.
//
// Epoch reclamation.  Views are handed out as shared_ptr<const
// SnapshotView>; each live view registers its epoch in the store's
// SnapshotControl block.  When the last reader of a retired epoch drains,
// the view's destructor deregisters it and the overlay (and, once no view
// references it, the root) is freed — no grace periods, no epochs pinned
// by the store itself beyond the currently published view.
// GraphStore::snapshot_stats() exposes the accounting;
// check_invariants() audits the version chain (see store.hpp).
//
// Threading contract (DESIGN.md §"Snapshot isolation & epoch
// reclamation"): one writer thread mutates the store; any number of
// threads may call GraphStore::snapshot() and read through the views they
// hold.  The *first* snapshot() call (and any call after an unscoped
// mutation invalidated the published view) materializes from live store
// state and must therefore run on the writer thread with no concurrent
// mutation — in steady-state serving, where every write runs inside an
// undo scope (a CypherSession transaction), snapshot() is a mutex-guarded
// pointer copy and never touches live store internals.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graphdb/store.hpp"
#include "util/annotations.hpp"

namespace adsynth::graphdb {

namespace detail {

/// State shared between a GraphStore and every SnapshotView it published.
/// Heap-allocated behind a shared_ptr: GraphStore stays movable (a mutex
/// member would delete its move operations) and views stay valid — able to
/// deregister safely — even after the store itself is destroyed.
struct SnapshotControl {
  util::Mutex mutex;
  /// The current view, nullptr when none is published (never published
  /// yet, or an unscoped mutation invalidated it).
  std::shared_ptr<const SnapshotView> published ADSYNTH_GUARDED_BY(mutex);
  /// Lifetime accounting: views ever published / destroyed, and the live
  /// count per epoch (a view deregisters in its destructor — that is the
  /// "last reader drains" event reclaiming a retired version).
  std::uint64_t published_views ADSYNTH_GUARDED_BY(mutex) = 0;
  std::uint64_t reclaimed_views ADSYNTH_GUARDED_BY(mutex) = 0;
  std::map<std::uint64_t, std::size_t> live ADSYNTH_GUARDED_BY(mutex);
};

}  // namespace detail

/// Reclamation/versioning accounting from GraphStore::snapshot_stats().
struct SnapshotStats {
  std::uint64_t current_epoch = 0;    // last published epoch (0 = none)
  std::uint64_t published_views = 0;  // views ever published
  std::uint64_t reclaimed_views = 0;  // views whose last reader drained
  std::size_t live_views = 0;         // views currently alive
  std::uint64_t oldest_live_epoch = 0;  // 0 when no view is alive
};

/// One immutable committed epoch of a GraphStore.  The read API mirrors the
/// store's (same names, same semantics, same result ordering), so the
/// Cypher read executor and adcore::from_store compile against either.
/// All methods are const and safe to call from any number of threads.
class SnapshotView {
 public:
  ~SnapshotView();
  SnapshotView(const SnapshotView&) = delete;
  SnapshotView& operator=(const SnapshotView&) = delete;

  /// The committed epoch this view freezes.
  std::uint64_t epoch() const { return epoch_; }

  // --- counts / bounds (mirror GraphStore) -------------------------------
  std::size_t node_count() const { return live_nodes_; }
  std::size_t rel_count() const { return live_rels_; }
  std::size_t node_capacity() const { return node_limit_; }
  std::size_t rel_capacity() const { return rel_limit_; }

  // --- token tables ------------------------------------------------------
  std::optional<LabelId> find_label(std::string_view name) const;
  std::optional<RelTypeId> find_rel_type(std::string_view name) const;
  std::optional<PropertyKeyId> find_key(std::string_view name) const;
  const std::string& label_name(LabelId id) const;
  const std::string& rel_type_name(RelTypeId id) const;
  const std::string& key_name(PropertyKeyId id) const;
  std::size_t rel_type_count() const { return rel_type_names_.size(); }

  // --- record reads ------------------------------------------------------
  /// Overlay-first record lookup: a record mutated since the root epoch is
  /// served from the overlay copy, anything else straight from the root.
  const NodeRecord& node(NodeId id) const;
  const RelRecord& rel(RelId id) const;

  bool node_has_label(NodeId id, LabelId label) const;
  const PropertyValue* node_property(NodeId id, PropertyKeyId key) const;
  const PropertyValue* node_property(NodeId id, std::string_view key) const;

  /// Live node ids carrying `label`, in creation order — identical to what
  /// GraphStore::nodes_with_label returns for the same committed state.
  std::vector<NodeId> nodes_with_label(std::string_view label) const;

  /// Index-accelerated (root index buckets, re-validated through the
  /// overlay) lookup with the same results as GraphStore::find_nodes on
  /// the committed state; falls back to a label scan when the root has no
  /// such index.
  std::vector<NodeId> find_nodes(std::string_view label, std::string_view key,
                                 const PropertyValue& value) const;

  /// Overlay entries carried by this view (0 right after a root
  /// materialization) — re-root/compaction observability for tests and
  /// bench_concurrency.
  std::size_t overlay_entries() const {
    return node_overlay_.size() + rel_overlay_.size();
  }

 private:
  friend class GraphStore;
  friend struct StoreTestAccess;  // corruption injection (invariants tests)

  SnapshotView() = default;

  /// The shared immutable base: flat copies of the store at the root
  /// epoch.  Delta views share it by pointer; re-rooting replaces it.
  struct Root {
    std::uint64_t epoch = 0;
    std::vector<NodeRecord> nodes;
    std::vector<RelRecord> rels;
    std::vector<std::vector<NodeId>> label_buckets;
    struct Index {
      LabelId label = 0;
      PropertyKeyId key = 0;
      std::unordered_map<std::string, std::vector<NodeId>> buckets;
    };
    std::vector<Index> indexes;
  };

  std::shared_ptr<const Root> root_;
  std::shared_ptr<detail::SnapshotControl> control_;
  std::uint64_t epoch_ = 0;
  NodeId node_limit_ = 0;  // record-vector sizes at this epoch
  RelId rel_limit_ = 0;
  std::size_t live_nodes_ = 0;
  std::size_t live_rels_ = 0;

  // Token tables frozen at publish (append-only in the store, so small and
  // cheap to copy per view; a view must not see names interned later).
  std::vector<std::string> label_names_;
  std::vector<std::string> rel_type_names_;
  std::vector<std::string> key_names_;
  std::unordered_map<std::string, std::uint32_t> label_index_;
  std::unordered_map<std::string, std::uint32_t> rel_type_index_;
  std::unordered_map<std::string, std::uint32_t> key_index_;

  // Committed overlay: record copies for everything mutated after the root
  // epoch (each published view copies its predecessor's overlay and adds
  // the batch delta — no chain walks at read time).
  std::unordered_map<NodeId, NodeRecord> node_overlay_;
  std::unordered_map<RelId, RelRecord> rel_overlay_;
  /// Per-label node ids created after the root epoch, ascending; appended
  /// to the root bucket on label scans.
  std::vector<std::vector<NodeId>> bucket_appends_;
  /// Sorted keys of node_overlay_ — the deterministic iteration order for
  /// the overlay pass of find_nodes.
  std::vector<NodeId> touched_nodes_;
};

}  // namespace adsynth::graphdb
