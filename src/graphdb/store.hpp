// The local property-graph store.
//
// The paper attributes much of the baselines' latency to Neo4j round-trips
// and notes that "ADSynth eliminates the latency by implementing a local
// graph database with functions replicating Neo4J ... facilitating insertion
// and retrieval operations for nodes and edges at constant time while
// maintaining optimal storage efficiency."  This module is that database:
//
//  * labelled nodes and typed relationships with property maps,
//  * amortized O(1) insertion and id-based retrieval,
//  * label index (label -> node ids) and optional property indexes,
//  * per-node adjacency for O(out-degree) neighbourhood retrieval,
//  * interned label / relationship-type / property-key strings so a
//    million-node graph stores each name once,
//  * an undo log with nested scopes, so mutations can be speculatively
//    applied and rolled back (transaction savepoints, defensive what-if
//    exploration) without copying the store.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graphdb/property.hpp"

namespace adsynth::graphdb {

using NodeId = std::uint32_t;
using RelId = std::uint32_t;
using LabelId = std::uint32_t;
using RelTypeId = std::uint32_t;

class SnapshotView;
struct SnapshotStats;
namespace detail {
struct SnapshotControl;
}

/// A reader's handle on one committed epoch (see graphdb/snapshot.hpp).
/// Plain shared ownership: copy it across threads freely; the epoch is
/// reclaimed when the last handle drops.
using Snapshot = std::shared_ptr<const SnapshotView>;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr RelId kNoRel = std::numeric_limits<RelId>::max();

/// Write-ahead-log hook.  When a sink is attached (GraphStore::attach_wal)
/// every successful mutation reports its *forward* logical operation here —
/// the durable mirror of the undo log's inverse records.  Token interning is
/// reported eagerly (like Neo4j token creation it survives a rollback, so
/// the sink must flush it independently of the enclosing scope); data
/// mutations are buffered by the sink and become durable when the outermost
/// scope commits (wal_commit_scope at depth 0) or immediately when no scope
/// is open.  graphdb/wal.hpp provides the file-backed implementation.
class WalSink {
 public:
  virtual ~WalSink() = default;
  // Token creation — called only when the name was actually fresh.
  virtual void wal_intern_label(std::string_view name) = 0;
  virtual void wal_intern_rel_type(std::string_view name) = 0;
  virtual void wal_intern_key(std::string_view name) = 0;
  // Data mutations — called after the store mutation fully succeeded, with
  // the canonical post-mutation values (labels sorted/deduped, final
  // property value after no-op elision).
  virtual void wal_create_node(const std::vector<LabelId>& labels,
                               const PropertyList& properties) = 0;
  virtual void wal_create_rel(NodeId source, NodeId target, RelTypeId type,
                              const PropertyList& properties) = 0;
  virtual void wal_set_property(NodeId node, PropertyKeyId key,
                                const PropertyValue& value) = 0;
  virtual void wal_delete_rel(RelId rel) = 0;
  virtual void wal_delete_node(NodeId node) = 0;
  // Schema — always outside any scope (create_index rejects open scopes).
  virtual void wal_create_index(LabelId label, PropertyKeyId key) = 0;
  // Scope mirroring, matched 1:1 with the store's undo scopes.
  virtual void wal_begin_scope() = 0;
  virtual void wal_commit_scope() = 0;
  virtual void wal_abort_scope() = 0;
};

/// A stored node: labels plus properties.  Nodes can carry multiple labels
/// like Neo4j (BloodHound uses e.g. ["Base", "User"]).
struct NodeRecord {
  std::vector<LabelId> labels;  // sorted
  PropertyList properties;      // sorted by key id
  std::vector<RelId> out_rels;
  std::vector<RelId> in_rels;
  bool deleted = false;
  /// MVCC version stamp: the epoch whose batch last mutated this record
  /// (creation, property write, adjacency growth, tombstone).  0 = never
  /// mutated since store creation.  A published SnapshotView with root
  /// epoch E serves any record stamped > E from its overlay.
  std::uint64_t mutated_epoch = 0;
};

/// A stored relationship.
struct RelRecord {
  NodeId source = kNoNode;
  NodeId target = kNoNode;
  RelTypeId type = 0;
  PropertyList properties;
  bool deleted = false;
  std::uint64_t mutated_epoch = 0;  // see NodeRecord::mutated_epoch
};

class GraphStore {
 public:
  GraphStore() = default;
  /// Defaulted member-wise destruction; the snapshot link member breaks the
  /// control-block ownership cycle on the way out (see SnapshotLink).
  ~GraphStore() = default;

  // Not copyable (potentially gigabytes); movable.
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;
  GraphStore(GraphStore&&) = default;
  GraphStore& operator=(GraphStore&&) = default;

  // --- string interning -------------------------------------------------
  LabelId intern_label(std::string_view name);
  RelTypeId intern_rel_type(std::string_view name);
  PropertyKeyId intern_key(std::string_view name);

  const std::string& label_name(LabelId id) const;
  const std::string& rel_type_name(RelTypeId id) const;
  const std::string& key_name(PropertyKeyId id) const;

  /// Number of interned relationship types (ids are 0..count-1).
  std::size_t rel_type_count() const { return rel_types_.names.size(); }

  std::optional<LabelId> find_label(std::string_view name) const;
  std::optional<RelTypeId> find_rel_type(std::string_view name) const;
  std::optional<PropertyKeyId> find_key(std::string_view name) const;

  // --- writes -----------------------------------------------------------
  /// Creates a node with the given labels (by name) and properties.
  NodeId create_node(const std::vector<std::string>& labels,
                     PropertyList properties = {});

  /// Creates a node with pre-interned labels (hot path for generators).
  NodeId create_node_interned(std::vector<LabelId> labels,
                              PropertyList properties = {});

  /// Creates a relationship; throws std::out_of_range on invalid endpoints.
  RelId create_relationship(NodeId source, NodeId target,
                            std::string_view type,
                            PropertyList properties = {});
  RelId create_relationship_interned(NodeId source, NodeId target,
                                     RelTypeId type,
                                     PropertyList properties = {});

  /// Sets (insert-or-replace) one property of a node.  Setting the current
  /// value again is a no-op.  Throws std::invalid_argument on tombstoned
  /// nodes.
  void set_node_property(NodeId node, std::string_view key, PropertyValue v);

  /// Tombstones a relationship; adjacency lists keep the id but readers
  /// must skip deleted records (rel(id).deleted).  Matches Neo4j DETACH-less
  /// DELETE semantics closely enough for the defense algorithms.
  void delete_relationship(RelId rel);

  /// Tombstones a node.  Like Neo4j's DELETE, a node with live incident
  /// relationships cannot be deleted unless `detach` is set (DETACH DELETE),
  /// in which case the incident relationships are tombstoned first; a plain
  /// delete of a connected node throws std::logic_error.  Label buckets and
  /// property indexes keep the id; readers skip deleted records.
  void delete_node(NodeId node, bool detach = false);

  // --- undo scopes --------------------------------------------------------
  // While at least one scope is open every mutation records its inverse
  // operation; abort_scope() replays the inverses back to the matching
  // begin_undo_scope() mark, leaving counts, label buckets, adjacency and
  // property indexes exactly as they were.  Scopes nest (transaction with
  // per-statement savepoints); committing the outermost scope discards the
  // log.  When no scope is open, recording is off and mutations run at
  // full generator speed.  String interning is deliberately not undone —
  // like Neo4j token creation, it survives a rollback.

  /// Opens a scope; returns its nesting depth (1 = outermost).
  std::size_t begin_undo_scope();

  /// Closes the innermost scope keeping its mutations.  In a nested scope
  /// the recorded inverses merge into the parent; the outermost commit
  /// clears the log.  Throws std::logic_error when no scope is open.
  void commit_scope();

  /// Rolls the store back to the innermost begin_undo_scope() mark and
  /// closes that scope.  Throws std::logic_error when no scope is open.
  void abort_scope();

  /// Number of currently open undo scopes.
  std::size_t undo_depth() const { return scope_marks_.size(); }

  /// Pending inverse operations in the undo log (0 when no scope is open).
  std::size_t undo_log_size() const { return undo_log_.size(); }

  // --- reads ------------------------------------------------------------
  std::size_t node_count() const { return nodes_.size() - deleted_nodes_; }
  std::size_t rel_count() const { return rels_.size() - deleted_rels_; }
  /// Raw record-vector sizes (including tombstones) — iteration bounds.
  std::size_t node_capacity() const { return nodes_.size(); }
  std::size_t rel_capacity() const { return rels_.size(); }

  const NodeRecord& node(NodeId id) const;
  const RelRecord& rel(RelId id) const;

  bool node_has_label(NodeId id, LabelId label) const;

  /// Property lookup; nullptr when the node has no such key.
  const PropertyValue* node_property(NodeId id, PropertyKeyId key) const;
  const PropertyValue* node_property(NodeId id, std::string_view key) const;

  /// All live node ids carrying `label` (empty when label unknown).
  std::vector<NodeId> nodes_with_label(std::string_view label) const;
  const std::vector<NodeId>& nodes_with_label_interned(LabelId label) const;

  // --- property index ---------------------------------------------------
  /// Creates an exact-match index on (label, key); idempotent.  Existing
  /// nodes are back-filled.  Mirrors `CREATE INDEX ... FOR (n:L) ON n.k`.
  /// Like Neo4j, schema operations cannot share a transaction with data
  /// operations: throws std::logic_error while an undo scope is open.
  void create_index(std::string_view label, std::string_view key);

  /// Index-accelerated lookup of nodes with `label` whose `key` equals
  /// `value`; falls back to a label scan when no index exists.
  std::vector<NodeId> find_nodes(std::string_view label, std::string_view key,
                                 const PropertyValue& value) const;

  /// Entry/stale accounting of the property index on (label, key);
  /// std::nullopt when no such index exists.  Exposed for the compaction
  /// tests, operational monitoring, and the query planner's cost model
  /// (entries / buckets estimates the rows an index seek returns).
  struct IndexStats {
    std::size_t entries = 0;
    std::size_t stale = 0;
    std::size_t buckets = 0;  // distinct indexed values
  };
  std::optional<IndexStats> index_stats(std::string_view label,
                                        std::string_view key) const;

  /// Size of the label bucket (live nodes plus not-yet-compacted
  /// tombstones) — the query planner's label-scan cost estimate.  0 when
  /// the label is unknown.
  std::size_t label_cardinality(std::string_view label) const;

  /// Monotone counter bumped whenever an index is created.  Cached query
  /// plans record the version they were costed against and re-plan when it
  /// moves (a new index can flip a label-scan plan to an index seek).
  std::uint64_t schema_version() const { return schema_version_; }

  /// Approximate resident bytes (used by the storage-efficiency tests).
  std::size_t approximate_bytes() const;

  // --- MVCC snapshots (graphdb/snapshot.hpp) ------------------------------
  /// Returns an immutable view of the last committed epoch.  Steady state
  /// (a view is published): a mutex-guarded shared_ptr copy, safe to call
  /// from any thread while the writer commits.  Cold path (first call, or
  /// after an unscoped mutation invalidated the published view): the store
  /// is copied into a fresh snapshot root — writer-thread only, and throws
  /// std::logic_error if an undo scope is open (uncommitted state must not
  /// leak into a snapshot).  Subsequent outermost commit_scope() calls
  /// publish a new epoch derived from the undo log, so once serving has
  /// started snapshot() never re-copies the store until an unscoped
  /// mutation breaks the chain.
  Snapshot snapshot();

  /// Epoch/reclamation accounting (0-initialized before the first
  /// snapshot() call).  Thread-safe.
  SnapshotStats snapshot_stats() const;

  // --- durability (graphdb/persist.hpp, graphdb/wal.hpp) ------------------
  /// Attaches a write-ahead-log sink (nullptr detaches).  Mutations from
  /// then on report their forward ops to the sink; see WalSink for the
  /// flush contract.  The sink must outlive the attachment.  Writer-thread
  /// only, like every mutation.
  void attach_wal(WalSink* sink) { wal_ = sink; }
  WalSink* wal_sink() const { return wal_; }

  // --- invariants ---------------------------------------------------------
  /// Result of check_invariants(); empty `violations` means consistent.
  struct InvariantReport {
    std::vector<std::string> violations;
    bool ok() const { return violations.empty(); }
  };

  /// Full-store consistency audit — the dynamic twin of the static-analysis
  /// lane (DESIGN.md §"Static analysis & invariants").  Verifies:
  ///  * record sanity: label/key/type ids interned, label lists and
  ///    property lists sorted and duplicate-free;
  ///  * adjacency symmetry: every relationship appears exactly once in its
  ///    source's out-list and its target's in-list, and every adjacency
  ///    entry points back at its node;
  ///  * live relationships never touch tombstoned endpoints (the
  ///    "dangling tombstone edge" class);
  ///  * label buckets: every entry is a valid node carrying the label, no
  ///    duplicates, and every node with a label is present in its bucket;
  ///  * property indexes: entries == sum of bucket sizes, no empty bucket
  ///    rows, every live (label, key) node findable under its current
  ///    value, and stale accounting bounded by
  ///    computed_stale <= stale <= entries;
  ///  * tombstone accounting: deleted_nodes_/deleted_rels_ equal the
  ///    actual tombstone counts;
  ///  * at rest (`require_at_rest`): no open undo scope and an empty undo
  ///    log; scope marks must be monotone and within the log regardless;
  ///  * version chains (once snapshot() has been used): no record stamped
  ///    beyond the pending epoch, every record mutated after the published
  ///    root epoch present in — and byte-equal to — the published overlay,
  ///    no dangling epoch stamps, and view-lifetime accounting consistent
  ///    (published − reclaimed == live registrations, retired epochs
  ///    absent from the registry once their last reader drained).
  /// O(nodes + rels + index entries).  Compiled in every build; asserted
  /// automatically at test-fixture teardown (tests/support/checked_store.hpp)
  /// and cheap enough to call at batch boundaries in debug/analyze builds.
  InvariantReport check_invariants(bool require_at_rest = true) const;

 private:
  /// Test-only corruption hook: the invariant-injection suite
  /// (tests/graphdb/invariants_test.cpp) reaches through this friend to
  /// plant targeted inconsistencies (asymmetric adjacency, stale index
  /// rows, dangling tombstone edges) and asserts check_invariants() names
  /// each one.  Never defined in library code.
  friend struct StoreTestAccess;

  /// Persistence backdoor: src/graphdb/persist.cpp reaches through this
  /// friend to serialize the raw representation (record vectors, buckets,
  /// index tables, interners, epoch metadata) and to reassemble a loaded
  /// store without replaying every mutation.  Defined only in persist.cpp.
  friend struct PersistAccess;

  struct Interner {
    std::vector<std::string> names;
    std::unordered_map<std::string, std::uint32_t> index;
    std::uint32_t intern(std::string_view name);
    std::optional<std::uint32_t> find(std::string_view name) const;
  };

  /// An index is compacted once it holds at least this many entries and
  /// more than half of them are stale.
  static constexpr std::size_t kCompactMinEntries = 64;

  struct PropertyIndex {
    LabelId label;
    PropertyKeyId key;
    std::unordered_map<std::string, std::vector<NodeId>> buckets;
    /// Total entries across all buckets, and how many of them are known
    /// stale (the old bucket of a re-indexed value, entries of tombstoned
    /// nodes).  Drives compaction; see maybe_compact().
    std::size_t entries = 0;
    std::size_t stale = 0;
  };

  /// One inverse operation.  Ops are recorded in mutation order and
  /// replayed in reverse, so "uncreate" ops always see their record at the
  /// tail of the corresponding vector.
  struct UndoOp {
    enum class Kind : std::uint8_t {
      kUncreateNode,     // pop nodes_.back() plus bucket/index tail entries
      kUncreateRel,      // pop rels_.back() plus adjacency tail entries
      kRestoreProperty,  // restore node `id` key `key` to old_value/absence
      kUndeleteRel,      // clear rels_[id].deleted
      kUndeleteNode,     // clear nodes_[id].deleted
    };
    Kind kind;
    bool had_value = false;  // kRestoreProperty: key existed before
    std::uint32_t id = 0;    // node or relationship id
    PropertyKeyId key = 0;   // kRestoreProperty
    PropertyValue old_value; // kRestoreProperty
    /// Pre-mutation version stamps, restored on replay so an aborted batch
    /// leaves every mutated_epoch exactly as it was.  old_epoch is the
    /// mutated record's own stamp (kUncreateRel: the source endpoint's,
    /// whose adjacency grew); old_epoch2 is the target endpoint's stamp
    /// for kUncreateRel.
    std::uint64_t old_epoch = 0;
    std::uint64_t old_epoch2 = 0;
  };

  void check_node(NodeId id) const;
  void check_rel(RelId id) const;
  /// check_node + tombstone rejection, for mutation paths: a deleted node
  /// must not grow relationships or properties (resurrection bug).
  void check_live_node(NodeId id) const;
  void index_node(NodeId id);
  void index_node_key(NodeId id, PropertyKeyId key);
  /// Removes the most recent `id` entry from the (label, key) index buckets
  /// under the node's current value of `key`; erases emptied buckets.
  void unindex_node_key(NodeId id, PropertyKeyId key);
  bool recording() const { return !scope_marks_.empty(); }
  void undo(const UndoOp& op);

  // --- snapshot plumbing (bodies in snapshot.cpp) -------------------------
  /// Version stamp for mutations of the in-flight batch: the epoch the next
  /// publish will carry.
  std::uint64_t pending_epoch() const { return epoch_ + 1; }
  /// Mutation outside any undo scope: the published view (if any) can no
  /// longer be extended incrementally — there is no undo log to derive the
  /// delta from — so it is dropped and the next snapshot() re-roots.
  /// Inlined because it guards every mutation on the generator fast path.
  void note_unscoped_mutation() {
    if (snap_.tail != nullptr && !recording()) invalidate_published();
  }
  void invalidate_published();
  /// Copies the live store into a fresh snapshot root and publishes it.
  /// Caller guarantees at-rest (no open scope) on the writer thread.
  Snapshot materialize_root();
  /// Outermost-commit hook: derives the batch's touched-record sets from
  /// the undo log and publishes a delta view (or re-roots when the
  /// accumulated overlay crosses the compaction threshold).
  void publish_delta();
  /// check_invariants() section auditing the version chain; appends to
  /// `report` through the same capped path as the other sections.
  void audit_snapshots(InvariantReport& report, bool require_at_rest,
                       std::size_t max_violations) const;
  /// Rebuilds indexes whose stale fraction crossed the threshold.  Deferred
  /// while an undo scope is open (compaction moves the entries that undo
  /// replay expects at bucket tails).
  void maybe_compact();
  void compact_index(PropertyIndex& idx);

  Interner labels_;
  Interner rel_types_;
  Interner keys_;
  std::vector<NodeRecord> nodes_;
  std::vector<RelRecord> rels_;
  std::vector<std::vector<NodeId>> label_buckets_;
  std::vector<PropertyIndex> indexes_;
  std::size_t deleted_nodes_ = 0;
  std::size_t deleted_rels_ = 0;
  std::uint64_t schema_version_ = 0;
  std::vector<NodeId> empty_bucket_;
  std::vector<UndoOp> undo_log_;
  std::vector<std::size_t> scope_marks_;

  // --- snapshot state -----------------------------------------------------
  /// Last published epoch; in-flight batch stamps are epoch_ + 1.  Only
  /// publishes (commit/materialize) advance it, so aborted batches reuse
  /// their stamp value — harmless, the stamps they wrote are restored.
  std::uint64_t epoch_ = 0;
  /// The store's link to its published snapshot chain.  `control` is the
  /// heap block shared with every view (keeps GraphStore movable and lets
  /// views outlive the store; allocated lazily on first snapshot());
  /// `tail` is the writer-side strong reference to the currently published
  /// view — the base the next publish_delta() extends, mirroring
  /// control->published (which readers copy under the mutex).
  ///
  /// The published view strongly references the control block
  /// (SnapshotView::control_, needed to deregister) and the control block
  /// strongly references the published view — a deliberate shared_ptr
  /// cycle while serving.  The store is the only party that can break it:
  /// SnapshotLink's destructor and move-assignment clear control->published
  /// so the last outstanding reader release actually frees retired roots
  /// even when the store died first (the LeakSanitizer class of ROADMAP
  /// item 6).  Bodies in snapshot.cpp.
  struct SnapshotLink {
    std::shared_ptr<detail::SnapshotControl> control;
    Snapshot tail;
    SnapshotLink() = default;
    SnapshotLink(const SnapshotLink&) = delete;
    SnapshotLink& operator=(const SnapshotLink&) = delete;
    SnapshotLink(SnapshotLink&&) noexcept = default;
    SnapshotLink& operator=(SnapshotLink&& other) noexcept;
    ~SnapshotLink();
    /// Drops the published view (under the control mutex, releasing it
    /// outside) and the writer tail, severing the cycle.
    void release() noexcept;
  };
  SnapshotLink snap_;
  /// Attached write-ahead-log sink; nullptr when durability is off.
  WalSink* wal_ = nullptr;
};

/// Inserts or replaces `value` under `key` in a sorted PropertyList.
void put_property(PropertyList& list, PropertyKeyId key, PropertyValue value);

/// Finds a property by key in a sorted PropertyList; nullptr when absent.
const PropertyValue* get_property(const PropertyList& list, PropertyKeyId key);

}  // namespace adsynth::graphdb
