// The local property-graph store.
//
// The paper attributes much of the baselines' latency to Neo4j round-trips
// and notes that "ADSynth eliminates the latency by implementing a local
// graph database with functions replicating Neo4J ... facilitating insertion
// and retrieval operations for nodes and edges at constant time while
// maintaining optimal storage efficiency."  This module is that database:
//
//  * labelled nodes and typed relationships with property maps,
//  * amortized O(1) insertion and id-based retrieval,
//  * label index (label -> node ids) and optional property indexes,
//  * per-node adjacency for O(out-degree) neighbourhood retrieval,
//  * interned label / relationship-type / property-key strings so a
//    million-node graph stores each name once.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graphdb/property.hpp"

namespace adsynth::graphdb {

using NodeId = std::uint32_t;
using RelId = std::uint32_t;
using LabelId = std::uint32_t;
using RelTypeId = std::uint32_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr RelId kNoRel = std::numeric_limits<RelId>::max();

/// A stored node: labels plus properties.  Nodes can carry multiple labels
/// like Neo4j (BloodHound uses e.g. ["Base", "User"]).
struct NodeRecord {
  std::vector<LabelId> labels;  // sorted
  PropertyList properties;      // sorted by key id
  std::vector<RelId> out_rels;
  std::vector<RelId> in_rels;
  bool deleted = false;
};

/// A stored relationship.
struct RelRecord {
  NodeId source = kNoNode;
  NodeId target = kNoNode;
  RelTypeId type = 0;
  PropertyList properties;
  bool deleted = false;
};

class GraphStore {
 public:
  GraphStore() = default;

  // Not copyable (potentially gigabytes); movable.
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;
  GraphStore(GraphStore&&) = default;
  GraphStore& operator=(GraphStore&&) = default;

  // --- string interning -------------------------------------------------
  LabelId intern_label(std::string_view name);
  RelTypeId intern_rel_type(std::string_view name);
  PropertyKeyId intern_key(std::string_view name);

  const std::string& label_name(LabelId id) const;
  const std::string& rel_type_name(RelTypeId id) const;
  const std::string& key_name(PropertyKeyId id) const;

  std::optional<LabelId> find_label(std::string_view name) const;
  std::optional<RelTypeId> find_rel_type(std::string_view name) const;
  std::optional<PropertyKeyId> find_key(std::string_view name) const;

  // --- writes -----------------------------------------------------------
  /// Creates a node with the given labels (by name) and properties.
  NodeId create_node(const std::vector<std::string>& labels,
                     PropertyList properties = {});

  /// Creates a node with pre-interned labels (hot path for generators).
  NodeId create_node_interned(std::vector<LabelId> labels,
                              PropertyList properties = {});

  /// Creates a relationship; throws std::out_of_range on invalid endpoints.
  RelId create_relationship(NodeId source, NodeId target,
                            std::string_view type,
                            PropertyList properties = {});
  RelId create_relationship_interned(NodeId source, NodeId target,
                                     RelTypeId type,
                                     PropertyList properties = {});

  /// Sets (insert-or-replace) one property of a node.
  void set_node_property(NodeId node, std::string_view key, PropertyValue v);

  /// Tombstones a relationship; adjacency lists keep the id but readers
  /// must skip deleted records (rel(id).deleted).  Matches Neo4j DETACH-less
  /// DELETE semantics closely enough for the defense algorithms.
  void delete_relationship(RelId rel);

  // --- reads ------------------------------------------------------------
  std::size_t node_count() const { return nodes_.size() - deleted_nodes_; }
  std::size_t rel_count() const { return rels_.size() - deleted_rels_; }
  /// Raw record-vector sizes (including tombstones) — iteration bounds.
  std::size_t node_capacity() const { return nodes_.size(); }
  std::size_t rel_capacity() const { return rels_.size(); }

  const NodeRecord& node(NodeId id) const;
  const RelRecord& rel(RelId id) const;

  bool node_has_label(NodeId id, LabelId label) const;

  /// Property lookup; nullptr when the node has no such key.
  const PropertyValue* node_property(NodeId id, PropertyKeyId key) const;
  const PropertyValue* node_property(NodeId id, std::string_view key) const;

  /// All live node ids carrying `label` (empty when label unknown).
  std::vector<NodeId> nodes_with_label(std::string_view label) const;
  const std::vector<NodeId>& nodes_with_label_interned(LabelId label) const;

  // --- property index ---------------------------------------------------
  /// Creates an exact-match index on (label, key); idempotent.  Existing
  /// nodes are back-filled.  Mirrors `CREATE INDEX ... FOR (n:L) ON n.k`.
  void create_index(std::string_view label, std::string_view key);

  /// Index-accelerated lookup of nodes with `label` whose `key` equals
  /// `value`; falls back to a label scan when no index exists.
  std::vector<NodeId> find_nodes(std::string_view label, std::string_view key,
                                 const PropertyValue& value) const;

  /// Approximate resident bytes (used by the storage-efficiency tests).
  std::size_t approximate_bytes() const;

 private:
  struct Interner {
    std::vector<std::string> names;
    std::unordered_map<std::string, std::uint32_t> index;
    std::uint32_t intern(std::string_view name);
    std::optional<std::uint32_t> find(std::string_view name) const;
  };

  struct PropertyIndex {
    LabelId label;
    PropertyKeyId key;
    std::unordered_map<std::string, std::vector<NodeId>> buckets;
  };

  void check_node(NodeId id) const;
  void check_rel(RelId id) const;
  void index_node(NodeId id);

  Interner labels_;
  Interner rel_types_;
  Interner keys_;
  std::vector<NodeRecord> nodes_;
  std::vector<RelRecord> rels_;
  std::vector<std::vector<NodeId>> label_buckets_;
  std::vector<PropertyIndex> indexes_;
  std::size_t deleted_nodes_ = 0;
  std::size_t deleted_rels_ = 0;
  std::vector<NodeId> empty_bucket_;
};

/// Inserts or replaces `value` under `key` in a sorted PropertyList.
void put_property(PropertyList& list, PropertyKeyId key, PropertyValue value);

/// Finds a property by key in a sorted PropertyList; nullptr when absent.
const PropertyValue* get_property(const PropertyList& list, PropertyKeyId key);

}  // namespace adsynth::graphdb
