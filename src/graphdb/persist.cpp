#include "graphdb/persist.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>
#include <vector>

#include "util/binio.hpp"
#include "util/trace.hpp"

namespace adsynth::graphdb {

/// Persistence backdoor (friend of GraphStore): exposes the raw
/// representation to the serializer below.  Deliberately the only place in
/// library code with this access — everything else goes through the public
/// API.
struct PersistAccess {
  static const GraphStore::Interner& labels(const GraphStore& s) {
    return s.labels_;
  }
  static const GraphStore::Interner& rel_types(const GraphStore& s) {
    return s.rel_types_;
  }
  static const GraphStore::Interner& keys(const GraphStore& s) {
    return s.keys_;
  }
  static const std::vector<NodeRecord>& nodes(const GraphStore& s) {
    return s.nodes_;
  }
  static const std::vector<RelRecord>& rels(const GraphStore& s) {
    return s.rels_;
  }
  static const std::vector<std::vector<NodeId>>& label_buckets(
      const GraphStore& s) {
    return s.label_buckets_;
  }
  static const std::vector<GraphStore::PropertyIndex>& indexes(
      const GraphStore& s) {
    return s.indexes_;
  }
  static std::size_t deleted_nodes(const GraphStore& s) {
    return s.deleted_nodes_;
  }
  static std::size_t deleted_rels(const GraphStore& s) {
    return s.deleted_rels_;
  }
  static std::uint64_t epoch(const GraphStore& s) { return s.epoch_; }
  static std::uint64_t schema_version(const GraphStore& s) {
    return s.schema_version_;
  }

  // Mutable counterparts for reassembling a loaded store.
  static GraphStore::Interner& labels(GraphStore& s) { return s.labels_; }
  static GraphStore::Interner& rel_types(GraphStore& s) {
    return s.rel_types_;
  }
  static GraphStore::Interner& keys(GraphStore& s) { return s.keys_; }
  static std::vector<NodeRecord>& nodes(GraphStore& s) { return s.nodes_; }
  static std::vector<RelRecord>& rels(GraphStore& s) { return s.rels_; }
  static std::vector<std::vector<NodeId>>& label_buckets(GraphStore& s) {
    return s.label_buckets_;
  }
  static std::vector<GraphStore::PropertyIndex>& indexes(GraphStore& s) {
    return s.indexes_;
  }
  static void rebuild_interner_index(GraphStore::Interner& interner) {
    interner.index.clear();
    interner.index.reserve(interner.names.size());
    for (std::uint32_t i = 0; i < interner.names.size(); ++i) {
      interner.index.emplace(interner.names[i], i);
    }
  }
  static void set_counters(GraphStore& s, std::size_t deleted_nodes,
                           std::size_t deleted_rels,
                           std::uint64_t schema_version, std::uint64_t epoch) {
    s.deleted_nodes_ = deleted_nodes;
    s.deleted_rels_ = deleted_rels;
    s.schema_version_ = schema_version;
    s.epoch_ = epoch;
  }
};

namespace persist {

namespace {

namespace fs = std::filesystem;

// Section ids (stable on disk; names for PersistError).
constexpr std::uint32_t kSectionMeta = 1;
constexpr std::uint32_t kSectionTokens = 2;
constexpr std::uint32_t kSectionNodes = 3;
constexpr std::uint32_t kSectionRels = 4;
constexpr std::uint32_t kSectionAdjacency = 5;
constexpr std::uint32_t kSectionLabelBuckets = 6;
constexpr std::uint32_t kSectionIndexes = 7;
constexpr std::uint32_t kSectionCount = 7;

constexpr std::uint64_t kHeaderBytes = 4 + 4 + 4 + 4;
constexpr std::uint64_t kTableEntryBytes = 4 + 8 + 8 + 4;

std::string section_name(std::uint32_t id) {
  switch (id) {
    case kSectionMeta:
      return "meta";
    case kSectionTokens:
      return "tokens";
    case kSectionNodes:
      return "nodes";
    case kSectionRels:
      return "rels";
    case kSectionAdjacency:
      return "adjacency";
    case kSectionLabelBuckets:
      return "label_buckets";
    case kSectionIndexes:
      return "indexes";
    default:
      return "section-" + std::to_string(id);
  }
}

void encode_tokens(util::ByteWriter& out,
                   const std::vector<std::string>& names) {
  out.u32(static_cast<std::uint32_t>(names.size()));
  for (const auto& name : names) out.str(name);
}

std::vector<std::string> decode_tokens(util::ByteReader& in) {
  const std::uint32_t count = in.u32();
  std::vector<std::string> names;
  names.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) names.push_back(in.str());
  return names;
}

/// Decoded meta section, cross-checked against the other sections.
struct Meta {
  std::uint64_t epoch = 0;
  std::uint64_t checkpoint_id = 0;
  std::uint64_t schema_version = 0;
  std::uint64_t node_records = 0;
  std::uint64_t rel_records = 0;
  std::uint64_t deleted_nodes = 0;
  std::uint64_t deleted_rels = 0;
  std::uint64_t label_count = 0;
  std::uint64_t rel_type_count = 0;
  std::uint64_t key_count = 0;
  std::uint64_t index_count = 0;
};

struct SectionEntry {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t crc = 0;
};

}  // namespace

// --------------------------------------------------------------------------
// save_snapshot
// --------------------------------------------------------------------------

void save_snapshot(const GraphStore& store, const std::string& path,
                   std::uint64_t checkpoint_id) {
  if (store.undo_depth() != 0) {
    throw std::logic_error(
        "persist: save_snapshot inside an open undo scope would capture "
        "uncommitted state; commit or abort first");
  }
  ADSYNTH_SPAN("graphdb.persist.save");

  const auto& nodes = PersistAccess::nodes(store);
  const auto& rels = PersistAccess::rels(store);

  std::vector<std::pair<std::uint32_t, std::string>> sections;
  sections.reserve(kSectionCount);

  {
    util::ByteWriter meta;
    meta.u64(PersistAccess::epoch(store));
    meta.u64(checkpoint_id);
    meta.u64(PersistAccess::schema_version(store));
    meta.u64(nodes.size());
    meta.u64(rels.size());
    meta.u64(PersistAccess::deleted_nodes(store));
    meta.u64(PersistAccess::deleted_rels(store));
    meta.u64(PersistAccess::labels(store).names.size());
    meta.u64(PersistAccess::rel_types(store).names.size());
    meta.u64(PersistAccess::keys(store).names.size());
    meta.u64(PersistAccess::indexes(store).size());
    sections.emplace_back(kSectionMeta, meta.take());
  }
  {
    util::ByteWriter tokens;
    encode_tokens(tokens, PersistAccess::labels(store).names);
    encode_tokens(tokens, PersistAccess::rel_types(store).names);
    encode_tokens(tokens, PersistAccess::keys(store).names);
    sections.emplace_back(kSectionTokens, tokens.take());
  }
  {
    // Property columns ride with their records; adjacency is the CSR
    // section's job so node rows stay fixed-ish width.
    util::ByteWriter out;
    for (const NodeRecord& rec : nodes) {
      out.u8(rec.deleted ? 1 : 0);
      out.u64(rec.mutated_epoch);
      out.u32(static_cast<std::uint32_t>(rec.labels.size()));
      for (const LabelId l : rec.labels) out.u32(l);
      wal::encode_properties(out, rec.properties);
    }
    sections.emplace_back(kSectionNodes, out.take());
  }
  {
    util::ByteWriter out;
    for (const RelRecord& rec : rels) {
      out.u8(rec.deleted ? 1 : 0);
      out.u64(rec.mutated_epoch);
      out.u32(rec.source);
      out.u32(rec.target);
      out.u32(rec.type);
      wal::encode_properties(out, rec.properties);
    }
    sections.emplace_back(kSectionRels, out.take());
  }
  {
    // CSR adjacency: offset arrays (n+1 entries) + flat rel ids, out then
    // in.  Order within each list is creation order and must survive the
    // round trip (BFS/traversal determinism depends on it).
    util::ByteWriter out;
    for (const bool outgoing : {true, false}) {
      std::uint64_t offset = 0;
      out.u64(nodes.size() + 1);
      out.u64(offset);
      for (const NodeRecord& rec : nodes) {
        offset += outgoing ? rec.out_rels.size() : rec.in_rels.size();
        out.u64(offset);
      }
      for (const NodeRecord& rec : nodes) {
        for (const RelId r : outgoing ? rec.out_rels : rec.in_rels) {
          out.u32(r);
        }
      }
    }
    sections.emplace_back(kSectionAdjacency, out.take());
  }
  {
    util::ByteWriter out;
    const auto& buckets = PersistAccess::label_buckets(store);
    out.u32(static_cast<std::uint32_t>(buckets.size()));
    for (const auto& bucket : buckets) {
      out.u64(bucket.size());
      for (const NodeId n : bucket) out.u32(n);
    }
    sections.emplace_back(kSectionLabelBuckets, out.take());
  }
  {
    util::ByteWriter out;
    const auto& indexes = PersistAccess::indexes(store);
    out.u32(static_cast<std::uint32_t>(indexes.size()));
    for (const auto& idx : indexes) {
      out.u32(idx.label);
      out.u32(idx.key);
      out.u64(idx.entries);
      out.u64(idx.stale);
      out.u64(idx.buckets.size());
      // Hash order is not deterministic; sort by value key so identical
      // stores serialize to identical bytes.
      std::vector<const std::string*> keys;
      keys.reserve(idx.buckets.size());
      for (const auto& [value_key, ids] : idx.buckets) {
        (void)ids;
        keys.push_back(&value_key);
      }
      std::sort(keys.begin(), keys.end(),
                [](const std::string* a, const std::string* b) {
                  return *a < *b;
                });
      for (const std::string* value_key : keys) {
        const auto& ids = idx.buckets.at(*value_key);
        out.str(*value_key);
        out.u64(ids.size());
        for (const NodeId n : ids) out.u32(n);
      }
    }
    sections.emplace_back(kSectionIndexes, out.take());
  }

  util::ByteWriter header;
  header.u32(kSnapshotMagic);
  header.u32(kSnapshotFormatVersion);
  header.u32(kSectionCount);
  header.u32(util::crc32(header.buffer()));

  util::ByteWriter table;
  std::uint64_t offset = kHeaderBytes + kSectionCount * kTableEntryBytes;
  for (const auto& [id, payload] : sections) {
    table.u32(id);
    table.u64(offset);
    table.u64(payload.size());
    table.u32(util::crc32(payload));
    offset += payload.size();
  }

  util::CheckedFile file = util::CheckedFile::open_write(path);
  file.write(header.buffer());
  file.write(table.buffer());
  for (const auto& [id, payload] : sections) {
    (void)id;
    file.write(payload);
  }
  file.flush();
  file.close();
}

// --------------------------------------------------------------------------
// load_snapshot
// --------------------------------------------------------------------------

namespace {

/// Wraps a section decode so codec underflows surface as PersistError with
/// the section's name instead of a bare BinIoError.
template <typename Fn>
void decode_section(const std::string& name, Fn&& fn) {
  try {
    fn();
  } catch (const util::BinIoError& err) {
    throw PersistError(name, err.what());
  }
}

}  // namespace

GraphStore load_snapshot(const std::string& path, SnapshotInfo* info) {
  ADSYNTH_SPAN("graphdb.persist.load");
  std::string contents;
  {
    util::CheckedFile file = util::CheckedFile::open_read(path);
    contents.resize(file.size());
    file.read(contents.data(), contents.size());
    file.close();
  }
  const std::string_view bytes(contents);

  if (bytes.size() < kHeaderBytes) {
    throw PersistError("header", "file holds " + std::to_string(bytes.size()) +
                                     " bytes, header needs " +
                                     std::to_string(kHeaderBytes));
  }
  util::ByteReader header(bytes.substr(0, kHeaderBytes));
  const std::uint32_t magic = header.u32();
  const std::uint32_t version = header.u32();
  const std::uint32_t section_count = header.u32();
  const std::uint32_t header_crc = header.u32();
  if (magic != kSnapshotMagic) {
    throw PersistError("header", "bad magic (not an ADSG snapshot)");
  }
  if (util::crc32(bytes.substr(0, kHeaderBytes - 4)) != header_crc) {
    throw PersistError("header", "header CRC mismatch");
  }
  if (version != kSnapshotFormatVersion) {
    throw PersistError("header",
                       "unsupported format version " + std::to_string(version) +
                           " (this build reads version " +
                           std::to_string(kSnapshotFormatVersion) + ")");
  }

  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(section_count) * kTableEntryBytes;
  if (bytes.size() - kHeaderBytes < table_bytes) {
    throw PersistError("section-table", "truncated section table");
  }
  std::vector<SectionEntry> table(section_count);
  {
    util::ByteReader reader(bytes.substr(kHeaderBytes, table_bytes));
    for (SectionEntry& entry : table) {
      entry.id = reader.u32();
      entry.offset = reader.u64();
      entry.length = reader.u64();
      entry.crc = reader.u32();
      if (entry.offset > bytes.size() ||
          bytes.size() - entry.offset < entry.length) {
        throw PersistError("section-table",
                           "section " + section_name(entry.id) +
                               " extends past end of file (offset " +
                               std::to_string(entry.offset) + ", length " +
                               std::to_string(entry.length) + ", file " +
                               std::to_string(bytes.size()) + ")");
      }
    }
  }

  // Returns the CRC-verified payload of a section; every section is
  // independently guarded so a flipped bit names its victim.
  const auto section = [&](std::uint32_t id) -> std::string_view {
    for (const SectionEntry& entry : table) {
      if (entry.id != id) continue;
      const std::string_view payload =
          bytes.substr(entry.offset, entry.length);
      if (util::crc32(payload) != entry.crc) {
        throw PersistError(section_name(id), "section CRC mismatch");
      }
      return payload;
    }
    throw PersistError("section-table",
                       "missing section " + section_name(id));
  };

  Meta meta;
  decode_section("meta", [&] {
    util::ByteReader in(section(kSectionMeta));
    meta.epoch = in.u64();
    meta.checkpoint_id = in.u64();
    meta.schema_version = in.u64();
    meta.node_records = in.u64();
    meta.rel_records = in.u64();
    meta.deleted_nodes = in.u64();
    meta.deleted_rels = in.u64();
    meta.label_count = in.u64();
    meta.rel_type_count = in.u64();
    meta.key_count = in.u64();
    meta.index_count = in.u64();
  });

  GraphStore store;

  decode_section("tokens", [&] {
    util::ByteReader in(section(kSectionTokens));
    PersistAccess::labels(store).names = decode_tokens(in);
    PersistAccess::rel_types(store).names = decode_tokens(in);
    PersistAccess::keys(store).names = decode_tokens(in);
    if (PersistAccess::labels(store).names.size() != meta.label_count ||
        PersistAccess::rel_types(store).names.size() != meta.rel_type_count ||
        PersistAccess::keys(store).names.size() != meta.key_count) {
      throw util::BinIoError("token counts disagree with meta section");
    }
    PersistAccess::rebuild_interner_index(PersistAccess::labels(store));
    PersistAccess::rebuild_interner_index(PersistAccess::rel_types(store));
    PersistAccess::rebuild_interner_index(PersistAccess::keys(store));
  });

  auto& nodes = PersistAccess::nodes(store);
  decode_section("nodes", [&] {
    util::ByteReader in(section(kSectionNodes));
    nodes.reserve(meta.node_records);
    for (std::uint64_t i = 0; i < meta.node_records; ++i) {
      NodeRecord rec;
      rec.deleted = in.u8() != 0;
      rec.mutated_epoch = in.u64();
      const std::uint32_t label_count = in.u32();
      rec.labels.reserve(label_count);
      for (std::uint32_t l = 0; l < label_count; ++l) {
        rec.labels.push_back(in.u32());
      }
      rec.properties = wal::decode_properties(in);
      nodes.push_back(std::move(rec));
    }
    if (!in.at_end()) {
      throw util::BinIoError("trailing bytes after last node record");
    }
  });

  auto& rels = PersistAccess::rels(store);
  decode_section("rels", [&] {
    util::ByteReader in(section(kSectionRels));
    rels.reserve(meta.rel_records);
    for (std::uint64_t i = 0; i < meta.rel_records; ++i) {
      RelRecord rec;
      rec.deleted = in.u8() != 0;
      rec.mutated_epoch = in.u64();
      rec.source = in.u32();
      rec.target = in.u32();
      rec.type = in.u32();
      rec.properties = wal::decode_properties(in);
      rels.push_back(std::move(rec));
    }
    if (!in.at_end()) {
      throw util::BinIoError("trailing bytes after last rel record");
    }
  });

  decode_section("adjacency", [&] {
    util::ByteReader in(section(kSectionAdjacency));
    for (const bool outgoing : {true, false}) {
      const std::uint64_t offset_count = in.u64();
      if (offset_count != nodes.size() + 1) {
        throw util::BinIoError("offset array sized " +
                               std::to_string(offset_count) + " for " +
                               std::to_string(nodes.size()) + " nodes");
      }
      std::vector<std::uint64_t> offsets;
      offsets.reserve(offset_count);
      for (std::uint64_t i = 0; i < offset_count; ++i) {
        offsets.push_back(in.u64());
        if (i > 0 && offsets[i] < offsets[i - 1]) {
          throw util::BinIoError("offsets not monotone at node " +
                                 std::to_string(i - 1));
        }
      }
      for (std::size_t n = 0; n < nodes.size(); ++n) {
        const std::uint64_t degree = offsets[n + 1] - offsets[n];
        auto& list = outgoing ? nodes[n].out_rels : nodes[n].in_rels;
        list.reserve(degree);
        for (std::uint64_t i = 0; i < degree; ++i) list.push_back(in.u32());
      }
    }
    if (!in.at_end()) {
      throw util::BinIoError("trailing bytes after adjacency ids");
    }
  });

  decode_section("label_buckets", [&] {
    util::ByteReader in(section(kSectionLabelBuckets));
    const std::uint32_t count = in.u32();
    if (count != meta.label_count) {
      throw util::BinIoError(std::to_string(count) + " buckets for " +
                             std::to_string(meta.label_count) + " labels");
    }
    auto& buckets = PersistAccess::label_buckets(store);
    buckets.resize(count);
    for (std::uint32_t l = 0; l < count; ++l) {
      const std::uint64_t size = in.u64();
      buckets[l].reserve(size);
      for (std::uint64_t i = 0; i < size; ++i) buckets[l].push_back(in.u32());
    }
    if (!in.at_end()) {
      throw util::BinIoError("trailing bytes after last bucket");
    }
  });

  decode_section("indexes", [&] {
    util::ByteReader in(section(kSectionIndexes));
    const std::uint32_t count = in.u32();
    if (count != meta.index_count) {
      throw util::BinIoError(std::to_string(count) + " indexes, meta says " +
                             std::to_string(meta.index_count));
    }
    auto& indexes = PersistAccess::indexes(store);
    indexes.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      auto& idx = indexes.emplace_back();
      idx.label = in.u32();
      idx.key = in.u32();
      idx.entries = in.u64();
      idx.stale = in.u64();
      const std::uint64_t bucket_count = in.u64();
      idx.buckets.reserve(bucket_count);
      for (std::uint64_t b = 0; b < bucket_count; ++b) {
        std::string value_key = in.str();
        const std::uint64_t size = in.u64();
        auto& ids = idx.buckets[std::move(value_key)];
        ids.reserve(size);
        for (std::uint64_t e = 0; e < size; ++e) ids.push_back(in.u32());
      }
    }
    if (!in.at_end()) {
      throw util::BinIoError("trailing bytes after last index");
    }
  });

  PersistAccess::set_counters(store, meta.deleted_nodes, meta.deleted_rels,
                              meta.schema_version, meta.epoch);

  // The audit is the last line of defense: CRCs catch flipped bits, this
  // catches semantic corruption a valid checksum can still carry.
  const auto report = store.check_invariants();
  if (!report.ok()) {
    std::string what = std::to_string(report.violations.size()) +
                       " invariant violation(s) after load; first: " +
                       report.violations.front();
    throw PersistError("invariants", what);
  }

  if (info != nullptr) {
    info->format_version = version;
    info->checkpoint_id = meta.checkpoint_id;
    info->epoch = meta.epoch;
    info->node_records = meta.node_records;
    info->rel_records = meta.rel_records;
  }
  return store;
}

// --------------------------------------------------------------------------
// fingerprint
// --------------------------------------------------------------------------

namespace {

void hash_value(util::Fnv1a& hash, const PropertyValue& value) {
  util::ByteWriter encoded;
  wal::encode_value(encoded, value);
  hash.update(encoded.buffer());
}

void hash_u32(util::Fnv1a& hash, std::uint32_t v) {
  unsigned char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
  hash.update(bytes, sizeof(bytes));
}

void hash_u64(util::Fnv1a& hash, std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
  hash.update(bytes, sizeof(bytes));
}

void hash_str(util::Fnv1a& hash, std::string_view s) {
  hash_u64(hash, s.size());
  hash.update(s);
}

}  // namespace

std::uint64_t fingerprint(const GraphStore& store) {
  ADSYNTH_SPAN("graphdb.persist.fingerprint");
  util::Fnv1a hash;

  for (const auto* interner :
       {&PersistAccess::labels(store), &PersistAccess::rel_types(store),
        &PersistAccess::keys(store)}) {
    hash_u64(hash, interner->names.size());
    for (const auto& name : interner->names) hash_str(hash, name);
  }

  const auto& nodes = PersistAccess::nodes(store);
  hash_u64(hash, nodes.size());
  for (const NodeRecord& rec : nodes) {
    // mutated_epoch deliberately excluded: WAL replay reproduces the data,
    // not the publish history that stamped it.
    hash_u32(hash, rec.deleted ? 1 : 0);
    hash_u64(hash, rec.labels.size());
    for (const LabelId l : rec.labels) hash_u32(hash, l);
    hash_u64(hash, rec.properties.size());
    for (const auto& [key, value] : rec.properties) {
      hash_u32(hash, key);
      hash_value(hash, value);
    }
    hash_u64(hash, rec.out_rels.size());
    for (const RelId r : rec.out_rels) hash_u32(hash, r);
    hash_u64(hash, rec.in_rels.size());
    for (const RelId r : rec.in_rels) hash_u32(hash, r);
  }

  const auto& rels = PersistAccess::rels(store);
  hash_u64(hash, rels.size());
  for (const RelRecord& rec : rels) {
    hash_u32(hash, rec.deleted ? 1 : 0);
    hash_u32(hash, rec.source);
    hash_u32(hash, rec.target);
    hash_u32(hash, rec.type);
    hash_u64(hash, rec.properties.size());
    for (const auto& [key, value] : rec.properties) {
      hash_u32(hash, key);
      hash_value(hash, value);
    }
  }

  const auto& buckets = PersistAccess::label_buckets(store);
  hash_u64(hash, buckets.size());
  for (const auto& bucket : buckets) {
    hash_u64(hash, bucket.size());
    for (const NodeId n : bucket) hash_u32(hash, n);
  }

  hash_u64(hash, PersistAccess::deleted_nodes(store));
  hash_u64(hash, PersistAccess::deleted_rels(store));
  hash_u64(hash, PersistAccess::schema_version(store));

  // Index *schema* only: bucket layout and stale counters depend on when
  // compaction happened to run, which WAL replay legitimately shifts.
  std::vector<std::pair<LabelId, PropertyKeyId>> schema;
  for (const auto& idx : PersistAccess::indexes(store)) {
    schema.emplace_back(idx.label, idx.key);
  }
  std::sort(schema.begin(), schema.end());
  hash_u64(hash, schema.size());
  for (const auto& [label, key] : schema) {
    hash_u32(hash, label);
    hash_u32(hash, key);
  }

  return hash.digest();
}

// --------------------------------------------------------------------------
// Durability
// --------------------------------------------------------------------------

Durability::Durability(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw util::BinIoError("persist: cannot create durability directory '" +
                           dir_ + "': " + ec.message());
  }
}

Durability::~Durability() { detach(); }

std::string Durability::snapshot_path() const {
  return dir_ + "/snapshot.adsg";
}

std::string Durability::wal_path() const { return dir_ + "/wal.adwl"; }

GraphStore Durability::recover(RecoveryReport* report) {
  ADSYNTH_SPAN("graphdb.persist.recover");
  if (attached_ != nullptr) {
    throw std::logic_error("persist: recover while a store is attached");
  }
  RecoveryReport local;
  GraphStore store;
  checkpoint_id_ = 0;
  next_sequence_ = 1;
  wal_ready_ = false;

  std::error_code ec;
  if (fs::exists(snapshot_path(), ec)) {
    SnapshotInfo info;
    store = load_snapshot(snapshot_path(), &info);  // PersistError on corrupt
    checkpoint_id_ = info.checkpoint_id;
    local.snapshot_loaded = true;
    local.snapshot_epoch = info.epoch;
    local.detail += "snapshot: loaded checkpoint " +
                    std::to_string(info.checkpoint_id) + " (" +
                    std::to_string(info.node_records) + " node records, " +
                    std::to_string(info.rel_records) + " rel records)\n";
  } else {
    local.detail += "snapshot: none, starting from an empty store\n";
  }
  local.checkpoint_id = checkpoint_id_;

  std::uint64_t wal_checkpoint = 0;
  if (!fs::exists(wal_path(), ec)) {
    local.detail += "wal: none\n";
  } else if (!wal::read_wal_header(wal_path(), wal_checkpoint)) {
    local.wal_present = true;
    local.wal_tail_truncated = true;
    local.detail += "wal: unreadable header, discarding the whole log\n";
  } else if (wal_checkpoint != checkpoint_id_) {
    // Predates the snapshot (crash between snapshot rename and WAL reset):
    // everything in it is already inside the snapshot.  A *newer* id with
    // an older snapshot cannot happen — the snapshot renames first.
    local.wal_present = true;
    local.wal_stale = true;
    local.detail += "wal: stale (checkpoint " +
                    std::to_string(wal_checkpoint) + " != snapshot " +
                    std::to_string(checkpoint_id_) + "), ignored\n";
  } else {
    local.wal_present = true;
    const wal::ReplayResult replay = wal::replay_wal(wal_path(), store);
    local.wal_records_replayed = replay.records;
    local.wal_ops_applied = replay.ops;
    local.wal_tail_truncated = replay.truncated_tail;
    local.wal_valid_bytes = replay.valid_bytes;
    local.detail += "wal: replayed " + std::to_string(replay.records) +
                    " record(s), " + std::to_string(replay.ops) + " op(s)\n";
    if (replay.truncated_tail) {
      fs::resize_file(wal_path(), replay.valid_bytes, ec);
      if (ec) {
        throw util::BinIoError("persist: cannot truncate torn WAL tail: " +
                               ec.message());
      }
      local.detail += "wal: torn tail truncated to " +
                      std::to_string(replay.valid_bytes) + " bytes (" +
                      replay.tail_reason + ")\n";
    }
    next_sequence_ = replay.next_sequence;
    wal_ready_ = true;
  }

  if (report != nullptr) *report = std::move(local);
  return store;
}

void Durability::open_recorder(std::uint64_t next_sequence) {
  recorder_ = std::make_unique<wal::WalRecorder>(
      util::CheckedFile::open_append(wal_path()), next_sequence);
}

void Durability::attach(GraphStore& store) {
  if (attached_ != nullptr) {
    throw std::logic_error("persist: a store is already attached");
  }
  if (!wal_ready_) {
    wal::reset_wal(wal_path(), checkpoint_id_);
    next_sequence_ = 1;
    wal_ready_ = true;
  }
  open_recorder(next_sequence_);
  store.attach_wal(recorder_.get());
  attached_ = &store;
}

void Durability::detach() {
  if (attached_ == nullptr) return;
  attached_->attach_wal(nullptr);
  attached_ = nullptr;
  next_sequence_ = recorder_->next_sequence();
  recorder_.reset();
}

void Durability::checkpoint(GraphStore& store) {
  if (store.undo_depth() != 0) {
    throw std::logic_error(
        "persist: checkpoint inside an open transaction; commit or roll "
        "back first");
  }
  if (attached_ != nullptr && attached_ != &store) {
    throw std::logic_error(
        "persist: checkpoint of a store other than the attached one");
  }
  ADSYNTH_SPAN("graphdb.persist.checkpoint");
  ADSYNTH_METRIC_COUNT("graphdb.persist.checkpoints", 1);

  GraphStore* rearm = attached_;
  detach();  // the recorder holds the WAL file open; release it first

  // Temp write + rename keeps the old snapshot intact until the new one is
  // complete; the WAL reset below happens *after* the rename, so a crash in
  // between leaves new-snapshot + stale-WAL, which recover() ignores.
  ++checkpoint_id_;
  const std::string tmp = snapshot_path() + ".tmp";
  save_snapshot(store, tmp, checkpoint_id_);
  if (std::rename(tmp.c_str(), snapshot_path().c_str()) != 0) {
    throw util::BinIoError("persist: cannot rename '" + tmp + "' into place");
  }
  wal::reset_wal(wal_path(), checkpoint_id_);
  next_sequence_ = 1;
  wal_ready_ = true;

  if (rearm != nullptr) attach(*rearm);
}

std::uint64_t Durability::wal_records_appended() const {
  return recorder_ != nullptr ? recorder_->records_appended() : 0;
}

void Durability::sync() {
  if (recorder_ != nullptr) recorder_->sync();
}

}  // namespace persist
}  // namespace adsynth::graphdb
