// Executor for planned openCypher statements.  Compiles pattern matching
// onto GraphStore primitives: anchor scans use the property indexes /
// label buckets the planner chose, single hops expand over adjacency
// lists, and variable-length hops `-[:T*min..max]->` run a bounded BFS
// over a per-statement CSR snapshot (util/csr.hpp — the same kernel the
// analytics layer uses, so var-length results are bit-identical to the
// reachability oracle).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graphdb/cypher_planner.hpp"
#include "graphdb/snapshot.hpp"
#include "graphdb/store.hpp"

namespace adsynth::graphdb {

/// Outcome of one statement.
struct QueryResult {
  std::vector<NodeId> nodes;  // matched/created nodes (RETURN n, CREATE ...)
  std::vector<RelId> rels;    // created relationships
  std::int64_t count = 0;     // RETURN count(x)
  std::size_t nodes_created = 0;
  std::size_t rels_created = 0;
  std::size_t nodes_deleted = 0;
  std::size_t rels_deleted = 0;
  std::size_t properties_set = 0;
  /// RETURN projections: one column per RETURN item (display names) and
  /// one row per pattern match.  Node variables render as their NodeId.
  std::vector<std::string> columns;
  std::vector<std::vector<PropertyValue>> rows;
  /// EXPLAIN statements: the rendered plan; execution is skipped.
  std::string plan;
};

namespace cypher {

/// Executes a planned statement.  $params are resolved here (a missing
/// binding throws CypherError).  Mutating verbs rely on the caller
/// (CypherSession) for savepoint/commit bookkeeping.
QueryResult execute_query(GraphStore& store, const PlannedQuery& plan,
                          const Params& params);

/// Executes a planned read statement (MATCH ... RETURN, or EXPLAIN of any
/// verb) against an immutable snapshot — the lock-free path concurrent
/// read sessions take while a writer commits.  The read pipeline is the
/// same code execute_query compiles against GraphStore, so for equal
/// committed state the results are identical.  Mutating verbs throw
/// CypherError: a snapshot cannot accept writes.
QueryResult execute_read_query(const SnapshotView& view,
                               const PlannedQuery& plan, const Params& params);

}  // namespace cypher
}  // namespace adsynth::graphdb
