// Cost-based planner for the openCypher subset.  Planning validates
// variable bindings, chooses the anchor access path (index seek vs. label
// scan) and pattern-expansion direction from GraphStore statistics, and
// renders the EXPLAIN text.  A plan is parameter-independent: the same
// PlannedQuery executes repeatedly with different $param bindings, which is
// what makes the session's prepared-statement cache sound.
#pragma once

#include <cstdint>
#include <string>

#include "graphdb/cypher_ast.hpp"
#include "graphdb/store.hpp"

namespace adsynth::graphdb::cypher {

/// How the anchor node pattern of a MATCH is enumerated.
enum class ScanKind : std::uint8_t {
  kLabelScan,  // walk the label bucket
  kIndexSeek,  // probe a property index with an equality constraint
};

/// The chosen access path for one anchor node pattern.
struct ScanChoice {
  ScanKind kind = ScanKind::kLabelScan;
  std::string label;  // bucket (kLabelScan) or indexed label (kIndexSeek)
  std::string key;    // indexed property key (kIndexSeek only)
  ValueExpr value;    // seek value, possibly a $param (kIndexSeek only)
  double est_rows = 0.0;
};

/// A validated, costed statement ready for execution (and for caching).
struct PlannedQuery {
  Query ast;
  ScanChoice scan;  // anchor access path of paths[0] (pattern verbs only)
  /// True when the rightmost node of paths[0] is the cheaper anchor: the
  /// executor starts there and expands backwards over in_rels.
  bool anchor_right = false;
  /// GraphStore::schema_version() this plan was costed against.  The
  /// session re-plans when the store's version moves (a new index can flip
  /// a label scan into an index seek); data growth alone never invalidates
  /// a plan — only which access paths exist, not their relative volume,
  /// is treated as load-bearing.
  std::uint64_t schema_version = 0;
  std::string explain_text;  // one operator per line, EXPLAIN rendering
};

/// Validates and costs a parsed statement against `store`.  Throws
/// CypherError on semantic errors (unbound variables, unlabeled MATCH
/// patterns, unsupported shapes).  Read-only on the store.
PlannedQuery plan(Query ast, const GraphStore& store);

}  // namespace adsynth::graphdb::cypher
