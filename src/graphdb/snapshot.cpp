// MVCC snapshot publication, reads, reclamation accounting, and the
// version-chain section of GraphStore::check_invariants().  See
// snapshot.hpp for the representation and the threading contract.
#include "graphdb/snapshot.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "util/trace.hpp"

namespace adsynth::graphdb {

namespace {

/// Overlay + batch delta beyond max(this, root/4) triggers a re-root.
/// Small enough that tests can provoke compaction on toy stores, large
/// enough that a steady trickle of commits amortizes to O(delta) publishes.
constexpr std::size_t kSnapshotReRootMin = 64;

// NodeRecord/RelRecord carry no operator== (nothing else needs one);
// member-wise comparison keeps the audit honest about every field a reader
// can observe, including the version stamp itself.
bool same_record(const NodeRecord& a, const NodeRecord& b) {
  return a.deleted == b.deleted && a.mutated_epoch == b.mutated_epoch &&
         a.labels == b.labels && a.out_rels == b.out_rels &&
         a.in_rels == b.in_rels && a.properties == b.properties;
}

bool same_record(const RelRecord& a, const RelRecord& b) {
  return a.deleted == b.deleted && a.mutated_epoch == b.mutated_epoch &&
         a.source == b.source && a.target == b.target && a.type == b.type &&
         a.properties == b.properties;
}

}  // namespace

// --------------------------------------------------------------------------
// SnapshotView reads
// --------------------------------------------------------------------------

SnapshotView::~SnapshotView() {
  if (!control_) return;
  util::MutexLock lock(control_->mutex);
  ++control_->reclaimed_views;
  const auto it = control_->live.find(epoch_);
  if (it != control_->live.end() && --(it->second) == 0) {
    control_->live.erase(it);  // last reader of this epoch drained
  }
}

std::optional<LabelId> SnapshotView::find_label(std::string_view name) const {
  const auto it = label_index_.find(std::string(name));
  if (it == label_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<RelTypeId> SnapshotView::find_rel_type(
    std::string_view name) const {
  const auto it = rel_type_index_.find(std::string(name));
  if (it == rel_type_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<PropertyKeyId> SnapshotView::find_key(
    std::string_view name) const {
  const auto it = key_index_.find(std::string(name));
  if (it == key_index_.end()) return std::nullopt;
  return it->second;
}

const std::string& SnapshotView::label_name(LabelId id) const {
  if (id >= label_names_.size()) {
    throw std::out_of_range("SnapshotView: invalid label id");
  }
  return label_names_[id];
}

const std::string& SnapshotView::rel_type_name(RelTypeId id) const {
  if (id >= rel_type_names_.size()) {
    throw std::out_of_range("SnapshotView: invalid relationship type id");
  }
  return rel_type_names_[id];
}

const std::string& SnapshotView::key_name(PropertyKeyId id) const {
  if (id >= key_names_.size()) {
    throw std::out_of_range("SnapshotView: invalid property key id");
  }
  return key_names_[id];
}

const NodeRecord& SnapshotView::node(NodeId id) const {
  if (id >= node_limit_) {
    throw std::out_of_range("SnapshotView: invalid node id " +
                            std::to_string(id));
  }
  const auto it = node_overlay_.find(id);
  if (it != node_overlay_.end()) return it->second;
  // Not in the overlay ⇒ untouched since the root epoch ⇒ id < root size
  // (every node created after the root is in the overlay by construction).
  return root_->nodes[id];
}

const RelRecord& SnapshotView::rel(RelId id) const {
  if (id >= rel_limit_) {
    throw std::out_of_range("SnapshotView: invalid relationship id " +
                            std::to_string(id));
  }
  const auto it = rel_overlay_.find(id);
  if (it != rel_overlay_.end()) return it->second;
  return root_->rels[id];
}

bool SnapshotView::node_has_label(NodeId id, LabelId label) const {
  const auto& labels = node(id).labels;
  return std::binary_search(labels.begin(), labels.end(), label);
}

const PropertyValue* SnapshotView::node_property(NodeId id,
                                                PropertyKeyId key) const {
  return get_property(node(id).properties, key);
}

const PropertyValue* SnapshotView::node_property(NodeId id,
                                                 std::string_view key) const {
  const auto key_id = find_key(key);
  if (!key_id) return nullptr;
  return node_property(id, *key_id);
}

std::vector<NodeId> SnapshotView::nodes_with_label(
    std::string_view label) const {
  const auto id = find_label(label);
  if (!id) return {};
  // Root bucket (creation order, ids < root size) then appends (creation
  // order, ids >= root size): the concatenation is exactly the store's
  // bucket order for this committed state — node ids are monotone and
  // label sets are immutable after creation.
  const std::vector<NodeId>* base = *id < root_->label_buckets.size()
                                        ? &root_->label_buckets[*id]
                                        : nullptr;
  const std::vector<NodeId>* grown =
      *id < bucket_appends_.size() ? &bucket_appends_[*id] : nullptr;
  std::vector<NodeId> out;
  out.reserve((base != nullptr ? base->size() : 0) +
              (grown != nullptr ? grown->size() : 0));
  if (base != nullptr) {
    for (const NodeId n : *base) {
      if (!node(n).deleted) out.push_back(n);
    }
  }
  if (grown != nullptr) {
    for (const NodeId n : *grown) {
      if (!node(n).deleted) out.push_back(n);
    }
  }
  return out;
}

std::vector<NodeId> SnapshotView::find_nodes(std::string_view label,
                                             std::string_view key,
                                             const PropertyValue& value) const {
  const auto l = find_label(label);
  const auto k = find_key(key);
  if (!l || !k) return {};
  for (const auto& idx : root_->indexes) {
    if (idx.label != *l || idx.key != *k) continue;
    std::vector<NodeId> out;
    // Root pass: index candidates whose records are untouched since the
    // root epoch; anything overlaid is deferred to the overlay pass, which
    // sees its committed state (the index bucket may be stale for it).
    const auto it = idx.buckets.find(value.index_key());
    if (it != idx.buckets.end()) {
      for (const NodeId n : it->second) {
        if (node_overlay_.find(n) != node_overlay_.end()) continue;
        const NodeRecord& rec = root_->nodes[n];
        if (rec.deleted) continue;
        const PropertyValue* v = get_property(rec.properties, *k);
        if (v != nullptr && *v == value) out.push_back(n);
      }
    }
    for (const NodeId n : touched_nodes_) {
      const NodeRecord& rec = node_overlay_.find(n)->second;
      if (rec.deleted) continue;
      if (!std::binary_search(rec.labels.begin(), rec.labels.end(), *l)) {
        continue;
      }
      const PropertyValue* v = get_property(rec.properties, *k);
      if (v != nullptr && *v == value) out.push_back(n);
    }
    // The store's indexed path returns sorted/deduped ids; match it (the
    // root pass can duplicate re-indexed values, and the two passes
    // interleave id ranges).
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
  // No index at the root epoch: label scan, same as the store's fallback
  // (bucket order == ascending ids == sorted, so results still line up
  // with an indexed store's output for the same committed state).
  std::vector<NodeId> out;
  for (const NodeId n : nodes_with_label(label)) {
    const PropertyValue* v = node_property(n, *k);
    if (v != nullptr && *v == value) out.push_back(n);
  }
  return out;
}

// --------------------------------------------------------------------------
// GraphStore: publication and reclamation
// --------------------------------------------------------------------------

// The control block and the published view own each other while serving (a
// reader copying `published` must get a view that can still deregister).
// The link's destructor is the designated cycle-breaker: clear `published`
// under the mutex, release it outside, and from then on the views drain
// normally — the last reader's destructor frees the retired root even
// though the store is long gone (ROADMAP item 6's LeakSanitizer class).
void GraphStore::SnapshotLink::release() noexcept {
  if (control == nullptr) return;
  Snapshot dropped;
  {
    util::MutexLock lock(control->mutex);
    dropped = std::move(control->published);
  }
  tail.reset();
  control.reset();
  // `dropped` releases here, after the lock: if this was the last strong
  // reference the view destructor re-locks the mutex through its own
  // control_ reference to deregister its epoch.
}

GraphStore::SnapshotLink::~SnapshotLink() { release(); }

GraphStore::SnapshotLink& GraphStore::SnapshotLink::operator=(
    SnapshotLink&& other) noexcept {
  if (this != &other) {
    release();  // a move-assigned-over store must not leak its old chain
    control = std::move(other.control);
    tail = std::move(other.tail);
  }
  return *this;
}

Snapshot GraphStore::snapshot() {
  if (snap_.control) {
    util::MutexLock lock(snap_.control->mutex);
    if (snap_.control->published != nullptr) {
      return snap_.control->published;
    }
  }
  return materialize_root();
}

Snapshot GraphStore::materialize_root() {
  if (recording()) {
    throw std::logic_error(
        "GraphStore: snapshot() has nothing published and cannot copy the "
        "store while an undo scope is open (uncommitted state must not leak "
        "into a snapshot); commit or abort first");
  }
  ADSYNTH_SPAN("graphdb.snapshot.materialize");
  ADSYNTH_METRIC_COUNT("graphdb.snapshot.roots", 1);
  if (!snap_.control) {
    snap_.control = std::make_shared<detail::SnapshotControl>();
  }
  const std::uint64_t epoch = ++epoch_;

  auto root = std::make_shared<SnapshotView::Root>();
  root->epoch = epoch;
  root->nodes = nodes_;
  root->rels = rels_;
  root->label_buckets = label_buckets_;
  root->indexes.reserve(indexes_.size());
  for (const auto& idx : indexes_) {
    SnapshotView::Root::Index copy;
    copy.label = idx.label;
    copy.key = idx.key;
    copy.buckets = idx.buckets;
    root->indexes.push_back(std::move(copy));
  }

  std::shared_ptr<SnapshotView> view(new SnapshotView());
  view->root_ = std::move(root);
  view->control_ = snap_.control;
  view->epoch_ = epoch;
  view->node_limit_ = static_cast<NodeId>(nodes_.size());
  view->rel_limit_ = static_cast<RelId>(rels_.size());
  view->live_nodes_ = node_count();
  view->live_rels_ = rel_count();
  view->label_names_ = labels_.names;
  view->label_index_ = labels_.index;
  view->rel_type_names_ = rel_types_.names;
  view->rel_type_index_ = rel_types_.index;
  view->key_names_ = keys_.names;
  view->key_index_ = keys_.index;
  view->bucket_appends_.resize(labels_.names.size());

  Snapshot published = std::move(view);
  Snapshot replaced;
  {
    util::MutexLock lock(snap_.control->mutex);
    replaced = std::move(snap_.control->published);
    snap_.control->published = published;
    ++snap_.control->published_views;
    ++snap_.control->live[epoch];
  }
  snap_.tail = published;
  // `replaced` (normally null here — materialize follows invalidation)
  // dies after the lock: a view destructor re-locks the control mutex.
  return published;
}

void GraphStore::publish_delta() {
  ADSYNTH_SPAN("graphdb.snapshot.publish");
  const Snapshot prev = snap_.tail;

  // The undo log of the just-committed batch names exactly the records the
  // batch touched — the inverse records double as the version chain.
  std::vector<NodeId> touched_nodes;
  std::vector<RelId> touched_rels;
  for (const UndoOp& op : undo_log_) {
    switch (op.kind) {
      case UndoOp::Kind::kUncreateNode:
        touched_nodes.push_back(op.id);
        break;
      case UndoOp::Kind::kUncreateRel:
        // A new relationship re-versions its endpoints (adjacency growth).
        touched_rels.push_back(op.id);
        touched_nodes.push_back(rels_[op.id].source);
        touched_nodes.push_back(rels_[op.id].target);
        break;
      case UndoOp::Kind::kRestoreProperty:
      case UndoOp::Kind::kUndeleteNode:
        touched_nodes.push_back(op.id);
        break;
      case UndoOp::Kind::kUndeleteRel:
        touched_rels.push_back(op.id);
        break;
    }
  }
  std::sort(touched_nodes.begin(), touched_nodes.end());
  touched_nodes.erase(std::unique(touched_nodes.begin(), touched_nodes.end()),
                      touched_nodes.end());
  std::sort(touched_rels.begin(), touched_rels.end());
  touched_rels.erase(std::unique(touched_rels.begin(), touched_rels.end()),
                     touched_rels.end());

  // Re-root once the accumulated overlay stops being a "delta": lookups
  // stay two-probe O(1) and the O(V+E) copy is amortized over the >=
  // root/4 mutations that forced it.
  const std::size_t root_size =
      prev->root_->nodes.size() + prev->root_->rels.size();
  const std::size_t projected =
      prev->overlay_entries() + touched_nodes.size() + touched_rels.size();
  if (projected > std::max(kSnapshotReRootMin, root_size / 4)) {
    ADSYNTH_METRIC_COUNT("graphdb.snapshot.reroots", 1);
    invalidate_published();
    materialize_root();
    return;
  }

  std::shared_ptr<SnapshotView> view(new SnapshotView());
  view->root_ = prev->root_;
  view->control_ = snap_.control;
  view->epoch_ = ++epoch_;
  view->node_limit_ = static_cast<NodeId>(nodes_.size());
  view->rel_limit_ = static_cast<RelId>(rels_.size());
  view->live_nodes_ = node_count();
  view->live_rels_ = rel_count();
  view->label_names_ = labels_.names;
  view->label_index_ = labels_.index;
  view->rel_type_names_ = rel_types_.names;
  view->rel_type_index_ = rel_types_.index;
  view->key_names_ = keys_.names;
  view->key_index_ = keys_.index;

  // Copied-overlay scheme: predecessor overlay + this batch's delta, so a
  // reader never walks a chain of views.
  view->node_overlay_ = prev->node_overlay_;
  view->rel_overlay_ = prev->rel_overlay_;
  view->bucket_appends_ = prev->bucket_appends_;
  view->bucket_appends_.resize(labels_.names.size());
  for (const NodeId n : touched_nodes) {
    view->node_overlay_[n] = nodes_[n];
    if (n >= prev->node_limit_) {
      // Created this batch: extend the label buckets.  touched_nodes is
      // ascending and later batches only add larger ids, so the appends
      // stay in creation order.
      for (const LabelId l : nodes_[n].labels) {
        view->bucket_appends_[l].push_back(n);
      }
    }
  }
  for (const RelId r : touched_rels) view->rel_overlay_[r] = rels_[r];
  view->touched_nodes_.reserve(prev->touched_nodes_.size() +
                               touched_nodes.size());
  std::set_union(prev->touched_nodes_.begin(), prev->touched_nodes_.end(),
                 touched_nodes.begin(), touched_nodes.end(),
                 std::back_inserter(view->touched_nodes_));

  ADSYNTH_METRIC_COUNT("graphdb.snapshot.publishes", 1);
  Snapshot published = std::move(view);
  Snapshot replaced;
  {
    util::MutexLock lock(snap_.control->mutex);
    replaced = std::move(snap_.control->published);
    snap_.control->published = published;
    ++snap_.control->published_views;
    ++snap_.control->live[published->epoch()];
  }
  snap_.tail = std::move(published);
  // `replaced` and `prev` release after the lock; if no reader holds the
  // predecessor its destructor re-locks the mutex to deregister.
}

void GraphStore::invalidate_published() {
  ADSYNTH_METRIC_COUNT("graphdb.snapshot.invalidations", 1);
  Snapshot dropped;
  {
    util::MutexLock lock(snap_.control->mutex);
    dropped = std::move(snap_.control->published);
  }
  snap_.tail.reset();
  // `dropped` releases outside the lock (destructor re-locks).
}

SnapshotStats GraphStore::snapshot_stats() const {
  SnapshotStats stats;
  stats.current_epoch = epoch_;
  if (!snap_.control) return stats;
  util::MutexLock lock(snap_.control->mutex);
  stats.published_views = snap_.control->published_views;
  stats.reclaimed_views = snap_.control->reclaimed_views;
  for (const auto& [epoch, count] : snap_.control->live) {
    (void)epoch;
    stats.live_views += count;
  }
  if (!snap_.control->live.empty()) {
    stats.oldest_live_epoch = snap_.control->live.begin()->first;
  }
  return stats;
}

// --------------------------------------------------------------------------
// Version-chain invariants (the snapshot section of check_invariants())
// --------------------------------------------------------------------------

void GraphStore::audit_snapshots(InvariantReport& report, bool require_at_rest,
                                 std::size_t max_violations) const {
  const auto add = [&](std::string msg) {
    if (report.violations.size() < max_violations) {
      report.violations.push_back(std::move(msg));
    }
  };

  // Stamps never run ahead of the in-flight batch, snapshots or not.
  const std::uint64_t pending = pending_epoch();
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].mutated_epoch > pending) {
      add("node " + std::to_string(n) + ": version stamp " +
          std::to_string(nodes_[n].mutated_epoch) + " beyond pending epoch " +
          std::to_string(pending));
    }
  }
  for (RelId r = 0; r < rels_.size(); ++r) {
    if (rels_[r].mutated_epoch > pending) {
      add("rel " + std::to_string(r) + ": version stamp " +
          std::to_string(rels_[r].mutated_epoch) + " beyond pending epoch " +
          std::to_string(pending));
    }
  }

  if (!snap_.control) return;

  Snapshot published;
  std::uint64_t published_views = 0;
  std::uint64_t reclaimed_views = 0;
  std::map<std::uint64_t, std::size_t> live;
  {
    util::MutexLock lock(snap_.control->mutex);
    published = snap_.control->published;
    published_views = snap_.control->published_views;
    reclaimed_views = snap_.control->reclaimed_views;
    live = snap_.control->live;
  }

  // Registry accounting: every published view is either reclaimed or still
  // registered under its epoch; drained epochs leave no residue (that is
  // the "retired versions unreachable after reclamation" guarantee).
  std::size_t live_total = 0;
  for (const auto& [epoch, count] : live) {
    live_total += count;
    if (count == 0) {
      add("snapshot registry: epoch " + std::to_string(epoch) +
          " retained with zero live views (not reclaimed)");
    }
    if (epoch > epoch_) {
      add("snapshot registry: live epoch " + std::to_string(epoch) +
          " beyond current epoch " + std::to_string(epoch_));
    }
  }
  if (published_views < reclaimed_views ||
      published_views - reclaimed_views != live_total) {
    add("snapshot registry: published " + std::to_string(published_views) +
        " - reclaimed " + std::to_string(reclaimed_views) + " != " +
        std::to_string(live_total) + " live registrations");
  }
  if (published != snap_.tail) {
    add("snapshot registry: control-block published view diverges from the "
        "writer tail");
  }
  if (published == nullptr) return;

  const SnapshotView& view = *published;
  if (view.epoch_ != epoch_) {
    add("published view: epoch " + std::to_string(view.epoch_) +
        " is not the store's current epoch " + std::to_string(epoch_));
  }

  // The deep store-vs-view comparison only holds at rest: mid-batch the
  // live records legitimately run ahead of the published epoch.
  if (!require_at_rest || !scope_marks_.empty() || !undo_log_.empty()) return;

  if (view.node_limit_ != nodes_.size() || view.rel_limit_ != rels_.size()) {
    add("published view: limits (" + std::to_string(view.node_limit_) + ", " +
        std::to_string(view.rel_limit_) + ") do not match store sizes (" +
        std::to_string(nodes_.size()) + ", " + std::to_string(rels_.size()) +
        ")");
  }
  if (view.live_nodes_ != node_count() || view.live_rels_ != rel_count()) {
    add("published view: live counts (" + std::to_string(view.live_nodes_) +
        ", " + std::to_string(view.live_rels_) +
        ") do not match store counts (" + std::to_string(node_count()) + ", " +
        std::to_string(rel_count()) + ")");
  }
  const std::uint64_t root_epoch = view.root_->epoch;

  // Chain completeness: every record mutated after the root epoch must be
  // overlaid (a missing entry is a dangling stamp — readers would see the
  // root-era record for a mutated id), and the overlay copy must equal the
  // committed record.
  const std::size_t node_bound =
      std::min<std::size_t>(nodes_.size(), view.node_limit_);
  for (NodeId n = 0; n < node_bound; ++n) {
    const auto it = view.node_overlay_.find(n);
    if (nodes_[n].mutated_epoch > root_epoch &&
        it == view.node_overlay_.end()) {
      add("published view: node " + std::to_string(n) + " stamped " +
          std::to_string(nodes_[n].mutated_epoch) + " > root epoch " +
          std::to_string(root_epoch) + " but missing from the overlay");
    }
    if (it != view.node_overlay_.end() && !same_record(it->second, nodes_[n])) {
      add("published view: overlay for node " + std::to_string(n) +
          " diverges from the committed record");
    }
  }
  const std::size_t rel_bound =
      std::min<std::size_t>(rels_.size(), view.rel_limit_);
  for (RelId r = 0; r < rel_bound; ++r) {
    const auto it = view.rel_overlay_.find(r);
    if (rels_[r].mutated_epoch > root_epoch && it == view.rel_overlay_.end()) {
      add("published view: rel " + std::to_string(r) + " stamped " +
          std::to_string(rels_[r].mutated_epoch) + " > root epoch " +
          std::to_string(root_epoch) + " but missing from the overlay");
    }
    if (it != view.rel_overlay_.end() && !same_record(it->second, rels_[r])) {
      add("published view: overlay for rel " + std::to_string(r) +
          " diverges from the committed record");
    }
  }
  for (const auto& [n, rec] : view.node_overlay_) {
    (void)rec;
    if (n >= view.node_limit_) {
      add("published view: overlay node " + std::to_string(n) +
          " beyond the view's node limit " + std::to_string(view.node_limit_));
    }
  }
  for (const auto& [r, rec] : view.rel_overlay_) {
    (void)rec;
    if (r >= view.rel_limit_) {
      add("published view: overlay rel " + std::to_string(r) +
          " beyond the view's rel limit " + std::to_string(view.rel_limit_));
    }
  }

  // Bucket appends: creation-ordered ids of post-root nodes carrying the
  // label (the root bucket covers everything older).
  const std::size_t root_nodes = view.root_->nodes.size();
  for (LabelId l = 0; l < view.bucket_appends_.size(); ++l) {
    const auto& grown = view.bucket_appends_[l];
    for (std::size_t i = 0; i < grown.size(); ++i) {
      const NodeId n = grown[i];
      if (n < root_nodes || n >= view.node_limit_) {
        add("published view: bucket append for label " + std::to_string(l) +
            " holds id " + std::to_string(n) + " outside the delta range [" +
            std::to_string(root_nodes) + ", " +
            std::to_string(view.node_limit_) + ")");
        continue;
      }
      if (i > 0 && grown[i - 1] >= n) {
        add("published view: bucket append for label " + std::to_string(l) +
            " not in creation order at entry " + std::to_string(i));
      }
      if (n < nodes_.size() &&
          !std::binary_search(nodes_[n].labels.begin(), nodes_[n].labels.end(),
                              l)) {
        add("published view: bucket append for label " + std::to_string(l) +
            " holds node " + std::to_string(n) +
            " which does not carry the label");
      }
    }
  }

  // touched_nodes_ must be exactly the sorted overlay key set (find_nodes'
  // overlay pass iterates it and dereferences the overlay unconditionally).
  if (view.touched_nodes_.size() != view.node_overlay_.size()) {
    add("published view: touched-node list has " +
        std::to_string(view.touched_nodes_.size()) + " entries for " +
        std::to_string(view.node_overlay_.size()) + " overlaid nodes");
  } else {
    for (std::size_t i = 0; i < view.touched_nodes_.size(); ++i) {
      const NodeId n = view.touched_nodes_[i];
      if ((i > 0 && view.touched_nodes_[i - 1] >= n) ||
          view.node_overlay_.find(n) == view.node_overlay_.end()) {
        add("published view: touched-node list corrupt at entry " +
            std::to_string(i));
        break;
      }
    }
  }
}

}  // namespace adsynth::graphdb
