#include "graphdb/property.hpp"

#include <stdexcept>

namespace adsynth::graphdb {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("PropertyValue: not a ") + want);
}

}  // namespace

bool PropertyValue::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  type_error("bool");
}

std::int64_t PropertyValue::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  type_error("int");
}

double PropertyValue::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  type_error("number");
}

const std::string& PropertyValue::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  type_error("string");
}

const std::vector<std::string>& PropertyValue::as_string_list() const {
  if (const auto* v = std::get_if<std::vector<std::string>>(&value_)) return *v;
  type_error("string list");
}

std::string PropertyValue::index_key() const {
  struct Visitor {
    std::string operator()(std::nullptr_t) const { return "null"; }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const { return std::to_string(d); }
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(const std::vector<std::string>& v) const {
      std::string out;
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0) out.push_back('\x1f');
        out += v[i];
      }
      return out;
    }
  };
  return std::visit(Visitor{}, value_);
}

util::JsonValue PropertyValue::to_json() const {
  struct Visitor {
    util::JsonValue operator()(std::nullptr_t) const { return nullptr; }
    util::JsonValue operator()(bool b) const { return b; }
    util::JsonValue operator()(std::int64_t i) const { return i; }
    util::JsonValue operator()(double d) const { return d; }
    util::JsonValue operator()(const std::string& s) const { return s; }
    util::JsonValue operator()(const std::vector<std::string>& v) const {
      util::JsonArray arr;
      arr.reserve(v.size());
      for (const auto& s : v) arr.emplace_back(s);
      return arr;
    }
  };
  return std::visit(Visitor{}, value_);
}

PropertyValue PropertyValue::from_json(const util::JsonValue& v) {
  if (v.is_null()) return PropertyValue(nullptr);
  if (v.is_bool()) return PropertyValue(v.as_bool());
  if (v.is_int()) return PropertyValue(v.as_int());
  if (v.is_double()) return PropertyValue(v.as_double());
  if (v.is_string()) return PropertyValue(v.as_string());
  if (v.is_array()) {
    std::vector<std::string> list;
    list.reserve(v.as_array().size());
    for (const auto& item : v.as_array()) list.push_back(item.as_string());
    return PropertyValue(std::move(list));
  }
  throw std::runtime_error("PropertyValue::from_json: unsupported JSON type");
}

}  // namespace adsynth::graphdb
