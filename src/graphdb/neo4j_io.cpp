#include "graphdb/neo4j_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/json.hpp"

namespace adsynth::graphdb {

using util::JsonValue;
using util::JsonWriter;

namespace {

void write_properties(JsonWriter& w, const GraphStore& store,
                      const PropertyList& props) {
  w.key("properties");
  w.begin_object();
  for (const auto& [key, value] : props) {
    w.key(store.key_name(key));
    w.value(value.to_json());
  }
  w.end_object();
}

void write_endpoint(JsonWriter& w, const GraphStore& store, const char* field,
                    NodeId id) {
  w.key(field);
  w.begin_object();
  w.member("id", std::to_string(id));
  w.key("labels");
  w.begin_array();
  for (const LabelId l : store.node(id).labels) w.value(store.label_name(l));
  w.end_array();
  w.end_object();
}

}  // namespace

void export_apoc_json(const GraphStore& store, std::ostream& out) {
  for (NodeId id = 0; id < store.node_capacity(); ++id) {
    const NodeRecord& rec = store.node(id);
    if (rec.deleted) continue;
    JsonWriter w(out);
    w.begin_object();
    w.member("type", "node");
    w.member("id", std::to_string(id));
    w.key("labels");
    w.begin_array();
    for (const LabelId l : rec.labels) w.value(store.label_name(l));
    w.end_array();
    write_properties(w, store, rec.properties);
    w.end_object();
    out << '\n';
  }
  for (RelId id = 0; id < store.rel_capacity(); ++id) {
    const RelRecord& rec = store.rel(id);
    if (rec.deleted) continue;
    JsonWriter w(out);
    w.begin_object();
    w.member("type", "relationship");
    w.member("id", std::to_string(id));
    w.member("label", store.rel_type_name(rec.type));
    write_properties(w, store, rec.properties);
    write_endpoint(w, store, "start", rec.source);
    write_endpoint(w, store, "end", rec.target);
    w.end_object();
    out << '\n';
  }
}

void export_apoc_json_file(const GraphStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  export_apoc_json(store, out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

GraphStore import_apoc_json(std::istream& in) {
  GraphStore store;
  std::unordered_map<std::string, NodeId> node_ids;
  std::string line;
  std::size_t line_no = 0;
  // Relationships may reference nodes defined later in nonstandard dumps;
  // buffer them and resolve after all rows are read.
  struct PendingRel {
    std::string start;
    std::string end;
    std::string type;
    PropertyList props;
  };
  std::vector<PendingRel> pending;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue row;
    try {
      row = JsonValue::parse(line);
    } catch (const std::exception& e) {
      throw std::runtime_error("APOC import: line " + std::to_string(line_no) +
                               ": " + e.what());
    }
    const std::string& type = row.at("type").as_string();
    PropertyList props;
    if (row.contains("properties")) {
      for (const auto& [key, value] : row.at("properties").as_object()) {
        put_property(props, store.intern_key(key),
                     PropertyValue::from_json(value));
      }
    }
    if (type == "node") {
      std::vector<std::string> labels;
      if (row.contains("labels")) {
        for (const auto& l : row.at("labels").as_array()) {
          labels.push_back(l.as_string());
        }
      }
      const NodeId n = store.create_node(labels, std::move(props));
      const std::string& row_id = row.at("id").as_string();
      if (!node_ids.emplace(row_id, n).second) {
        throw std::runtime_error("APOC import: duplicate node id " + row_id);
      }
    } else if (type == "relationship") {
      pending.push_back(PendingRel{row.at("start").at("id").as_string(),
                                   row.at("end").at("id").as_string(),
                                   row.at("label").as_string(),
                                   std::move(props)});
    } else {
      throw std::runtime_error("APOC import: unknown row type '" + type +
                               "' at line " + std::to_string(line_no));
    }
  }

  for (auto& rel : pending) {
    const auto s = node_ids.find(rel.start);
    const auto e = node_ids.find(rel.end);
    if (s == node_ids.end() || e == node_ids.end()) {
      throw std::runtime_error("APOC import: relationship references unknown "
                               "node id " +
                               (s == node_ids.end() ? rel.start : rel.end));
    }
    store.create_relationship(s->second, e->second, rel.type,
                              std::move(rel.props));
  }
  return store;
}

GraphStore import_apoc_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return import_apoc_json(in);
}

}  // namespace adsynth::graphdb
