#include "graphdb/cypher.hpp"

#include <cctype>
#include <charconv>
#include <optional>

#include "util/strings.hpp"
#include "util/trace.hpp"

namespace adsynth::graphdb {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind : std::uint8_t {
  kIdent,    // bare word (keywords, variable names, labels, keys)
  kString,   // quoted string literal (unescaped)
  kNumber,   // numeric literal text
  kPunct,    // single punctuation char
  kArrow,    // ->
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  char punct = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = std::move(current_);
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw CypherError("Cypher parse error near byte " + std::to_string(pos_) +
                      ": " + why + " in statement: " + std::string(text_));
  }

 private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    if (pos_ >= text_.size()) {
      current_.kind = TokKind::kEnd;
      return;
    }
    const char c = text_[pos_];
    if (c == '\'' || c == '"') {
      const char quote = c;
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != quote) {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
          ++pos_;
          switch (text_[pos_]) {
            case 'n': out.push_back('\n'); break;
            case 't': out.push_back('\t'); break;
            default: out.push_back(text_[pos_]);
          }
        } else {
          out.push_back(text_[pos_]);
        }
        ++pos_;
      }
      if (pos_ >= text_.size()) fail("unterminated string literal");
      ++pos_;  // closing quote
      current_.kind = TokKind::kString;
      current_.text = std::move(out);
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokKind::kIdent;
      current_.text = std::string(text_.substr(start, pos_ - start));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      std::size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              text_[pos_] == '+' ||
              (text_[pos_] == '-' &&
               (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
        ++pos_;
      }
      current_.kind = TokKind::kNumber;
      current_.text = std::string(text_.substr(start, pos_ - start));
      return;
    }
    if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
      pos_ += 2;
      current_.kind = TokKind::kArrow;
      current_.text = "->";
      return;
    }
    current_.kind = TokKind::kPunct;
    current_.punct = c;
    current_.text = std::string(1, c);
    ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

struct NodePattern {
  std::string variable;
  std::vector<std::string> labels;
  std::vector<std::pair<std::string, PropertyValue>> properties;
};

struct RelPattern {
  std::string variable;  // bound name in traversal patterns ("r")
  std::string from_var;
  std::string to_var;
  std::string type;
  std::vector<std::pair<std::string, PropertyValue>> properties;
};

struct SetClause {
  std::string variable;
  std::string key;
  PropertyValue value;
};

enum class Verb : std::uint8_t {
  kCreateNode,
  kMergeNode,
  kMatchCreateRel,
  kMatchMergeRel,
  kMatchReturnNodes,
  kMatchReturnCount,
  kMatchSet,
  kMatchDeleteNode,          // MATCH (n:L {..}) [DETACH] DELETE n
  kMatchPatternReturnCount,  // MATCH (a)-[r:T]->(b) RETURN count(r)
  kMatchPatternDelete,       // MATCH (a)-[r:T]->(b) DELETE r
  kCreateIndex,
};

struct Statement {
  Verb verb = Verb::kCreateNode;
  std::vector<NodePattern> patterns;  // CREATE targets or MATCH patterns
  std::optional<RelPattern> rel;
  std::optional<SetClause> set_clause;
  std::string delete_var;  // kMatchDeleteNode: the bound node variable
  bool detach = false;     // kMatchDeleteNode: DETACH DELETE
  std::string index_label;
  std::string index_key;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lex_(text) {}

  Statement parse() {
    Statement stmt;
    const Token head = expect_ident();
    if (util::iequals(head.text, "CREATE")) {
      if (lex_.peek().kind == TokKind::kIdent &&
          util::iequals(lex_.peek().text, "INDEX")) {
        lex_.take();
        parse_create_index(stmt);
        return stmt;
      }
      stmt.verb = Verb::kCreateNode;
      stmt.patterns.push_back(parse_node_pattern());
      while (is_punct(',')) {
        lex_.take();
        stmt.patterns.push_back(parse_node_pattern());
      }
      expect_end();
      return stmt;
    }
    if (util::iequals(head.text, "MERGE")) {
      stmt.verb = Verb::kMergeNode;
      stmt.patterns.push_back(parse_node_pattern());
      expect_end();
      return stmt;
    }
    if (util::iequals(head.text, "MATCH")) {
      stmt.patterns.push_back(parse_node_pattern());
      if (is_punct('-')) {
        // Traversal pattern: (a)-[r:T {..}]->(b) followed by RETURN/DELETE.
        lex_.take();
        expect_punct('[');
        RelPattern rel;
        if (lex_.peek().kind == TokKind::kIdent) {
          rel.variable = lex_.take().text;
        }
        expect_punct(':');
        rel.type = expect_ident().text;
        if (is_punct('{')) rel.properties = parse_property_map();
        expect_punct(']');
        const Token arrow = lex_.take();
        if (arrow.kind != TokKind::kArrow) lex_.fail("expected ->");
        stmt.patterns.push_back(parse_node_pattern());
        rel.from_var = stmt.patterns[0].variable;
        rel.to_var = stmt.patterns[1].variable;
        stmt.rel = std::move(rel);
        const Token verb = expect_ident();
        if (util::iequals(verb.text, "RETURN")) {
          const Token what = lex_.take();
          if (what.kind != TokKind::kIdent ||
              !util::iequals(what.text, "count")) {
            lex_.fail("traversal MATCH supports RETURN count(...) only");
          }
          expect_punct('(');
          expect_ident();
          expect_punct(')');
          stmt.verb = Verb::kMatchPatternReturnCount;
        } else if (util::iequals(verb.text, "DELETE")) {
          const Token what = expect_ident();
          if (stmt.rel->variable.empty() || what.text != stmt.rel->variable) {
            lex_.fail("DELETE expects the bound relationship variable");
          }
          stmt.verb = Verb::kMatchPatternDelete;
        } else {
          lex_.fail("expected RETURN or DELETE after traversal MATCH");
        }
        expect_end();
        return stmt;
      }
      while (is_punct(',')) {
        lex_.take();
        stmt.patterns.push_back(parse_node_pattern());
      }
      const Token verb = expect_ident();
      if (util::iequals(verb.text, "CREATE") ||
          util::iequals(verb.text, "MERGE")) {
        stmt.verb = util::iequals(verb.text, "CREATE") ? Verb::kMatchCreateRel
                                                       : Verb::kMatchMergeRel;
        stmt.rel = parse_rel_pattern();
        expect_end();
        return stmt;
      }
      if (util::iequals(verb.text, "RETURN")) {
        const Token what = lex_.take();
        if (what.kind == TokKind::kIdent &&
            util::iequals(what.text, "count")) {
          expect_punct('(');
          expect_ident();  // variable
          expect_punct(')');
          stmt.verb = Verb::kMatchReturnCount;
        } else if (what.kind == TokKind::kIdent) {
          stmt.verb = Verb::kMatchReturnNodes;
        } else {
          lex_.fail("expected variable or count(...) after RETURN");
        }
        expect_end();
        return stmt;
      }
      if (util::iequals(verb.text, "SET")) {
        SetClause set;
        set.variable = expect_ident().text;
        expect_punct('.');
        set.key = expect_ident().text;
        expect_punct('=');
        set.value = parse_value();
        stmt.set_clause = std::move(set);
        stmt.verb = Verb::kMatchSet;
        expect_end();
        return stmt;
      }
      if (util::iequals(verb.text, "DETACH") ||
          util::iequals(verb.text, "DELETE")) {
        stmt.detach = util::iequals(verb.text, "DETACH");
        if (stmt.detach) {
          const Token del = expect_ident();
          if (!util::iequals(del.text, "DELETE")) {
            lex_.fail("expected DELETE after DETACH");
          }
        }
        stmt.delete_var = expect_ident().text;
        bool bound = false;
        for (const NodePattern& p : stmt.patterns) {
          bound = bound || p.variable == stmt.delete_var;
        }
        if (!bound) lex_.fail("DELETE expects a bound node variable");
        stmt.verb = Verb::kMatchDeleteNode;
        expect_end();
        return stmt;
      }
      lex_.fail("expected CREATE, MERGE, RETURN, SET or DELETE after MATCH");
    }
    lex_.fail("expected CREATE, MERGE or MATCH");
  }

 private:
  bool is_punct(char c) const {
    return lex_.peek().kind == TokKind::kPunct && lex_.peek().punct == c;
  }

  Token expect_ident() {
    Token t = lex_.take();
    if (t.kind != TokKind::kIdent) lex_.fail("expected identifier");
    return t;
  }

  void expect_punct(char c) {
    Token t = lex_.take();
    if (t.kind != TokKind::kPunct || t.punct != c) {
      lex_.fail(std::string("expected '") + c + "'");
    }
  }

  void expect_end() {
    // Allow a trailing semicolon.
    if (is_punct(';')) lex_.take();
    if (lex_.peek().kind != TokKind::kEnd) lex_.fail("trailing tokens");
  }

  void parse_create_index(Statement& stmt) {
    // CREATE INDEX ON :Label(key)
    const Token on = expect_ident();
    if (!util::iequals(on.text, "ON")) lex_.fail("expected ON");
    expect_punct(':');
    stmt.index_label = expect_ident().text;
    expect_punct('(');
    stmt.index_key = expect_ident().text;
    expect_punct(')');
    stmt.verb = Verb::kCreateIndex;
    expect_end();
  }

  NodePattern parse_node_pattern() {
    NodePattern node;
    expect_punct('(');
    if (lex_.peek().kind == TokKind::kIdent) {
      node.variable = lex_.take().text;
    }
    while (is_punct(':')) {
      lex_.take();
      node.labels.push_back(expect_ident().text);
    }
    if (is_punct('{')) node.properties = parse_property_map();
    expect_punct(')');
    return node;
  }

  RelPattern parse_rel_pattern() {
    // (a)-[:TYPE {props}]->(b)
    RelPattern rel;
    expect_punct('(');
    rel.from_var = expect_ident().text;
    expect_punct(')');
    expect_punct('-');
    expect_punct('[');
    if (lex_.peek().kind == TokKind::kIdent) lex_.take();  // rel variable
    expect_punct(':');
    rel.type = expect_ident().text;
    if (is_punct('{')) rel.properties = parse_property_map();
    expect_punct(']');
    const Token arrow = lex_.take();
    if (arrow.kind != TokKind::kArrow) lex_.fail("expected ->");
    expect_punct('(');
    rel.to_var = expect_ident().text;
    expect_punct(')');
    return rel;
  }

  std::vector<std::pair<std::string, PropertyValue>> parse_property_map() {
    std::vector<std::pair<std::string, PropertyValue>> props;
    expect_punct('{');
    if (is_punct('}')) {
      lex_.take();
      return props;
    }
    while (true) {
      Token key = lex_.take();
      if (key.kind != TokKind::kIdent && key.kind != TokKind::kString) {
        lex_.fail("expected property key");
      }
      expect_punct(':');
      props.emplace_back(key.text, parse_value());
      const Token sep = lex_.take();
      if (sep.kind == TokKind::kPunct && sep.punct == '}') break;
      if (sep.kind != TokKind::kPunct || sep.punct != ',') {
        lex_.fail("expected ',' or '}' in property map");
      }
    }
    return props;
  }

  PropertyValue parse_value() {
    const Token t = lex_.take();
    switch (t.kind) {
      case TokKind::kString: return PropertyValue(t.text);
      case TokKind::kNumber: {
        if (t.text.find_first_of(".eE") == std::string::npos) {
          std::int64_t i = 0;
          auto [p, ec] =
              std::from_chars(t.text.data(), t.text.data() + t.text.size(), i);
          if (ec == std::errc{} && p == t.text.data() + t.text.size()) {
            return PropertyValue(i);
          }
        }
        double d = 0.0;
        auto [p, ec] =
            std::from_chars(t.text.data(), t.text.data() + t.text.size(), d);
        if (ec != std::errc{} || p != t.text.data() + t.text.size()) {
          lex_.fail("bad numeric literal '" + t.text + "'");
        }
        return PropertyValue(d);
      }
      case TokKind::kIdent:
        if (util::iequals(t.text, "true")) return PropertyValue(true);
        if (util::iequals(t.text, "false")) return PropertyValue(false);
        if (util::iequals(t.text, "null")) return PropertyValue(nullptr);
        lex_.fail("unexpected identifier '" + t.text + "' as value");
      case TokKind::kPunct:
        if (t.punct == '[') {
          std::vector<std::string> list;
          if (is_punct(']')) {
            lex_.take();
            return PropertyValue(std::move(list));
          }
          while (true) {
            const Token item = lex_.take();
            if (item.kind != TokKind::kString) {
              lex_.fail("lists may only contain strings");
            }
            list.push_back(item.text);
            const Token sep = lex_.take();
            if (sep.kind == TokKind::kPunct && sep.punct == ']') break;
            if (sep.kind != TokKind::kPunct || sep.punct != ',') {
              lex_.fail("expected ',' or ']' in list");
            }
          }
          return PropertyValue(std::move(list));
        }
        [[fallthrough]];
      default: lex_.fail("expected a value");
    }
  }

  Lexer lex_;
};

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

PropertyList to_property_list(
    GraphStore& store,
    const std::vector<std::pair<std::string, PropertyValue>>& props) {
  PropertyList list;
  list.reserve(props.size());
  for (const auto& [key, value] : props) {
    put_property(list, store.intern_key(key), value);
  }
  return list;
}

std::vector<NodeId> match_pattern(GraphStore& store,
                                  const NodePattern& pattern) {
  if (pattern.labels.empty()) {
    throw CypherError("Cypher-lite requires a label on MATCH patterns");
  }
  // Anchor on the first (label, property) pair; refine with the rest.
  std::vector<NodeId> candidates;
  if (!pattern.properties.empty()) {
    candidates = store.find_nodes(pattern.labels[0],
                                  pattern.properties[0].first,
                                  pattern.properties[0].second);
  } else {
    candidates = store.nodes_with_label(pattern.labels[0]);
  }
  std::vector<NodeId> out;
  for (const NodeId n : candidates) {
    bool ok = !store.node(n).deleted;
    for (std::size_t li = 1; ok && li < pattern.labels.size(); ++li) {
      const auto label = store.find_label(pattern.labels[li]);
      ok = label.has_value() && store.node_has_label(n, *label);
    }
    for (std::size_t pi = ok && !pattern.properties.empty() ? 1 : 0;
         ok && pi < pattern.properties.size(); ++pi) {
      const PropertyValue* v =
          store.node_property(n, pattern.properties[pi].first);
      ok = v != nullptr && *v == pattern.properties[pi].second;
    }
    if (ok) out.push_back(n);
  }
  return out;
}

/// Enumerates relationships matching a traversal pattern
/// (left)-[:type {props}]->(right); calls fn(RelId) per hit.
template <typename Fn>
std::size_t for_each_pattern_match(GraphStore& store, const Statement& stmt,
                                   Fn&& fn) {
  const NodePattern& left = stmt.patterns[0];
  const NodePattern& right = stmt.patterns[1];
  const auto type = store.find_rel_type(stmt.rel->type);
  if (!type) return 0;

  auto right_matches = [&](NodeId n) {
    if (store.node(n).deleted) return false;
    for (const auto& lbl : right.labels) {
      const auto l = store.find_label(lbl);
      if (!l || !store.node_has_label(n, *l)) return false;
    }
    for (const auto& [key, value] : right.properties) {
      const PropertyValue* pv = store.node_property(n, key);
      if (pv == nullptr || !(*pv == value)) return false;
    }
    return true;
  };

  std::size_t hits = 0;
  for (const NodeId a : match_pattern(store, left)) {
    for (const RelId r : store.node(a).out_rels) {
      const RelRecord& rec = store.rel(r);
      if (rec.deleted || rec.type != *type) continue;
      bool rel_ok = true;
      for (const auto& [key, value] : stmt.rel->properties) {
        const auto key_id = store.find_key(key);
        const PropertyValue* pv =
            key_id ? get_property(rec.properties, *key_id) : nullptr;
        if (pv == nullptr || !(*pv == value)) {
          rel_ok = false;
          break;
        }
      }
      if (!rel_ok || !right_matches(rec.target)) continue;
      ++hits;
      fn(r);
    }
  }
  return hits;
}

NodeId match_single(GraphStore& store, const NodePattern& pattern) {
  const std::vector<NodeId> matches = match_pattern(store, pattern);
  if (matches.empty()) {
    throw CypherError("MATCH found no node for pattern (" + pattern.variable +
                      ":" + (pattern.labels.empty() ? "" : pattern.labels[0]) +
                      " ...)");
  }
  return matches.front();
}

/// Executes a parsed statement against the store.  Pure execution: commit
/// bookkeeping and savepoint handling live in CypherSession::run.
QueryResult execute(GraphStore& store, const Statement& stmt) {
  QueryResult result;

  switch (stmt.verb) {
    case Verb::kCreateNode: {
      for (const NodePattern& p : stmt.patterns) {
        const NodeId n =
            store.create_node(p.labels, to_property_list(store, p.properties));
        result.nodes.push_back(n);
        ++result.nodes_created;
        result.properties_set += p.properties.size();
      }
      break;
    }
    case Verb::kMergeNode: {
      const NodePattern& p = stmt.patterns.front();
      std::vector<NodeId> existing = match_pattern(store, p);
      if (!existing.empty()) {
        result.nodes.push_back(existing.front());
      } else {
        const NodeId n =
            store.create_node(p.labels, to_property_list(store, p.properties));
        result.nodes.push_back(n);
        ++result.nodes_created;
        result.properties_set += p.properties.size();
      }
      break;
    }
    case Verb::kMatchCreateRel:
    case Verb::kMatchMergeRel: {
      NodeId from = kNoNode;
      NodeId to = kNoNode;
      for (const NodePattern& p : stmt.patterns) {
        const NodeId n = match_single(store, p);
        if (p.variable == stmt.rel->from_var) from = n;
        if (p.variable == stmt.rel->to_var) to = n;
      }
      if (from == kNoNode || to == kNoNode) {
        throw CypherError("relationship endpoints not bound by MATCH");
      }
      if (stmt.verb == Verb::kMatchMergeRel) {
        const auto type = store.find_rel_type(stmt.rel->type);
        if (type) {
          for (const RelId r : store.node(from).out_rels) {
            const RelRecord& rec = store.rel(r);
            if (!rec.deleted && rec.target == to && rec.type == *type) {
              result.rels.push_back(r);
              return result;
            }
          }
        }
      }
      const RelId r = store.create_relationship(
          from, to, stmt.rel->type, to_property_list(store, stmt.rel->properties));
      result.rels.push_back(r);
      ++result.rels_created;
      break;
    }
    case Verb::kMatchReturnNodes: {
      result.nodes = match_pattern(store, stmt.patterns.front());
      result.count = static_cast<std::int64_t>(result.nodes.size());
      break;
    }
    case Verb::kMatchReturnCount: {
      result.count = static_cast<std::int64_t>(
          match_pattern(store, stmt.patterns.front()).size());
      break;
    }
    case Verb::kMatchSet: {
      const std::vector<NodeId> matches =
          match_pattern(store, stmt.patterns.front());
      for (const NodeId n : matches) {
        store.set_node_property(n, stmt.set_clause->key,
                                 stmt.set_clause->value);
        ++result.properties_set;
      }
      result.nodes = matches;
      break;
    }
    case Verb::kMatchPatternReturnCount: {
      result.count = static_cast<std::int64_t>(
          for_each_pattern_match(store, stmt, [](RelId) {}));
      break;
    }
    case Verb::kMatchDeleteNode: {
      const NodePattern* target = nullptr;
      for (const NodePattern& p : stmt.patterns) {
        if (p.variable == stmt.delete_var) target = &p;
      }
      if (target == nullptr) {
        throw CypherError("DELETE variable not bound by MATCH");
      }
      const std::vector<NodeId> doomed = match_pattern(store, *target);
      for (const NodeId n : doomed) {
        try {
          store.delete_node(n, stmt.detach);
        } catch (const std::logic_error& e) {
          // Mid-statement failure: the session's savepoint rolls back any
          // nodes already deleted by this statement.
          throw CypherError(std::string("cannot DELETE node with live "
                                        "relationships (use DETACH DELETE): ") +
                            e.what());
        }
        ++result.nodes_deleted;
      }
      break;
    }
    case Verb::kMatchPatternDelete: {
      std::vector<RelId> doomed;
      for_each_pattern_match(store, stmt,
                             [&](RelId r) { doomed.push_back(r); });
      for (const RelId r : doomed) store.delete_relationship(r);
      result.rels_deleted = doomed.size();
      break;
    }
    case Verb::kCreateIndex: {
      store.create_index(stmt.index_label, stmt.index_key);
      break;
    }
  }
  return result;
}

}  // namespace

QueryResult CypherSession::run(std::string_view statement) {
  ADSYNTH_SPAN("graphdb.statement");
  ADSYNTH_METRIC_COUNT("graphdb.statements", 1);
  // Parse the statement text from scratch (per-statement, like a driver
  // sending Cypher to the server).  Parse errors touch nothing.
  Statement stmt = Parser(statement).parse();

  if (stmt.verb == Verb::kCreateIndex) {
    // Schema statement: like Neo4j, it cannot share a transaction with
    // data statements, and it runs outside the undo machinery (an index,
    // like an interned token, survives rollbacks).
    if (in_transaction_) {
      throw CypherError(
          "CREATE INDEX cannot run inside an explicit transaction");
    }
    QueryResult result = execute(store_, stmt);
    ++statements_;
    commit_record(result, 1);
    return result;
  }

  // Statement savepoint: auto-commit statements are atomic, and a failed
  // statement inside an explicit transaction rolls back to the statement
  // boundary before rethrowing (the transaction stays open) — matching
  // Neo4j driver behaviour.
  store_.begin_undo_scope();
  QueryResult result;
  try {
    result = execute(store_, stmt);
  } catch (...) {
    store_.abort_scope();
    ++statement_rollbacks_;
    ADSYNTH_METRIC_COUNT("graphdb.statement_rollbacks", 1);
    throw;
  }
  ++statements_;
  if (in_transaction_) {
    store_.commit_scope();  // fold the savepoint into the transaction scope
    ++pending_.statements;
    pending_.nodes_created += static_cast<std::uint32_t>(result.nodes_created);
    pending_.rels_created += static_cast<std::uint32_t>(result.rels_created);
    pending_.nodes_deleted += static_cast<std::uint32_t>(result.nodes_deleted);
    pending_.rels_deleted += static_cast<std::uint32_t>(result.rels_deleted);
    pending_.properties_set +=
        static_cast<std::uint32_t>(result.properties_set);
  } else {
    store_.commit_scope();
    commit_record(result, 1);  // auto-commit: one record per statement
  }
  return result;
}

void CypherSession::commit_record(const QueryResult& result,
                                  std::size_t statement_count) {
  CommitRecord record;
  record.sequence = ++transactions_;
  record.statements = static_cast<std::uint32_t>(statement_count);
  record.nodes_created = static_cast<std::uint32_t>(result.nodes_created);
  record.rels_created = static_cast<std::uint32_t>(result.rels_created);
  record.nodes_deleted = static_cast<std::uint32_t>(result.nodes_deleted);
  record.rels_deleted = static_cast<std::uint32_t>(result.rels_deleted);
  record.properties_set = static_cast<std::uint32_t>(result.properties_set);
  push_record(record);
}

void CypherSession::push_record(CommitRecord record) {
  if (ring_.size() < kJournalCapacity) {
    ring_.push_back(record);
    return;
  }
  // Ring is full: overwrite the oldest slot.  Capacity was reserved up
  // front, so journal memory is flat from here on out.
  ring_[ring_head_] = record;
  ring_head_ = (ring_head_ + 1) % kJournalCapacity;
}

std::vector<CommitRecord> CypherSession::journal() const {
  std::vector<CommitRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

void CypherSession::begin_transaction() {
  if (in_transaction_) {
    throw std::logic_error("CypherSession: transaction already open");
  }
  store_.begin_undo_scope();
  in_transaction_ = true;
  pending_ = CommitRecord{};
}

void CypherSession::commit() {
  if (!in_transaction_) {
    throw std::logic_error("CypherSession: no open transaction");
  }
  store_.commit_scope();
  in_transaction_ = false;
  pending_.sequence = ++transactions_;
  push_record(pending_);
  pending_ = CommitRecord{};
}

void CypherSession::rollback() {
  if (!in_transaction_) {
    throw std::logic_error("CypherSession: no open transaction");
  }
  store_.abort_scope();
  in_transaction_ = false;
  ++rollbacks_;
  pending_ = CommitRecord{};
}

}  // namespace adsynth::graphdb
