#include "graphdb/cypher.hpp"

#include <cctype>
#include <utility>

#include "graphdb/cypher_parser.hpp"
#include "util/trace.hpp"

namespace adsynth::graphdb {

namespace {

/// Plan-cache key: statement text with whitespace runs collapsed to one
/// space and the trailing semicolon stripped, so trivially reformatted
/// statements share a plan.  Quote-aware — whitespace inside string
/// literals is significant (collapsing it would alias distinct statements
/// onto one cache entry).
std::string normalize_statement(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  char quote = 0;
  bool pending_space = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quote != 0) {
      out.push_back(c);
      if (c == '\\' && i + 1 < text.size()) {
        out.push_back(text[++i]);
        continue;
      }
      if (c == quote) quote = 0;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    if (c == '\'' || c == '"') quote = c;
    out.push_back(c);
  }
  // Trailing ';' (and the space a `... ;` spelling leaves before it) is
  // not part of the statement identity.
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

}  // namespace

QueryResult CypherSession::run(std::string_view statement) {
  return run(statement, Params{});
}

QueryResult CypherSession::run(std::string_view statement,
                               const Params& params) {
  ADSYNTH_SPAN("graphdb.statement");
  ADSYNTH_METRIC_COUNT("graphdb.statements", 1);
  const PreparedStatement prepared = prepare_cached(statement);
  return run_prepared(*prepared, params);
}

PreparedStatement CypherSession::prepare(std::string_view statement) {
  return prepare_cached(statement);
}

QueryResult CypherSession::execute(const PreparedStatement& statement,
                                   const Params& params) {
  if (!statement) {
    throw CypherError("execute() called with a null PreparedStatement");
  }
  ADSYNTH_SPAN("graphdb.statement");
  ADSYNTH_METRIC_COUNT("graphdb.statements", 1);
  if (statement->plan.schema_version == store_.schema_version()) {
    return run_prepared(*statement, params);
  }
  // An index was created since this statement was planned; re-plan from
  // the AST (and refresh the cache's copy, if the key is still resident).
  PreparedQuery fresh;
  fresh.normalized = statement->normalized;
  fresh.plan = cypher::plan(statement->plan.ast, store_);
  const auto shared = std::make_shared<const PreparedQuery>(std::move(fresh));
  const auto it = plan_cache_.find(std::string_view(shared->normalized));
  if (it != plan_cache_.end()) it->second->stmt = shared;
  return run_prepared(*shared, params);
}

PreparedStatement CypherSession::prepare_cached(std::string_view statement) {
  std::string key = normalize_statement(statement);
  const auto it = plan_cache_.find(std::string_view(key));
  if (it != plan_cache_.end()) {
    ++plan_cache_hits_;
    ADSYNTH_METRIC_COUNT("graphdb.plan_cache.hits", 1);
    plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
    PreparedStatement stmt = it->second->stmt;
    if (stmt->plan.schema_version != store_.schema_version()) {
      PreparedQuery fresh;
      fresh.normalized = stmt->normalized;
      fresh.plan = cypher::plan(stmt->plan.ast, store_);
      stmt = std::make_shared<const PreparedQuery>(std::move(fresh));
      it->second->stmt = stmt;
    }
    return stmt;
  }

  ++plan_cache_misses_;
  ADSYNTH_METRIC_COUNT("graphdb.plan_cache.misses", 1);
  // Parse the ORIGINAL text: error byte offsets must refer to what the
  // caller wrote, not the normalized form.  Parse/plan failures propagate
  // before anything is cached.
  PreparedQuery fresh;
  {
    ADSYNTH_SPAN("graphdb.query.plan");
    cypher::Query ast = cypher::parse(statement);
    fresh.plan = cypher::plan(std::move(ast), store_);
  }
  fresh.normalized = std::move(key);
  const auto shared = std::make_shared<const PreparedQuery>(std::move(fresh));
  plan_lru_.push_front(CacheEntry{shared->normalized, shared});
  plan_cache_.emplace(std::string_view(plan_lru_.front().key),
                      plan_lru_.begin());
  if (plan_lru_.size() > kPlanCacheCapacity) {
    plan_cache_.erase(std::string_view(plan_lru_.back().key));
    plan_lru_.pop_back();
    ++plan_cache_evictions_;
    ADSYNTH_METRIC_COUNT("graphdb.plan_cache.evictions", 1);
  }
  return shared;
}

QueryResult CypherSession::execute_read(const SnapshotView& view,
                                        const PreparedStatement& statement,
                                        const Params& params) {
  if (!statement) {
    throw CypherError("execute_read() called with a null PreparedStatement");
  }
  // Deliberately unspanned: this is the per-call hot path of the reader
  // fan-out, and benches measure it in the tens-of-ns regime.
  return cypher::execute_read_query(view, statement->plan, params);
}

QueryResult CypherSession::execute_read(const Snapshot& snapshot,
                                        const PreparedStatement& statement,
                                        const Params& params) {
  if (!snapshot) {
    throw CypherError("execute_read() called with a null Snapshot");
  }
  return execute_read(*snapshot, statement, params);
}

QueryResult CypherSession::run_prepared(const PreparedQuery& prepared,
                                        const Params& params) {
  const cypher::Query& ast = prepared.plan.ast;
  if (!ast.explain && ast.verb == cypher::Verb::kCreateIndex) {
    // Schema statement: like Neo4j, it cannot share a transaction with
    // data statements, and it runs outside the undo machinery (an index,
    // like an interned token, survives rollbacks).
    if (in_transaction_) {
      throw CypherError(
          "CREATE INDEX cannot run inside an explicit transaction");
    }
    QueryResult result = cypher::execute_query(store_, prepared.plan, params);
    ++statements_;
    commit_record(result, 1);
    return result;
  }

  // Statement savepoint: auto-commit statements are atomic, and a failed
  // statement inside an explicit transaction rolls back to the statement
  // boundary before rethrowing (the transaction stays open) — matching
  // Neo4j driver behaviour.
  store_.begin_undo_scope();
  QueryResult result;
  try {
    result = cypher::execute_query(store_, prepared.plan, params);
  } catch (...) {
    store_.abort_scope();
    ++statement_rollbacks_;
    ADSYNTH_METRIC_COUNT("graphdb.statement_rollbacks", 1);
    throw;
  }
  ++statements_;
  if (in_transaction_) {
    store_.commit_scope();  // fold the savepoint into the transaction scope
    ++pending_.statements;
    pending_.nodes_created += static_cast<std::uint32_t>(result.nodes_created);
    pending_.rels_created += static_cast<std::uint32_t>(result.rels_created);
    pending_.nodes_deleted += static_cast<std::uint32_t>(result.nodes_deleted);
    pending_.rels_deleted += static_cast<std::uint32_t>(result.rels_deleted);
    pending_.properties_set +=
        static_cast<std::uint32_t>(result.properties_set);
  } else {
    store_.commit_scope();
    commit_record(result, 1);  // auto-commit: one record per statement
  }
  return result;
}

void CypherSession::commit_record(const QueryResult& result,
                                  std::size_t statement_count) {
  CommitRecord record;
  record.sequence = ++transactions_;
  record.statements = static_cast<std::uint32_t>(statement_count);
  record.nodes_created = static_cast<std::uint32_t>(result.nodes_created);
  record.rels_created = static_cast<std::uint32_t>(result.rels_created);
  record.nodes_deleted = static_cast<std::uint32_t>(result.nodes_deleted);
  record.rels_deleted = static_cast<std::uint32_t>(result.rels_deleted);
  record.properties_set = static_cast<std::uint32_t>(result.properties_set);
  push_record(record);
  maybe_auto_checkpoint();
}

void CypherSession::push_record(CommitRecord record) {
  if (ring_.size() < kJournalCapacity) {
    ring_.push_back(record);
    return;
  }
  // Ring is full: overwrite the oldest slot.  Capacity was reserved up
  // front, so journal memory is flat from here on out.
  ring_[ring_head_] = record;
  ring_head_ = (ring_head_ + 1) % kJournalCapacity;
}

std::vector<CommitRecord> CypherSession::journal() const {
  std::vector<CommitRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

void CypherSession::begin_transaction() {
  if (in_transaction_) {
    throw std::logic_error("CypherSession: transaction already open");
  }
  store_.begin_undo_scope();
  in_transaction_ = true;
  pending_ = CommitRecord{};
}

void CypherSession::commit() {
  if (!in_transaction_) {
    throw std::logic_error("CypherSession: no open transaction");
  }
  store_.commit_scope();
  in_transaction_ = false;
  pending_.sequence = ++transactions_;
  push_record(pending_);
  pending_ = CommitRecord{};
  maybe_auto_checkpoint();
}

void CypherSession::checkpoint() {
  if (in_transaction_) {
    throw std::logic_error(
        "CypherSession: checkpoint inside an open transaction");
  }
  if (!checkpoint_handler_) {
    throw std::logic_error("CypherSession: no checkpoint handler installed");
  }
  checkpoint_handler_();
  ++checkpoints_;
  ADSYNTH_METRIC_COUNT("graphdb.session.checkpoints", 1);
}

void CypherSession::maybe_auto_checkpoint() {
  // Commit boundaries only — commit()/commit_record() run after the undo
  // scope closed, so the handler sees a quiescent store.
  if (auto_checkpoint_every_ == 0 || !checkpoint_handler_) return;
  if (transactions_ % auto_checkpoint_every_ != 0) return;
  checkpoint();
}

void CypherSession::rollback() {
  if (!in_transaction_) {
    throw std::logic_error("CypherSession: no open transaction");
  }
  store_.abort_scope();
  in_transaction_ = false;
  ++rollbacks_;
  pending_ = CommitRecord{};
}

}  // namespace adsynth::graphdb
