#include "graphdb/cypher_planner.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

namespace adsynth::graphdb::cypher {

namespace {

struct Binding {
  bool is_rel = false;
  bool var_length = false;
};

using BindingMap = std::map<std::string, Binding, std::less<>>;

BindingMap collect_bindings(const Query& q) {
  BindingMap out;
  for (const PathPattern& path : q.paths) {
    for (const NodePat& node : path.nodes) {
      if (!node.var.empty()) out[node.var] = Binding{false, false};
    }
    for (const RelPat& rel : path.rels) {
      if (!rel.var.empty()) out[rel.var] = Binding{true, rel.var_length};
    }
  }
  return out;
}

/// Anchor patterns must carry a label (that is what the scan enumerates);
/// non-anchor endpoints of a traversal may be bare filters, as before.
void require_anchor_label(const NodePat& node) {
  if (node.labels.empty()) {
    throw CypherError("Cypher-lite requires a label on MATCH patterns");
  }
}

/// Every single-node comma pattern is its own anchor.
void require_labels(const Query& q) {
  for (const PathPattern& path : q.paths) {
    for (const NodePat& node : path.nodes) require_anchor_label(node);
  }
}

void require_simple_paths(const Query& q, const char* what) {
  for (const PathPattern& path : q.paths) {
    if (!path.rels.empty()) {
      throw CypherError(std::string(what) +
                        " supports simple node patterns only");
    }
  }
}

const Binding* find_binding(const BindingMap& bindings, std::string_view var) {
  const auto it = bindings.find(var);
  return it == bindings.end() ? nullptr : &it->second;
}

void validate_where(const Query& q, const BindingMap& bindings) {
  for (const Predicate& pred : q.where) {
    const Binding* b = find_binding(bindings, pred.var);
    if (b == nullptr) {
      throw CypherError("WHERE references unbound variable " + pred.var);
    }
    if (b->is_rel && b->var_length) {
      throw CypherError(
          "cannot filter properties of a variable-length relationship " +
          pred.var);
    }
  }
}

void validate_returns(const Query& q, const BindingMap& bindings) {
  bool any_count = false;
  bool any_plain = false;
  for (const ReturnItem& item : q.returns) {
    const Binding* b = find_binding(bindings, item.var);
    if (b == nullptr) {
      throw CypherError("RETURN references unbound variable " + item.var);
    }
    switch (item.kind) {
      case ReturnItem::Kind::kCount:
        any_count = true;
        break;
      case ReturnItem::Kind::kVar:
        any_plain = true;
        if (b->is_rel) {
          throw CypherError("RETURN of relationship variables is not "
                            "supported; project " +
                            item.var + ".<key> or count(" + item.var + ")");
        }
        break;
      case ReturnItem::Kind::kProperty:
        any_plain = true;
        if (b->is_rel && b->var_length) {
          throw CypherError("cannot project a property of a variable-length "
                            "relationship " +
                            item.var);
        }
        break;
    }
  }
  if (any_count && any_plain) {
    throw CypherError("cannot mix count(...) with non-aggregated RETURN "
                      "items");
  }
}

/// Equality constraints usable as index-seek keys for one node pattern:
/// inline `{key: value}` properties plus `WHERE var.key = value` conjuncts.
std::vector<std::pair<std::string, ValueExpr>> eq_constraints(
    const NodePat& node, const Query& q) {
  std::vector<std::pair<std::string, ValueExpr>> out = node.props;
  for (const Predicate& pred : q.where) {
    if (pred.op == CmpOp::kEq && !node.var.empty() && pred.var == node.var) {
      out.emplace_back(pred.key, pred.value);
    }
  }
  return out;
}

/// Chooses the cheapest access path for `node`.  Index seeks are costed at
/// entries / distinct-values (average bucket size); label scans at the
/// bucket size of the node's smallest label.
ScanChoice best_scan(const NodePat& node, const Query& q,
                     const GraphStore& store) {
  ScanChoice scan;
  scan.label = node.labels.front();
  scan.est_rows =
      static_cast<double>(store.label_cardinality(node.labels.front()));
  for (const std::string& label : node.labels) {
    const double card = static_cast<double>(store.label_cardinality(label));
    if (card < scan.est_rows) {
      scan.est_rows = card;
      scan.label = label;
    }
  }
  for (const std::string& label : node.labels) {
    for (const auto& [key, value] : eq_constraints(node, q)) {
      const auto stats = store.index_stats(label, key);
      if (!stats) continue;
      const double est =
          stats->buckets == 0
              ? 0.0
              : static_cast<double>(stats->entries) /
                    static_cast<double>(stats->buckets);
      // Prefer the seek on a cost tie: it filters while it scans.
      if (scan.kind == ScanKind::kLabelScan ? est <= scan.est_rows
                                            : est < scan.est_rows) {
        scan.kind = ScanKind::kIndexSeek;
        scan.label = label;
        scan.key = key;
        scan.value = value;
        scan.est_rows = est;
      }
    }
  }
  return scan;
}

std::string render_value(const ValueExpr& v) {
  if (v.is_param()) return "$" + v.param;
  if (v.literal.is_string()) return "'" + v.literal.as_string() + "'";
  return v.literal.index_key();
}

std::string render_rows(double est) {
  return std::to_string(static_cast<long long>(est + 0.5));
}

std::string render_scan(const ScanChoice& scan) {
  if (scan.kind == ScanKind::kIndexSeek) {
    return "IndexSeek :" + scan.label + "(" + scan.key + " = " +
           render_value(scan.value) + ") ~rows=" + render_rows(scan.est_rows);
  }
  return "LabelScan :" + scan.label + " ~rows=" + render_rows(scan.est_rows);
}

std::string render_rel(const RelPat& rel) {
  std::string out = "-[";
  if (!rel.var.empty()) out += rel.var;
  out += ":" + rel.type;
  if (rel.var_length) {
    out += "*" + std::to_string(rel.min_hops) + "..";
    if (rel.max_hops != RelPat::kUnboundedHops) {
      out += std::to_string(rel.max_hops);
    }
  }
  out += "]->";
  return out;
}

const char* cmp_text(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "<>";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

/// Renders the plan, one operator per line, anchor first.
std::string render_plan(const PlannedQuery& plan) {
  const Query& q = plan.ast;
  std::string out;
  const auto line = [&out](const std::string& s) { out += s + "\n"; };
  switch (q.verb) {
    case Verb::kCreateNodes:
      line("CreateNodes x" + std::to_string(q.create_nodes.size()));
      break;
    case Verb::kMergeNode:
      line(render_scan(plan.scan));
      line("MergeNode :" + q.create_nodes.front().labels.front());
      break;
    case Verb::kCreateIndex:
      line("CreateIndex :" + q.index_label + "(" + q.index_key + ")");
      break;
    case Verb::kMatchCreateRel:
    case Verb::kMatchMergeRel:
      line(render_scan(plan.scan));
      line((q.verb == Verb::kMatchCreateRel ? "CreateRel " : "MergeRel ") +
           render_rel(*q.create_rel));
      break;
    case Verb::kMatchSet:
      line(render_scan(plan.scan));
      line("SetProperty " + q.set_item->var + "." + q.set_item->key);
      break;
    case Verb::kMatchDeleteNodes:
      line(render_scan(plan.scan));
      line(std::string(q.detach ? "DetachDeleteNodes " : "DeleteNodes ") +
           q.delete_var);
      break;
    case Verb::kMatchRead:
    case Verb::kMatchDeleteRels: {
      const PathPattern& path = q.paths.front();
      line(render_scan(plan.scan) +
           (plan.anchor_right && !path.rels.empty()
                ? " (anchor=rightmost, expand backwards)"
                : ""));
      for (std::size_t i = 0; i < path.rels.size(); ++i) {
        // Render hops in execution order.
        const std::size_t hop =
            plan.anchor_right ? path.rels.size() - 1 - i : i;
        const RelPat& rel = path.rels[hop];
        if (rel.var_length) {
          line("ExpandVarLength " + render_rel(rel) +
               " (BFS, shortest-distance semantics)");
        } else {
          line("Expand " + render_rel(rel));
        }
      }
      for (const Predicate& pred : q.where) {
        line("Filter " + pred.var + "." + pred.key + " " +
             cmp_text(pred.op) + " " + render_value(pred.value));
      }
      if (q.verb == Verb::kMatchDeleteRels) {
        line("DeleteRels " + q.delete_var);
      } else {
        std::string proj = "Project ";
        for (std::size_t i = 0; i < q.returns.size(); ++i) {
          if (i != 0) proj += ", ";
          proj += q.returns[i].display();
        }
        line(proj);
        if (q.limit) line("Limit " + render_value(*q.limit));
      }
      break;
    }
  }
  out += "[schema v" + std::to_string(plan.schema_version) + "]";
  return out;
}

}  // namespace

PlannedQuery plan(Query ast, const GraphStore& store) {
  PlannedQuery plan;
  plan.schema_version = store.schema_version();

  const BindingMap bindings = collect_bindings(ast);
  switch (ast.verb) {
    case Verb::kCreateNodes:
    case Verb::kCreateIndex:
      break;
    case Verb::kMergeNode:
      if (ast.create_nodes.front().labels.empty()) {
        throw CypherError("Cypher-lite requires a label on MATCH patterns");
      }
      plan.scan = best_scan(ast.create_nodes.front(), ast, store);
      break;
    case Verb::kMatchCreateRel:
    case Verb::kMatchMergeRel: {
      require_labels(ast);
      require_simple_paths(ast, "MATCH ... CREATE/MERGE");
      if (!ast.where.empty()) {
        throw CypherError("WHERE is not supported with CREATE/MERGE");
      }
      if (find_binding(bindings, ast.rel_from) == nullptr ||
          find_binding(bindings, ast.rel_to) == nullptr) {
        throw CypherError("relationship endpoints not bound by MATCH");
      }
      plan.scan = best_scan(ast.paths.front().nodes.front(), ast, store);
      break;
    }
    case Verb::kMatchSet:
      require_labels(ast);
      if (!ast.where.empty()) {
        throw CypherError("WHERE is not supported with SET");
      }
      plan.scan = best_scan(ast.paths.front().nodes.front(), ast, store);
      break;
    case Verb::kMatchDeleteNodes:
      require_labels(ast);
      require_simple_paths(ast, "DELETE of a node variable");
      if (!ast.where.empty()) {
        throw CypherError("WHERE is not supported with DELETE of a node "
                          "variable");
      }
      plan.scan = best_scan(ast.paths.front().nodes.front(), ast, store);
      break;
    case Verb::kMatchRead:
    case Verb::kMatchDeleteRels: {
      require_anchor_label(ast.paths.front().nodes.front());
      if (ast.paths.size() != 1) {
        throw CypherError("cartesian-product MATCH (multiple comma patterns) "
                          "is not supported with RETURN or DELETE of a "
                          "relationship");
      }
      // Repeated variables would imply join semantics the row expander
      // does not implement.
      std::map<std::string, int, std::less<>> seen;
      for (const NodePat& node : ast.paths.front().nodes) {
        if (!node.var.empty() && ++seen[node.var] > 1) {
          throw CypherError("duplicate variable " + node.var +
                            " in MATCH pattern");
        }
      }
      for (const RelPat& rel : ast.paths.front().rels) {
        if (!rel.var.empty() && ++seen[rel.var] > 1) {
          throw CypherError("duplicate variable " + rel.var +
                            " in MATCH pattern");
        }
      }
      validate_where(ast, bindings);
      if (ast.verb == Verb::kMatchRead) {
        validate_returns(ast, bindings);
      }
      // Anchor on whichever end of the path is cheaper to enumerate.
      const PathPattern& path = ast.paths.front();
      const ScanChoice left = best_scan(path.nodes.front(), ast, store);
      if (!path.rels.empty() && !path.nodes.back().labels.empty()) {
        const ScanChoice right = best_scan(path.nodes.back(), ast, store);
        if (right.est_rows < left.est_rows) {
          plan.anchor_right = true;
          plan.scan = right;
          break;
        }
      }
      plan.scan = left;
      break;
    }
  }

  plan.ast = std::move(ast);
  plan.explain_text = render_plan(plan);
  return plan;
}

}  // namespace adsynth::graphdb::cypher
