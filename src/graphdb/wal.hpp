// Durable write-ahead log for GraphStore — the PR 2 in-memory CommitRecord
// ring generalized to a file (ROADMAP item 4).
//
// File layout:
//
//   header   := magic "ADWL" (u32 LE) | format version (u32)
//             | checkpoint id (u64)   | crc32 of the preceding 16 bytes (u32)
//   record   := payload length (u32)  | crc32 of payload (u32) | payload
//   payload  := sequence (u64) | op count (u32) | op*
//   op       := kind (u8) | kind-specific fields (see OpKind)
//
// One record is one committed transaction (or one unscoped mutation, or one
// eagerly-flushed token interning).  Records carry a dense sequence number
// starting at 1 after every checkpoint; the header's checkpoint id ties the
// log to the snapshot it extends — a WAL whose id differs from the loaded
// snapshot's is stale (it predates the checkpoint that wrote the snapshot)
// and is ignored wholesale on recovery.
//
// Torn-tail policy: replay stops at the first record whose length runs past
// the file, whose CRC mismatches, or whose sequence breaks the dense chain,
// and reports the byte offset of the last valid boundary; the recovery
// driver truncates there and serving resumes.  Corruption *before* the tail
// cannot be distinguished from a torn write by construction (each record is
// independently guarded), so the same truncation applies — everything after
// the first bad record is discarded.
//
// WalRecorder is the WalSink the store's mutation hooks feed (see
// store.hpp): token interning flushes its own record immediately (interning
// survives rollback), data ops buffer in memory and flush as one record at
// the outermost commit, scope aborts truncate the buffer back to the
// matching mark.  Single-writer, like the store itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graphdb/store.hpp"
#include "util/binio.hpp"

namespace adsynth::graphdb::wal {

inline constexpr std::uint32_t kWalMagic = 0x4C574441U;  // "ADWL" little-endian
inline constexpr std::uint32_t kWalFormatVersion = 1;
/// magic + version + checkpoint id + header crc.
inline constexpr std::uint64_t kWalHeaderBytes = 4 + 4 + 8 + 4;

/// Forward logical operations, mirroring the WalSink hooks.
enum class OpKind : std::uint8_t {
  kInternLabel = 1,    // str name
  kInternRelType = 2,  // str name
  kInternKey = 3,      // str name
  kCreateNode = 4,     // u32 label count, label ids, props
  kCreateRel = 5,      // u32 source, u32 target, u32 type, props
  kSetProperty = 6,    // u32 node, u32 key, value
  kDeleteRel = 7,      // u32 rel
  kDeleteNode = 8,     // u32 node
  kCreateIndex = 9,    // u32 label, u32 key
};

/// Writes the 16-byte header of a fresh (empty) WAL for `checkpoint_id`,
/// truncating whatever was there.
void reset_wal(const std::string& path, std::uint64_t checkpoint_id);

/// Reads and validates a WAL header.  Returns false (and leaves
/// `checkpoint_id` untouched) when the file is missing, shorter than a
/// header, or the magic/version/CRC do not check out — callers treat all of
/// those as "no usable log".
bool read_wal_header(const std::string& path, std::uint64_t& checkpoint_id);

/// Outcome of replay_wal(): how much of the log applied and where the valid
/// prefix ends.
struct ReplayResult {
  std::uint64_t records = 0;        // records applied
  std::uint64_t ops = 0;            // ops applied across those records
  std::uint64_t valid_bytes = 0;    // offset of the last valid boundary
  std::uint64_t next_sequence = 1;  // sequence the next append must carry
  bool truncated_tail = false;      // a torn/corrupt tail was dropped
  std::string tail_reason;          // empty when the log was clean
};

/// Replays every valid record of `path` onto `store` (which must be in the
/// state the log's checkpoint snapshot captured — the caller checks the
/// checkpoint-id linkage via read_wal_header first).  Multi-op records apply
/// atomically: a record that fails to decode or apply is rolled back and
/// treated as the start of the torn tail.  Never throws on bad bytes; throws
/// util::BinIoError only for real file-IO failures.
ReplayResult replay_wal(const std::string& path, GraphStore& store);

/// File-backed WalSink.  Construct over a file positioned at the append
/// boundary (fresh from reset_wal, or an existing log after replay_wal +
/// truncation) and attach to the store.  Each flushed record is fflush()ed
/// so a process crash loses at most the OS-buffered suffix — which is
/// exactly what the torn-tail policy recovers from.
class WalRecorder final : public WalSink {
 public:
  WalRecorder(util::CheckedFile file, std::uint64_t next_sequence);

  void wal_intern_label(std::string_view name) override;
  void wal_intern_rel_type(std::string_view name) override;
  void wal_intern_key(std::string_view name) override;
  void wal_create_node(const std::vector<LabelId>& labels,
                       const PropertyList& properties) override;
  void wal_create_rel(NodeId source, NodeId target, RelTypeId type,
                      const PropertyList& properties) override;
  void wal_set_property(NodeId node, PropertyKeyId key,
                        const PropertyValue& value) override;
  void wal_delete_rel(RelId rel) override;
  void wal_delete_node(NodeId node) override;
  void wal_create_index(LabelId label, PropertyKeyId key) override;
  void wal_begin_scope() override;
  void wal_commit_scope() override;
  void wal_abort_scope() override;

  std::uint64_t records_appended() const { return appended_; }
  std::uint64_t next_sequence() const { return sequence_; }
  std::uint64_t buffered_ops() const { return buffered_ops_; }
  /// Flushes the stdio buffer to the OS (record flushes already do this;
  /// exposed for explicit sync points).
  void sync() { file_.flush(); }

 private:
  /// Appends one framed record holding `payload_ops` encoded ops.
  void append_record(std::string_view encoded, std::uint32_t op_count);
  /// Routes one encoded op: flush immediately at depth 0, buffer otherwise.
  void finish_op();

  util::CheckedFile file_;
  util::ByteWriter ops_;  // encoded ops of the open transaction
  std::uint32_t buffered_ops_ = 0;
  struct Mark {
    std::size_t bytes;
    std::uint32_t ops;
  };
  std::vector<Mark> marks_;  // one per open scope
  std::uint64_t sequence_ = 1;
  std::uint64_t appended_ = 0;
  std::size_t op_start_ = 0;  // buffer offset where the in-flight op began
};

/// Encodes a PropertyValue / PropertyList with the WAL's tagged encoding
/// (shared with the snapshot format in graphdb/persist.cpp).
void encode_value(util::ByteWriter& out, const PropertyValue& value);
PropertyValue decode_value(util::ByteReader& in);
void encode_properties(util::ByteWriter& out, const PropertyList& properties);
PropertyList decode_properties(util::ByteReader& in);

}  // namespace adsynth::graphdb::wal
