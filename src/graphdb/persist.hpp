// Durable binary snapshots + recovery orchestration for GraphStore
// (ROADMAP item 4; DESIGN.md §3i).
//
// Snapshot file layout ("ADSG" format, version 1):
//
//   header        := magic "ADSG" (u32 LE) | format version (u32)
//                  | section count (u32)   | crc32 of the preceding 12 B (u32)
//   section table := section count * { id (u32) | offset (u64)
//                                    | length (u64) | crc32 (u32) }
//   sections      := concatenated payloads, each crc-guarded independently
//
// Sections (ids stable across versions; unknown ids are a loud error):
//   1 meta          epoch, checkpoint id, schema version, record/tombstone
//                   counts, token/index counts — cross-checked on load
//   2 tokens        label / relationship-type / property-key name tables
//   3 nodes         per-record: tombstone flag, version stamp, label ids,
//                   properties (property columns, tag-encoded)
//   4 rels          per-record: tombstone flag, version stamp, endpoints,
//                   type, properties
//   5 adjacency     CSR: out/in offset arrays + flat relationship ids
//   6 label_buckets creation-ordered node ids per label
//   7 indexes       per property index: (label, key), entry/stale counters,
//                   buckets sorted by value key (deterministic bytes)
//
// Save serializes the raw representation verbatim (version stamps included),
// so save → load → fingerprint() is bit-identical; load rebuilds the interner
// hash maps, verifies every section CRC and the meta cross-counts, and runs
// check_invariants() before handing the store back.  Any mismatch throws
// PersistError naming the offending section — corrupt snapshots fail loudly,
// they never half-load (torn-tail tolerance is the WAL's job, not the
// snapshot's).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "graphdb/store.hpp"
#include "graphdb/wal.hpp"

namespace adsynth::graphdb::persist {

inline constexpr std::uint32_t kSnapshotMagic = 0x47534441U;  // "ADSG" LE
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Thrown on any snapshot-format violation; `section()` names the part of
/// the file that failed ("header", "section-table", "meta", "tokens",
/// "nodes", "rels", "adjacency", "label_buckets", "indexes", "invariants").
class PersistError : public std::runtime_error {
 public:
  PersistError(std::string section, const std::string& what)
      : std::runtime_error("persist [" + section + "]: " + what),
        section_(std::move(section)) {}
  const std::string& section() const { return section_; }

 private:
  std::string section_;
};

/// Header metadata surfaced by load_snapshot().
struct SnapshotInfo {
  std::uint32_t format_version = 0;
  std::uint64_t checkpoint_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t node_records = 0;  // including tombstones
  std::uint64_t rel_records = 0;
};

/// Serializes `store` to `path` (atomically replace via a temp file is the
/// caller's job; Durability::checkpoint does it).  Throws std::logic_error
/// while an undo scope is open and util::BinIoError on file IO failure.
void save_snapshot(const GraphStore& store, const std::string& path,
                   std::uint64_t checkpoint_id = 0);

/// Loads a snapshot into a fresh store: validates header, section table and
/// every section CRC, rebuilds the interner/index lookup structures, and
/// fails loudly (PersistError) if anything — including the final
/// check_invariants() audit — does not hold.
GraphStore load_snapshot(const std::string& path,
                         SnapshotInfo* info = nullptr);

/// Order-sensitive 64-bit digest (FNV-1a) of the store's logical content:
/// token tables, every record's labels/properties/tombstone flag, adjacency
/// order, label buckets, tombstone counters and the index *schema*.
/// Deliberately excludes MVCC version stamps and index bucket/stale
/// internals: a WAL-replayed store carries different epoch stamps and may
/// compact at different points than the store that wrote the log, yet holds
/// the same committed data — fingerprints of the two must agree.  A direct
/// save → load round-trip is verbatim, so equality there is trivial.
std::uint64_t fingerprint(const GraphStore& store);

/// What recover() found and did.
struct RecoveryReport {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t checkpoint_id = 0;
  bool wal_present = false;
  /// WAL predates the snapshot (its checkpoint id is older): ignored.
  bool wal_stale = false;
  std::uint64_t wal_records_replayed = 0;
  std::uint64_t wal_ops_applied = 0;
  bool wal_tail_truncated = false;
  std::uint64_t wal_valid_bytes = 0;
  /// Human-readable recovery narrative (one line per decision).
  std::string detail;
};

/// Owns one durability directory (`snapshot.adsg` + `wal.adwl` inside it)
/// and orchestrates the recover → attach → serve → checkpoint lifecycle:
///
///   persist::Durability dur(dir);
///   GraphStore store = dur.recover();     // snapshot + valid WAL prefix
///   dur.attach(store);                    // arm WAL logging
///   ... mutate, serve ...
///   dur.checkpoint(store);                // new snapshot, WAL reset
///
/// Single-writer like the store; not thread-safe.  Durability is
/// flush-to-OS (fflush per committed transaction): a process crash loses at
/// most the torn tail recovery truncates; media-level sync is out of scope.
class Durability {
 public:
  explicit Durability(std::string dir);
  ~Durability();
  Durability(const Durability&) = delete;
  Durability& operator=(const Durability&) = delete;

  /// Rebuilds the last durable state: the snapshot (empty store when none
  /// exists yet) plus every valid WAL record carrying the snapshot's
  /// checkpoint id, truncating a torn tail in place.  Corrupt snapshots
  /// propagate PersistError — restore from a backup or start fresh, but
  /// never serve silently wrong data.
  GraphStore recover(RecoveryReport* report = nullptr);

  /// Arms WAL logging on `store` (which should be the store recover()
  /// returned, or one checkpoint() is about to baseline).  The recorder
  /// appends where recovery left off.
  void attach(GraphStore& store);

  /// Disarms logging; the WAL file keeps its contents.
  void detach();

  /// Writes a new snapshot (temp file + atomic rename), then resets the WAL
  /// under a bumped checkpoint id.  A crash between the two leaves a
  /// new snapshot plus an old-id WAL, which recover() ignores as stale —
  /// never applied twice.  Throws std::logic_error inside a transaction.
  void checkpoint(GraphStore& store);

  std::string snapshot_path() const;
  std::string wal_path() const;
  std::uint64_t checkpoint_id() const { return checkpoint_id_; }
  /// Records appended since attach (token internings count too).
  std::uint64_t wal_records_appended() const;
  /// Flushes the recorder's stdio buffer (a no-op when detached).
  void sync();

 private:
  void open_recorder(std::uint64_t next_sequence);

  std::string dir_;
  std::uint64_t checkpoint_id_ = 0;
  /// Sequence the next appended record must carry (1 after a reset,
  /// replay's next_sequence after a recover).
  std::uint64_t next_sequence_ = 1;
  /// Whether the on-disk WAL is positioned/valid for appending (false until
  /// recover() or checkpoint() establishes it).
  bool wal_ready_ = false;
  std::unique_ptr<wal::WalRecorder> recorder_;
  GraphStore* attached_ = nullptr;
};

}  // namespace adsynth::graphdb::persist
