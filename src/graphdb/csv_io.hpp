// CSV export/import of a graph store: `nodes.csv` (id, labels, one column
// per property key) and `edges.csv` (source, target, type, properties).
// The tabular form feeds spreadsheet/pandas-style analysis of generated AD
// estates; the authoritative interchange format remains APOC JSON
// (neo4j_io.hpp).
//
// Property cells are typed: a plain string exports raw when it cannot be
// mistaken for anything else, every other value (and any ambiguous string,
// e.g. "true" or "42") exports as its JSON rendering.  Import reverses the
// rule — a cell that parses as JSON is the corresponding typed value, an
// unparseable cell is a raw string, an empty cell is an absent property —
// so export -> import round-trips property values bit-identically (the
// earlier index_key() cells erased types: exported booleans, numbers and
// lists all came back as strings).
#pragma once

#include <iosfwd>
#include <string>

#include "graphdb/store.hpp"

namespace adsynth::graphdb {

/// RFC-4180-style field quoting: fields containing separators, quotes or
/// newlines are wrapped in double quotes with inner quotes doubled.
std::string csv_escape(const std::string& field);

/// Typed property-cell rendering (before csv_escape); see the codec note
/// in the header comment.
std::string encode_property_cell(const PropertyValue& value);

/// Inverse of encode_property_cell for a non-empty cell.
PropertyValue decode_property_cell(const std::string& cell);

/// Writes one row per live node: `id,labels,<key1>,<key2>,...` where labels
/// are ';'-joined and the property columns are the union of all node
/// property keys in deterministic (key-id) order.
void export_nodes_csv(const GraphStore& store, std::ostream& out);

/// Writes one row per live relationship: `source,target,type,<keys...>`.
void export_edges_csv(const GraphStore& store, std::ostream& out);

/// Convenience: writes `<prefix>_nodes.csv` and `<prefix>_edges.csv`.
/// Throws std::runtime_error on I/O failure.
void export_csv_files(const GraphStore& store, const std::string& prefix);

struct CsvImportStats {
  std::size_t nodes = 0;
  std::size_t rels = 0;
};

/// Rebuilds a store from the two CSV streams produced by the exporters.
/// Node ids in the files are remapped onto freshly created nodes (the
/// export skips tombstones, so ids need not be dense).  Throws
/// std::runtime_error on malformed input (bad header, ragged row, unknown
/// endpoint id).
CsvImportStats import_csv(GraphStore& store, std::istream& nodes_in,
                          std::istream& edges_in);

/// Convenience: reads `<prefix>_nodes.csv` and `<prefix>_edges.csv`.
CsvImportStats import_csv_files(GraphStore& store, const std::string& prefix);

}  // namespace adsynth::graphdb
