// CSV export of a graph store: `nodes.csv` (id, labels, one column per
// property key) and `edges.csv` (source, target, type, properties).  The
// tabular form feeds spreadsheet/pandas-style analysis of generated AD
// estates; the authoritative interchange format remains APOC JSON
// (neo4j_io.hpp).
#pragma once

#include <iosfwd>
#include <string>

#include "graphdb/store.hpp"

namespace adsynth::graphdb {

/// RFC-4180-style field quoting: fields containing separators, quotes or
/// newlines are wrapped in double quotes with inner quotes doubled.
std::string csv_escape(const std::string& field);

/// Writes one row per live node: `id,labels,<key1>,<key2>,...` where labels
/// are ';'-joined and the property columns are the union of all node
/// property keys in deterministic (key-id) order.
void export_nodes_csv(const GraphStore& store, std::ostream& out);

/// Writes one row per live relationship: `source,target,type,<keys...>`.
void export_edges_csv(const GraphStore& store, std::ostream& out);

/// Convenience: writes `<prefix>_nodes.csv` and `<prefix>_edges.csv`.
/// Throws std::runtime_error on I/O failure.
void export_csv_files(const GraphStore& store, const std::string& prefix);

}  // namespace adsynth::graphdb
