// Neo4j APOC-style JSON export and import.
//
// ADSynth's output is "an Active Directory attack graph in a JSON format of
// Neo4J, which can be loaded and processed in BloodHound" (paper §III-B).
// We emit the newline-delimited row format of `apoc.export.json`:
//
//   {"type":"node","id":"0","labels":["User"],"properties":{...}}
//   {"type":"relationship","id":"0","label":"AdminTo","properties":{...},
//    "start":{"id":"0","labels":["User"]},"end":{"id":"3","labels":[...]}}
//
// Export streams, so million-node graphs never materialize a DOM; import
// parses row by row and remaps ids.
#pragma once

#include <iosfwd>
#include <string>

#include "graphdb/store.hpp"

namespace adsynth::graphdb {

/// Streams the store as APOC JSON rows.  Deleted records are skipped.
void export_apoc_json(const GraphStore& store, std::ostream& out);

/// Convenience: export to a file; throws std::runtime_error on I/O failure.
void export_apoc_json_file(const GraphStore& store, const std::string& path);

/// Parses APOC JSON rows into a fresh store.  Node ids are remapped densely;
/// relationship start/end references are resolved via the row ids.  Throws
/// std::runtime_error on malformed rows or dangling references.
GraphStore import_apoc_json(std::istream& in);

GraphStore import_apoc_json_file(const std::string& path);

}  // namespace adsynth::graphdb
