#include "graphdb/cypher_exec.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <optional>
#include <utility>

#include "util/csr.hpp"

namespace adsynth::graphdb::cypher {

namespace {

// ---------------------------------------------------------------------------
// Value helpers
// ---------------------------------------------------------------------------

PropertyList to_property_list(GraphStore& store, const PropExprList& props,
                              const Params& params) {
  PropertyList list;
  list.reserve(props.size());
  for (const auto& [key, value] : props) {
    put_property(list, store.intern_key(key), value.resolve(params));
  }
  return list;
}

bool is_numeric(const PropertyValue& v) { return v.is_int() || v.is_double(); }

double as_number(const PropertyValue& v) {
  return v.is_int() ? static_cast<double>(v.as_int()) : v.as_double();
}

/// Three-way ordering for WHERE range comparisons; std::nullopt for
/// incomparable types (the predicate is then false, never an error —
/// matching Cypher's null-ish comparison semantics).
std::optional<int> order(const PropertyValue& a, const PropertyValue& b) {
  if (a.is_int() && b.is_int()) {
    const std::int64_t x = a.as_int();
    const std::int64_t y = b.as_int();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (is_numeric(a) && is_numeric(b)) {
    const double x = as_number(a);
    const double y = as_number(b);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.is_string() && b.is_string()) {
    const int c = a.as_string().compare(b.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.is_bool() && b.is_bool()) {
    return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
  }
  return std::nullopt;
}

/// Evaluates `lhs <op> rhs`; a missing property (nullptr) never matches.
/// Equality is exact variant equality (same semantics as inline `{k: v}`
/// pattern properties); range operators compare numerics cross-type.
bool eval_cmp(const PropertyValue* lhs, CmpOp op, const PropertyValue& rhs) {
  if (lhs == nullptr) return false;
  switch (op) {
    case CmpOp::kEq: return *lhs == rhs;
    case CmpOp::kNe: return !(*lhs == rhs);
    default: break;
  }
  const std::optional<int> o = order(*lhs, rhs);
  if (!o) return false;
  switch (op) {
    case CmpOp::kLt: return *o < 0;
    case CmpOp::kLe: return *o <= 0;
    case CmpOp::kGt: return *o > 0;
    case CmpOp::kGe: return *o >= 0;
    default: return false;
  }
}

// ---------------------------------------------------------------------------
// Node-pattern matching (single comma patterns; same anchoring as the
// original executor: find_nodes on the first property, else a label scan)
//
// The whole read pipeline from here down to run_read is templated over the
// store type: StoreT is either GraphStore (live execution inside a
// session) or SnapshotView (lock-free execution against a committed
// epoch).  Both expose the same read API with the same result ordering, so
// instantiations agree row-for-row on equal committed state.
// ---------------------------------------------------------------------------

template <typename StoreT>
bool node_matches(const StoreT& store, NodeId n, const NodePat& pat,
                  const Params& params) {
  if (store.node(n).deleted) return false;
  for (const std::string& label : pat.labels) {
    const auto l = store.find_label(label);
    if (!l || !store.node_has_label(n, *l)) return false;
  }
  for (const auto& [key, value] : pat.props) {
    const PropertyValue* pv = store.node_property(n, key);
    if (pv == nullptr || !(*pv == value.resolve(params))) return false;
  }
  return true;
}

template <typename StoreT>
std::vector<NodeId> match_node_pattern(const StoreT& store,
                                       const NodePat& pat,
                                       const Params& params) {
  if (pat.labels.empty()) {
    throw CypherError("Cypher-lite requires a label on MATCH patterns");
  }
  std::vector<NodeId> candidates;
  if (!pat.props.empty()) {
    candidates = store.find_nodes(pat.labels[0], pat.props[0].first,
                                  pat.props[0].second.resolve(params));
  } else {
    candidates = store.nodes_with_label(pat.labels[0]);
  }
  std::vector<NodeId> out;
  for (const NodeId n : candidates) {
    if (node_matches(store, n, pat, params)) out.push_back(n);
  }
  return out;
}

NodeId match_single(const GraphStore& store, const NodePat& pat,
                    const Params& params) {
  const std::vector<NodeId> matches = match_node_pattern(store, pat, params);
  if (matches.empty()) {
    throw CypherError("MATCH found no node for pattern (" + pat.var + ":" +
                      (pat.labels.empty() ? "" : pat.labels[0]) + " ...)");
  }
  return matches.front();
}

// ---------------------------------------------------------------------------
// Path expansion (kMatchRead / kMatchDeleteRels)
// ---------------------------------------------------------------------------

/// One partial/complete pattern match: NodeId per path node, RelId per hop
/// (kNoRel for variable-length hops, which bind no single relationship).
struct Row {
  std::vector<NodeId> nodes;
  std::vector<RelId> rels;
};

/// WHERE conjuncts routed to the pattern position that binds their
/// variable, so filters apply the moment a variable binds.
struct PredIndex {
  std::vector<std::vector<const Predicate*>> node_preds;  // per node slot
  std::vector<std::vector<const Predicate*>> rel_preds;   // per rel slot
};

PredIndex index_predicates(const Query& q) {
  const PathPattern& path = q.paths.front();
  PredIndex idx;
  idx.node_preds.resize(path.nodes.size());
  idx.rel_preds.resize(path.rels.size());
  for (const Predicate& pred : q.where) {
    for (std::size_t i = 0; i < path.nodes.size(); ++i) {
      if (!path.nodes[i].var.empty() && path.nodes[i].var == pred.var) {
        idx.node_preds[i].push_back(&pred);
      }
    }
    for (std::size_t i = 0; i < path.rels.size(); ++i) {
      if (!path.rels[i].var.empty() && path.rels[i].var == pred.var) {
        idx.rel_preds[i].push_back(&pred);
      }
    }
  }
  return idx;
}

template <typename StoreT>
bool node_slot_ok(const StoreT& store, NodeId n, const NodePat& pat,
                  const std::vector<const Predicate*>& preds,
                  const Params& params) {
  if (!node_matches(store, n, pat, params)) return false;
  for (const Predicate* pred : preds) {
    if (!eval_cmp(store.node_property(n, pred->key), pred->op,
                  pred->value.resolve(params))) {
      return false;
    }
  }
  return true;
}

template <typename StoreT>
bool rel_slot_ok(const StoreT& store, const RelRecord& rec,
                 const RelPat& pat,
                 const std::vector<const Predicate*>& preds,
                 const Params& params) {
  for (const auto& [key, value] : pat.props) {
    const auto key_id = store.find_key(key);
    const PropertyValue* pv =
        key_id ? get_property(rec.properties, *key_id) : nullptr;
    if (pv == nullptr || !(*pv == value.resolve(params))) return false;
  }
  for (const Predicate* pred : preds) {
    const auto key_id = store.find_key(pred->key);
    const PropertyValue* pv =
        key_id ? get_property(rec.properties, *key_id) : nullptr;
    if (!eval_cmp(pv, pred->op, pred->value.resolve(params))) return false;
  }
  return true;
}

/// CSR snapshot of the live relationships of one type (and optional rel
/// properties), oriented along the expansion direction.  Built once per
/// variable-length hop, then every row's BFS runs on it — this is exactly
/// the adjacency analytics/reachability builds, so distances agree.
template <typename StoreT>
util::Csr build_hop_csr(const StoreT& store, const RelPat& pat,
                        bool forward, const Params& params) {
  util::Csr csr;
  const std::size_t n = store.node_capacity();
  csr.offsets.assign(n + 1, 0);
  const auto type = store.find_rel_type(pat.type);
  if (!type) return csr;

  static const std::vector<const Predicate*> kNoPreds;
  const auto arc_ok = [&](const RelRecord& rec) {
    return !rec.deleted && rec.type == *type &&
           !store.node(rec.source).deleted &&
           !store.node(rec.target).deleted &&
           rel_slot_ok(store, rec, pat, kNoPreds, params);
  };

  const std::size_t rel_cap = store.rel_capacity();
  for (RelId r = 0; r < rel_cap; ++r) {
    const RelRecord& rec = store.rel(r);
    if (!arc_ok(rec)) continue;
    ++csr.offsets[(forward ? rec.source : rec.target) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) csr.offsets[v + 1] += csr.offsets[v];
  csr.targets.resize(csr.offsets[n]);
  csr.edge_ids.resize(csr.offsets[n]);
  std::vector<std::uint32_t> cursor(csr.offsets.begin(),
                                    csr.offsets.end() - 1);
  for (RelId r = 0; r < rel_cap; ++r) {
    const RelRecord& rec = store.rel(r);
    if (!arc_ok(rec)) continue;
    const std::uint32_t from = forward ? rec.source : rec.target;
    const std::uint32_t to = forward ? rec.target : rec.source;
    csr.targets[cursor[from]] = to;
    csr.edge_ids[cursor[from]] = r;
    ++cursor[from];
  }
  return csr;
}

/// Expands all rows across hop `hop` of the path.  `forward` is the
/// planner's expansion direction: forward rows extend nodes[hop] ->
/// nodes[hop+1] over out_rels; backward rows extend nodes[hop+1] ->
/// nodes[hop] over in_rels.
template <typename StoreT>
std::vector<Row> expand_hop(const StoreT& store, const Query& q,
                            const PredIndex& preds, std::vector<Row> rows,
                            std::size_t hop, bool forward,
                            const Params& params) {
  const PathPattern& path = q.paths.front();
  const RelPat& rel_pat = path.rels[hop];
  const std::size_t src_slot = forward ? hop : hop + 1;
  const std::size_t dst_slot = forward ? hop + 1 : hop;
  const NodePat& dst_pat = path.nodes[dst_slot];

  std::vector<Row> out;
  if (!rel_pat.var_length) {
    const auto type = store.find_rel_type(rel_pat.type);
    if (!type) return out;
    for (const Row& row : rows) {
      const NodeId src = row.nodes[src_slot];
      const auto& adjacency =
          forward ? store.node(src).out_rels : store.node(src).in_rels;
      for (const RelId r : adjacency) {
        const RelRecord& rec = store.rel(r);
        if (rec.deleted || rec.type != *type) continue;
        if (!rel_slot_ok(store, rec, rel_pat, preds.rel_preds[hop], params)) {
          continue;
        }
        const NodeId dst = forward ? rec.target : rec.source;
        if (!node_slot_ok(store, dst, dst_pat, preds.node_preds[dst_slot],
                          params)) {
          continue;
        }
        Row next = row;
        next.rels[hop] = r;
        next.nodes[dst_slot] = dst;
        out.push_back(std::move(next));
      }
    }
    return out;
  }

  // Variable-length hop: bounded BFS on a CSR snapshot.  Semantics are
  // shortest-distance: a target matches when its BFS hop distance from the
  // source lies in [min_hops, max_hops] (see DESIGN.md §query frontend).
  const util::Csr csr = build_hop_csr(store, rel_pat, forward, params);
  const std::int32_t max_depth =
      rel_pat.max_hops == RelPat::kUnboundedHops
          ? std::numeric_limits<std::int32_t>::max()
          : static_cast<std::int32_t>(rel_pat.max_hops);
  std::vector<std::int32_t> scratch;
  std::vector<std::uint32_t> reached;
  for (const Row& row : rows) {
    const NodeId src = row.nodes[src_slot];
    util::bfs_distances_bounded(csr, src, max_depth, scratch, reached);
    for (const std::uint32_t v : reached) {
      const std::int32_t d = scratch[v];
      if (d < static_cast<std::int32_t>(rel_pat.min_hops)) continue;
      if (!node_slot_ok(store, v, dst_pat, preds.node_preds[dst_slot],
                        params)) {
        continue;
      }
      Row next = row;
      next.rels[hop] = kNoRel;
      next.nodes[dst_slot] = v;
      out.push_back(std::move(next));
    }
  }
  return out;
}

template <typename StoreT>
std::vector<Row> expand_path(const StoreT& store,
                             const PlannedQuery& plan, const Params& params) {
  const Query& q = plan.ast;
  const PathPattern& path = q.paths.front();
  const PredIndex preds = index_predicates(q);
  const std::size_t anchor_slot = plan.anchor_right ? path.nodes.size() - 1 : 0;

  std::vector<NodeId> anchors;
  if (plan.scan.kind == ScanKind::kIndexSeek) {
    anchors = store.find_nodes(plan.scan.label, plan.scan.key,
                               plan.scan.value.resolve(params));
  } else {
    anchors = store.nodes_with_label(plan.scan.label);
  }

  std::vector<Row> rows;
  for (const NodeId n : anchors) {
    if (!node_slot_ok(store, n, path.nodes[anchor_slot],
                      preds.node_preds[anchor_slot], params)) {
      continue;
    }
    Row row;
    row.nodes.assign(path.nodes.size(), kNoNode);
    row.rels.assign(path.rels.size(), kNoRel);
    row.nodes[anchor_slot] = n;
    rows.push_back(std::move(row));
  }

  if (plan.anchor_right) {
    for (std::size_t i = path.rels.size(); i-- > 0;) {
      rows = expand_hop(store, q, preds, std::move(rows), i,
                        /*forward=*/false, params);
    }
  } else {
    for (std::size_t i = 0; i < path.rels.size(); ++i) {
      rows = expand_hop(store, q, preds, std::move(rows), i,
                        /*forward=*/true, params);
    }
  }
  return rows;
}

// ---------------------------------------------------------------------------
// RETURN projection
// ---------------------------------------------------------------------------

/// Where a RETURN/DELETE variable lives in the path.
struct Slot {
  bool is_rel = false;
  std::size_t pos = 0;
};

std::optional<Slot> find_slot(const PathPattern& path, std::string_view var) {
  for (std::size_t i = 0; i < path.nodes.size(); ++i) {
    if (!path.nodes[i].var.empty() && path.nodes[i].var == var) {
      return Slot{false, i};
    }
  }
  for (std::size_t i = 0; i < path.rels.size(); ++i) {
    if (!path.rels[i].var.empty() && path.rels[i].var == var) {
      return Slot{true, i};
    }
  }
  return std::nullopt;
}

template <typename StoreT>
QueryResult run_read(const StoreT& store, const PlannedQuery& plan,
                     const Params& params) {
  QueryResult result;
  const Query& q = plan.ast;
  std::vector<Row> rows = expand_path(store, plan, params);

  for (const ReturnItem& item : q.returns) {
    result.columns.push_back(item.display());
  }

  // count(...) aggregates over all matches; LIMIT is a no-op
  // post-aggregation (it would bound one output row).
  if (q.returns.front().kind == ReturnItem::Kind::kCount) {
    result.count = static_cast<std::int64_t>(rows.size());
    result.rows.push_back(std::vector<PropertyValue>(
        q.returns.size(), PropertyValue(result.count)));
    return result;
  }

  if (q.limit) {
    const PropertyValue& bound = q.limit->resolve(params);
    if (!bound.is_int() || bound.as_int() < 0) {
      throw CypherError("LIMIT expects a non-negative integer");
    }
    const auto limit = static_cast<std::size_t>(bound.as_int());
    if (rows.size() > limit) rows.resize(limit);
  }

  const PathPattern& path = q.paths.front();
  std::vector<Slot> slots;
  slots.reserve(q.returns.size());
  for (const ReturnItem& item : q.returns) {
    slots.push_back(*find_slot(path, item.var));  // planner validated
  }

  result.rows.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<PropertyValue> record;
    record.reserve(q.returns.size());
    for (std::size_t i = 0; i < q.returns.size(); ++i) {
      const ReturnItem& item = q.returns[i];
      const Slot slot = slots[i];
      if (item.kind == ReturnItem::Kind::kVar) {
        record.emplace_back(static_cast<std::int64_t>(row.nodes[slot.pos]));
      } else if (slot.is_rel) {
        const auto key_id = store.find_key(item.key);
        const PropertyValue* pv =
            key_id ? get_property(store.rel(row.rels[slot.pos]).properties,
                                  *key_id)
                   : nullptr;
        record.emplace_back(pv ? *pv : PropertyValue(nullptr));
      } else {
        const PropertyValue* pv =
            store.node_property(row.nodes[slot.pos], item.key);
        record.emplace_back(pv ? *pv : PropertyValue(nullptr));
      }
    }
    result.rows.push_back(std::move(record));
  }
  result.count = static_cast<std::int64_t>(result.rows.size());

  // Back-compat: RETURN of a single node variable also fills `nodes`.
  if (q.returns.size() == 1 && q.returns[0].kind == ReturnItem::Kind::kVar) {
    result.nodes.reserve(rows.size());
    for (const Row& row : rows) result.nodes.push_back(row.nodes[slots[0].pos]);
  }
  return result;
}

QueryResult run_delete_rels(GraphStore& store, const PlannedQuery& plan,
                            const Params& params) {
  QueryResult result;
  const Query& q = plan.ast;
  const std::vector<Row> rows = expand_path(store, plan, params);
  const Slot slot = *find_slot(q.paths.front(), q.delete_var);
  std::vector<RelId> doomed;
  doomed.reserve(rows.size());
  for (const Row& row : rows) doomed.push_back(row.rels[slot.pos]);
  std::sort(doomed.begin(), doomed.end());
  doomed.erase(std::unique(doomed.begin(), doomed.end()), doomed.end());
  for (const RelId r : doomed) store.delete_relationship(r);
  result.rels_deleted = doomed.size();
  return result;
}

}  // namespace

QueryResult execute_query(GraphStore& store, const PlannedQuery& plan,
                          const Params& params) {
  const Query& q = plan.ast;
  QueryResult result;
  if (q.explain) {
    result.plan = plan.explain_text;
    return result;
  }

  switch (q.verb) {
    case Verb::kCreateNodes: {
      for (const NodePat& p : q.create_nodes) {
        const NodeId n =
            store.create_node(p.labels, to_property_list(store, p.props, params));
        result.nodes.push_back(n);
        ++result.nodes_created;
        result.properties_set += p.props.size();
      }
      break;
    }
    case Verb::kMergeNode: {
      const NodePat& p = q.create_nodes.front();
      const std::vector<NodeId> existing =
          match_node_pattern(store, p, params);
      if (!existing.empty()) {
        result.nodes.push_back(existing.front());
      } else {
        const NodeId n =
            store.create_node(p.labels, to_property_list(store, p.props, params));
        result.nodes.push_back(n);
        ++result.nodes_created;
        result.properties_set += p.props.size();
      }
      break;
    }
    case Verb::kMatchCreateRel:
    case Verb::kMatchMergeRel: {
      NodeId from = kNoNode;
      NodeId to = kNoNode;
      for (const PathPattern& path : q.paths) {
        const NodePat& p = path.nodes.front();
        const NodeId n = match_single(store, p, params);
        if (p.var == q.rel_from) from = n;
        if (p.var == q.rel_to) to = n;
      }
      if (from == kNoNode || to == kNoNode) {
        throw CypherError("relationship endpoints not bound by MATCH");
      }
      if (q.verb == Verb::kMatchMergeRel) {
        const auto type = store.find_rel_type(q.create_rel->type);
        if (type) {
          for (const RelId r : store.node(from).out_rels) {
            const RelRecord& rec = store.rel(r);
            if (!rec.deleted && rec.target == to && rec.type == *type) {
              result.rels.push_back(r);
              return result;
            }
          }
        }
      }
      const RelId r = store.create_relationship(
          from, to, q.create_rel->type,
          to_property_list(store, q.create_rel->props, params));
      result.rels.push_back(r);
      ++result.rels_created;
      break;
    }
    case Verb::kMatchRead: {
      result = run_read(store, plan, params);
      break;
    }
    case Verb::kMatchSet: {
      const std::vector<NodeId> matches =
          match_node_pattern(store, q.paths.front().nodes.front(), params);
      for (const NodeId n : matches) {
        store.set_node_property(n, q.set_item->key,
                                q.set_item->value.resolve(params));
        ++result.properties_set;
      }
      result.nodes = matches;
      break;
    }
    case Verb::kMatchDeleteNodes: {
      const NodePat* target = nullptr;
      for (const PathPattern& path : q.paths) {
        if (path.nodes.front().var == q.delete_var) {
          target = &path.nodes.front();
        }
      }
      if (target == nullptr) {
        throw CypherError("DELETE variable not bound by MATCH");
      }
      const std::vector<NodeId> doomed =
          match_node_pattern(store, *target, params);
      for (const NodeId n : doomed) {
        try {
          store.delete_node(n, q.detach);
        } catch (const std::logic_error& e) {
          // Mid-statement failure: the session's savepoint rolls back any
          // nodes already deleted by this statement.
          throw CypherError(std::string("cannot DELETE node with live "
                                        "relationships (use DETACH DELETE): ") +
                            e.what());
        }
        ++result.nodes_deleted;
      }
      break;
    }
    case Verb::kMatchDeleteRels: {
      result = run_delete_rels(store, plan, params);
      break;
    }
    case Verb::kCreateIndex: {
      store.create_index(q.index_label, q.index_key);
      break;
    }
  }
  return result;
}

QueryResult execute_read_query(const SnapshotView& view,
                               const PlannedQuery& plan,
                               const Params& params) {
  const Query& q = plan.ast;
  if (q.explain) {
    QueryResult result;
    result.plan = plan.explain_text;
    return result;
  }
  if (q.verb != Verb::kMatchRead) {
    throw CypherError(
        "snapshot execution is read-only: only MATCH ... RETURN (or "
        "EXPLAIN) can run against a SnapshotView");
  }
  return run_read(view, plan, params);
}

}  // namespace adsynth::graphdb::cypher
