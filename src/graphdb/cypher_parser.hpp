// Hand-written recursive-descent parser for the openCypher subset (no
// parser-generator dependency).  Produces the typed AST of cypher_ast.hpp;
// every error is a CypherError naming the offending byte offset.  Parsing
// is pure — it never touches a GraphStore — so a failed parse provably
// cannot mutate anything (asserted by tests/graphdb/cypher_parser_test.cpp).
#pragma once

#include <string_view>

#include "graphdb/cypher_ast.hpp"

namespace adsynth::graphdb::cypher {

/// Parses one statement.  Throws CypherError on malformed input, with the
/// message "Cypher parse error near byte N: ..." pointing at the offending
/// byte of `text`.
Query parse(std::string_view text);

}  // namespace adsynth::graphdb::cypher
