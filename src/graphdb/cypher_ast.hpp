// Typed AST for the openCypher subset (see cypher.hpp for the statement
// grammar and cypher_parser.hpp for the parser that produces these).  The
// AST is value-semantic and store-independent: a parsed Query can be
// planned against any GraphStore, cached, and executed repeatedly with
// different $param bindings.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graphdb/property.hpp"

namespace adsynth::graphdb {

/// Thrown on grammar, planning or execution errors, with the offending
/// statement (parse errors name the offending byte offset).
class CypherError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// $param bindings for one execution of a prepared/parameterized statement.
/// std::map keeps error messages and iteration deterministic.
using Params = std::map<std::string, PropertyValue, std::less<>>;

namespace cypher {

/// A value position in a statement: either a literal or a $param
/// placeholder resolved at execution time.
struct ValueExpr {
  PropertyValue literal;
  std::string param;  // non-empty => placeholder

  ValueExpr() = default;
  explicit ValueExpr(PropertyValue v) : literal(std::move(v)) {}

  bool is_param() const { return !param.empty(); }

  /// The literal, or the bound value of the placeholder.  Throws
  /// CypherError when the binding is missing.
  const PropertyValue& resolve(const Params& params) const {
    if (!is_param()) return literal;
    const auto it = params.find(param);
    if (it == params.end()) {
      throw CypherError("missing parameter $" + param);
    }
    return it->second;
  }
};

using PropExprList = std::vector<std::pair<std::string, ValueExpr>>;

struct NodePat {
  std::string var;
  std::vector<std::string> labels;
  PropExprList props;
};

struct RelPat {
  /// Open upper bound of a variable-length pattern (`*2..`, bare `*`).
  static constexpr std::uint32_t kUnboundedHops = 0xffffffffu;

  std::string var;  // bound name ("r"); empty when anonymous
  std::string type;
  PropExprList props;
  bool var_length = false;  // `-[:T*min..max]->`
  std::uint32_t min_hops = 1;
  std::uint32_t max_hops = 1;
};

/// One linear path pattern: nodes.size() == rels.size() + 1.  A single
/// node pattern is a path with no rels.
struct PathPattern {
  std::vector<NodePat> nodes;
  std::vector<RelPat> rels;
};

enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// One WHERE conjunct: `var.key <op> value`.
struct Predicate {
  std::string var;
  std::string key;
  CmpOp op = CmpOp::kEq;
  ValueExpr value;
};

/// One RETURN projection.
struct ReturnItem {
  enum class Kind : std::uint8_t {
    kVar,       // RETURN n        (a bound node variable)
    kProperty,  // RETURN n.key
    kCount,     // RETURN count(x)
  };
  Kind kind = Kind::kVar;
  std::string var;
  std::string key;  // kProperty only

  std::string display() const {
    switch (kind) {
      case Kind::kVar: return var;
      case Kind::kProperty: return var + "." + key;
      case Kind::kCount: return "count(" + var + ")";
    }
    return var;
  }
};

struct SetItem {
  std::string var;
  std::string key;
  ValueExpr value;
};

enum class Verb : std::uint8_t {
  kCreateNodes,     // CREATE (n:L {..})[, ...]
  kMergeNode,       // MERGE (n:L {..})
  kMatchCreateRel,  // MATCH ... CREATE (a)-[:T {..}]->(b)
  kMatchMergeRel,   // MATCH ... MERGE  (a)-[:T {..}]->(b)
  kMatchRead,       // MATCH path [WHERE ...] RETURN items [LIMIT n]
  kMatchSet,        // MATCH (n:L {..}) SET n.key = value
  kMatchDeleteNodes,  // MATCH ... [DETACH] DELETE n   (node variable)
  kMatchDeleteRels,   // MATCH (a)-[r:T]->(b) DELETE r (rel variable)
  kCreateIndex,       // CREATE INDEX ON :Label(key)
};

/// A parsed statement.
struct Query {
  bool explain = false;  // EXPLAIN prefix: plan, don't execute
  Verb verb = Verb::kCreateNodes;

  std::vector<PathPattern> paths;      // MATCH patterns (comma-separated)
  std::vector<NodePat> create_nodes;   // kCreateNodes / kMergeNode targets
  std::optional<RelPat> create_rel;    // kMatchCreateRel / kMatchMergeRel
  std::string rel_from;                // endpoints of create_rel
  std::string rel_to;
  std::vector<Predicate> where;
  std::vector<ReturnItem> returns;
  std::optional<ValueExpr> limit;
  std::optional<SetItem> set_item;
  std::string delete_var;
  bool detach = false;
  std::string index_label;
  std::string index_key;
};

}  // namespace cypher
}  // namespace adsynth::graphdb
