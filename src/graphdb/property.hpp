// Property values for graph nodes and relationships, mirroring the subset
// of Neo4j's type system that BloodHound exports use: null, boolean, 64-bit
// integer, double, string, and list-of-string.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/json.hpp"

namespace adsynth::graphdb {

class PropertyValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, std::int64_t, double,
                               std::string, std::vector<std::string>>;

  PropertyValue() : value_(nullptr) {}
  PropertyValue(std::nullptr_t) : value_(nullptr) {}
  PropertyValue(bool b) : value_(b) {}
  PropertyValue(int i) : value_(static_cast<std::int64_t>(i)) {}
  PropertyValue(std::int64_t i) : value_(i) {}
  PropertyValue(std::uint64_t i) : value_(static_cast<std::int64_t>(i)) {}
  PropertyValue(double d) : value_(d) {}
  PropertyValue(const char* s) : value_(std::string(s)) {}
  PropertyValue(std::string s) : value_(std::move(s)) {}
  PropertyValue(std::vector<std::string> v) : value_(std::move(v)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_string_list() const {
    return std::holds_alternative<std::vector<std::string>>(value_);
  }

  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<std::string>& as_string_list() const;

  bool operator==(const PropertyValue& other) const {
    return value_ == other.value_;
  }

  /// Canonical text rendering used as a property-index key ("true", "42",
  /// raw string contents, ...).  Lossy for lists (joined with '\x1f').
  std::string index_key() const;

  util::JsonValue to_json() const;
  static PropertyValue from_json(const util::JsonValue& v);

 private:
  Storage value_;
};

/// Ordered (by interned key id) flat property map; small and cache-friendly
/// compared to a node-owned hash map, which matters at a million nodes.
using PropertyKeyId = std::uint32_t;
using PropertyList = std::vector<std::pair<PropertyKeyId, PropertyValue>>;

}  // namespace adsynth::graphdb
