#include "graphdb/cypher_parser.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <string>

#include "util/strings.hpp"

namespace adsynth::graphdb::cypher {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind : std::uint8_t {
  kIdent,   // bare word (keywords, variable names, labels, keys)
  kString,  // quoted string literal (escapes decoded)
  kNumber,  // numeric literal text: int [frac] [exp]
  kParam,   // $name placeholder (text = name without '$')
  kPunct,   // single punctuation char
  kOp,      // comparison operator: = <> < <= > >=
  kArrow,   // ->
  kRange,   // ..
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  char punct = 0;
  std::size_t pos = 0;  // byte offset of the token's first character
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = std::move(current_);
    advance();
    return t;
  }

  [[noreturn]] void fail_at(std::size_t byte, const std::string& why) const {
    throw CypherError("Cypher parse error near byte " + std::to_string(byte) +
                      ": " + why + " in statement: " + std::string(text_));
  }

  /// Error at the current token (its first byte).
  [[noreturn]] void fail(const std::string& why) const {
    fail_at(current_.kind == TokKind::kEnd ? text_.size() : current_.pos, why);
  }

 private:
  bool is_digit(std::size_t i) const {
    return i < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i]));
  }

  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    current_.pos = pos_;
    if (pos_ >= text_.size()) {
      current_.kind = TokKind::kEnd;
      return;
    }
    const char c = text_[pos_];
    if (c == '\'' || c == '"') {
      lex_string(c);
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokKind::kIdent;
      current_.text = std::string(text_.substr(start, pos_ - start));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && is_digit(pos_ + 1))) {
      lex_number();
      return;
    }
    if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
      pos_ += 2;
      current_.kind = TokKind::kArrow;
      current_.text = "->";
      return;
    }
    if (c == '.' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '.') {
      pos_ += 2;
      current_.kind = TokKind::kRange;
      current_.text = "..";
      return;
    }
    if (c == '$') {
      ++pos_;
      if (pos_ >= text_.size() ||
          (!std::isalpha(static_cast<unsigned char>(text_[pos_])) &&
           text_[pos_] != '_')) {
        fail_at(pos_, "expected parameter name after '$'");
      }
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokKind::kParam;
      current_.text = std::string(text_.substr(start, pos_ - start));
      return;
    }
    if (c == '<' || c == '>' || c == '=') {
      current_.kind = TokKind::kOp;
      current_.text.push_back(c);
      ++pos_;
      if (pos_ < text_.size()) {
        const char n = text_[pos_];
        if ((c == '<' && (n == '=' || n == '>')) || (c == '>' && n == '=')) {
          current_.text.push_back(n);
          ++pos_;
        }
      }
      return;
    }
    current_.kind = TokKind::kPunct;
    current_.punct = c;
    current_.text = std::string(1, c);
    ++pos_;
  }

  void lex_string(char quote) {
    const std::size_t open = pos_;
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
        switch (text_[pos_]) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          default: out.push_back(text_[pos_]);
        }
      } else {
        out.push_back(text_[pos_]);
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      fail_at(open, "unterminated string literal");
    }
    ++pos_;  // closing quote
    current_.kind = TokKind::kString;
    current_.text = std::move(out);
  }

  /// Strict numeric literal: int [ '.' digits ] [ (e|E) [+|-] digits ].
  /// Anything the grammar would silently misparse — "1.2.3", "1e", "5e+",
  /// "12abc" — fails here, at the offending byte.  "1..2" is NOT a number:
  /// the '.' is only consumed when a digit follows it, so the range
  /// operator of variable-length patterns survives.
  void lex_number() {
    const std::size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    while (is_digit(pos_)) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.' && is_digit(pos_ + 1)) {
      ++pos_;  // '.'
      while (is_digit(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;  // exponent marker
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!is_digit(pos_)) {
        fail_at(pos_, "malformed numeric literal: exponent needs digits");
      }
      while (is_digit(pos_)) ++pos_;
    }
    if (pos_ < text_.size()) {
      const char n = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(n)) || n == '_' ||
          (n == '.' && is_digit(pos_ + 1))) {
        fail_at(pos_, "malformed numeric literal");
      }
    }
    current_.kind = TokKind::kNumber;
    current_.text = std::string(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : lex_(text) {}

  Query parse() {
    Query q;
    if (peek_keyword("EXPLAIN")) {
      lex_.take();
      q.explain = true;
    }
    const Token head = expect_ident();
    if (util::iequals(head.text, "CREATE")) {
      if (peek_keyword("INDEX")) {
        lex_.take();
        parse_create_index(q);
        return q;
      }
      q.verb = Verb::kCreateNodes;
      q.create_nodes.push_back(parse_node_pattern());
      while (is_punct(',')) {
        lex_.take();
        q.create_nodes.push_back(parse_node_pattern());
      }
      expect_end();
      return q;
    }
    if (util::iequals(head.text, "MERGE")) {
      q.verb = Verb::kMergeNode;
      q.create_nodes.push_back(parse_node_pattern());
      expect_end();
      return q;
    }
    if (util::iequals(head.text, "MATCH")) {
      parse_match(q);
      return q;
    }
    lex_.fail("expected CREATE, MERGE or MATCH");
  }

 private:
  bool is_punct(char c) const {
    return lex_.peek().kind == TokKind::kPunct && lex_.peek().punct == c;
  }

  bool peek_keyword(const char* kw) const {
    return lex_.peek().kind == TokKind::kIdent &&
           util::iequals(lex_.peek().text, kw);
  }

  Token expect_ident() {
    if (lex_.peek().kind != TokKind::kIdent) lex_.fail("expected identifier");
    return lex_.take();
  }

  void expect_punct(char c) {
    if (lex_.peek().kind != TokKind::kPunct || lex_.peek().punct != c) {
      lex_.fail(std::string("expected '") + c + "'");
    }
    lex_.take();
  }

  void expect_arrow() {
    if (lex_.peek().kind != TokKind::kArrow) lex_.fail("expected ->");
    lex_.take();
  }

  void expect_end() {
    // Allow a trailing semicolon.
    if (is_punct(';')) lex_.take();
    if (lex_.peek().kind != TokKind::kEnd) lex_.fail("trailing tokens");
  }

  void parse_create_index(Query& q) {
    // CREATE INDEX ON :Label(key)
    if (!peek_keyword("ON")) lex_.fail("expected ON");
    lex_.take();
    expect_punct(':');
    q.index_label = expect_ident().text;
    expect_punct('(');
    q.index_key = expect_ident().text;
    expect_punct(')');
    q.verb = Verb::kCreateIndex;
    expect_end();
  }

  void parse_match(Query& q) {
    q.paths.push_back(parse_path());
    while (is_punct(',')) {
      lex_.take();
      q.paths.push_back(parse_path());
    }
    if (peek_keyword("WHERE")) {
      lex_.take();
      parse_where(q);
    }
    const Token verb = expect_ident();
    if (util::iequals(verb.text, "RETURN")) {
      parse_return(q);
      return;
    }
    if (util::iequals(verb.text, "CREATE") ||
        util::iequals(verb.text, "MERGE")) {
      q.verb = util::iequals(verb.text, "CREATE") ? Verb::kMatchCreateRel
                                                  : Verb::kMatchMergeRel;
      parse_create_rel(q, verb.pos);
      expect_end();
      return;
    }
    if (util::iequals(verb.text, "SET")) {
      SetItem set;
      set.var = expect_ident().text;
      expect_punct('.');
      set.key = expect_ident().text;
      if (lex_.peek().kind != TokKind::kOp || lex_.peek().text != "=") {
        lex_.fail("expected '='");
      }
      lex_.take();
      set.value = parse_value();
      q.set_item = std::move(set);
      q.verb = Verb::kMatchSet;
      validate_set(q);
      expect_end();
      return;
    }
    if (util::iequals(verb.text, "DETACH") ||
        util::iequals(verb.text, "DELETE")) {
      q.detach = util::iequals(verb.text, "DETACH");
      if (q.detach) {
        if (!peek_keyword("DELETE")) lex_.fail("expected DELETE after DETACH");
        lex_.take();
      }
      const Token var = expect_ident();
      q.delete_var = var.text;
      resolve_delete_target(q, var.pos);
      expect_end();
      return;
    }
    lex_.fail("expected CREATE, MERGE, RETURN, SET or DELETE after MATCH");
  }

  PathPattern parse_path() {
    PathPattern path;
    path.nodes.push_back(parse_node_pattern());
    while (is_punct('-')) {
      lex_.take();
      path.rels.push_back(parse_rel_segment());
      path.nodes.push_back(parse_node_pattern());
    }
    return path;
  }

  /// `[var][:TYPE][*min..max][{props}] ]->`, the '-' already consumed.
  RelPat parse_rel_segment() {
    expect_punct('[');
    RelPat rel;
    if (lex_.peek().kind == TokKind::kIdent) {
      rel.var = lex_.take().text;
    }
    expect_punct(':');
    rel.type = expect_ident().text;
    if (is_punct('*')) {
      lex_.take();
      parse_hop_bounds(rel);
    }
    if (is_punct('{')) rel.props = parse_property_map();
    expect_punct(']');
    expect_arrow();
    return rel;
  }

  /// `*`, `*n`, `*min..`, `*..max`, `*min..max` (the '*' already consumed).
  void parse_hop_bounds(RelPat& rel) {
    rel.var_length = true;
    rel.min_hops = 1;
    rel.max_hops = RelPat::kUnboundedHops;
    if (lex_.peek().kind == TokKind::kNumber) {
      const Token lo = lex_.take();
      rel.min_hops = parse_hop_count(lo);
      if (lex_.peek().kind == TokKind::kRange) {
        lex_.take();
        if (lex_.peek().kind == TokKind::kNumber) {
          rel.max_hops = parse_hop_count(lex_.take());
        }
      } else {
        rel.max_hops = rel.min_hops;  // exact-length `*n`
      }
    } else if (lex_.peek().kind == TokKind::kRange) {
      lex_.take();
      if (lex_.peek().kind == TokKind::kNumber) {
        rel.max_hops = parse_hop_count(lex_.take());
      }
    }
    if (rel.max_hops != RelPat::kUnboundedHops &&
        rel.min_hops > rel.max_hops) {
      lex_.fail("variable-length bounds are inverted (min > max)");
    }
  }

  std::uint32_t parse_hop_count(const Token& tok) {
    std::uint32_t n = 0;
    const auto [p, ec] =
        std::from_chars(tok.text.data(), tok.text.data() + tok.text.size(), n);
    if (ec != std::errc{} || p != tok.text.data() + tok.text.size()) {
      lex_.fail_at(tok.pos,
                   "variable-length bounds must be non-negative integers");
    }
    return n;
  }

  NodePat parse_node_pattern() {
    NodePat node;
    expect_punct('(');
    if (lex_.peek().kind == TokKind::kIdent) {
      node.var = lex_.take().text;
    }
    while (is_punct(':')) {
      lex_.take();
      node.labels.push_back(expect_ident().text);
    }
    if (is_punct('{')) node.props = parse_property_map();
    expect_punct(')');
    return node;
  }

  PropExprList parse_property_map() {
    PropExprList props;
    expect_punct('{');
    if (is_punct('}')) {
      lex_.take();
      return props;
    }
    while (true) {
      Token key = lex_.take();
      if (key.kind != TokKind::kIdent && key.kind != TokKind::kString) {
        lex_.fail_at(key.pos, "expected property key");
      }
      expect_punct(':');
      props.emplace_back(key.text, parse_value());
      const Token sep = lex_.take();
      if (sep.kind == TokKind::kPunct && sep.punct == '}') break;
      if (sep.kind != TokKind::kPunct || sep.punct != ',') {
        lex_.fail_at(sep.pos, "expected ',' or '}' in property map");
      }
    }
    return props;
  }

  ValueExpr parse_value() {
    if (lex_.peek().kind == TokKind::kParam) {
      ValueExpr v;
      v.param = lex_.take().text;
      return v;
    }
    const Token t = lex_.take();
    switch (t.kind) {
      case TokKind::kString: return ValueExpr(PropertyValue(t.text));
      case TokKind::kNumber: return ValueExpr(number_value(t));
      case TokKind::kIdent:
        if (util::iequals(t.text, "true")) return ValueExpr(PropertyValue(true));
        if (util::iequals(t.text, "false")) {
          return ValueExpr(PropertyValue(false));
        }
        if (util::iequals(t.text, "null")) {
          return ValueExpr(PropertyValue(nullptr));
        }
        lex_.fail_at(t.pos, "unexpected identifier '" + t.text + "' as value");
      case TokKind::kPunct:
        if (t.punct == '[') return parse_string_list();
        [[fallthrough]];
      default: lex_.fail_at(t.pos, "expected a value");
    }
  }

  ValueExpr parse_string_list() {
    std::vector<std::string> list;
    if (is_punct(']')) {
      lex_.take();
      return ValueExpr(PropertyValue(std::move(list)));
    }
    while (true) {
      const Token item = lex_.take();
      if (item.kind != TokKind::kString) {
        lex_.fail_at(item.pos, "lists may only contain strings");
      }
      list.push_back(item.text);
      const Token sep = lex_.take();
      if (sep.kind == TokKind::kPunct && sep.punct == ']') break;
      if (sep.kind != TokKind::kPunct || sep.punct != ',') {
        lex_.fail_at(sep.pos, "expected ',' or ']' in list");
      }
    }
    return ValueExpr(PropertyValue(std::move(list)));
  }

  PropertyValue number_value(const Token& t) {
    if (t.text.find_first_of(".eE") == std::string::npos) {
      std::int64_t i = 0;
      const auto [p, ec] =
          std::from_chars(t.text.data(), t.text.data() + t.text.size(), i);
      if (ec == std::errc{} && p == t.text.data() + t.text.size()) {
        return PropertyValue(i);
      }
    }
    double d = 0.0;
    const auto [p, ec] =
        std::from_chars(t.text.data(), t.text.data() + t.text.size(), d);
    if (ec != std::errc{} || p != t.text.data() + t.text.size()) {
      lex_.fail_at(t.pos, "bad numeric literal '" + t.text + "'");
    }
    return PropertyValue(d);
  }

  void parse_where(Query& q) {
    while (true) {
      Predicate pred;
      const Token var = expect_ident();
      pred.var = var.text;
      expect_punct('.');
      pred.key = expect_ident().text;
      const Token op = lex_.take();
      if (op.kind != TokKind::kOp) {
        lex_.fail_at(op.pos, "expected a comparison operator in WHERE");
      }
      if (op.text == "=") pred.op = CmpOp::kEq;
      else if (op.text == "<>") pred.op = CmpOp::kNe;
      else if (op.text == "<") pred.op = CmpOp::kLt;
      else if (op.text == "<=") pred.op = CmpOp::kLe;
      else if (op.text == ">") pred.op = CmpOp::kGt;
      else if (op.text == ">=") pred.op = CmpOp::kGe;
      else lex_.fail_at(op.pos, "unknown comparison operator " + op.text);
      pred.value = parse_value();
      q.where.push_back(std::move(pred));
      if (!peek_keyword("AND")) break;
      lex_.take();
    }
  }

  void parse_return(Query& q) {
    q.verb = Verb::kMatchRead;
    while (true) {
      ReturnItem item;
      const Token head = expect_ident();
      if (util::iequals(head.text, "count") && is_punct('(')) {
        lex_.take();
        item.kind = ReturnItem::Kind::kCount;
        item.var = expect_ident().text;
        expect_punct(')');
      } else {
        item.var = head.text;
        if (is_punct('.')) {
          lex_.take();
          item.kind = ReturnItem::Kind::kProperty;
          item.key = expect_ident().text;
        } else {
          item.kind = ReturnItem::Kind::kVar;
        }
      }
      q.returns.push_back(std::move(item));
      if (!is_punct(',')) break;
      lex_.take();
    }
    if (peek_keyword("LIMIT")) {
      lex_.take();
      const Token bound = lex_.peek();
      q.limit = parse_value();
      if (!q.limit->is_param()) {
        const PropertyValue& v = q.limit->literal;
        if (!v.is_int() || v.as_int() < 0) {
          lex_.fail_at(bound.pos, "LIMIT expects a non-negative integer");
        }
      }
    }
    expect_end();
  }

  /// `(a)-[:TYPE {props}]->(b)` after MATCH ... CREATE/MERGE.  Parsed as a
  /// path so the surface stays uniform, then constrained to the shape the
  /// executor supports: one hop, endpoints are bare variables bound by the
  /// MATCH patterns.
  void parse_create_rel(Query& q, std::size_t verb_pos) {
    const PathPattern path = parse_path();
    if (path.rels.size() != 1) {
      lex_.fail_at(verb_pos, "CREATE/MERGE after MATCH expects exactly one "
                             "(a)-[:TYPE]->(b) relationship pattern");
    }
    if (path.rels[0].var_length) {
      lex_.fail_at(verb_pos, "cannot CREATE a variable-length relationship");
    }
    for (const NodePat& n : path.nodes) {
      if (n.var.empty() || !n.labels.empty() || !n.props.empty()) {
        lex_.fail_at(verb_pos, "CREATE/MERGE endpoints must be bare "
                               "variables bound by MATCH");
      }
    }
    q.create_rel = path.rels[0];
    q.rel_from = path.nodes[0].var;
    q.rel_to = path.nodes[1].var;
  }

  /// Classifies DELETE var as node vs relationship deletion by where the
  /// variable is bound, preserving the statement shapes of the old
  /// executor (node DELETE across comma patterns, rel DELETE on a
  /// single-hop traversal).
  void resolve_delete_target(Query& q, std::size_t var_pos) {
    for (const PathPattern& path : q.paths) {
      for (const RelPat& rel : path.rels) {
        if (!rel.var.empty() && rel.var == q.delete_var) {
          if (rel.var_length) {
            lex_.fail_at(var_pos,
                         "cannot DELETE a variable-length relationship "
                         "binding");
          }
          q.verb = Verb::kMatchDeleteRels;
          return;
        }
      }
    }
    for (const PathPattern& path : q.paths) {
      for (const NodePat& node : path.nodes) {
        if (!node.var.empty() && node.var == q.delete_var) {
          q.verb = Verb::kMatchDeleteNodes;
          return;
        }
      }
    }
    // Keep the two historical error texts: traversal statements complain
    // about the relationship variable, plain MATCH about the node variable.
    const bool has_rels = !q.paths.empty() && !q.paths[0].rels.empty();
    lex_.fail_at(var_pos, has_rels
                              ? "DELETE expects the bound relationship "
                                "variable"
                              : "DELETE expects a bound node variable");
  }

  /// SET keeps its historical single-node shape: one comma-free MATCH
  /// pattern with no relationships.
  void validate_set(Query& q) {
    if (q.paths.size() != 1 || !q.paths[0].rels.empty()) {
      lex_.fail("SET supports a single node pattern MATCH only");
    }
    const NodePat& node = q.paths[0].nodes[0];
    if (node.var.empty() || node.var != q.set_item->var) {
      lex_.fail("SET expects the bound node variable");
    }
  }

  Lexer lex_;
};

}  // namespace

Query parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace adsynth::graphdb::cypher
