#include "graphdb/csv_io.hpp"

#include <fstream>
#include <ostream>
#include <vector>

namespace adsynth::graphdb {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

namespace {

/// Property keys actually used by at least one record of the given kind.
std::vector<PropertyKeyId> used_keys(const GraphStore& store, bool nodes) {
  std::vector<bool> seen;
  auto mark = [&](const PropertyList& props) {
    for (const auto& [key, value] : props) {
      (void)value;
      if (seen.size() <= key) seen.resize(key + 1, false);
      seen[key] = true;
    }
  };
  if (nodes) {
    for (NodeId i = 0; i < store.node_capacity(); ++i) {
      if (!store.node(i).deleted) mark(store.node(i).properties);
    }
  } else {
    for (RelId i = 0; i < store.rel_capacity(); ++i) {
      if (!store.rel(i).deleted) mark(store.rel(i).properties);
    }
  }
  std::vector<PropertyKeyId> keys;
  for (PropertyKeyId k = 0; k < seen.size(); ++k) {
    if (seen[k]) keys.push_back(k);
  }
  return keys;
}

void write_property_cells(const PropertyList& props,
                          const std::vector<PropertyKeyId>& keys,
                          std::ostream& out) {
  for (const PropertyKeyId key : keys) {
    out << ',';
    if (const PropertyValue* v = get_property(props, key)) {
      out << csv_escape(v->index_key());
    }
  }
}

}  // namespace

void export_nodes_csv(const GraphStore& store, std::ostream& out) {
  const auto keys = used_keys(store, /*nodes=*/true);
  out << "id,labels";
  for (const PropertyKeyId key : keys) {
    out << ',' << csv_escape(store.key_name(key));
  }
  out << '\n';
  for (NodeId i = 0; i < store.node_capacity(); ++i) {
    const NodeRecord& rec = store.node(i);
    if (rec.deleted) continue;
    out << i << ',';
    std::string labels;
    for (std::size_t l = 0; l < rec.labels.size(); ++l) {
      if (l > 0) labels.push_back(';');
      labels += store.label_name(rec.labels[l]);
    }
    out << csv_escape(labels);
    write_property_cells(rec.properties, keys, out);
    out << '\n';
  }
}

void export_edges_csv(const GraphStore& store, std::ostream& out) {
  const auto keys = used_keys(store, /*nodes=*/false);
  out << "source,target,type";
  for (const PropertyKeyId key : keys) {
    out << ',' << csv_escape(store.key_name(key));
  }
  out << '\n';
  for (RelId i = 0; i < store.rel_capacity(); ++i) {
    const RelRecord& rec = store.rel(i);
    if (rec.deleted) continue;
    out << rec.source << ',' << rec.target << ','
        << csv_escape(store.rel_type_name(rec.type));
    write_property_cells(rec.properties, keys, out);
    out << '\n';
  }
}

void export_csv_files(const GraphStore& store, const std::string& prefix) {
  {
    std::ofstream nodes(prefix + "_nodes.csv", std::ios::binary);
    if (!nodes) {
      throw std::runtime_error("cannot open for write: " + prefix +
                               "_nodes.csv");
    }
    export_nodes_csv(store, nodes);
    if (!nodes) throw std::runtime_error("write failed: " + prefix +
                                         "_nodes.csv");
  }
  {
    std::ofstream edges(prefix + "_edges.csv", std::ios::binary);
    if (!edges) {
      throw std::runtime_error("cannot open for write: " + prefix +
                               "_edges.csv");
    }
    export_edges_csv(store, edges);
    if (!edges) throw std::runtime_error("write failed: " + prefix +
                                         "_edges.csv");
  }
}

}  // namespace adsynth::graphdb
