#include "graphdb/csv_io.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "util/json.hpp"

namespace adsynth::graphdb {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

namespace {

/// Could this raw string be read back as JSON?  Cheap prefilter so the
/// common case (AD names, SIDs, FQDNs — all starting with a letter) skips
/// the parse attempt on export.
bool maybe_json(const std::string& s) {
  const char c = s.front();
  return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
         c == '"' || c == '[' || c == '{' || c == ' ' || c == '\t' ||
         c == '\n' || c == '\r' || s == "true" || s == "false" ||
         s == "null";
}

bool parses_as_json(const std::string& s) {
  try {
    (void)util::JsonValue::parse(s);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// Reads one CSV record; quoted fields may contain commas, doubled quotes
/// and newlines.  Returns false on clean end-of-stream.
bool read_csv_record(std::istream& in, std::vector<std::string>& fields) {
  fields.clear();
  int c = in.get();
  if (c == std::istream::traits_type::eof()) return false;
  std::string field;
  bool in_quotes = false;
  while (true) {
    if (c == std::istream::traits_type::eof()) {
      fields.push_back(std::move(field));
      return true;
    }
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in.peek() == '"') {
          in.get();
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(ch);
      }
    } else if (ch == '"' && field.empty()) {
      in_quotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      fields.push_back(std::move(field));
      return true;
    } else if (ch != '\r') {  // line-ending CR; quoted CRs stay above
      field.push_back(ch);
    }
    c = in.get();
  }
}

std::uint64_t parse_id(const std::string& cell, const char* what) {
  std::uint64_t id = 0;
  const auto [p, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), id);
  if (ec != std::errc{} || p != cell.data() + cell.size()) {
    throw std::runtime_error(std::string("CSV import: bad ") + what +
                             " id '" + cell + "'");
  }
  return id;
}

std::vector<std::string> split_labels(const std::string& cell) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : cell) {
    if (c == ';') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

/// Property keys actually used by at least one record of the given kind.
std::vector<PropertyKeyId> used_keys(const GraphStore& store, bool nodes) {
  std::vector<bool> seen;
  auto mark = [&](const PropertyList& props) {
    for (const auto& [key, value] : props) {
      (void)value;
      if (seen.size() <= key) seen.resize(key + 1, false);
      seen[key] = true;
    }
  };
  if (nodes) {
    for (NodeId i = 0; i < store.node_capacity(); ++i) {
      if (!store.node(i).deleted) mark(store.node(i).properties);
    }
  } else {
    for (RelId i = 0; i < store.rel_capacity(); ++i) {
      if (!store.rel(i).deleted) mark(store.rel(i).properties);
    }
  }
  std::vector<PropertyKeyId> keys;
  for (PropertyKeyId k = 0; k < seen.size(); ++k) {
    if (seen[k]) keys.push_back(k);
  }
  return keys;
}

void write_property_cells(const PropertyList& props,
                          const std::vector<PropertyKeyId>& keys,
                          std::ostream& out) {
  for (const PropertyKeyId key : keys) {
    out << ',';
    if (const PropertyValue* v = get_property(props, key)) {
      out << csv_escape(encode_property_cell(*v));
    }
  }
}

}  // namespace

std::string encode_property_cell(const PropertyValue& value) {
  if (value.is_string()) {
    const std::string& s = value.as_string();
    // Raw only when unambiguous: non-empty and not readable as JSON.
    if (!s.empty() && (!maybe_json(s) || !parses_as_json(s))) return s;
  }
  return value.to_json().dump();
}

PropertyValue decode_property_cell(const std::string& cell) {
  try {
    return PropertyValue::from_json(util::JsonValue::parse(cell));
  } catch (const std::exception&) {
    return PropertyValue(cell);
  }
}

void export_nodes_csv(const GraphStore& store, std::ostream& out) {
  const auto keys = used_keys(store, /*nodes=*/true);
  out << "id,labels";
  for (const PropertyKeyId key : keys) {
    out << ',' << csv_escape(store.key_name(key));
  }
  out << '\n';
  for (NodeId i = 0; i < store.node_capacity(); ++i) {
    const NodeRecord& rec = store.node(i);
    if (rec.deleted) continue;
    out << i << ',';
    std::string labels;
    for (std::size_t l = 0; l < rec.labels.size(); ++l) {
      if (l > 0) labels.push_back(';');
      labels += store.label_name(rec.labels[l]);
    }
    out << csv_escape(labels);
    write_property_cells(rec.properties, keys, out);
    out << '\n';
  }
}

void export_edges_csv(const GraphStore& store, std::ostream& out) {
  const auto keys = used_keys(store, /*nodes=*/false);
  out << "source,target,type";
  for (const PropertyKeyId key : keys) {
    out << ',' << csv_escape(store.key_name(key));
  }
  out << '\n';
  for (RelId i = 0; i < store.rel_capacity(); ++i) {
    const RelRecord& rec = store.rel(i);
    if (rec.deleted) continue;
    out << rec.source << ',' << rec.target << ','
        << csv_escape(store.rel_type_name(rec.type));
    write_property_cells(rec.properties, keys, out);
    out << '\n';
  }
}

void export_csv_files(const GraphStore& store, const std::string& prefix) {
  {
    std::ofstream nodes(prefix + "_nodes.csv", std::ios::binary);
    if (!nodes) {
      throw std::runtime_error("cannot open for write: " + prefix +
                               "_nodes.csv");
    }
    export_nodes_csv(store, nodes);
    if (!nodes) throw std::runtime_error("write failed: " + prefix +
                                         "_nodes.csv");
  }
  {
    std::ofstream edges(prefix + "_edges.csv", std::ios::binary);
    if (!edges) {
      throw std::runtime_error("cannot open for write: " + prefix +
                               "_edges.csv");
    }
    export_edges_csv(store, edges);
    if (!edges) throw std::runtime_error("write failed: " + prefix +
                                         "_edges.csv");
  }
}

CsvImportStats import_csv(GraphStore& store, std::istream& nodes_in,
                          std::istream& edges_in) {
  CsvImportStats stats;
  std::vector<std::string> row;

  if (!read_csv_record(nodes_in, row) || row.size() < 2 || row[0] != "id" ||
      row[1] != "labels") {
    throw std::runtime_error("CSV import: bad nodes header");
  }
  const std::vector<std::string> node_keys(row.begin() + 2, row.end());
  std::unordered_map<std::uint64_t, NodeId> id_map;
  while (read_csv_record(nodes_in, row)) {
    if (row.size() != node_keys.size() + 2) {
      throw std::runtime_error("CSV import: ragged nodes row");
    }
    const std::uint64_t old_id = parse_id(row[0], "node");
    PropertyList props;
    for (std::size_t i = 0; i < node_keys.size(); ++i) {
      if (row[2 + i].empty()) continue;  // absent property
      put_property(props, store.intern_key(node_keys[i]),
                   decode_property_cell(row[2 + i]));
    }
    const NodeId n = store.create_node(split_labels(row[1]), std::move(props));
    if (!id_map.emplace(old_id, n).second) {
      throw std::runtime_error("CSV import: duplicate node id " + row[0]);
    }
    ++stats.nodes;
  }

  if (!read_csv_record(edges_in, row) || row.size() < 3 ||
      row[0] != "source" || row[1] != "target" || row[2] != "type") {
    throw std::runtime_error("CSV import: bad edges header");
  }
  const std::vector<std::string> edge_keys(row.begin() + 3, row.end());
  while (read_csv_record(edges_in, row)) {
    if (row.size() != edge_keys.size() + 3) {
      throw std::runtime_error("CSV import: ragged edges row");
    }
    const auto source = id_map.find(parse_id(row[0], "edge source"));
    const auto target = id_map.find(parse_id(row[1], "edge target"));
    if (source == id_map.end() || target == id_map.end()) {
      throw std::runtime_error("CSV import: edge references unknown node (" +
                               row[0] + " -> " + row[1] + ")");
    }
    PropertyList props;
    for (std::size_t i = 0; i < edge_keys.size(); ++i) {
      if (row[3 + i].empty()) continue;
      put_property(props, store.intern_key(edge_keys[i]),
                   decode_property_cell(row[3 + i]));
    }
    store.create_relationship(source->second, target->second, row[2],
                              std::move(props));
    ++stats.rels;
  }
  return stats;
}

CsvImportStats import_csv_files(GraphStore& store, const std::string& prefix) {
  std::ifstream nodes(prefix + "_nodes.csv", std::ios::binary);
  if (!nodes) {
    throw std::runtime_error("cannot open for read: " + prefix +
                             "_nodes.csv");
  }
  std::ifstream edges(prefix + "_edges.csv", std::ios::binary);
  if (!edges) {
    throw std::runtime_error("cannot open for read: " + prefix +
                             "_edges.csv");
  }
  return import_csv(store, nodes, edges);
}

}  // namespace adsynth::graphdb
