#include "graphdb/wal.hpp"

#include <stdexcept>
#include <utility>

#include "util/trace.hpp"

namespace adsynth::graphdb::wal {

namespace {

/// PropertyValue tag bytes (shared with the snapshot format).
enum class ValueTag : std::uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
  kStringList = 5,
};

std::string encode_header(std::uint64_t checkpoint_id) {
  util::ByteWriter header;
  header.u32(kWalMagic);
  header.u32(kWalFormatVersion);
  header.u64(checkpoint_id);
  header.u32(util::crc32(header.buffer()));
  return header.take();
}

/// Parses a header buffer; returns false on any mismatch.
bool parse_header(std::string_view bytes, std::uint64_t& checkpoint_id) {
  if (bytes.size() < kWalHeaderBytes) return false;
  util::ByteReader reader(bytes.substr(0, kWalHeaderBytes));
  const std::uint32_t magic = reader.u32();
  const std::uint32_t version = reader.u32();
  const std::uint64_t id = reader.u64();
  const std::uint32_t crc = reader.u32();
  if (magic != kWalMagic || version != kWalFormatVersion) return false;
  if (crc != util::crc32(bytes.substr(0, kWalHeaderBytes - 4))) return false;
  checkpoint_id = id;
  return true;
}

}  // namespace

void encode_value(util::ByteWriter& out, const PropertyValue& value) {
  if (value.is_null()) {
    out.u8(static_cast<std::uint8_t>(ValueTag::kNull));
  } else if (value.is_bool()) {
    out.u8(static_cast<std::uint8_t>(ValueTag::kBool));
    out.u8(value.as_bool() ? 1 : 0);
  } else if (value.is_int()) {
    out.u8(static_cast<std::uint8_t>(ValueTag::kInt));
    out.i64(value.as_int());
  } else if (value.is_double()) {
    out.u8(static_cast<std::uint8_t>(ValueTag::kDouble));
    out.f64(value.as_double());
  } else if (value.is_string()) {
    out.u8(static_cast<std::uint8_t>(ValueTag::kString));
    out.str(value.as_string());
  } else {
    out.u8(static_cast<std::uint8_t>(ValueTag::kStringList));
    const auto& list = value.as_string_list();
    out.u32(static_cast<std::uint32_t>(list.size()));
    for (const auto& s : list) out.str(s);
  }
}

PropertyValue decode_value(util::ByteReader& in) {
  switch (static_cast<ValueTag>(in.u8())) {
    case ValueTag::kNull:
      return PropertyValue(nullptr);
    case ValueTag::kBool:
      return PropertyValue(in.u8() != 0);
    case ValueTag::kInt:
      return PropertyValue(in.i64());
    case ValueTag::kDouble:
      return PropertyValue(in.f64());
    case ValueTag::kString:
      return PropertyValue(in.str());
    case ValueTag::kStringList: {
      const std::uint32_t count = in.u32();
      std::vector<std::string> list;
      list.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) list.push_back(in.str());
      return PropertyValue(std::move(list));
    }
  }
  throw util::BinIoError("wal: unknown property-value tag");
}

void encode_properties(util::ByteWriter& out, const PropertyList& properties) {
  out.u32(static_cast<std::uint32_t>(properties.size()));
  for (const auto& [key, value] : properties) {
    out.u32(key);
    encode_value(out, value);
  }
}

PropertyList decode_properties(util::ByteReader& in) {
  const std::uint32_t count = in.u32();
  PropertyList properties;
  properties.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const PropertyKeyId key = in.u32();
    properties.emplace_back(key, decode_value(in));
  }
  return properties;
}

// --------------------------------------------------------------------------
// Header management
// --------------------------------------------------------------------------

void reset_wal(const std::string& path, std::uint64_t checkpoint_id) {
  util::CheckedFile file = util::CheckedFile::open_write(path);
  file.write(encode_header(checkpoint_id));
  file.flush();
  file.close();
}

bool read_wal_header(const std::string& path, std::uint64_t& checkpoint_id) {
  util::CheckedFile file;
  try {
    file = util::CheckedFile::open_read(path);
  } catch (const util::BinIoError&) {
    return false;  // no file — no log
  }
  std::string header(kWalHeaderBytes, '\0');
  if (file.read_up_to(header.data(), header.size()) != header.size()) {
    return false;
  }
  return parse_header(header, checkpoint_id);
}

// --------------------------------------------------------------------------
// WalRecorder
// --------------------------------------------------------------------------

WalRecorder::WalRecorder(util::CheckedFile file, std::uint64_t next_sequence)
    : file_(std::move(file)), sequence_(next_sequence) {}

void WalRecorder::append_record(std::string_view encoded,
                                std::uint32_t op_count) {
  ADSYNTH_METRIC_COUNT("graphdb.wal.records", 1);
  util::ByteWriter payload;
  payload.u64(sequence_);
  payload.u32(op_count);
  payload.bytes(encoded.data(), encoded.size());

  util::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(util::crc32(payload.buffer()));
  file_.write(frame.buffer());
  file_.write(payload.buffer());
  // One fflush per committed transaction: a crash loses only the suffix the
  // OS had not persisted, which recovery truncates as a torn tail.
  file_.flush();
  ++sequence_;
  ++appended_;
}

void WalRecorder::finish_op() {
  ++buffered_ops_;
  if (marks_.empty()) {
    // No open scope: the mutation is already final in the store, so it is
    // its own single-op transaction.
    append_record(ops_.buffer(), buffered_ops_);
    ops_.clear();
    buffered_ops_ = 0;
  }
}

void WalRecorder::wal_intern_label(std::string_view name) {
  // Token creation survives rollback, so interning flushes its own record
  // immediately instead of riding (and possibly dying with) the open scope.
  util::ByteWriter op;
  op.u8(static_cast<std::uint8_t>(OpKind::kInternLabel));
  op.str(name);
  append_record(op.buffer(), 1);
}

void WalRecorder::wal_intern_rel_type(std::string_view name) {
  util::ByteWriter op;
  op.u8(static_cast<std::uint8_t>(OpKind::kInternRelType));
  op.str(name);
  append_record(op.buffer(), 1);
}

void WalRecorder::wal_intern_key(std::string_view name) {
  util::ByteWriter op;
  op.u8(static_cast<std::uint8_t>(OpKind::kInternKey));
  op.str(name);
  append_record(op.buffer(), 1);
}

void WalRecorder::wal_create_node(const std::vector<LabelId>& labels,
                                  const PropertyList& properties) {
  ops_.u8(static_cast<std::uint8_t>(OpKind::kCreateNode));
  ops_.u32(static_cast<std::uint32_t>(labels.size()));
  for (const LabelId l : labels) ops_.u32(l);
  encode_properties(ops_, properties);
  finish_op();
}

void WalRecorder::wal_create_rel(NodeId source, NodeId target, RelTypeId type,
                                 const PropertyList& properties) {
  ops_.u8(static_cast<std::uint8_t>(OpKind::kCreateRel));
  ops_.u32(source);
  ops_.u32(target);
  ops_.u32(type);
  encode_properties(ops_, properties);
  finish_op();
}

void WalRecorder::wal_set_property(NodeId node, PropertyKeyId key,
                                   const PropertyValue& value) {
  ops_.u8(static_cast<std::uint8_t>(OpKind::kSetProperty));
  ops_.u32(node);
  ops_.u32(key);
  encode_value(ops_, value);
  finish_op();
}

void WalRecorder::wal_delete_rel(RelId rel) {
  ops_.u8(static_cast<std::uint8_t>(OpKind::kDeleteRel));
  ops_.u32(rel);
  finish_op();
}

void WalRecorder::wal_delete_node(NodeId node) {
  ops_.u8(static_cast<std::uint8_t>(OpKind::kDeleteNode));
  ops_.u32(node);
  finish_op();
}

void WalRecorder::wal_create_index(LabelId label, PropertyKeyId key) {
  // Schema ops are rejected inside scopes by the store, so this is always a
  // single-op transaction of its own.
  util::ByteWriter op;
  op.u8(static_cast<std::uint8_t>(OpKind::kCreateIndex));
  op.u32(label);
  op.u32(key);
  append_record(op.buffer(), 1);
}

void WalRecorder::wal_begin_scope() {
  marks_.push_back(Mark{ops_.size(), buffered_ops_});
}

void WalRecorder::wal_commit_scope() {
  if (marks_.empty()) {
    throw std::logic_error("wal: commit without an open scope");
  }
  marks_.pop_back();
  // Inner commits fold into the parent (the ops stay buffered); the
  // outermost commit makes the whole batch durable as one record.
  if (marks_.empty() && buffered_ops_ > 0) {
    append_record(ops_.buffer(), buffered_ops_);
    ops_.clear();
    buffered_ops_ = 0;
  }
}

void WalRecorder::wal_abort_scope() {
  if (marks_.empty()) {
    throw std::logic_error("wal: abort without an open scope");
  }
  const Mark mark = marks_.back();
  marks_.pop_back();
  ops_.truncate(mark.bytes);
  buffered_ops_ = mark.ops;
}

// --------------------------------------------------------------------------
// Replay
// --------------------------------------------------------------------------

namespace {

/// One decoded forward op, ready to apply.
struct DecodedOp {
  OpKind kind;
  std::string name;             // intern ops
  std::vector<LabelId> labels;  // create node
  PropertyList properties;      // create node / create rel
  std::uint32_t a = 0;          // node / rel / source id
  std::uint32_t b = 0;          // target / key id
  std::uint32_t c = 0;          // rel type id
  PropertyValue value;          // set property
};

DecodedOp decode_op(util::ByteReader& in) {
  DecodedOp op;
  op.kind = static_cast<OpKind>(in.u8());
  switch (op.kind) {
    case OpKind::kInternLabel:
    case OpKind::kInternRelType:
    case OpKind::kInternKey:
      op.name = in.str();
      return op;
    case OpKind::kCreateNode: {
      const std::uint32_t count = in.u32();
      op.labels.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) op.labels.push_back(in.u32());
      op.properties = decode_properties(in);
      return op;
    }
    case OpKind::kCreateRel:
      op.a = in.u32();
      op.b = in.u32();
      op.c = in.u32();
      op.properties = decode_properties(in);
      return op;
    case OpKind::kSetProperty:
      op.a = in.u32();
      op.b = in.u32();
      op.value = decode_value(in);
      return op;
    case OpKind::kDeleteRel:
    case OpKind::kDeleteNode:
      op.a = in.u32();
      return op;
    case OpKind::kCreateIndex:
      op.a = in.u32();
      op.b = in.u32();
      return op;
  }
  throw util::BinIoError("wal: unknown op kind " +
                         std::to_string(static_cast<unsigned>(op.kind)));
}

void apply_op(GraphStore& store, const DecodedOp& op) {
  switch (op.kind) {
    case OpKind::kInternLabel:
      store.intern_label(op.name);
      return;
    case OpKind::kInternRelType:
      store.intern_rel_type(op.name);
      return;
    case OpKind::kInternKey:
      store.intern_key(op.name);
      return;
    case OpKind::kCreateNode:
      store.create_node_interned(op.labels, op.properties);
      return;
    case OpKind::kCreateRel:
      store.create_relationship_interned(op.a, op.b, op.c, op.properties);
      return;
    case OpKind::kSetProperty:
      store.set_node_property(op.a, store.key_name(op.b), op.value);
      return;
    case OpKind::kDeleteRel:
      store.delete_relationship(op.a);
      return;
    case OpKind::kDeleteNode:
      // Incident live relationships were tombstoned by the preceding
      // kDeleteRel ops the original detach emitted, so a plain delete lands.
      store.delete_node(op.a, /*detach=*/false);
      return;
    case OpKind::kCreateIndex:
      store.create_index(store.label_name(op.a), store.key_name(op.b));
      return;
  }
  throw util::BinIoError("wal: unknown op kind in apply");
}

}  // namespace

ReplayResult replay_wal(const std::string& path, GraphStore& store) {
  if (store.wal_sink() != nullptr) {
    throw std::logic_error(
        "wal: replay onto a store with an attached sink would re-log every "
        "replayed op; detach first");
  }
  ADSYNTH_SPAN("graphdb.wal.replay");
  ReplayResult result;

  util::CheckedFile file = util::CheckedFile::open_read(path);
  const std::uint64_t file_size = file.size();
  std::string contents(file_size, '\0');
  file.read(contents.data(), contents.size());
  file.close();

  std::uint64_t checkpoint_id = 0;
  if (!parse_header(contents, checkpoint_id)) {
    result.truncated_tail = true;
    result.tail_reason = "invalid header";
    result.valid_bytes = 0;
    return result;
  }

  std::uint64_t boundary = kWalHeaderBytes;
  std::uint64_t expected_sequence = 1;
  const auto torn = [&](std::string reason) {
    result.truncated_tail = true;
    result.tail_reason = std::move(reason);
    result.valid_bytes = boundary;
    result.next_sequence = expected_sequence;
    return result;
  };

  while (boundary < file_size) {
    if (file_size - boundary < 8) {
      return torn("truncated frame header at offset " +
                  std::to_string(boundary));
    }
    util::ByteReader frame(
        std::string_view(contents).substr(boundary, file_size - boundary));
    const std::uint32_t length = frame.u32();
    const std::uint32_t crc = frame.u32();
    if (file_size - boundary - 8 < length) {
      return torn("record length " + std::to_string(length) +
                  " runs past file end at offset " + std::to_string(boundary));
    }
    const std::string_view payload =
        std::string_view(contents).substr(boundary + 8, length);
    if (util::crc32(payload) != crc) {
      return torn("record CRC mismatch at offset " + std::to_string(boundary));
    }

    // Decode the whole record before touching the store, so bad bytes never
    // leave a half-applied transaction behind.
    std::vector<DecodedOp> ops;
    try {
      util::ByteReader body(payload);
      const std::uint64_t sequence = body.u64();
      if (sequence != expected_sequence) {
        return torn("sequence break at offset " + std::to_string(boundary) +
                    " (record " + std::to_string(sequence) + ", expected " +
                    std::to_string(expected_sequence) + ")");
      }
      const std::uint32_t op_count = body.u32();
      ops.reserve(op_count);
      for (std::uint32_t i = 0; i < op_count; ++i) {
        ops.push_back(decode_op(body));
      }
      if (!body.at_end()) {
        return torn("trailing bytes inside record at offset " +
                    std::to_string(boundary));
      }
    } catch (const util::BinIoError& err) {
      return torn(std::string("undecodable record at offset ") +
                  std::to_string(boundary) + ": " + err.what());
    }

    // Multi-op records were one committed transaction; replay them under an
    // undo scope so a failing op rolls the whole record back.  Single-op
    // records apply directly (store mutators validate before side effects,
    // and schema ops reject scopes).
    try {
      if (ops.size() > 1) {
        store.begin_undo_scope();
        try {
          for (const DecodedOp& op : ops) apply_op(store, op);
        } catch (...) {
          store.abort_scope();
          throw;
        }
        store.commit_scope();
      } else {
        for (const DecodedOp& op : ops) apply_op(store, op);
      }
    } catch (const std::exception& err) {
      return torn(std::string("record failed to apply at offset ") +
                  std::to_string(boundary) + ": " + err.what());
    }

    ++result.records;
    result.ops += ops.size();
    ++expected_sequence;
    boundary += 8 + length;
  }

  result.valid_bytes = boundary;
  result.next_sequence = expected_sequence;
  return result;
}

}  // namespace adsynth::graphdb::wal
