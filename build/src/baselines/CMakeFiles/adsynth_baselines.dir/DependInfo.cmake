
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/adsimulator.cpp" "src/baselines/CMakeFiles/adsynth_baselines.dir/adsimulator.cpp.o" "gcc" "src/baselines/CMakeFiles/adsynth_baselines.dir/adsimulator.cpp.o.d"
  "/root/repo/src/baselines/dbcreator.cpp" "src/baselines/CMakeFiles/adsynth_baselines.dir/dbcreator.cpp.o" "gcc" "src/baselines/CMakeFiles/adsynth_baselines.dir/dbcreator.cpp.o.d"
  "/root/repo/src/baselines/university.cpp" "src/baselines/CMakeFiles/adsynth_baselines.dir/university.cpp.o" "gcc" "src/baselines/CMakeFiles/adsynth_baselines.dir/university.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adsynth_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graphdb/CMakeFiles/adsynth_graphdb.dir/DependInfo.cmake"
  "/root/repo/build/src/adcore/CMakeFiles/adsynth_adcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
