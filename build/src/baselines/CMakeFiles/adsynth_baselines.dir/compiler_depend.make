# Empty compiler generated dependencies file for adsynth_baselines.
# This may be replaced when dependencies are built.
