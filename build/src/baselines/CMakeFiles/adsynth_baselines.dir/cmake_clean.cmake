file(REMOVE_RECURSE
  "CMakeFiles/adsynth_baselines.dir/adsimulator.cpp.o"
  "CMakeFiles/adsynth_baselines.dir/adsimulator.cpp.o.d"
  "CMakeFiles/adsynth_baselines.dir/dbcreator.cpp.o"
  "CMakeFiles/adsynth_baselines.dir/dbcreator.cpp.o.d"
  "CMakeFiles/adsynth_baselines.dir/university.cpp.o"
  "CMakeFiles/adsynth_baselines.dir/university.cpp.o.d"
  "libadsynth_baselines.a"
  "libadsynth_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adsynth_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
