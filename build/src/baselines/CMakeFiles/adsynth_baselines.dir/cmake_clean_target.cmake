file(REMOVE_RECURSE
  "libadsynth_baselines.a"
)
