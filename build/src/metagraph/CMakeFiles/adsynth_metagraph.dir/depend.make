# Empty dependencies file for adsynth_metagraph.
# This may be replaced when dependencies are built.
