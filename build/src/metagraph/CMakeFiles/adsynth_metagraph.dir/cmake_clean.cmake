file(REMOVE_RECURSE
  "CMakeFiles/adsynth_metagraph.dir/algorithms.cpp.o"
  "CMakeFiles/adsynth_metagraph.dir/algorithms.cpp.o.d"
  "CMakeFiles/adsynth_metagraph.dir/analysis.cpp.o"
  "CMakeFiles/adsynth_metagraph.dir/analysis.cpp.o.d"
  "CMakeFiles/adsynth_metagraph.dir/expansion.cpp.o"
  "CMakeFiles/adsynth_metagraph.dir/expansion.cpp.o.d"
  "CMakeFiles/adsynth_metagraph.dir/metagraph.cpp.o"
  "CMakeFiles/adsynth_metagraph.dir/metagraph.cpp.o.d"
  "libadsynth_metagraph.a"
  "libadsynth_metagraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adsynth_metagraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
