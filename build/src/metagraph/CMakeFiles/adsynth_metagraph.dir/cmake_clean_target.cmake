file(REMOVE_RECURSE
  "libadsynth_metagraph.a"
)
