
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metagraph/algorithms.cpp" "src/metagraph/CMakeFiles/adsynth_metagraph.dir/algorithms.cpp.o" "gcc" "src/metagraph/CMakeFiles/adsynth_metagraph.dir/algorithms.cpp.o.d"
  "/root/repo/src/metagraph/analysis.cpp" "src/metagraph/CMakeFiles/adsynth_metagraph.dir/analysis.cpp.o" "gcc" "src/metagraph/CMakeFiles/adsynth_metagraph.dir/analysis.cpp.o.d"
  "/root/repo/src/metagraph/expansion.cpp" "src/metagraph/CMakeFiles/adsynth_metagraph.dir/expansion.cpp.o" "gcc" "src/metagraph/CMakeFiles/adsynth_metagraph.dir/expansion.cpp.o.d"
  "/root/repo/src/metagraph/metagraph.cpp" "src/metagraph/CMakeFiles/adsynth_metagraph.dir/metagraph.cpp.o" "gcc" "src/metagraph/CMakeFiles/adsynth_metagraph.dir/metagraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adsynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
