file(REMOVE_RECURSE
  "CMakeFiles/adsynth_core.dir/config.cpp.o"
  "CMakeFiles/adsynth_core.dir/config.cpp.o.d"
  "CMakeFiles/adsynth_core.dir/export.cpp.o"
  "CMakeFiles/adsynth_core.dir/export.cpp.o.d"
  "CMakeFiles/adsynth_core.dir/forest.cpp.o"
  "CMakeFiles/adsynth_core.dir/forest.cpp.o.d"
  "CMakeFiles/adsynth_core.dir/generator.cpp.o"
  "CMakeFiles/adsynth_core.dir/generator.cpp.o.d"
  "CMakeFiles/adsynth_core.dir/structure.cpp.o"
  "CMakeFiles/adsynth_core.dir/structure.cpp.o.d"
  "libadsynth_core.a"
  "libadsynth_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adsynth_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
