
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/adsynth_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/adsynth_core.dir/config.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/adsynth_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/adsynth_core.dir/export.cpp.o.d"
  "/root/repo/src/core/forest.cpp" "src/core/CMakeFiles/adsynth_core.dir/forest.cpp.o" "gcc" "src/core/CMakeFiles/adsynth_core.dir/forest.cpp.o.d"
  "/root/repo/src/core/generator.cpp" "src/core/CMakeFiles/adsynth_core.dir/generator.cpp.o" "gcc" "src/core/CMakeFiles/adsynth_core.dir/generator.cpp.o.d"
  "/root/repo/src/core/structure.cpp" "src/core/CMakeFiles/adsynth_core.dir/structure.cpp.o" "gcc" "src/core/CMakeFiles/adsynth_core.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adsynth_util.dir/DependInfo.cmake"
  "/root/repo/build/src/metagraph/CMakeFiles/adsynth_metagraph.dir/DependInfo.cmake"
  "/root/repo/build/src/graphdb/CMakeFiles/adsynth_graphdb.dir/DependInfo.cmake"
  "/root/repo/build/src/adcore/CMakeFiles/adsynth_adcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
