file(REMOVE_RECURSE
  "libadsynth_core.a"
)
