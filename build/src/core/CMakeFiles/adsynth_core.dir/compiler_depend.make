# Empty compiler generated dependencies file for adsynth_core.
# This may be replaced when dependencies are built.
