file(REMOVE_RECURSE
  "CMakeFiles/adsynth_util.dir/cli.cpp.o"
  "CMakeFiles/adsynth_util.dir/cli.cpp.o.d"
  "CMakeFiles/adsynth_util.dir/ids.cpp.o"
  "CMakeFiles/adsynth_util.dir/ids.cpp.o.d"
  "CMakeFiles/adsynth_util.dir/json.cpp.o"
  "CMakeFiles/adsynth_util.dir/json.cpp.o.d"
  "CMakeFiles/adsynth_util.dir/rng.cpp.o"
  "CMakeFiles/adsynth_util.dir/rng.cpp.o.d"
  "CMakeFiles/adsynth_util.dir/strings.cpp.o"
  "CMakeFiles/adsynth_util.dir/strings.cpp.o.d"
  "CMakeFiles/adsynth_util.dir/table.cpp.o"
  "CMakeFiles/adsynth_util.dir/table.cpp.o.d"
  "CMakeFiles/adsynth_util.dir/timer.cpp.o"
  "CMakeFiles/adsynth_util.dir/timer.cpp.o.d"
  "libadsynth_util.a"
  "libadsynth_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adsynth_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
