# Empty compiler generated dependencies file for adsynth_util.
# This may be replaced when dependencies are built.
