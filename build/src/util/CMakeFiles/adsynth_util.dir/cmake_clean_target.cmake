file(REMOVE_RECURSE
  "libadsynth_util.a"
)
