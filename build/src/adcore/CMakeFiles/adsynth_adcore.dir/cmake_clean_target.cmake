file(REMOVE_RECURSE
  "libadsynth_adcore.a"
)
