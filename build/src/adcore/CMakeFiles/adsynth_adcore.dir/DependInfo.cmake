
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adcore/attack_graph.cpp" "src/adcore/CMakeFiles/adsynth_adcore.dir/attack_graph.cpp.o" "gcc" "src/adcore/CMakeFiles/adsynth_adcore.dir/attack_graph.cpp.o.d"
  "/root/repo/src/adcore/bloodhound_io.cpp" "src/adcore/CMakeFiles/adsynth_adcore.dir/bloodhound_io.cpp.o" "gcc" "src/adcore/CMakeFiles/adsynth_adcore.dir/bloodhound_io.cpp.o.d"
  "/root/repo/src/adcore/convert.cpp" "src/adcore/CMakeFiles/adsynth_adcore.dir/convert.cpp.o" "gcc" "src/adcore/CMakeFiles/adsynth_adcore.dir/convert.cpp.o.d"
  "/root/repo/src/adcore/naming.cpp" "src/adcore/CMakeFiles/adsynth_adcore.dir/naming.cpp.o" "gcc" "src/adcore/CMakeFiles/adsynth_adcore.dir/naming.cpp.o.d"
  "/root/repo/src/adcore/schema.cpp" "src/adcore/CMakeFiles/adsynth_adcore.dir/schema.cpp.o" "gcc" "src/adcore/CMakeFiles/adsynth_adcore.dir/schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adsynth_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graphdb/CMakeFiles/adsynth_graphdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
