file(REMOVE_RECURSE
  "CMakeFiles/adsynth_adcore.dir/attack_graph.cpp.o"
  "CMakeFiles/adsynth_adcore.dir/attack_graph.cpp.o.d"
  "CMakeFiles/adsynth_adcore.dir/bloodhound_io.cpp.o"
  "CMakeFiles/adsynth_adcore.dir/bloodhound_io.cpp.o.d"
  "CMakeFiles/adsynth_adcore.dir/convert.cpp.o"
  "CMakeFiles/adsynth_adcore.dir/convert.cpp.o.d"
  "CMakeFiles/adsynth_adcore.dir/naming.cpp.o"
  "CMakeFiles/adsynth_adcore.dir/naming.cpp.o.d"
  "CMakeFiles/adsynth_adcore.dir/schema.cpp.o"
  "CMakeFiles/adsynth_adcore.dir/schema.cpp.o.d"
  "libadsynth_adcore.a"
  "libadsynth_adcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adsynth_adcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
