# Empty dependencies file for adsynth_adcore.
# This may be replaced when dependencies are built.
