file(REMOVE_RECURSE
  "libadsynth_graphdb.a"
)
