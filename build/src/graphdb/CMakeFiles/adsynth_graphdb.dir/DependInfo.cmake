
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graphdb/csv_io.cpp" "src/graphdb/CMakeFiles/adsynth_graphdb.dir/csv_io.cpp.o" "gcc" "src/graphdb/CMakeFiles/adsynth_graphdb.dir/csv_io.cpp.o.d"
  "/root/repo/src/graphdb/cypher.cpp" "src/graphdb/CMakeFiles/adsynth_graphdb.dir/cypher.cpp.o" "gcc" "src/graphdb/CMakeFiles/adsynth_graphdb.dir/cypher.cpp.o.d"
  "/root/repo/src/graphdb/neo4j_io.cpp" "src/graphdb/CMakeFiles/adsynth_graphdb.dir/neo4j_io.cpp.o" "gcc" "src/graphdb/CMakeFiles/adsynth_graphdb.dir/neo4j_io.cpp.o.d"
  "/root/repo/src/graphdb/property.cpp" "src/graphdb/CMakeFiles/adsynth_graphdb.dir/property.cpp.o" "gcc" "src/graphdb/CMakeFiles/adsynth_graphdb.dir/property.cpp.o.d"
  "/root/repo/src/graphdb/store.cpp" "src/graphdb/CMakeFiles/adsynth_graphdb.dir/store.cpp.o" "gcc" "src/graphdb/CMakeFiles/adsynth_graphdb.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adsynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
