# Empty dependencies file for adsynth_graphdb.
# This may be replaced when dependencies are built.
