file(REMOVE_RECURSE
  "CMakeFiles/adsynth_graphdb.dir/csv_io.cpp.o"
  "CMakeFiles/adsynth_graphdb.dir/csv_io.cpp.o.d"
  "CMakeFiles/adsynth_graphdb.dir/cypher.cpp.o"
  "CMakeFiles/adsynth_graphdb.dir/cypher.cpp.o.d"
  "CMakeFiles/adsynth_graphdb.dir/neo4j_io.cpp.o"
  "CMakeFiles/adsynth_graphdb.dir/neo4j_io.cpp.o.d"
  "CMakeFiles/adsynth_graphdb.dir/property.cpp.o"
  "CMakeFiles/adsynth_graphdb.dir/property.cpp.o.d"
  "CMakeFiles/adsynth_graphdb.dir/store.cpp.o"
  "CMakeFiles/adsynth_graphdb.dir/store.cpp.o.d"
  "libadsynth_graphdb.a"
  "libadsynth_graphdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adsynth_graphdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
