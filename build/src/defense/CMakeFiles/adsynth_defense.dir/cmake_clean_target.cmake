file(REMOVE_RECURSE
  "libadsynth_defense.a"
)
