# Empty compiler generated dependencies file for adsynth_defense.
# This may be replaced when dependencies are built.
