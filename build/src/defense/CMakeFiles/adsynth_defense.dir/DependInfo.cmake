
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defense/double_oracle.cpp" "src/defense/CMakeFiles/adsynth_defense.dir/double_oracle.cpp.o" "gcc" "src/defense/CMakeFiles/adsynth_defense.dir/double_oracle.cpp.o.d"
  "/root/repo/src/defense/edge_block.cpp" "src/defense/CMakeFiles/adsynth_defense.dir/edge_block.cpp.o" "gcc" "src/defense/CMakeFiles/adsynth_defense.dir/edge_block.cpp.o.d"
  "/root/repo/src/defense/goodhound.cpp" "src/defense/CMakeFiles/adsynth_defense.dir/goodhound.cpp.o" "gcc" "src/defense/CMakeFiles/adsynth_defense.dir/goodhound.cpp.o.d"
  "/root/repo/src/defense/honeypot.cpp" "src/defense/CMakeFiles/adsynth_defense.dir/honeypot.cpp.o" "gcc" "src/defense/CMakeFiles/adsynth_defense.dir/honeypot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adsynth_util.dir/DependInfo.cmake"
  "/root/repo/build/src/adcore/CMakeFiles/adsynth_adcore.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/adsynth_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/graphdb/CMakeFiles/adsynth_graphdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
