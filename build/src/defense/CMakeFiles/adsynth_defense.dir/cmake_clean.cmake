file(REMOVE_RECURSE
  "CMakeFiles/adsynth_defense.dir/double_oracle.cpp.o"
  "CMakeFiles/adsynth_defense.dir/double_oracle.cpp.o.d"
  "CMakeFiles/adsynth_defense.dir/edge_block.cpp.o"
  "CMakeFiles/adsynth_defense.dir/edge_block.cpp.o.d"
  "CMakeFiles/adsynth_defense.dir/goodhound.cpp.o"
  "CMakeFiles/adsynth_defense.dir/goodhound.cpp.o.d"
  "CMakeFiles/adsynth_defense.dir/honeypot.cpp.o"
  "CMakeFiles/adsynth_defense.dir/honeypot.cpp.o.d"
  "libadsynth_defense.a"
  "libadsynth_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adsynth_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
