file(REMOVE_RECURSE
  "CMakeFiles/adsynth_analytics.dir/ad_metrics.cpp.o"
  "CMakeFiles/adsynth_analytics.dir/ad_metrics.cpp.o.d"
  "CMakeFiles/adsynth_analytics.dir/attack_paths.cpp.o"
  "CMakeFiles/adsynth_analytics.dir/attack_paths.cpp.o.d"
  "CMakeFiles/adsynth_analytics.dir/graph_view.cpp.o"
  "CMakeFiles/adsynth_analytics.dir/graph_view.cpp.o.d"
  "CMakeFiles/adsynth_analytics.dir/metrics.cpp.o"
  "CMakeFiles/adsynth_analytics.dir/metrics.cpp.o.d"
  "CMakeFiles/adsynth_analytics.dir/reachability.cpp.o"
  "CMakeFiles/adsynth_analytics.dir/reachability.cpp.o.d"
  "CMakeFiles/adsynth_analytics.dir/rp_rate.cpp.o"
  "CMakeFiles/adsynth_analytics.dir/rp_rate.cpp.o.d"
  "CMakeFiles/adsynth_analytics.dir/sessions.cpp.o"
  "CMakeFiles/adsynth_analytics.dir/sessions.cpp.o.d"
  "libadsynth_analytics.a"
  "libadsynth_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adsynth_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
