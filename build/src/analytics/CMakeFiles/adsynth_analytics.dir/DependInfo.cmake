
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/ad_metrics.cpp" "src/analytics/CMakeFiles/adsynth_analytics.dir/ad_metrics.cpp.o" "gcc" "src/analytics/CMakeFiles/adsynth_analytics.dir/ad_metrics.cpp.o.d"
  "/root/repo/src/analytics/attack_paths.cpp" "src/analytics/CMakeFiles/adsynth_analytics.dir/attack_paths.cpp.o" "gcc" "src/analytics/CMakeFiles/adsynth_analytics.dir/attack_paths.cpp.o.d"
  "/root/repo/src/analytics/graph_view.cpp" "src/analytics/CMakeFiles/adsynth_analytics.dir/graph_view.cpp.o" "gcc" "src/analytics/CMakeFiles/adsynth_analytics.dir/graph_view.cpp.o.d"
  "/root/repo/src/analytics/metrics.cpp" "src/analytics/CMakeFiles/adsynth_analytics.dir/metrics.cpp.o" "gcc" "src/analytics/CMakeFiles/adsynth_analytics.dir/metrics.cpp.o.d"
  "/root/repo/src/analytics/reachability.cpp" "src/analytics/CMakeFiles/adsynth_analytics.dir/reachability.cpp.o" "gcc" "src/analytics/CMakeFiles/adsynth_analytics.dir/reachability.cpp.o.d"
  "/root/repo/src/analytics/rp_rate.cpp" "src/analytics/CMakeFiles/adsynth_analytics.dir/rp_rate.cpp.o" "gcc" "src/analytics/CMakeFiles/adsynth_analytics.dir/rp_rate.cpp.o.d"
  "/root/repo/src/analytics/sessions.cpp" "src/analytics/CMakeFiles/adsynth_analytics.dir/sessions.cpp.o" "gcc" "src/analytics/CMakeFiles/adsynth_analytics.dir/sessions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adsynth_util.dir/DependInfo.cmake"
  "/root/repo/build/src/adcore/CMakeFiles/adsynth_adcore.dir/DependInfo.cmake"
  "/root/repo/build/src/graphdb/CMakeFiles/adsynth_graphdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
