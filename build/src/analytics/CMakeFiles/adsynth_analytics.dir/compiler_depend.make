# Empty compiler generated dependencies file for adsynth_analytics.
# This may be replaced when dependencies are built.
