file(REMOVE_RECURSE
  "libadsynth_analytics.a"
)
