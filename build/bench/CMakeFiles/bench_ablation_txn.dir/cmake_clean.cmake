file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_txn.dir/bench_ablation_txn.cpp.o"
  "CMakeFiles/bench_ablation_txn.dir/bench_ablation_txn.cpp.o.d"
  "bench_ablation_txn"
  "bench_ablation_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
