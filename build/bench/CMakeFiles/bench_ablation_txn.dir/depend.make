# Empty dependencies file for bench_ablation_txn.
# This may be replaced when dependencies are built.
