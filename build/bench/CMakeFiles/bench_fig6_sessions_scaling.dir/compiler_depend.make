# Empty compiler generated dependencies file for bench_fig6_sessions_scaling.
# This may be replaced when dependencies are built.
