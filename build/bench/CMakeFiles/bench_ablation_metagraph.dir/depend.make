# Empty dependencies file for bench_ablation_metagraph.
# This may be replaced when dependencies are built.
