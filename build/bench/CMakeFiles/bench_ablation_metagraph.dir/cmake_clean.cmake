file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_metagraph.dir/bench_ablation_metagraph.cpp.o"
  "CMakeFiles/bench_ablation_metagraph.dir/bench_ablation_metagraph.cpp.o.d"
  "bench_ablation_metagraph"
  "bench_ablation_metagraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_metagraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
