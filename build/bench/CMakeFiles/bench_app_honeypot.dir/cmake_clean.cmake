file(REMOVE_RECURSE
  "CMakeFiles/bench_app_honeypot.dir/bench_app_honeypot.cpp.o"
  "CMakeFiles/bench_app_honeypot.dir/bench_app_honeypot.cpp.o.d"
  "bench_app_honeypot"
  "bench_app_honeypot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_honeypot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
