# Empty dependencies file for bench_app_honeypot.
# This may be replaced when dependencies are built.
