# Empty dependencies file for bench_fig12_double_oracle.
# This may be replaced when dependencies are built.
