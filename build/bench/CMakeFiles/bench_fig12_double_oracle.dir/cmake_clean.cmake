file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_double_oracle.dir/bench_fig12_double_oracle.cpp.o"
  "CMakeFiles/bench_fig12_double_oracle.dir/bench_fig12_double_oracle.cpp.o.d"
  "bench_fig12_double_oracle"
  "bench_fig12_double_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_double_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
