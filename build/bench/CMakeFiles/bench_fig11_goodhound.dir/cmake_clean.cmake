file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_goodhound.dir/bench_fig11_goodhound.cpp.o"
  "CMakeFiles/bench_fig11_goodhound.dir/bench_fig11_goodhound.cpp.o.d"
  "bench_fig11_goodhound"
  "bench_fig11_goodhound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_goodhound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
