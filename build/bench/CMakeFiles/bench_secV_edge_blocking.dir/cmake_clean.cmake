file(REMOVE_RECURSE
  "CMakeFiles/bench_secV_edge_blocking.dir/bench_secV_edge_blocking.cpp.o"
  "CMakeFiles/bench_secV_edge_blocking.dir/bench_secV_edge_blocking.cpp.o.d"
  "bench_secV_edge_blocking"
  "bench_secV_edge_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secV_edge_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
