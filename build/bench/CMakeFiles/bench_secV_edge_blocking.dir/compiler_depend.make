# Empty compiler generated dependencies file for bench_secV_edge_blocking.
# This may be replaced when dependencies are built.
