# Empty compiler generated dependencies file for bench_fig9_users_to_da.
# This may be replaced when dependencies are built.
