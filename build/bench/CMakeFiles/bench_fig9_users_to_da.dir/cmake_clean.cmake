file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_users_to_da.dir/bench_fig9_users_to_da.cpp.o"
  "CMakeFiles/bench_fig9_users_to_da.dir/bench_fig9_users_to_da.cpp.o.d"
  "bench_fig9_users_to_da"
  "bench_fig9_users_to_da.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_users_to_da.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
