file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tiers.dir/bench_ablation_tiers.cpp.o"
  "CMakeFiles/bench_ablation_tiers.dir/bench_ablation_tiers.cpp.o.d"
  "bench_ablation_tiers"
  "bench_ablation_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
