file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_sessions_security.dir/bench_fig7_sessions_security.cpp.o"
  "CMakeFiles/bench_fig7_sessions_security.dir/bench_fig7_sessions_security.cpp.o.d"
  "bench_fig7_sessions_security"
  "bench_fig7_sessions_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sessions_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
