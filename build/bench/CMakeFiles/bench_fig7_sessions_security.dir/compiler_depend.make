# Empty compiler generated dependencies file for bench_fig7_sessions_security.
# This may be replaced when dependencies are built.
