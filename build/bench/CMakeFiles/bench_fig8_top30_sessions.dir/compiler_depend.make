# Empty compiler generated dependencies file for bench_fig8_top30_sessions.
# This may be replaced when dependencies are built.
