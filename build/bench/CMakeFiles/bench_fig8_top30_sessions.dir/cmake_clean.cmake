file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_top30_sessions.dir/bench_fig8_top30_sessions.cpp.o"
  "CMakeFiles/bench_fig8_top30_sessions.dir/bench_fig8_top30_sessions.cpp.o.d"
  "bench_fig8_top30_sessions"
  "bench_fig8_top30_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_top30_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
