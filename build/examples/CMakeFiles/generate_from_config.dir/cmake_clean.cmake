file(REMOVE_RECURSE
  "CMakeFiles/generate_from_config.dir/generate_from_config.cpp.o"
  "CMakeFiles/generate_from_config.dir/generate_from_config.cpp.o.d"
  "generate_from_config"
  "generate_from_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_from_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
