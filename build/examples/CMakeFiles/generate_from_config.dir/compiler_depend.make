# Empty compiler generated dependencies file for generate_from_config.
# This may be replaced when dependencies are built.
