# Empty compiler generated dependencies file for neo4j_roundtrip.
# This may be replaced when dependencies are built.
