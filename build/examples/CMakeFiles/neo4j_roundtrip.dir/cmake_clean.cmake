file(REMOVE_RECURSE
  "CMakeFiles/neo4j_roundtrip.dir/neo4j_roundtrip.cpp.o"
  "CMakeFiles/neo4j_roundtrip.dir/neo4j_roundtrip.cpp.o.d"
  "neo4j_roundtrip"
  "neo4j_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo4j_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
