file(REMOVE_RECURSE
  "CMakeFiles/forest_attack.dir/forest_attack.cpp.o"
  "CMakeFiles/forest_attack.dir/forest_attack.cpp.o.d"
  "forest_attack"
  "forest_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forest_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
