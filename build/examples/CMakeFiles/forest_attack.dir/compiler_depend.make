# Empty compiler generated dependencies file for forest_attack.
# This may be replaced when dependencies are built.
