# Empty compiler generated dependencies file for red_team_paths.
# This may be replaced when dependencies are built.
