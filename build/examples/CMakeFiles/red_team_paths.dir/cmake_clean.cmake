file(REMOVE_RECURSE
  "CMakeFiles/red_team_paths.dir/red_team_paths.cpp.o"
  "CMakeFiles/red_team_paths.dir/red_team_paths.cpp.o.d"
  "red_team_paths"
  "red_team_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/red_team_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
