file(REMOVE_RECURSE
  "CMakeFiles/enterprise_generation.dir/enterprise_generation.cpp.o"
  "CMakeFiles/enterprise_generation.dir/enterprise_generation.cpp.o.d"
  "enterprise_generation"
  "enterprise_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
