# Empty compiler generated dependencies file for enterprise_generation.
# This may be replaced when dependencies are built.
