
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/enterprise_generation.cpp" "examples/CMakeFiles/enterprise_generation.dir/enterprise_generation.cpp.o" "gcc" "examples/CMakeFiles/enterprise_generation.dir/enterprise_generation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adsynth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/adsynth_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/adsynth_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/adsynth_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/metagraph/CMakeFiles/adsynth_metagraph.dir/DependInfo.cmake"
  "/root/repo/build/src/adcore/CMakeFiles/adsynth_adcore.dir/DependInfo.cmake"
  "/root/repo/build/src/graphdb/CMakeFiles/adsynth_graphdb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adsynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
