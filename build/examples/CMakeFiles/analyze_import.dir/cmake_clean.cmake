file(REMOVE_RECURSE
  "CMakeFiles/analyze_import.dir/analyze_import.cpp.o"
  "CMakeFiles/analyze_import.dir/analyze_import.cpp.o.d"
  "analyze_import"
  "analyze_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
