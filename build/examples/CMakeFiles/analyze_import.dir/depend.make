# Empty dependencies file for analyze_import.
# This may be replaced when dependencies are built.
