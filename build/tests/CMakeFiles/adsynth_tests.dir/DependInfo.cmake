
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adcore/attack_graph_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/adcore/attack_graph_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/adcore/attack_graph_test.cpp.o.d"
  "/root/repo/tests/adcore/bloodhound_io_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/adcore/bloodhound_io_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/adcore/bloodhound_io_test.cpp.o.d"
  "/root/repo/tests/adcore/schema_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/adcore/schema_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/adcore/schema_test.cpp.o.d"
  "/root/repo/tests/analytics/ad_metrics_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/analytics/ad_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/analytics/ad_metrics_test.cpp.o.d"
  "/root/repo/tests/analytics/analytics_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/analytics/analytics_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/analytics/analytics_test.cpp.o.d"
  "/root/repo/tests/analytics/attack_paths_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/analytics/attack_paths_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/analytics/attack_paths_test.cpp.o.d"
  "/root/repo/tests/baselines/baselines_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/baselines/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/baselines/baselines_test.cpp.o.d"
  "/root/repo/tests/core/config_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/core/config_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/core/config_test.cpp.o.d"
  "/root/repo/tests/core/export_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/core/export_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/core/export_test.cpp.o.d"
  "/root/repo/tests/core/forest_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/core/forest_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/core/forest_test.cpp.o.d"
  "/root/repo/tests/core/generator_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/core/generator_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/core/generator_test.cpp.o.d"
  "/root/repo/tests/core/structure_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/core/structure_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/core/structure_test.cpp.o.d"
  "/root/repo/tests/defense/defense_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/defense/defense_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/defense/defense_test.cpp.o.d"
  "/root/repo/tests/defense/honeypot_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/defense/honeypot_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/defense/honeypot_test.cpp.o.d"
  "/root/repo/tests/graphdb/csv_io_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/graphdb/csv_io_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/graphdb/csv_io_test.cpp.o.d"
  "/root/repo/tests/graphdb/cypher_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/graphdb/cypher_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/graphdb/cypher_test.cpp.o.d"
  "/root/repo/tests/graphdb/cypher_traversal_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/graphdb/cypher_traversal_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/graphdb/cypher_traversal_test.cpp.o.d"
  "/root/repo/tests/graphdb/neo4j_io_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/graphdb/neo4j_io_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/graphdb/neo4j_io_test.cpp.o.d"
  "/root/repo/tests/graphdb/store_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/graphdb/store_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/graphdb/store_test.cpp.o.d"
  "/root/repo/tests/integration/pipeline_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/integration/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/integration/pipeline_test.cpp.o.d"
  "/root/repo/tests/integration/property_sweep_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/integration/property_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/integration/property_sweep_test.cpp.o.d"
  "/root/repo/tests/metagraph/algorithms_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/metagraph/algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/metagraph/algorithms_test.cpp.o.d"
  "/root/repo/tests/metagraph/analysis_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/metagraph/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/metagraph/analysis_test.cpp.o.d"
  "/root/repo/tests/metagraph/expansion_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/metagraph/expansion_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/metagraph/expansion_test.cpp.o.d"
  "/root/repo/tests/metagraph/metagraph_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/metagraph/metagraph_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/metagraph/metagraph_test.cpp.o.d"
  "/root/repo/tests/util/ids_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/util/ids_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/util/ids_test.cpp.o.d"
  "/root/repo/tests/util/json_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/util/json_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/util/json_test.cpp.o.d"
  "/root/repo/tests/util/misc_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/util/misc_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/util/misc_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/adsynth_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/adsynth_tests.dir/util/rng_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adsynth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/adsynth_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/adsynth_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/adsynth_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/metagraph/CMakeFiles/adsynth_metagraph.dir/DependInfo.cmake"
  "/root/repo/build/src/adcore/CMakeFiles/adsynth_adcore.dir/DependInfo.cmake"
  "/root/repo/build/src/graphdb/CMakeFiles/adsynth_graphdb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adsynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
