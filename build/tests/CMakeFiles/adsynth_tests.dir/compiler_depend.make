# Empty compiler generated dependencies file for adsynth_tests.
# This may be replaced when dependencies are built.
