// Config-driven generation: the batch tool a downstream user scripts
// against.  Reads a GeneratorConfig JSON (see `--print-config` for a
// template), generates the estate, prints the realism report, and exports
// in the requested formats.
//
//   ./generate_from_config --print-config > ad.json
//   ./generate_from_config --config ad.json --out estate --format json,csv
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "adcore/bloodhound_io.hpp"
#include "adcore/convert.hpp"
#include "analytics/ad_metrics.hpp"
#include "analytics/metrics.hpp"
#include "core/export.hpp"
#include "core/generator.hpp"
#include "graphdb/csv_io.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

using namespace adsynth;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("print-config", "print a default config template and exit");
  args.add_option("config", "GeneratorConfig JSON file", "");
  args.add_option("out", "output path prefix", "adsynth_out");
  args.add_option("format",
                    "comma-separated outputs: json, csv, bloodhound", "json");
  args.add_option("trace",
                  "write a Chrome trace_event JSON of the run's spans to "
                  "this path (open in chrome://tracing or Perfetto)",
                  "");
  try {
    if (!args.parse(argc, argv)) return 0;
    util::ScopedCapture capture(args.str("trace"));

    if (args.flag("print-config")) {
      std::printf("%s\n", core::GeneratorConfig{}.to_json().c_str());
      return 0;
    }

    const std::string config_path = args.str("config");
    core::GeneratorConfig cfg;
    if (!config_path.empty()) {
      std::ifstream in(config_path);
      if (!in) {
        std::fprintf(stderr, "cannot read config: %s\n", config_path.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      cfg = core::GeneratorConfig::from_json(buffer.str());
    }

    const core::GeneratedAd ad = core::generate_ad(cfg);
    std::printf("%s",
                analytics::compute_metrics(ad.graph).describe().c_str());
    std::printf("%s",
                analytics::compute_ad_metrics(ad.graph).describe().c_str());

    const std::string prefix = args.str("out");
    for (const std::string& format : util::split(args.str("format"), ',')) {
      const auto fmt = util::to_lower(std::string(util::trim(format)));
      if (fmt == "json") {
        core::export_json(ad, prefix + ".json", cfg.element_to_element,
                          cfg.domain_fqdn);
        std::printf("wrote %s.json (APOC rows)\n", prefix.c_str());
      } else if (fmt == "csv") {
        graphdb::export_csv_files(core::to_store(ad, cfg.domain_fqdn),
                                  prefix);
        std::printf("wrote %s_nodes.csv and %s_edges.csv\n", prefix.c_str(),
                    prefix.c_str());
      } else if (fmt == "bloodhound") {
        std::filesystem::create_directories(prefix + "_bloodhound");
        adcore::export_bloodhound_collection(ad.graph, prefix + "_bloodhound",
                                             cfg.domain_fqdn);
        std::printf("wrote %s_bloodhound/{users,computers,groups,ous,gpos,"
                    "domains}.json (collector format)\n",
                    prefix.c_str());
      } else if (!fmt.empty()) {
        std::fprintf(stderr,
                     "unknown format '%s' (json, csv, bloodhound)\n",
                     fmt.c_str());
        return 2;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
