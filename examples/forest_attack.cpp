// Forest scenario (extension): a root domain plus two child domains with
// trusts, Enterprise Admins, and cross-domain credential leaks — then the
// forest-takeover analysis: which child-domain users can ride leaked root
// credentials all the way to the root Domain Admins.
//
//   ./forest_attack [--nodes N] [--leaks L] [--topology hub|chain|mesh]
#include <cstdio>
#include <exception>

#include "analytics/reachability.hpp"
#include "analytics/rp_rate.hpp"
#include "core/forest.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

using namespace adsynth;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_option("nodes", "nodes per domain", "10000");
  args.add_option("leaks", "cross-domain credential leaks per child", "10");
  args.add_option("topology", "trust topology: hub, chain or mesh", "hub");
  args.add_option("seed", "forest seed", "1");
  args.add_option("trace",
                  "write a Chrome trace_event JSON of the run's spans to "
                  "this path (open in chrome://tracing or Perfetto)",
                  "");
  try {
    if (!args.parse(argc, argv)) return 0;
    util::ScopedCapture capture(args.str("trace"));
    const auto nodes = static_cast<std::size_t>(args.integer("nodes"));

    core::ForestConfig cfg;
    auto root = core::GeneratorConfig::secure(nodes, 1);
    root.domain_fqdn = "corp.example";
    auto emea = core::GeneratorConfig::secure(nodes, 2);
    emea.domain_fqdn = "emea.corp.example";
    auto apac = core::GeneratorConfig::vulnerable(nodes, 3);
    apac.domain_fqdn = "apac.corp.example";
    cfg.domains = {root, emea, apac};
    cfg.cross_domain_leaks =
        static_cast<std::uint32_t>(args.integer("leaks"));
    cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
    const std::string topology = args.str("topology");
    cfg.topology = topology == "chain" ? core::TrustTopology::kChain
                   : topology == "mesh" ? core::TrustTopology::kFullMesh
                                        : core::TrustTopology::kHubAndSpoke;

    const core::GeneratedForest forest = core::generate_forest(cfg);
    std::printf("forest: %zu domains, %zu nodes, %zu edges, %zu trusts\n\n",
                forest.domain_count(), forest.graph.node_count(),
                forest.graph.edge_count(), forest.trusts.size());

    const auto reach = analytics::users_reaching_da(forest.graph);
    const auto users = analytics::regular_users(forest.graph);
    std::vector<std::size_t> breached_per_domain(forest.domain_count(), 0);
    std::vector<std::size_t> users_per_domain(forest.domain_count(), 0);
    for (std::size_t i = 0; i < users.size(); ++i) {
      const std::size_t d = forest.domain_of(users[i]);
      ++users_per_domain[d];
      if (reach.distances[i] != analytics::kUnreachable) {
        ++breached_per_domain[d];
      }
    }
    util::TextTable table({"domain", "regular users",
                           "can reach ROOT Domain Admins"});
    for (std::size_t d = 0; d < forest.domain_count(); ++d) {
      table.add_row({forest.graph.name(forest.domain_heads[d]),
                     std::to_string(users_per_domain[d]),
                     std::to_string(breached_per_domain[d])});
    }
    std::fputs(table.render().c_str(), stdout);

    const auto rp = analytics::route_penetration(forest.graph);
    std::printf("\nforest choke points:\n");
    for (const auto& [node, rate] : rp.top(5)) {
      std::printf("  %-40s %s\n", forest.graph.name(node).c_str(),
                  util::percent(rate, 1).c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
