// Red-team scenario: generate a vulnerable estate, enumerate the breached
// population, and print concrete attack paths (node-by-node, with edge
// kinds) from compromised regular users to Domain Admins — the view a
// red-team operator gets from BloodHound after a collection run.
//
//   ./red_team_paths [--nodes N] [--seed S] [--paths K]
#include <cstdio>
#include <exception>

#include "analytics/attack_paths.hpp"
#include "analytics/reachability.hpp"
#include "analytics/rp_rate.hpp"
#include "core/generator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

using namespace adsynth;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_option("nodes", "target node count", "20000");
  args.add_option("seed", "generator seed", "7");
  args.add_option("paths", "attack paths to print", "5");
  args.add_option("trace",
                  "write a Chrome trace_event JSON of the run's spans to "
                  "this path (open in chrome://tracing or Perfetto)",
                  "");
  try {
    if (!args.parse(argc, argv)) return 0;
    util::ScopedCapture capture(args.str("trace"));

    const auto cfg = core::GeneratorConfig::vulnerable(
        static_cast<std::size_t>(args.integer("nodes")),
        static_cast<std::uint64_t>(args.integer("seed")));
    const core::GeneratedAd ad = core::generate_ad(cfg);
    const auto& g = ad.graph;

    const auto reach = analytics::users_reaching_da(g);
    std::printf("compromise surface: %zu of %zu regular users can escalate "
                "to Domain Admins (%.2f%%)\n\n",
                reach.users_with_path, reach.regular_users,
                reach.fraction * 100.0);

    // Print the K shortest concrete paths.
    analytics::AttackPathOptions path_options;
    path_options.max_paths = static_cast<std::size_t>(args.integer("paths"));
    const auto paths = analytics::shortest_attack_paths(g, path_options);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      std::printf("path %zu (%zu hops): %s\n", i + 1, paths[i].length(),
                  paths[i].describe(g).c_str());
    }

    // Choke points a blue team should prioritize.
    const auto rp = analytics::route_penetration(g);
    std::printf("\nchoke points (defender's patch priority):\n");
    util::TextTable table({"node", "kind", "RP rate"});
    for (const auto& [node, rate] : rp.top(8)) {
      table.add_row({g.name(node),
                     std::string(adcore::object_kind_label(g.kind(node))),
                     util::percent(rate, 1)});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
