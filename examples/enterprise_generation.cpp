// Enterprise scenario: build a multi-department, multi-site AD estate from
// an explicit organisational description (the §III-B inputs: departments,
// branch locations, root folders, tier count), write the config next to the
// export, and print the organisational inventory — what an AD architect
// would use ADSynth for when provisioning a training or simulation lab.
//
//   ./enterprise_generation [--nodes N] [--tiers K] [--out PREFIX]
#include <cstdio>
#include <exception>
#include <fstream>

#include "analytics/metrics.hpp"
#include "core/export.hpp"
#include "core/generator.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

using namespace adsynth;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_option("nodes", "target node count", "50000");
  args.add_option("tiers", "tier-model depth", "3");
  args.add_option("seed", "generator seed", "2024");
  args.add_option("out", "output prefix (writes PREFIX.json + PREFIX.config."
                  "json; empty: skip)", "");
  args.add_option("trace",
                  "write a Chrome trace_event JSON of the run's spans to "
                  "this path (open in chrome://tracing or Perfetto)",
                  "");
  try {
    if (!args.parse(argc, argv)) return 0;
    util::ScopedCapture capture(args.str("trace"));

    core::GeneratorConfig cfg = core::GeneratorConfig::secure(
        static_cast<std::size_t>(args.integer("nodes")),
        static_cast<std::uint64_t>(args.integer("seed")));
    cfg.num_tiers = static_cast<std::uint32_t>(args.integer("tiers"));
    cfg.domain_fqdn = "contoso.example";
    cfg.departments = {"Engineering", "Finance", "HR", "Sales", "Legal",
                       "Operations"};
    cfg.locations = {"Berlin", "Singapore", "Austin"};
    cfg.num_root_folders = 6;
    cfg.validate();

    const core::GeneratedAd ad = core::generate_ad(cfg);

    std::printf("domain %s: %zu objects, %zu relationships\n",
                util::to_upper(cfg.domain_fqdn).c_str(),
                ad.graph.node_count(), ad.graph.edge_count());
    std::printf(
        "users: %zu (%zu admin, %zu disabled)  computers: %zu "
        "(%zu servers, %zu PAWs)\n",
        ad.stats.users, ad.stats.admin_users, ad.stats.disabled_users,
        ad.stats.computers, ad.stats.servers, ad.stats.paws);
    std::printf("OUs: %zu  groups: %zu  GPOs: %zu\n\n", ad.stats.ous,
                ad.stats.groups, ad.stats.gpos);

    // Tier inventory.
    util::TextTable tiers({"tier", "admin users", "computers",
                           "admin groups"});
    for (std::uint32_t t = 0; t < cfg.num_tiers; ++t) {
      tiers.add_row({std::to_string(t),
                     std::to_string(ad.admin_users_by_tier[t].size()),
                     std::to_string(ad.computers_by_tier[t].size()),
                     std::to_string(ad.org.admin_groups_by_tier[t].size())});
    }
    std::fputs(tiers.render().c_str(), stdout);

    // Department inventory.
    std::printf("\n");
    util::TextTable depts({"department", "groups (dist+sec)"});
    const auto departments = cfg.effective_departments();
    for (std::size_t d = 0; d < departments.size(); ++d) {
      depts.add_row({departments[d],
                     std::to_string(ad.org.department_groups[d].size())});
    }
    std::fputs(depts.render().c_str(), stdout);

    const auto metrics = analytics::compute_metrics(ad.graph);
    std::printf("\ndensity %s, %zu violated edges\n",
                util::sci(metrics.density).c_str(), metrics.violations);

    const std::string prefix = args.str("out");
    if (!prefix.empty()) {
      core::export_json(ad, prefix + ".json", cfg.element_to_element,
                        cfg.domain_fqdn);
      std::ofstream config_out(prefix + ".config.json");
      config_out << cfg.to_json() << "\n";
      std::printf("wrote %s.json and %s.config.json (re-run with the same "
                  "config to reproduce the identical graph)\n",
                  prefix.c_str(), prefix.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
