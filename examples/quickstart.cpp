// Quickstart: generate a secure Active Directory attack graph, inspect its
// realism metrics, and export it as Neo4j/BloodHound JSON.
//
//   ./quickstart [--nodes N] [--preset secure|vulnerable|highly_secure]
//                [--seed S] [--out graph.json] [--element-to-element]
#include <cstdio>
#include <exception>
#include <string>

#include "analytics/ad_metrics.hpp"
#include "analytics/metrics.hpp"
#include "analytics/reachability.hpp"
#include "analytics/rp_rate.hpp"
#include "analytics/sessions.hpp"
#include "core/export.hpp"
#include "core/generator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

using namespace adsynth;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_option("nodes", "target node count", "10000");
  args.add_option("preset", "security preset: secure, vulnerable, highly_secure",
                  "secure");
  args.add_option("seed", "generator seed", "1");
  args.add_option("out", "APOC-JSON output path (empty: skip export)", "");
  args.add_flag("element-to-element",
                "export the element-to-element expansion instead of the "
                "default set-to-set graph");
  args.add_option("trace",
                  "write a Chrome trace_event JSON of the run's spans to "
                  "this path (open in chrome://tracing or Perfetto)",
                  "");
  try {
    if (!args.parse(argc, argv)) return 0;
    util::ScopedCapture capture(args.str("trace"));

    const auto nodes = static_cast<std::size_t>(args.integer("nodes"));
    const auto seed = static_cast<std::uint64_t>(args.integer("seed"));
    const std::string preset = args.str("preset");
    core::GeneratorConfig cfg;
    if (preset == "secure") {
      cfg = core::GeneratorConfig::secure(nodes, seed);
    } else if (preset == "vulnerable") {
      cfg = core::GeneratorConfig::vulnerable(nodes, seed);
    } else if (preset == "highly_secure") {
      cfg = core::GeneratorConfig::highly_secure(nodes, seed);
    } else {
      std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
      return 2;
    }

    util::Stopwatch timer;
    const core::GeneratedAd ad = core::generate_ad(cfg);
    std::printf("generated %s AD graph in %.3f s\n", preset.c_str(),
                timer.seconds());

    const auto metrics = analytics::compute_metrics(ad.graph);
    std::printf("%s", metrics.describe().c_str());
    std::printf("%s", analytics::compute_ad_metrics(ad.graph).describe().c_str());

    const auto sessions = analytics::session_stats(ad.graph);
    std::printf("sessions: total=%zu peak/user=%u mean/user=%.2f\n",
                sessions.total_sessions, sessions.peak, sessions.mean);

    const auto reach = analytics::users_reaching_da(ad.graph);
    std::printf("regular users with an attack path to Domain Admins: %zu of "
                "%zu (%s)\n",
                reach.users_with_path, reach.regular_users,
                util::percent(reach.fraction, 3).c_str());

    const auto rp = analytics::route_penetration(ad.graph);
    std::printf("peak Route Penetration Rate: %s (choke points: ",
                util::percent(rp.peak(), 1).c_str());
    for (const auto& [node, rate] : rp.top(3)) {
      std::printf("[%s %s] ", ad.graph.name(node).c_str(),
                  util::percent(rate, 1).c_str());
    }
    std::printf(")\n");

    const std::string out = args.str("out");
    if (!out.empty()) {
      core::export_json(ad, out, args.flag("element-to-element"),
                        cfg.domain_fqdn);
      std::printf("exported Neo4j/BloodHound JSON to %s\n", out.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
