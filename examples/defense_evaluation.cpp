// Blue-team scenario: evaluate the §V defense algorithms on one generated
// estate — GoodHound-style weakest-link removal, the Double Oracle
// hardening game, and the edge-blocking algorithms — and report what each
// recommends, as a security team comparing remediation strategies would.
//
//   ./defense_evaluation [--nodes N] [--preset secure|vulnerable] [--seed S]
#include <cstdio>
#include <exception>

#include "analytics/reachability.hpp"
#include "core/generator.hpp"
#include "defense/double_oracle.hpp"
#include "defense/edge_block.hpp"
#include "defense/goodhound.hpp"
#include "defense/honeypot.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

using namespace adsynth;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_option("nodes", "target node count", "20000");
  args.add_option("preset", "security preset", "secure");
  args.add_option("seed", "generator seed", "3");
  args.add_option("trace",
                  "write a Chrome trace_event JSON of the run's spans to "
                  "this path (open in chrome://tracing or Perfetto)",
                  "");
  try {
    if (!args.parse(argc, argv)) return 0;
    util::ScopedCapture capture(args.str("trace"));

    const auto nodes = static_cast<std::size_t>(args.integer("nodes"));
    const auto seed = static_cast<std::uint64_t>(args.integer("seed"));
    const auto cfg = args.str("preset") == "vulnerable"
                         ? core::GeneratorConfig::vulnerable(nodes, seed)
                         : core::GeneratorConfig::secure(nodes, seed);
    const core::GeneratedAd ad = core::generate_ad(cfg);
    const auto& g = ad.graph;

    const auto before = analytics::users_reaching_da(g);
    std::printf("estate: %zu nodes, %zu edges; %zu regular users can reach "
                "Domain Admins\n\n",
                g.node_count(), g.edge_count(), before.users_with_path);

    // --- GoodHound-style weakest-link removal ------------------------------
    {
      const auto result = defense::eliminate_attack_paths(g);
      std::printf("[GoodHound] %zu prioritized removals eliminate every "
                  "attack path%s\n",
                  result.removals(),
                  result.exhausted ? " (cap hit, paths remain!)" : "");
      util::TextTable table({"#", "cut edge", "kind"});
      for (std::size_t i = 0; i < result.removed.size() && i < 5; ++i) {
        const auto& e = g.edges()[result.removed[i]];
        table.add_row({std::to_string(i + 1),
                       g.name(e.source) + " -> " + g.name(e.target),
                       std::string(adcore::edge_kind_name(e.kind))});
      }
      std::fputs(table.render().c_str(), stdout);
    }

    // --- Double Oracle hardening --------------------------------------------
    {
      const auto result = defense::harden(g);
      std::printf("\n[Double Oracle] shortest attack length %d; %zu cuts "
                  "eliminate all shortest-length paths "
                  "(%zu oracle iterations)\n",
                  result.initial_shortest_length, result.cut_count(),
                  result.oracle_iterations);
      for (const auto cut : result.cuts) {
        const auto& e = g.edges()[cut];
        std::printf("  cut: %s -[%s]-> %s\n", g.name(e.source).c_str(),
                    adcore::edge_kind_name(e.kind).data(),
                    g.name(e.target).c_str());
      }
    }

    // --- Honeypot placement ([21]) -----------------------------------------
    {
      defense::HoneypotOptions options;
      options.count = 3;
      const auto result = defense::place_honeypots(g, options);
      std::printf("\n[Honeypots] %zu placements intercept %.1f%% of shortest "
                  "attack paths\n",
                  result.placements.size(), result.final_coverage() * 100.0);
      for (std::size_t i = 0; i < result.placements.size(); ++i) {
        std::printf("  plant on %s (coverage after: %.1f%%)\n",
                    g.name(result.placements[i]).c_str(),
                    result.coverage_after[i] * 100.0);
      }
    }

    // --- Edge blocking ----------------------------------------------------------
    {
      std::printf("\n[Edge blocking]\n");
      for (const auto& [algorithm, name] :
           {std::pair{defense::EdgeBlockAlgorithm::kIpKernelization,
                      "IP (kernelization)"},
            std::pair{defense::EdgeBlockAlgorithm::kIterativeLp, "IterLP"}}) {
        try {
          const auto result = defense::block_edges(g, algorithm);
          std::printf("  %s: blocked %zu edges, attacker success %.3f\n",
                      name, result.blocked_edges.size(),
                      result.attacker_success);
        } catch (const defense::GraphSetupError& e) {
          std::printf("  %s: %s\n", name, e.what());
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
