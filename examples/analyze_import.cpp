// Audit an existing AD attack graph: import APOC JSON rows (e.g. exported
// from a BloodHound-style collection or another ADSynth run) and print the
// full realism/security report — the workflow of a defender benchmarking
// their estate against the paper's metrics.
//
//   ./analyze_import graph.json [--top 10]
#include <cstdio>
#include <exception>

#include "adcore/convert.hpp"
#include "analytics/ad_metrics.hpp"
#include "analytics/attack_paths.hpp"
#include "analytics/metrics.hpp"
#include "analytics/reachability.hpp"
#include "analytics/rp_rate.hpp"
#include "analytics/sessions.hpp"
#include "graphdb/neo4j_io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

using namespace adsynth;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_option("top", "choke points / paths to list", "5");
  args.add_option("trace",
                  "write a Chrome trace_event JSON of the run's spans to "
                  "this path (open in chrome://tracing or Perfetto)",
                  "");
  try {
    if (!args.parse(argc, argv)) return 0;
    util::ScopedCapture capture(args.str("trace"));
    if (args.positional().size() != 1) {
      std::fprintf(stderr, "usage: analyze_import <graph.json> [--top N]\n");
      return 2;
    }
    const auto top = static_cast<std::size_t>(args.integer("top"));

    const auto store = graphdb::import_apoc_json_file(args.positional()[0]);
    const auto graph = adcore::from_store(store);
    std::printf("%s\n", analytics::compute_metrics(graph).describe().c_str());
    std::printf("%s\n",
                analytics::compute_ad_metrics(graph).describe().c_str());

    const auto sessions = analytics::session_stats(graph);
    std::printf("sessions: peak %u per user, mean %.2f\n", sessions.peak,
                sessions.mean);

    if (graph.domain_admins() == adcore::kNoNodeIndex) {
      std::printf("\nno Domain Admins group found — skipping attack-path "
                  "analysis\n");
      return 0;
    }
    const auto reach = analytics::users_reaching_da(graph);
    std::printf("\nregular users with an attack path to Domain Admins: "
                "%zu of %zu (%s)\n",
                reach.users_with_path, reach.regular_users,
                util::percent(reach.fraction, 3).c_str());

    const auto rp = analytics::route_penetration(graph);
    if (rp.contributing_sources > 0) {
      std::printf("\nchoke points:\n");
      for (const auto& [node, rate] : rp.top(top)) {
        std::printf("  %-48s %s\n", graph.name(node).c_str(),
                    util::percent(rate, 1).c_str());
      }
      analytics::AttackPathOptions options;
      options.max_paths = top;
      std::printf("\nshortest attack paths:\n");
      for (const auto& path : analytics::shortest_attack_paths(graph, options)) {
        std::printf("  %s\n", path.describe(graph).c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
