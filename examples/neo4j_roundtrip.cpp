// Interop scenario: export a generated estate as Neo4j/APOC JSON (the
// BloodHound-loadable format of §III-B), read it back, replay it into a
// fresh graph store through the Cypher-lite layer, and verify the security
// analytics agree — the workflow of a user moving ADSynth data between
// tools.
//
//   ./neo4j_roundtrip [--nodes N] [--dir DIR]
#include <cstdio>
#include <exception>
#include <string>

#include "adcore/convert.hpp"
#include "analytics/metrics.hpp"
#include "analytics/reachability.hpp"
#include "core/export.hpp"
#include "core/generator.hpp"
#include "graphdb/cypher.hpp"
#include "graphdb/neo4j_io.hpp"
#include "util/cli.hpp"
#include "util/trace.hpp"

using namespace adsynth;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_option("nodes", "target node count", "5000");
  args.add_option("dir", "directory for the JSON artifacts", "/tmp");
  args.add_option("trace",
                  "write a Chrome trace_event JSON of the run's spans to "
                  "this path (open in chrome://tracing or Perfetto)",
                  "");
  try {
    if (!args.parse(argc, argv)) return 0;
    util::ScopedCapture capture(args.str("trace"));

    const auto cfg = core::GeneratorConfig::secure(
        static_cast<std::size_t>(args.integer("nodes")), 11);
    const core::GeneratedAd ad = core::generate_ad(cfg);
    const std::string path = args.str("dir") + "/adsynth_roundtrip.json";

    // 1. Export the default set-to-set graph.
    core::export_json(ad, path, /*element_to_element=*/false);
    std::printf("exported %zu nodes / %zu edges to %s\n",
                ad.graph.node_count(), ad.graph.edge_count(), path.c_str());

    // 2. Import and convert back.
    const auto imported = graphdb::import_apoc_json_file(path);
    const auto back = adcore::from_store(imported);
    std::printf("imported: %zu nodes / %zu edges\n", back.node_count(),
                back.edge_count());

    // 3. Replay a few records through the Cypher-lite layer, as an
    // external tool loading the dump statement-by-statement would.
    graphdb::GraphStore replay;
    graphdb::CypherSession session(replay);
    session.run("CREATE INDEX ON :User(name)");
    session.run("CREATE (n:User {name: 'IMPORTED_PROBE', enabled: true})");
    session.run("MATCH (n:User {name: 'IMPORTED_PROBE'}) SET n.admin = false");
    std::printf("cypher replay: %zu transactions committed\n",
                session.transactions());

    // 4. Verify analytics agree across the round trip.
    const auto before = analytics::users_reaching_da(ad.graph);
    const auto after = analytics::users_reaching_da(back);
    std::printf("breached users before/after round trip: %zu / %zu %s\n",
                before.users_with_path, after.users_with_path,
                before.users_with_path == after.users_with_path ? "(match)"
                                                                : "(MISMATCH)");
    const auto m1 = analytics::compute_metrics(ad.graph);
    const auto m2 = analytics::compute_metrics(back);
    std::printf("density before/after: %g / %g %s\n", m1.density, m2.density,
                m1.density == m2.density ? "(match)" : "(MISMATCH)");
    return before.users_with_path == after.users_with_path &&
                   m1.density == m2.density
               ? 0
               : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
