#!/usr/bin/env python3
"""Gate a fresh BENCH_micro.json against a committed baseline.

Compares the two iteration-count-independent series the bench emits:

  * records  — per-op ns/op, matched by (name, graph_size, threads)
  * phases   — per-span p50 latency (ns), matched by span name

A fresh value may exceed its baseline by at most the tolerance (relative
slack: 1.0 means "2x the baseline passes, 2.01x fails").  Phases whose
baseline p50 sits below the noise floor are skipped — sub-microsecond
buckets flap with scheduler jitter and would make the gate cry wolf.

CI keeps the default tolerance generous (ADSYNTH_BENCH_TOLERANCE, see
scripts/ci.sh): the gate exists to catch order-of-magnitude regressions —
an accidentally quadratic loop, a lock on the fast path — not 5%% noise,
because baselines are recorded on whatever machine ran the seed PR.

Improvements are reported but never fail the gate; refresh the baseline
(cp build-ci/bench/BENCH_micro.json bench/baselines/) to ratchet it.

A fresh record with no baseline counterpart is a MISSING_BASELINE: a new
benchmark landed without committing its baseline, so the gate has nothing
to hold it to.  That fails with exit 2 (taking precedence over ordinary
regressions) instead of silently passing as "new" — commit the refreshed
baseline alongside the benchmark to clear it.

Exit codes: 0 ok, 1 regression(s), 2 usage/format error or fresh
record(s) missing from the baseline.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if not isinstance(doc, dict) or "records" not in doc:
        sys.exit(f"bench_compare: {path} is not an object-format BENCH json "
                 "(want keys: records, phases, ...)")
    return doc


def record_key(rec):
    return (rec["name"], rec.get("graph_size", 0), rec.get("threads", 1))


def fmt_key(key):
    name, size, threads = key
    parts = [name]
    if size:
        parts.append(str(size))
    if threads != 1:
        parts.append(f"t{threads}")
    return "/".join(parts)


def main():
    parser = argparse.ArgumentParser(
        description="compare BENCH_micro.json against a baseline")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument("fresh", help="freshly measured json")
    parser.add_argument("--tolerance", type=float, default=1.0,
                        help="allowed relative ns/op increase per record "
                             "(1.0 = 2x baseline; default %(default)s)")
    parser.add_argument("--phase-tolerance", type=float, default=None,
                        help="allowed relative p50 increase per phase "
                             "(default: same as --tolerance)")
    parser.add_argument("--min-p50-ns", type=float, default=1000.0,
                        help="skip phases whose baseline p50 is below this "
                             "noise floor (default %(default)s ns)")
    args = parser.parse_args()
    phase_tolerance = (args.tolerance if args.phase_tolerance is None
                       else args.phase_tolerance)

    base = load(args.baseline)
    fresh = load(args.fresh)

    regressions = []
    missing_baseline = []
    rows = []

    base_records = {record_key(r): r for r in base["records"]}
    fresh_records = {record_key(r): r for r in fresh["records"]}
    for key, b in sorted(base_records.items()):
        f = fresh_records.get(key)
        if f is None:
            regressions.append(f"record {fmt_key(key)}: present in baseline "
                               "but not measured (refresh the baseline if "
                               "the benchmark was removed)")
            continue
        b_ns, f_ns = b["ns_per_op"], f["ns_per_op"]
        ratio = f_ns / b_ns if b_ns > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            regressions.append(
                f"record {fmt_key(key)}: {f_ns:.0f} ns/op vs baseline "
                f"{b_ns:.0f} ({ratio:.2f}x > {1.0 + args.tolerance:.2f}x)")
        elif ratio < 1.0 / (1.0 + args.tolerance):
            verdict = "improved"
        rows.append((fmt_key(key), b_ns, f_ns, ratio, verdict))
    for key in sorted(set(fresh_records) - set(base_records)):
        missing_baseline.append(
            f"record {fmt_key(key)}: measured but absent from the baseline "
            "(commit the refreshed baseline alongside the new benchmark)")
        rows.append((fmt_key(key), None,
                     fresh_records[key]["ns_per_op"], None,
                     "MISSING_BASELINE"))

    base_phases = {p["name"]: p for p in base.get("phases", [])}
    fresh_phases = {p["name"]: p for p in fresh.get("phases", [])}
    for name, b in sorted(base_phases.items()):
        f = fresh_phases.get(name)
        b_p50 = b["p50_ns"]
        if b_p50 < args.min_p50_ns:
            continue  # below the noise floor: informational only
        if f is None:
            # A phase can legitimately vanish (e.g. a code path no longer
            # taken at bench scale); report it without failing.
            rows.append((f"phase:{name}", b_p50, None, None, "missing"))
            continue
        f_p50 = f["p50_ns"]
        ratio = f_p50 / b_p50 if b_p50 > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + phase_tolerance:
            verdict = "REGRESSION"
            regressions.append(
                f"phase {name}: p50 {f_p50} ns vs baseline {b_p50} "
                f"({ratio:.2f}x > {1.0 + phase_tolerance:.2f}x)")
        elif ratio < 1.0 / (1.0 + phase_tolerance):
            verdict = "improved"
        rows.append((f"phase:{name}", b_p50, f_p50, ratio, verdict))

    name_w = max((len(r[0]) for r in rows), default=4)
    print(f"{'benchmark':<{name_w}}  {'baseline':>12}  {'fresh':>12}  "
          f"{'ratio':>6}  verdict")
    for name, b_ns, f_ns, ratio, verdict in rows:
        b_s = f"{b_ns:.0f}" if b_ns is not None else "-"
        f_s = f"{f_ns:.0f}" if f_ns is not None else "-"
        r_s = f"{ratio:.2f}" if ratio is not None else "-"
        print(f"{name:<{name_w}}  {b_s:>12}  {f_s:>12}  {r_s:>6}  {verdict}")

    if missing_baseline:
        # Takes precedence over regressions: an ungated record means the
        # comparison itself is incomplete, not merely failing.
        print(f"\nbench_compare: {len(missing_baseline)} fresh record(s) "
              "with no baseline (MISSING_BASELINE):", file=sys.stderr)
        for m in missing_baseline:
            print(f"  {m}", file=sys.stderr)
        if regressions:
            print(f"\nbench_compare: additionally {len(regressions)} "
                  f"regression(s) beyond tolerance {args.tolerance:.2f}:",
                  file=sys.stderr)
            for r in regressions:
                print(f"  {r}", file=sys.stderr)
        return 2
    if regressions:
        print(f"\nbench_compare: {len(regressions)} regression(s) beyond "
              f"tolerance {args.tolerance:.2f}:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: OK ({len(rows)} series within tolerance "
          f"{args.tolerance:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
