#!/usr/bin/env sh
# Full local CI pipeline.  Runs every lane the repo defines and prints a
# per-stage PASS/FAIL/SKIP table at the end; exits non-zero if any stage
# failed.  SKIP is reserved for lanes whose toolchain is absent on the
# host (clang-only lanes, missing sanitizer runtimes) — a stage that runs
# and breaks is always FAIL.
#
# Stages:
#   build      — configure + compile, warnings promoted (-DADSYNTH_WERROR=ON)
#   test       — full ctest suite (includes lint.determinism/lint.selftest
#                and the store invariant-injection tests)
#   lint       — tools/adsynth_lint standalone over the repo (writing the
#                machine-readable findings JSON into the log dir) + fixtures
#                self-test (same binary the ctest entries run; kept as its
#                own stage so a lint break is named in the table).  The
#                summary echoes the binary's per-rule finding counts.
#   lint.headers — per-header self-containment: builds the generated
#                adsynth_header_check object library (every public .hpp as
#                its own TU), same target the lint.headers ctest drives
#   bench.regression — quick bench_micro run (with --trace) diffed against
#                bench/baselines/BENCH_micro.json by scripts/bench_compare.py;
#                tolerance via ADSYNTH_BENCH_TOLERANCE (default 1.0 = 2x,
#                an order-of-magnitude gate, not a 5% one)
#   persistence.recovery — crash-recovery corruption matrix
#                (tools/recovery_check.cpp): truncated snapshot, bit-flipped
#                section, stale format version, torn WAL tail; recovery logs
#                land in the log dir (CI uploads them as artifacts)
#   analyze    — Clang -Werror=thread-safety lane (SKIP without clang++)
#   tidy       — clang-tidy profile (SKIP without clang-tidy)
#   asan/tsan/ubsan — sanitizer lanes (SKIP when the compiler lacks the
#                runtime; scripts/sanitize_lanes.sh probes before building)
#   tsan.concurrency — the snapshot writer-vs-readers stress suites rerun
#                under TSan with ADSYNTH_TEST_THREADS=8, as their own named
#                stage (reuses the tsan lane's build tree)
#
# Usage: scripts/ci.sh [jobs]
set -u

jobs="${1:-$(nproc 2>/dev/null || echo 4)}"
root="$(cd "$(dirname "$0")/.." && pwd)"
log_dir="$root/build-ci-logs"
mkdir -p "$log_dir"

stages=""
results=""
lint_counts=""

record() {
  stages="$stages $1"
  results="$results $2"
}

print_summary() {
  echo ""
  echo "ci summary"
  echo "----------------------------"
  i=1
  for s in $stages; do
    r="$(echo $results | cut -d' ' -f"$i")"
    printf '  %-18s %s\n' "$s" "$r"
    i=$((i + 1))
  done
  echo "----------------------------"
  if [ -n "$lint_counts" ]; then
    echo "  lint rule counts: $lint_counts"
  fi
}

# The exit code is derived from the recorded results, never from a flag a
# later PASS could clobber: one FAIL anywhere fails the run.
any_failed() {
  for r in $results; do
    [ "$r" = "FAIL" ] && return 0
  done
  return 1
}

# On ^C, still print what completed so a long run isn't opaque.
trap 'echo ""; echo "ci: interrupted"; print_summary; exit 130' INT

# run_stage <name> <log> <cmd...>: runs the command, records PASS/FAIL.
run_stage() {
  name="$1"; log="$log_dir/$2"; shift 2
  echo "== ci stage: $name =="
  if "$@" > "$log" 2>&1; then
    record "$name" PASS
  else
    record "$name" FAIL
    echo "-- $name failed; last 30 log lines ($log):"
    tail -n 30 "$log"
  fi
}

have() { command -v "$1" > /dev/null 2>&1; }

sanitizer_supported() {
  dir="$(mktemp -d)"
  printf 'int main(){return 0;}\n' > "$dir/p.cpp"
  ok=1
  "${CXX:-c++}" "-fsanitize=$1" -o "$dir/p" "$dir/p.cpp" \
    > /dev/null 2>&1 && ok=0
  rm -rf "$dir"
  return $ok
}

# --- build + test ----------------------------------------------------------
run_stage build build.log sh -c "
  cmake -B '$root/build-ci' -S '$root' -DADSYNTH_WERROR=ON &&
  cmake --build '$root/build-ci' -j '$jobs'"

if [ "$(echo $results | awk '{print $NF}')" = "PASS" ]; then
  run_stage test test.log \
    ctest --test-dir "$root/build-ci" --output-on-failure -j "$jobs"
  run_stage lint lint.log sh -c "
    '$root/build-ci/tools/adsynth_lint' '$root' \
        --json '$log_dir/lint_findings.json' &&
    '$root/build-ci/tools/adsynth_lint' --self-test '$root/tests/lint_fixtures'"
  # The binary prints one stable machine-parsable line per scan
  # ("adsynth_lint: rule-counts files=N total=M rule=count ..."); lift it
  # into the summary so a green run still shows what the lint looked at.
  lint_counts="$(sed -n 's/^adsynth_lint: rule-counts //p' \
                     "$log_dir/lint.log" | head -n 1)"
  run_stage lint.headers lint_headers.log \
    cmake --build "$root/build-ci" --target adsynth_header_check -j "$jobs"
  run_stage persistence.recovery persistence_recovery.log \
    "$root/build-ci/tools/adsynth_recovery_check" \
    --dir "$log_dir/recovery_work"
  run_stage bench.regression bench_regression.log sh -c "
    cd '$root/build-ci/bench' &&
    ./bench_micro --benchmark_min_time=0.05 --trace trace_micro.json &&
    python3 '$root/scripts/bench_compare.py' \
        '$root/bench/baselines/BENCH_micro.json' BENCH_micro.json \
        --tolerance \"\${ADSYNTH_BENCH_TOLERANCE:-1.0}\" &&
    ./bench_forest_scale --repeats 1 &&
    python3 '$root/scripts/bench_compare.py' \
        '$root/bench/baselines/BENCH_forest_scale.json' \
        BENCH_forest_scale.json \
        --tolerance \"\${ADSYNTH_BENCH_TOLERANCE:-1.0}\" &&
    ./bench_query --repeats 3 &&
    python3 '$root/scripts/bench_compare.py' \
        '$root/bench/baselines/BENCH_query.json' BENCH_query.json \
        --tolerance \"\${ADSYNTH_BENCH_TOLERANCE:-1.0}\" &&
    ./bench_concurrency --threads 8 &&
    python3 '$root/scripts/bench_compare.py' \
        '$root/bench/baselines/BENCH_concurrency.json' \
        BENCH_concurrency.json \
        --tolerance \"\${ADSYNTH_BENCH_TOLERANCE:-1.0}\" &&
    ./bench_persistence --repeats 1 &&
    python3 '$root/scripts/bench_compare.py' \
        '$root/bench/baselines/BENCH_persistence.json' \
        BENCH_persistence.json \
        --tolerance \"\${ADSYNTH_BENCH_TOLERANCE:-1.0}\""
else
  record test SKIP   # no build to test; the build FAIL already gates exit
  record lint SKIP
  record lint.headers SKIP
  record persistence.recovery SKIP
  record bench.regression SKIP
fi

# --- clang-only lanes ------------------------------------------------------
if have clang++; then
  run_stage analyze analyze.log sh -c "
    cmake -B '$root/build-analyze' -S '$root' \
          -DCMAKE_CXX_COMPILER=clang++ -DADSYNTH_ANALYZE=ON &&
    cmake --build '$root/build-analyze' -j '$jobs'"
else
  echo "== ci stage: analyze — SKIP (clang++ not on PATH)"
  record analyze SKIP
fi

if have clang-tidy || have clang-tidy-19 || have clang-tidy-18 \
   || have clang-tidy-17 || have clang-tidy-16 || have clang-tidy-15; then
  run_stage tidy tidy.log "$root/scripts/static_analysis.sh" "$jobs"
else
  echo "== ci stage: tidy — SKIP (clang-tidy not on PATH)"
  record tidy SKIP
fi

# --- sanitizer lanes -------------------------------------------------------
for lane in address thread undefined; do
  case "$lane" in
    address) name=asan ;;
    thread) name=tsan ;;
    undefined) name=ubsan ;;
  esac
  if sanitizer_supported "$lane"; then
    run_stage "$name" "$name.log" \
      "$root/scripts/sanitize_lanes.sh" "$jobs" "$lane"
  else
    echo "== ci stage: $name — SKIP (compiler lacks -fsanitize=$lane)"
    record "$name" SKIP
  fi
done

# --- concurrency stress under TSan -----------------------------------------
# The snapshot writer-vs-readers suites get their own named stage with a
# pinned reader width, so a data race in the MVCC path shows up in the table
# as tsan.concurrency instead of hiding inside the general tsan lane.  It
# reuses the build-tsan tree the lane above configured, so the extra cost is
# one filtered ctest run.
if sanitizer_supported thread; then
  run_stage tsan.concurrency tsan_concurrency.log sh -c "
    ADSYNTH_TEST_THREADS=8 '$root/scripts/sanitize_lanes.sh' '$jobs' thread \
        '--filter=Snapshot|Concurrent'"
else
  echo "== ci stage: tsan.concurrency — SKIP (compiler lacks -fsanitize=thread)"
  record tsan.concurrency SKIP
fi

# --- summary ---------------------------------------------------------------
print_summary
if any_failed; then
  echo "ci: FAILED (logs in $log_dir)"
  exit 1
fi
echo "ci: all runnable stages passed"
