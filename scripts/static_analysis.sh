#!/usr/bin/env sh
# clang-tidy gate over the library sources (.clang-tidy has the profile).
#
# Builds a compile_commands.json in build-tidy/ and runs clang-tidy over
# every translation unit in src/, tools/, bench/ and examples/.  Tests are
# covered indirectly through HeaderFilterRegex; bench/examples mains are
# thin but they exercise public APIs no test does, so they stay in the
# sweep.
#
# Requires clang-tidy.  Fails fast with an actionable message when the
# host does not ship it — a skipped analysis must never look like a pass.
#
# Usage: scripts/static_analysis.sh [jobs]
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 4)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

tidy=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                 clang-tidy-16 clang-tidy-15; do
  if command -v "$candidate" > /dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done
if [ -z "$tidy" ]; then
  echo "static_analysis: clang-tidy not found on PATH" >&2
  echo "static_analysis: install the clang-tidy package (LLVM >= 15) or" >&2
  echo "  run this lane on a host that ships it; the determinism lint" >&2
  echo "  (ctest -R lint) and sanitizer lanes do not need clang." >&2
  exit 3
fi

cmake -B "$root/build-tidy" -S "$root" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null

files="$(find "$root/src" "$root/tools" "$root/bench" "$root/examples" \
              -name '*.cpp' | sort)"
total="$(printf '%s\n' "$files" | wc -l | tr -d ' ')"
echo "static_analysis: $tidy over $total translation units"

# xargs -P fans the single-TU runs out; clang-tidy exits non-zero on any
# finding because WarningsAsErrors promotes the whole profile.
printf '%s\n' "$files" \
  | xargs -n 1 -P "$jobs" "$tidy" -p "$root/build-tidy" --quiet

echo "static_analysis: clean"
