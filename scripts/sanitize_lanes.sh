#!/usr/bin/env sh
# Runs both sanitizer lanes (README.md §Sanitizers):
#
#   address  — full test suite under ASan+UBSan.  Gates the graphdb store /
#              transaction machinery: the rollback suite
#              (tests/graphdb/rollback_test.cpp) replays undo logs over raw
#              vector tails, exactly the code ASan is good at checking.
#   thread   — parallel-determinism suite under TSan.  Gates
#              src/util/parallel.* and the parallelized kernels.
#
# Usage: scripts/sanitize_lanes.sh [jobs]
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 4)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$root/build-asan" -S "$root" -DADSYNTH_SANITIZE=address
cmake --build "$root/build-asan" -j "$jobs"
ctest --test-dir "$root/build-asan" --output-on-failure -j "$jobs"

cmake -B "$root/build-tsan" -S "$root" -DADSYNTH_SANITIZE=thread
cmake --build "$root/build-tsan" -j "$jobs"
ctest --test-dir "$root/build-tsan" --output-on-failure -j "$jobs" -R Parallel

echo "sanitize_lanes: both lanes passed"
