#!/usr/bin/env sh
# Runs the three sanitizer lanes (README.md §Sanitizers; DESIGN.md
# §Static analysis & invariants):
#
#   address   — full test suite under ASan+UBSan.  Gates the graphdb store /
#               transaction machinery: the rollback suite
#               (tests/graphdb/rollback_test.cpp) replays undo logs over raw
#               vector tails, exactly the code ASan is good at checking.
#   thread    — parallel-determinism and snapshot-concurrency suites under
#               TSan.  Gates src/util/parallel.*, the parallelized kernels,
#               and the MVCC writer-vs-readers stress tests.
#   undefined — full test suite under UBSan with -fno-sanitize-recover=all:
#               signed overflow, invalid shifts, misaligned loads and friends
#               abort the run instead of printing and continuing.
#
# Each lane is probed first: if the host compiler cannot link the requested
# -fsanitize= runtime, the script fails fast with a clear message instead of
# surfacing a cryptic configure error halfway through.
#
# Usage: scripts/sanitize_lanes.sh [jobs] [lane...] [--filter=REGEX]
#   scripts/sanitize_lanes.sh            # all three lanes, auto jobs
#   scripts/sanitize_lanes.sh 8 thread   # just the TSan lane with 8 jobs
#   scripts/sanitize_lanes.sh thread '--filter=Snapshot|Concurrent'
#                                        # TSan over the MVCC stress suites
#
# --filter overrides the lane's default ctest -R selection (the thread
# lane defaults to 'Parallel|Snapshot|Concurrent': the deterministic-
# parallelism suites plus the snapshot writer-vs-readers stress tests).
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"

jobs=""
lanes=""
filter=""
for arg in "$@"; do
  case "$arg" in
    --filter=*) filter="${arg#--filter=}" ;;
    address|thread|undefined) lanes="$lanes $arg" ;;
    *[!0-9]*) echo "sanitize_lanes: unknown argument '$arg'" >&2; exit 2 ;;
    *) jobs="$arg" ;;
  esac
done
[ -n "$jobs" ] || jobs="$(nproc 2>/dev/null || echo 4)"
[ -n "$lanes" ] || lanes="address thread undefined"

cxx="${CXX:-c++}"

# probe <sanitizer-flag>: compile+link a trivial program with the flag.
probe() {
  probe_dir="$(mktemp -d)"
  printf 'int main(){return 0;}\n' > "$probe_dir/probe.cpp"
  if "$cxx" "-fsanitize=$1" -o "$probe_dir/probe" "$probe_dir/probe.cpp" \
      > /dev/null 2>&1; then
    rm -rf "$probe_dir"
    return 0
  fi
  rm -rf "$probe_dir"
  return 1
}

require_sanitizer() {
  if ! probe "$1"; then
    echo "sanitize_lanes: compiler '$cxx' cannot build with -fsanitize=$1" >&2
    echo "sanitize_lanes: install the $1 sanitizer runtime (e.g. the" >&2
    echo "  libasan/libtsan/libubsan package matching your compiler) or" >&2
    echo "  point \$CXX at a toolchain that ships it." >&2
    exit 3
  fi
}

run_lane() {
  lane="$1"
  build="$root/build-$2"
  filter="$3"
  echo "== sanitize lane: $lane =="
  cmake -B "$build" -S "$root" -DADSYNTH_SANITIZE="$lane"
  cmake --build "$build" -j "$jobs"
  if [ -n "$filter" ]; then
    ctest --test-dir "$build" --output-on-failure -j "$jobs" -R "$filter"
  else
    ctest --test-dir "$build" --output-on-failure -j "$jobs"
  fi
}

for lane in $lanes; do
  case "$lane" in
    address)   require_sanitizer address ;;
    thread)    require_sanitizer thread ;;
    undefined) require_sanitizer undefined ;;
  esac
done

for lane in $lanes; do
  case "$lane" in
    address)   run_lane address asan "${filter:-}" ;;
    thread)    run_lane thread tsan "${filter:-Parallel|Snapshot|Concurrent}" ;;
    undefined) run_lane undefined ubsan "${filter:-}" ;;
  esac
done

echo "sanitize_lanes: all requested lanes passed:$lanes"
