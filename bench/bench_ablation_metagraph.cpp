// Ablation — the paper's central scalability claim: "the metagraph model
// allows us to generate nodes and edges using groups of entities,
// significantly reducing the complexity of the graph."
//
// We measure, per size: generation time, the set-to-set edge count the
// metagraph carries, and the element-to-element edge count that same
// information expands to.  The ratio is the work the set-to-set
// representation avoids.
#include "metagraph/algorithms.hpp"
#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("full", "paper-scale sizes");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);

  print_header("Ablation: set-to-set metagraph vs element-to-element",
               "set-level edges carry the same permissions with far fewer "
               "edges; expansion cost grows with |V_e|x|W_e|");

  util::TextTable table({"|V|", "gen time [s]", "set-to-set edges",
                         "expanded edges", "ratio", "expand time [s]"});
  std::vector<std::size_t> sizes = graph_sizes(args.flag("full"));
  if (!args.flag("full")) {
    // The 100k expansion materializes ~10^8 element pairs; keep the default
    // run at 50k and reserve the full sweep for --full.
    while (!sizes.empty() && sizes.back() > 50'000) sizes.pop_back();
  }
  for (const std::size_t nodes : sizes) {
    const auto cfg = core::GeneratorConfig::secure(nodes, 1);
    util::Stopwatch gen_timer;
    const auto ad = core::generate_ad(cfg);
    const double gen_time = gen_timer.seconds();

    const auto stats = metagraph::compute_stats(ad.meta);
    util::Stopwatch expand_timer;
    const auto flat = core::element_to_element_graph(ad);
    const double expand_time = expand_timer.seconds();

    table.add_row(
        {util::with_commas(nodes), util::fixed(gen_time, 3),
         util::with_commas(stats.edges), util::with_commas(flat.edge_count()),
         util::fixed(static_cast<double>(flat.edge_count()) /
                         static_cast<double>(std::max<std::size_t>(
                             1, stats.edges)),
                     2),
         util::fixed(expand_time, 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  capture.finish("ablation_metagraph");
  return 0;
}
