// Shared helpers for the experiment harness binaries.
//
// Every bench binary reproduces one table or figure of the paper.  Default
// arguments run a CI-friendly scale; pass --full for the paper-scale sizes
// (Table I goes to 10^6 nodes).  Baseline generators that cannot finish a
// size within the per-cell time budget print "-", exactly like the paper's
// DNF cells.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "adcore/attack_graph.hpp"
#include "baselines/adsimulator.hpp"
#include "baselines/dbcreator.hpp"
#include "baselines/university.hpp"
#include "core/export.hpp"
#include "core/generator.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace adsynth::bench {

/// Sizes of Table I / the figures' x-axis.
inline std::vector<std::size_t> graph_sizes(bool full) {
  if (full) {
    return {1'000, 5'000, 10'000, 50'000, 100'000, 500'000, 1'000'000};
  }
  return {1'000, 5'000, 10'000, 50'000, 100'000};
}

/// The reference scale of the AD100 experiments (§IV): 100k by default so
/// the comparisons against the University system run at the paper's scale;
/// --small drops it for quick runs.
inline std::size_t ad100_nodes(bool small) { return small ? 20'000 : 100'000; }

inline adcore::AttackGraph make_adsynth(const char* preset, std::size_t nodes,
                                        std::uint64_t seed) {
  core::GeneratorConfig cfg;
  const std::string p(preset);
  if (p == "secure") {
    cfg = core::GeneratorConfig::secure(nodes, seed);
  } else if (p == "vulnerable") {
    cfg = core::GeneratorConfig::vulnerable(nodes, seed);
  } else {
    cfg = core::GeneratorConfig::highly_secure(nodes, seed);
  }
  return core::generate_ad(cfg).graph;
}

inline adcore::AttackGraph make_dbcreator(std::size_t nodes,
                                          std::uint64_t seed) {
  baselines::DbCreatorConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  return baselines::dbcreator_graph(cfg);
}

inline adcore::AttackGraph make_adsimulator(std::size_t nodes,
                                            std::uint64_t seed) {
  baselines::AdSimulatorConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  return baselines::adsimulator_graph(cfg);
}

inline adcore::AttackGraph make_university(std::size_t nodes,
                                           std::uint64_t seed = 7) {
  baselines::UniversityConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  return baselines::university_graph(cfg);
}

/// Registers the standard --threads option every bench binary shares.
inline void add_threads_option(util::CliArgs& args) {
  args.add_option("threads",
                  "worker threads for the analytics/defense kernels "
                  "(0 = hardware_concurrency, 1 = serial)",
                  "0");
}

/// Sizes util::global_pool() from --threads; returns the resolved count.
/// Results are bit-identical at every setting (see DESIGN.md §"Parallel
/// execution model") — only the wall-clock changes.
inline std::size_t apply_threads_option(const util::CliArgs& args) {
  util::set_global_threads(static_cast<std::size_t>(args.integer("threads")));
  return util::global_threads();
}

/// Prints the standard bench header with reproduction context.
inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("== %s ==\n", experiment);
  std::printf("paper: %s\n\n", paper_claim);
}

/// Registers the standard --trace option every bench binary shares.
inline void add_trace_option(util::CliArgs& args) {
  args.add_option("trace",
                  "write a Chrome trace_event JSON of the run's spans to "
                  "this path (open in chrome://tracing or Perfetto)",
                  "");
}

/// Arms a span/metric capture over the whole bench run.  finish() writes
/// BENCH_<name>.json with the per-phase breakdown (span totals, counts,
/// p50/p95 from the duration histograms) plus the run's metric snapshot,
/// and dumps the Chrome timeline when --trace gave a path.
class TraceCapture {
 public:
  explicit TraceCapture(const util::CliArgs& args)
      : chrome_path_(args.str("trace")) {
    util::MetricsRegistry::instance().reset();
    util::trace_begin();
  }

  /// Ends the capture and writes BENCH_<bench_name>.json.  `extra` fields
  /// are merged into the document (bench_micro adds its per-op records).
  void finish(const char* bench_name, util::JsonObject extra = {}) {
    const double wall_ms = watch_.millis();
    const util::TraceReport report = util::trace_end();
    util::JsonObject doc;
    doc["bench"] = std::string(bench_name);
    doc["wall_ms"] = wall_ms;
    doc["top_level_ms"] =
        static_cast<double>(report.top_level_total_ns()) / 1e6;
    doc["dropped_events"] =
        static_cast<std::int64_t>(report.dropped_events());
    doc["phases"] = report.phases_json();
    doc["metrics"] = util::JsonValue(
        util::MetricsRegistry::instance().snapshot());
    for (auto& [key, value] : extra) doc[key] = std::move(value);
    const std::string path = std::string("BENCH_") + bench_name + ".json";
    std::ofstream out(path);
    out << util::JsonValue(std::move(doc)).dump() << "\n";
    std::fprintf(stderr, "wrote %s (%zu phases, %.1f of %.1f ms accounted)\n",
                 path.c_str(), report.spans().size(),
                 static_cast<double>(report.top_level_total_ns()) / 1e6,
                 wall_ms);
    if (!chrome_path_.empty()) {
      std::ofstream trace_out(chrome_path_);
      report.write_chrome_trace(trace_out);
      std::fprintf(stderr, "wrote Chrome trace to %s (%zu events)\n",
                   chrome_path_.c_str(), report.events().size());
    }
  }

 private:
  std::string chrome_path_;
  util::Stopwatch watch_;
};

}  // namespace adsynth::bench
