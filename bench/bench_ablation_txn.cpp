// Ablation — the transaction-per-statement effect of Table I.
//
// The same node/edge workload is written three ways: through the Cypher-lite
// session with one auto-commit transaction per statement (like the Python
// tools driving Neo4j), through the session with statements batched into
// explicit transactions (the usual driver mitigation), and through the local
// store's direct API (what ADSynth does).  The cypher/direct gap isolates
// the "large number of data transactions" the paper identifies as the
// baselines' latency source; the batched lane shows how much of the gap is
// commit overhead versus parsing.
#include "graphdb/cypher.hpp"
#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

namespace {

constexpr std::size_t kBatch = 1'000;  // statements per explicit transaction

double write_via_cypher(std::size_t users, std::size_t edges, bool batched) {
  graphdb::GraphStore store;
  graphdb::CypherSession session(store);
  util::Stopwatch timer;
  session.run("CREATE INDEX ON :User(name)");
  std::size_t in_batch = 0;
  const auto step = [&] {
    if (!batched) return;
    if (in_batch == 0) session.begin_transaction();
    if (++in_batch == kBatch) {
      session.commit();
      in_batch = 0;
    }
  };
  for (std::size_t i = 0; i < users; ++i) {
    step();
    session.run("CREATE (n:User {name: 'U" + std::to_string(i) + "'})");
  }
  for (std::size_t i = 0; i < edges; ++i) {
    const std::size_t a = i % users;
    const std::size_t b = (i * 7 + 1) % users;
    step();
    session.run("MATCH (a:User {name: 'U" + std::to_string(a) +
                "'}), (b:User {name: 'U" + std::to_string(b) +
                "'}) CREATE (a)-[:GenericAll]->(b)");
  }
  if (batched && in_batch != 0) session.commit();
  return timer.seconds();
}

double write_direct(std::size_t users, std::size_t edges) {
  graphdb::GraphStore store;
  util::Stopwatch timer;
  const auto label = store.intern_label("User");
  const auto key = store.intern_key("name");
  const auto type = store.intern_rel_type("GenericAll");
  std::vector<graphdb::NodeId> ids;
  ids.reserve(users);
  for (std::size_t i = 0; i < users; ++i) {
    graphdb::PropertyList props;
    graphdb::put_property(props, key,
                          graphdb::PropertyValue("U" + std::to_string(i)));
    ids.push_back(store.create_node_interned({label}, std::move(props)));
  }
  for (std::size_t i = 0; i < edges; ++i) {
    store.create_relationship_interned(ids[i % users],
                                       ids[(i * 7 + 1) % users], type);
  }
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("full", "larger workloads");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);

  print_header("Ablation: Cypher-lite transactions vs direct store writes",
               "per-statement transactions are the baselines' latency "
               "source; the local database removes it");

  util::TextTable table({"objects", "edges", "cypher [s]", "batched [s]",
                         "direct [s]", "slowdown"});
  const std::vector<std::pair<std::size_t, std::size_t>> workloads =
      args.flag("full")
          ? std::vector<std::pair<std::size_t, std::size_t>>{{10'000, 30'000},
                                                             {50'000, 150'000},
                                                             {100'000, 300'000}}
          : std::vector<std::pair<std::size_t, std::size_t>>{{1'000, 3'000},
                                                             {5'000, 15'000},
                                                             {20'000, 60'000}};
  for (const auto& [users, edges] : workloads) {
    const double cypher = write_via_cypher(users, edges, /*batched=*/false);
    const double batched = write_via_cypher(users, edges, /*batched=*/true);
    const double direct = write_direct(users, edges);
    table.add_row({util::with_commas(users), util::with_commas(edges),
                   util::fixed(cypher, 3), util::fixed(batched, 3),
                   util::fixed(direct, 3),
                   util::fixed(cypher / std::max(direct, 1e-9), 1) + "x"});
  }
  std::fputs(table.render().c_str(), stdout);
  capture.finish("ablation_txn");
  return 0;
}
