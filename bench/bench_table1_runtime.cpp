// Table I — running times of DBCreator, ADSimulator and ADSynth across
// graph sizes, mean ± stdev over repeated runs.
//
// The paper's numbers (Neo4j over Bolt on the authors' hardware) are
// absolute-scale different; the *shape* reproduced here is: ADSynth is
// orders of magnitude faster, ADSimulator scales further than DBCreator,
// and DBCreator stops producing graphs past 10k (here: exceeds the
// per-cell budget and prints "-", like the paper's dashes).
#include <algorithm>
#include <cmath>

#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

namespace {

struct ToolRow {
  const char* name;
  double (*run_once)(std::size_t nodes, std::uint64_t seed);
  bool exhausted = false;  // stop trying larger sizes after a DNF
  // Last two (size, mean time) points, used to project the next cell's
  // cost from the tool's observed growth exponent so DNF cells are
  // predicted rather than suffered.
  double last_nodes = 0;
  double last_mean = 0;
  double prev_nodes = 0;
  double prev_mean = 0;

  double projected(std::size_t nodes) const {
    if (last_mean <= 0) return 0.0;
    double alpha = 1.0;
    if (prev_mean > 0 && last_nodes > prev_nodes) {
      alpha = std::log(last_mean / prev_mean) /
              std::log(last_nodes / prev_nodes);
      alpha = std::clamp(alpha, 0.5, 3.0);
    }
    return last_mean *
           std::pow(static_cast<double>(nodes) / last_nodes, alpha);
  }

  void record(std::size_t nodes, double mean) {
    prev_nodes = last_nodes;
    prev_mean = last_mean;
    last_nodes = static_cast<double>(nodes);
    last_mean = mean;
  }
};

double run_dbcreator_once(std::size_t nodes, std::uint64_t seed) {
  baselines::DbCreatorConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  util::Stopwatch timer;
  baselines::run_dbcreator(cfg);
  return timer.seconds();
}

double run_adsimulator_once(std::size_t nodes, std::uint64_t seed) {
  baselines::AdSimulatorConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  util::Stopwatch timer;
  baselines::run_adsimulator(cfg);
  return timer.seconds();
}

double run_adsynth_once(std::size_t nodes, std::uint64_t seed) {
  const auto cfg = core::GeneratorConfig::secure(nodes, seed);
  util::Stopwatch timer;
  core::generate_ad(cfg);
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("full", "paper-scale sizes (up to 1M nodes) and 20 runs");
  args.add_option("runs", "runs per cell (paper: 20)", "5");
  args.add_option("budget", "per-cell wall-clock budget in seconds before a "
                  "tool is marked '-' (the paper's DNF)", "30");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);
  const bool full = args.flag("full");
  const auto runs = static_cast<std::size_t>(
      full ? 20 : args.integer("runs"));
  const double budget = args.real("budget");

  print_header("Table I: generator running times [s]",
               "ADSynth builds a 100K-node graph in ~21s where ADSimulator "
               "needs 31min and DBCreator cannot produce one at all");

  ToolRow tools[] = {{"DBCreator", &run_dbcreator_once},
                     {"ADSimulator", &run_adsimulator_once},
                     {"ADSynth", &run_adsynth_once}};

  util::TextTable table({"|V|", "DBCreator[s]", "ADSimulator[s]", "ADSynth[s]"});
  for (const std::size_t nodes : graph_sizes(full)) {
    std::vector<std::string> row{util::with_commas(nodes)};
    for (ToolRow& tool : tools) {
      if (tool.exhausted || tool.projected(nodes) > budget) {
        tool.exhausted = true;
        row.push_back("-");
        continue;
      }
      util::RunStats stats;
      bool over_budget = false;
      for (std::size_t r = 0; r < runs; ++r) {
        const double t = tool.run_once(nodes, r + 1);
        stats.add(t);
        if (t > budget) {
          over_budget = true;
          break;  // no point repeating a DNF-scale run
        }
      }
      if (over_budget) {
        // This size exceeded the budget: report "-" from the next size on,
        // matching how the paper stops reporting a tool that cannot scale.
        tool.exhausted = true;
        row.push_back(stats.count() > 1 ? stats.summary()
                                        : util::fixed(stats.mean(), 3) + " (>budget)");
      } else {
        row.push_back(stats.summary());
        tool.record(nodes, stats.mean());
      }
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nruns per cell: %zu; budget %.0fs per run; '-' = tool "
              "exceeded budget at a smaller size (paper: DNF)\n",
              runs, budget);
  capture.finish("table1_runtime");
  return 0;
}
