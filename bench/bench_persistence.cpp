// Durable-storage throughput (ROADMAP item 4): what the binary snapshot
// format and the write-ahead log cost at forest scale.
//
//   persistence.save       — snapshot serialization of the CI forest store
//                            (2 domains × 20k nodes; --full: 2 × 500k)
//   persistence.load       — snapshot deserialization + index rebuild +
//                            invariant audit; the fingerprint is asserted
//                            bit-identical to the saved store first
//   persistence.wal_append — per-transaction cost of committing with the
//                            WAL recorder armed (encode + fflush)
//   persistence.recover    — full recovery: snapshot load + WAL replay of
//                            the appended transactions
//
// Writes BENCH_persistence.json, gated by scripts/bench_compare.py against
// bench/baselines/BENCH_persistence.json.
#include "common.hpp"

#include <algorithm>
#include <filesystem>

#include "adcore/convert.hpp"
#include "core/forest.hpp"
#include "graphdb/persist.hpp"

using namespace adsynth;
using namespace adsynth::bench;

namespace {

namespace fs = std::filesystem;

core::ForestConfig make_forest(std::size_t nodes_per_domain) {
  core::ForestConfig cfg;
  for (std::size_t d = 0; d < 2; ++d) {
    core::GeneratorConfig domain =
        d % 2 == 0 ? core::GeneratorConfig::secure(nodes_per_domain, 40 + d)
                   : core::GeneratorConfig::vulnerable(nodes_per_domain,
                                                       40 + d);
    domain.domain_fqdn = "d" + std::to_string(d) + ".forest.local";
    cfg.domains.push_back(std::move(domain));
  }
  cfg.topology = core::TrustTopology::kHubAndSpoke;
  cfg.cross_domain_leaks = 10;
  cfg.seed = 17;
  return cfg;
}

/// One small committed transaction, shaped like a directory-sync delta.
void append_txn(graphdb::GraphStore& store, std::size_t i) {
  store.begin_undo_scope();
  const graphdb::NodeId u = store.create_node({"User"});
  store.set_node_property(
      u, "name", graphdb::PropertyValue("delta-" + std::to_string(i)));
  store.commit_scope();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("full", "1M-node forest (several minutes)");
  args.add_option("repeats", "timed runs per phase (median reported)", "3");
  args.add_option("txns", "WAL transactions appended before recovery",
                  "2000");
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 1;
  const auto repeats = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.integer("repeats")));
  const auto txns = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.integer("txns")));

  print_header("durable storage: snapshot + WAL throughput",
               "a sectioned binary snapshot plus a CRC-guarded log make the "
               "store restartable without replaying generation");
  TraceCapture capture(args);

  const std::size_t per_domain = args.flag("full") ? 500'000 : 20'000;
  const core::GeneratedForest forest =
      core::generate_forest(make_forest(per_domain));
  graphdb::GraphStore store = adcore::to_store(forest.graph);
  const std::uint64_t fp = graphdb::persist::fingerprint(store);

  const std::string dir =
      fs::temp_directory_path().string() + "/adsynth_bench_persist";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string snap = dir + "/snapshot.adsg";

  util::TextTable table({"phase", "median_ms", "MB_per_s"});
  util::JsonArray records;
  const auto record = [&](const char* name, double seconds, double mbytes) {
    table.add_row({name, util::fixed(seconds * 1e3, 1),
                   mbytes > 0 ? util::fixed(mbytes / seconds, 0) : "-"});
    util::JsonObject rec;
    rec["name"] = std::string("persistence.") + name;
    rec["ns_per_op"] = seconds * 1e9;
    rec["threads"] = static_cast<std::int64_t>(1);
    rec["graph_size"] = static_cast<std::int64_t>(store.node_count());
    records.emplace_back(std::move(rec));
  };
  const auto median = [](std::vector<double>& times) {
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
  };

  // --- save ---------------------------------------------------------------
  std::vector<double> times;
  for (std::size_t r = 0; r < repeats; ++r) {
    util::Stopwatch timer;
    graphdb::persist::save_snapshot(store, snap);
    times.push_back(timer.seconds());
  }
  const double snap_mb =
      static_cast<double>(fs::file_size(snap)) / 1e6;
  record("save", median(times), snap_mb);

  // --- load (fingerprint asserted before the number counts) --------------
  {
    const graphdb::GraphStore loaded = graphdb::persist::load_snapshot(snap);
    if (graphdb::persist::fingerprint(loaded) != fp) {
      std::fprintf(stderr,
                   "FATAL: save -> load round trip changed the store "
                   "fingerprint\n");
      return 1;
    }
  }
  times.clear();
  for (std::size_t r = 0; r < repeats; ++r) {
    util::Stopwatch timer;
    const graphdb::GraphStore loaded = graphdb::persist::load_snapshot(snap);
    times.push_back(timer.seconds());
  }
  record("load", median(times), snap_mb);

  // --- wal_append + recover ----------------------------------------------
  fs::remove(snap);
  graphdb::persist::Durability dur(dir);
  dur.checkpoint(store);  // baseline snapshot the replayed WAL extends
  {
    graphdb::GraphStore serving = dur.recover();
    dur.attach(serving);
    util::Stopwatch timer;
    for (std::size_t i = 0; i < txns; ++i) append_txn(serving, i);
    const double per_txn = timer.seconds() / static_cast<double>(txns);
    table.add_row({"wal_append(txn)", util::fixed(per_txn * 1e3, 4), "-"});
    util::JsonObject rec;
    rec["name"] = "persistence.wal_append";
    rec["ns_per_op"] = per_txn * 1e9;
    rec["threads"] = static_cast<std::int64_t>(1);
    rec["graph_size"] = static_cast<std::int64_t>(serving.node_count());
    records.emplace_back(std::move(rec));
    dur.detach();
  }
  times.clear();
  std::uint64_t replayed = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    graphdb::persist::RecoveryReport report;
    util::Stopwatch timer;
    const graphdb::GraphStore recovered = dur.recover(&report);
    times.push_back(timer.seconds());
    replayed = report.wal_records_replayed;
  }
  const double wal_mb =
      static_cast<double>(fs::file_size(dur.wal_path())) / 1e6;
  record("recover", median(times), snap_mb + wal_mb);

  std::printf("store: %zu nodes, %zu rels; snapshot %.1f MB; WAL %zu txns "
              "(%llu records, %.2f MB)\n\n",
              store.node_count(), store.rel_count(), snap_mb, txns,
              static_cast<unsigned long long>(replayed), wal_mb);
  std::fputs(table.render().c_str(), stdout);

  fs::remove_all(dir);
  util::JsonObject extra;
  extra["records"] = util::JsonValue(std::move(records));
  capture.finish("persistence", std::move(extra));
  return 0;
}
