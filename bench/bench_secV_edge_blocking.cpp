// §V-C — the Scalable Edge Blocking algorithms [4]: IP (kernelization) and
// Iterative LP, run on ADSimulator, ADSynth (secure), and the University
// reference.
//
// Shape to reproduce: both algorithms complete on the ADSimulator graph
// (the paper reports attacker success 0.149 for IP and 0.093 for IterLP);
// on the ADSynth secure graph and the University system they "report an
// error in the graph setup" — here surfaced as GraphSetupError with the
// violated precondition, supporting the paper's conjecture that the
// algorithms fail on more realistic graphs.
#include "defense/edge_block.hpp"
#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("small", "run at 20k instead of the AD100 scale (100k)");
  args.add_option("budget", "edge blocking budget", "16");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);
  const std::size_t nodes = ad100_nodes(args.flag("small"));
  defense::EdgeBlockOptions options;
  options.budget = static_cast<std::size_t>(args.integer("budget"));

  print_header("Sec. V-C: scalable edge-blocking algorithms",
               "ADSimulator: success 0.149 (IP) / 0.093 (IterLP); ADSynth "
               "secure and University: error in the graph setup");

  util::TextTable table({"dataset", "algorithm", "attacker success", "note"});
  auto run = [&](const char* dataset, const adcore::AttackGraph& g,
                 defense::EdgeBlockAlgorithm algorithm, const char* alg_name) {
    try {
      const auto result = defense::block_edges(g, algorithm, options);
      table.add_row({dataset, alg_name,
                     util::fixed(result.attacker_success, 3),
                     std::to_string(result.blocked_edges.size()) +
                         " edges blocked"});
    } catch (const defense::GraphSetupError& e) {
      table.add_row({dataset, alg_name, "-", "graph setup error"});
      std::fprintf(stderr, "[%s/%s] %s\n", dataset, alg_name, e.what());
    }
  };

  const auto sim = make_adsimulator(nodes, 1);
  run("ADSimulator", sim, defense::EdgeBlockAlgorithm::kIpKernelization,
      "IP (kernelization)");
  run("ADSimulator", sim, defense::EdgeBlockAlgorithm::kIterativeLp,
      "IterLP");
  const auto secure = make_adsynth("secure", nodes, 1);
  run("ADSynth (secure)", secure,
      defense::EdgeBlockAlgorithm::kIpKernelization, "IP (kernelization)");
  run("ADSynth (secure)", secure, defense::EdgeBlockAlgorithm::kIterativeLp,
      "IterLP");
  const auto uni = make_university(nodes);
  run("University (reference)", uni,
      defense::EdgeBlockAlgorithm::kIpKernelization, "IP (kernelization)");
  run("University (reference)", uni,
      defense::EdgeBlockAlgorithm::kIterativeLp, "IterLP");
  std::fputs(table.render().c_str(), stdout);
  capture.finish("secV_edge_blocking");
  return 0;
}
