// Fig. 5 — graph density |E| / (|V|·(|V|−1)) per generator and security
// setting, across graph sizes.
//
// Shape to reproduce: densities fall roughly as 1/|V| (edge counts grow
// near-linearly); ADSynth-vulnerable is denser than ADSynth-secure at every
// size (violated connections); DBCreator and ADSimulator sit above
// ADSynth-secure at comparable sizes because their random permission
// assignment ignores best practices; ADSynth-secure at 100K lands near the
// University system's 8e-05.
#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("full", "paper-scale sizes (up to 1M nodes)");
  args.add_option("baseline-cap",
                  "largest size the Cypher-driven baselines run at", "10000");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);
  const bool full = args.flag("full");
  const auto baseline_cap =
      static_cast<std::size_t>(args.integer("baseline-cap"));

  print_header("Fig. 5: graph density",
               "secure AD100 density ~1e-4..3e-5 matching the University's "
               "8e-5; vulnerable denser; baselines denser at small sizes");

  util::TextTable table({"|V|", "DBCreator", "ADSimulator", "ADSynth(secure)",
                         "ADSynth(vulnerable)"});
  for (const std::size_t nodes : graph_sizes(full)) {
    std::vector<std::string> row{util::with_commas(nodes)};
    if (nodes <= baseline_cap) {
      row.push_back(util::sci(make_dbcreator(nodes, 1).density()));
    } else {
      row.push_back("-");
    }
    if (nodes <= baseline_cap * 10) {
      row.push_back(util::sci(make_adsimulator(nodes, 1).density()));
    } else {
      row.push_back("-");
    }
    row.push_back(util::sci(make_adsynth("secure", nodes, 1).density()));
    row.push_back(util::sci(make_adsynth("vulnerable", nodes, 1).density()));
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);

  const auto uni = make_university(100'000);
  std::printf("\nUniversity reference (100,000 nodes): density %s "
              "(paper: 8.0e-05)\n",
              util::sci(uni.density()).c_str());
  capture.finish("fig5_density");
  return 0;
}
