// Fig. 9 — proportion of regular users with an attack path to Domain
// Admins, across security settings (log-scale axis in the paper).
//
// Shape to reproduce: ADSynth spans the spectrum from a vulnerable system
// (several percent of users) to a highly secure one (near zero); the
// secure AD100 lands at ≈0.02%, mirroring the University system; the
// baselines' random permission soup connects a large share of users.
#include "analytics/reachability.hpp"
#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("small", "run at 20k instead of the AD100 scale (100k)");
  args.add_option("seeds", "seeds per system (reported as mean)", "3");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);
  const std::size_t nodes = ad100_nodes(args.flag("small"));
  const auto seeds = static_cast<std::size_t>(args.integer("seeds"));

  print_header("Fig. 9: regular users with an attack path to Domain Admins",
               "secure AD100 ≈ 0.02% of regular users, matching the "
               "University; vulnerable systems orders of magnitude higher");

  util::TextTable table(
      {"system", "|V|", "users with path", "regular users", "fraction"});
  auto add = [&](const char* name, auto&& make) {
    double fraction = 0.0;
    std::size_t with_path = 0;
    std::size_t regular = 0;
    for (std::size_t s = 1; s <= seeds; ++s) {
      const adcore::AttackGraph g = make(s);
      const auto reach = analytics::users_reaching_da(g);
      fraction += reach.fraction;
      with_path += reach.users_with_path;
      regular = reach.regular_users;
    }
    fraction /= static_cast<double>(seeds);
    table.add_row({name, util::with_commas(nodes),
                   util::fixed(static_cast<double>(with_path) /
                                   static_cast<double>(seeds), 1),
                   util::with_commas(regular), util::percent(fraction, 4)});
  };
  add("DBCreator (10k cap)", [&](std::uint64_t s) {
    return make_dbcreator(std::min<std::size_t>(nodes, 10'000), s);
  });
  add("ADSimulator", [&](std::uint64_t s) { return make_adsimulator(nodes, s); });
  add("ADSynth (highly secure)",
      [&](std::uint64_t s) { return make_adsynth("highly_secure", nodes, s); });
  add("ADSynth (secure, AD100)",
      [&](std::uint64_t s) { return make_adsynth("secure", nodes, s); });
  add("ADSynth (vulnerable)",
      [&](std::uint64_t s) { return make_adsynth("vulnerable", nodes, s); });
  add("University (reference)",
      [&](std::uint64_t s) { return make_university(nodes, 6 + s); });
  std::fputs(table.render().c_str(), stdout);
  capture.finish("fig9_users_to_da");
  return 0;
}
