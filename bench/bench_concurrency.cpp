// Concurrent serving over MVCC snapshots: what lock-free readers and the
// parallel what-if fan-out buy.  Three scenarios over a BloodHound-style
// store (adcore::to_store of a generated estate, :User(name) index):
//
//   concurrency.reader_throughput — N reader threads each loop
//       { snapshot(); execute_read(prepared) }; recorded once at threads=1
//       and once at the pool width, so the pair documents reader scaling
//       (aggregate ns/op should drop ~linearly where cores allow; on a
//       single-core host the two records coincide and the scaling claim is
//       documented, not demonstrated — the printed hardware_concurrency
//       note says which)
//   concurrency.whatif_serial / whatif_parallel — greedy edge interdiction
//       by speculate+rollback on the live store vs forked snapshot
//       overlays on the work-stealing pool; the picks are asserted
//       bit-identical before either number is reported
//   concurrency.snapshot_publish — per-commit cost of the delta-publish
//       path (overlay copy-forward + periodic re-root), the price a writer
//       pays to keep readers served
//
// Writes BENCH_concurrency.json, gated by scripts/bench_compare.py against
// bench/baselines/BENCH_concurrency.json (scripts/ci.sh pins --threads 8
// so record keys stay stable across hosts).
#include "common.hpp"

#include <thread>

#include "adcore/convert.hpp"
#include "defense/edge_block.hpp"
#include "defense/whatif.hpp"
#include "graphdb/cypher.hpp"

using namespace adsynth;
using namespace adsynth::bench;

namespace {

/// Aggregate ns per read op: `nthreads` readers each run `ops` iterations
/// of snapshot-acquire + prepared-statement execution against the store's
/// published view.
double reader_ns_per_op(graphdb::GraphStore& store,
                        const graphdb::PreparedStatement& stmt,
                        const graphdb::Params& params, std::size_t nthreads,
                        std::size_t ops) {
  const auto reader = [&] {
    for (std::size_t i = 0; i < ops; ++i) {
      const graphdb::Snapshot snap = store.snapshot();
      graphdb::CypherSession::execute_read(snap, stmt, params);
    }
  };
  util::Stopwatch timer;
  if (nthreads <= 1) {
    reader();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) threads.emplace_back(reader);
    for (std::thread& t : threads) t.join();
  }
  return timer.seconds() * 1e9 /
         static_cast<double>(nthreads > 1 ? nthreads * ops : ops);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("full", "paper-scale store (100k nodes)");
  args.add_option("iters", "read ops per reader thread", "2000");
  args.add_option("budget", "edge-blocking budget for the what-if pair",
                  "4");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 1;
  const std::size_t threads = apply_threads_option(args);
  const auto iters =
      std::max<std::size_t>(1, static_cast<std::size_t>(args.integer("iters")));
  const auto budget = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.integer("budget")));

  print_header("concurrent serving: snapshot readers and what-if fan-out",
               "epoch snapshots serve lock-free readers while one writer "
               "commits; speculative branches fan out on the pool");

  const std::size_t scale = args.flag("full") ? 100'000 : 20'000;
  graphdb::GraphStore store =
      adcore::to_store(make_adsynth("vulnerable", scale, 11));
  graphdb::CypherSession session(store);
  session.run("CREATE INDEX ON :User(name)");
  const graphdb::PreparedStatement stmt =
      session.prepare("MATCH (u:User {name: $who}) RETURN count(u)");
  const graphdb::Params params{{"who", graphdb::PropertyValue("missing")}};

  std::printf("store: %zu nodes, %zu rels; %zu pool threads, "
              "hardware_concurrency=%u\n",
              store.node_count(), store.rel_count(), threads,
              std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf("single-core host: reader records at both widths time the "
                "same serial work — scaling is documented, not "
                "demonstrated here\n");
  }
  std::printf("\n");

  TraceCapture capture(args);
  util::TextTable table({"scenario", "threads", "ns_per_op"});
  util::JsonArray records;
  const auto record = [&](const char* name, std::size_t nthreads, double ns) {
    table.add_row({name, std::to_string(nthreads), util::fixed(ns, 0)});
    util::JsonObject rec;
    rec["name"] = std::string("concurrency.") + name;
    rec["ns_per_op"] = ns;
    rec["threads"] = static_cast<std::int64_t>(nthreads);
    rec["graph_size"] = static_cast<std::int64_t>(store.node_count());
    records.emplace_back(std::move(rec));
  };

  // Reader scaling pair: same per-op work, 1 thread vs the pool width.
  store.snapshot();  // materialize the root once, outside the timer
  const double serial_read = reader_ns_per_op(store, stmt, params, 1, iters);
  record("reader_throughput", 1, serial_read);
  const double fanned_read =
      reader_ns_per_op(store, stmt, params, threads, iters);
  record("reader_throughput", threads, fanned_read);
  if (threads > 1) {
    std::printf("reader aggregate speedup at %zu threads: %.2fx\n", threads,
                serial_read / fanned_read);
  }

  // What-if pair: the picks must agree bit-for-bit before timing counts.
  util::Stopwatch serial_watch;
  const defense::LiveEdgeBlockResult serial_cut =
      defense::block_edges_live(store, budget);
  const double serial_ns = serial_watch.seconds() * 1e9;
  util::Stopwatch parallel_watch;
  const defense::LiveEdgeBlockResult parallel_cut =
      defense::block_edges_snapshot(store, budget);
  const double parallel_ns = parallel_watch.seconds() * 1e9;
  if (serial_cut.blocked_rels != parallel_cut.blocked_rels ||
      serial_cut.attacker_success != parallel_cut.attacker_success) {
    std::fprintf(stderr,
                 "FATAL: snapshot what-if diverged from the serial probe "
                 "loop (%zu vs %zu blocked rels)\n",
                 parallel_cut.blocked_rels.size(),
                 serial_cut.blocked_rels.size());
    return 1;
  }
  record("whatif_serial", 1, serial_ns);
  record("whatif_parallel", threads, parallel_ns);
  std::printf("what-if: %zu rels cut, attacker success %.3f, parallel "
              "speedup %.2fx\n",
              serial_cut.blocked_rels.size(), serial_cut.attacker_success,
              serial_ns / parallel_ns);

  // Publish cost: scoped commits with a live published tail (the price of
  // keeping readers served; includes the periodic re-root).
  const graphdb::NodeId probe_node = store.nodes_with_label("User").front();
  util::Stopwatch publish_watch;
  for (std::size_t i = 0; i < iters; ++i) {
    store.begin_undo_scope();
    store.set_node_property(
        probe_node, "name",
        graphdb::PropertyValue("probe-" + std::to_string(i)));
    store.commit_scope();
  }
  record("snapshot_publish", 1,
         publish_watch.seconds() * 1e9 / static_cast<double>(iters));

  std::fputs(table.render().c_str(), stdout);
  const graphdb::SnapshotStats stats = store.snapshot_stats();
  std::printf("\nsnapshots: epoch %llu, %llu published, %llu reclaimed, "
              "%zu live\n",
              static_cast<unsigned long long>(stats.current_epoch),
              static_cast<unsigned long long>(stats.published_views),
              static_cast<unsigned long long>(stats.reclaimed_views),
              stats.live_views);

  util::JsonObject extra;
  extra["records"] = util::JsonValue(std::move(records));
  capture.finish("concurrency", std::move(extra));
  return 0;
}
