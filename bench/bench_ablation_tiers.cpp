// Ablation — how the tier model and operator discipline shape security
// observables:
//   (1) tier depth k: breach fraction and choke-point strength per k;
//   (2) primary-operator bias: removing logon concentration collapses the
//       secure graphs' high-RP choke points toward the baselines' flat
//       band (DESIGN.md §4).
#include "analytics/reachability.hpp"
#include "analytics/rp_rate.hpp"
#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_option("nodes", "graph size", "50000");
  args.add_option("seeds", "seeds per cell", "3");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);
  const auto nodes = static_cast<std::size_t>(args.integer("nodes"));
  const auto seeds = static_cast<std::size_t>(args.integer("seeds"));

  print_header("Ablation: tier depth and operator bias",
               "design choices behind the secure graphs' realism");

  std::printf("(1) tier depth k (secure preset, |V| = %s)\n",
              util::with_commas(nodes).c_str());
  util::TextTable t1({"k", "breach fraction", "peak RP"});
  for (const std::uint32_t k : {2u, 3u, 4u, 5u}) {
    double fraction = 0.0;
    double peak = 0.0;
    for (std::size_t s = 1; s <= seeds; ++s) {
      auto cfg = core::GeneratorConfig::secure(nodes, s);
      cfg.num_tiers = k;
      const auto ad = core::generate_ad(cfg);
      fraction += analytics::users_reaching_da(ad.graph).fraction;
      peak += analytics::route_penetration(ad.graph).peak();
    }
    t1.add_row({std::to_string(k),
                util::percent(fraction / static_cast<double>(seeds), 4),
                util::percent(peak / static_cast<double>(seeds), 1)});
  }
  std::fputs(t1.render().c_str(), stdout);

  const std::size_t bias_seeds = std::max<std::size_t>(seeds, 6);
  std::printf("\n(2) operational concentration (secure preset, |V| = %s,\n"
              "    both operator logons and violated-permission targets)\n",
              util::with_commas(nodes).c_str());
  // The tier-delegation skeleton always provides a structural funnel (the
  // tier-0 OU/group layer); operational concentration decides whether the
  // choke point sits there or on the operator account and the DCs.  Report
  // both the peak RP and what KIND of node holds it.
  util::TextTable t2({"concentration", "peak RP (mean)",
                      "top choke: account/machine", "top choke: OU/group"});
  for (const double bias : {0.0, 0.3, 0.6, 0.9}) {
    double peak = 0.0;
    std::size_t chokes_principal = 0;
    std::size_t chokes_structural = 0;
    for (std::size_t s = 1; s <= bias_seeds; ++s) {
      auto cfg = core::GeneratorConfig::secure(nodes, s);
      // A visible breach population (the handful in the secure preset is
      // dominated by single-source noise): concentration is about how the
      // population's paths overlap, so give it enough sources to overlap.
      cfg.perc_misconfig_permissions = 0.005;
      cfg.primary_operator_bias = bias;
      cfg.misconfig_server_bias = bias;
      const auto ad = core::generate_ad(cfg);
      const auto rp = analytics::route_penetration(ad.graph);
      peak += rp.peak();
      const auto top = rp.top(1);
      if (!top.empty()) {
        const auto kind = ad.graph.kind(top[0].first);
        if (kind == adcore::ObjectKind::kUser ||
            kind == adcore::ObjectKind::kComputer) {
          ++chokes_principal;
        } else {
          ++chokes_structural;
        }
      }
    }
    t2.add_row({util::fixed(bias, 1),
                util::percent(peak / static_cast<double>(bias_seeds), 1),
                std::to_string(chokes_principal) + "/" +
                    std::to_string(bias_seeds),
                std::to_string(chokes_structural) + "/" +
                    std::to_string(bias_seeds)});
  }
  std::fputs(t2.render().c_str(), stdout);
  std::printf("\nconcentration shifts the choke point from the tier-0\n"
              "delegation structures onto the operator account and the DCs\n"
              "(and splits traffic between the two funnels).\n");
  capture.finish("ablation_tiers");
  return 0;
}
