// Query-frontend throughput: what the plan cache and prepared statements
// buy on repeated parameterized traffic, and what variable-length BFS
// expansion costs.  Four scenarios over a BloodHound-style store
// (adcore::to_store of a generated estate, with a :User(name) index):
//
//   query.parse_per_call  — every call is a distinct statement text, so
//                           every call pays lexer + parser + planner
//   query.cached_run      — one statement shape, $param values vary; run()
//                           serves parse+plan from the LRU plan cache
//   query.prepared        — CypherSession::prepare() once, execute() per
//                           call: no cache probe, no normalization
//   query.var_length      — prepared `-[:MemberOf*1..3]->` count, the BFS
//                           expansion path
//
// The acceptance gate of the frontend PR: cached/prepared execution must
// beat parse-per-call on the same executed work (all three run the same
// index miss per call).  Writes BENCH_query.json, gated by
// scripts/bench_compare.py against bench/baselines/BENCH_query.json.
#include "common.hpp"

#include <algorithm>
#include <functional>

#include "adcore/convert.hpp"
#include "graphdb/cypher.hpp"

using namespace adsynth;
using namespace adsynth::bench;

namespace {

/// Median-of-runs nanoseconds per operation.
double bench_ns_per_op(std::size_t repeats, std::size_t iters,
                       const std::function<void(std::size_t)>& op) {
  std::vector<double> times;
  times.reserve(repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    util::Stopwatch timer;
    for (std::size_t i = 0; i < iters; ++i) op(i);
    times.push_back(timer.seconds() * 1e9 / static_cast<double>(iters));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("full", "paper-scale store (100k nodes)");
  args.add_option("iters", "statements per timed run", "2000");
  args.add_option("repeats", "timed runs per scenario (median reported)",
                  "3");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 1;
  const std::size_t threads = apply_threads_option(args);
  const auto iters =
      std::max<std::size_t>(1, static_cast<std::size_t>(args.integer("iters")));
  const auto repeats = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.integer("repeats")));

  print_header("query frontend: plan cache and prepared statements",
               "repeated parameterized statements skip parse+plan; "
               "variable-length patterns ride the shared BFS kernel");

  const std::size_t scale = args.flag("full") ? 100'000 : 20'000;
  graphdb::GraphStore store =
      adcore::to_store(make_adsynth("vulnerable", scale, 11));
  graphdb::CypherSession session(store);
  session.run("CREATE INDEX ON :User(name)");

  // One real user name for the traversal scenario, shown with its plan.
  const graphdb::QueryResult probe =
      session.run("MATCH (u:User) RETURN u.name LIMIT 1");
  const std::string user_name = probe.rows.at(0).at(0).as_string();
  std::printf("store: %zu nodes, %zu rels; traversal source '%s'\n",
              store.node_count(), store.rel_count(), user_name.c_str());
  std::printf("%s\n\n",
              session
                  .run("EXPLAIN MATCH (u:User {name: $who}) "
                       "RETURN count(u)")
                  .plan.c_str());

  TraceCapture capture(args);
  util::TextTable table({"scenario", "ns_per_op", "cache_hits",
                         "cache_misses", "cache_evictions"});
  util::JsonArray records;
  const auto record = [&](const char* name, double ns) {
    table.add_row({name, util::fixed(ns, 0),
                   std::to_string(session.plan_cache_hits()),
                   std::to_string(session.plan_cache_misses()),
                   std::to_string(session.plan_cache_evictions())});
    util::JsonObject rec;
    rec["name"] = std::string("query.") + name;
    rec["ns_per_op"] = ns;
    rec["threads"] = static_cast<std::int64_t>(threads);
    rec["graph_size"] = static_cast<std::int64_t>(store.node_count());
    records.emplace_back(std::move(rec));
  };

  // All three point scenarios execute the same work per call — an index
  // seek that finds nothing — so the deltas isolate frontend overhead.
  const auto miss_name = [](std::size_t i) {
    return "missing-" + std::to_string(i);
  };

  record("parse_per_call",
         bench_ns_per_op(repeats, iters, [&](std::size_t i) {
           session.run("MATCH (u:User {name: '" + miss_name(i) +
                       "'}) RETURN count(u)");
         }));

  record("cached_run", bench_ns_per_op(repeats, iters, [&](std::size_t i) {
           session.run("MATCH (u:User {name: $who}) RETURN count(u)",
                       {{"who", graphdb::PropertyValue(miss_name(i))}});
         }));

  const graphdb::PreparedStatement stmt =
      session.prepare("MATCH (u:User {name: $who}) RETURN count(u)");
  record("prepared", bench_ns_per_op(repeats, iters, [&](std::size_t i) {
           session.execute(
               stmt, {{"who", graphdb::PropertyValue(miss_name(i))}});
         }));

  const graphdb::PreparedStatement hops = session.prepare(
      "MATCH (u:User {name: $who})-[r:MemberOf*1..3]->(g:Group) "
      "RETURN count(g)");
  const std::size_t hop_iters = std::max<std::size_t>(1, iters / 100);
  record("var_length",
         bench_ns_per_op(repeats, hop_iters, [&](std::size_t) {
           session.execute(hops,
                           {{"who", graphdb::PropertyValue(user_name)}});
         }));

  std::fputs(table.render().c_str(), stdout);

  util::JsonObject extra;
  extra["records"] = util::JsonValue(std::move(records));
  capture.finish("query", std::move(extra));
  return 0;
}
