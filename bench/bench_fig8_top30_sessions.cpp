// Fig. 8 — distribution of session counts among the top-30 users:
// University vs ADSynth (secure and vulnerable) at the AD100 scale.
//
// Shape to reproduce — including the limitation the paper itself reports:
// the University's top-30 decays steeply (a tiny tail up to ≈20, most users
// on 1–2 machines), while ADSynth's top-30 sits flat near its upper bound
// (uniform draws up to the cap), a "constrained spread" the paper flags as
// future work.
#include "analytics/sessions.hpp"
#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("small", "run at 20k instead of the AD100 scale (100k)");
  args.add_option("top", "how many top users to list", "30");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);
  const std::size_t nodes = ad100_nodes(args.flag("small"));
  const auto top_k = static_cast<std::size_t>(args.integer("top"));

  print_header("Fig. 8: session counts of the top-30 users",
               "University decays steeply below 5; ADSynth's top-30 crowd "
               "the upper bound (the paper's noted limitation)");

  const auto uni = analytics::session_stats(make_university(nodes)).top(top_k);
  const auto secure =
      analytics::session_stats(make_adsynth("secure", nodes, 1)).top(top_k);
  const auto vulnerable =
      analytics::session_stats(make_adsynth("vulnerable", nodes, 1)).top(top_k);
  // The paper's stated future work: the long-tailed session model closes
  // the gap to the University curve.
  auto longtail_cfg = core::GeneratorConfig::secure(nodes, 1);
  longtail_cfg.session_model = core::SessionModel::kLongTail;
  const auto longtail =
      analytics::session_stats(core::generate_ad(longtail_cfg).graph)
          .top(top_k);

  util::TextTable table({"rank", "University", "ADSynth(secure)",
                         "ADSynth(vulnerable)", "ADSynth(long-tail ext)"});
  for (std::size_t i = 0; i < top_k; ++i) {
    auto cell = [&](const std::vector<std::uint32_t>& v) {
      return i < v.size() ? std::to_string(v[i]) : std::string("-");
    };
    table.add_row({std::to_string(i + 1), cell(uni), cell(secure),
                   cell(vulnerable), cell(longtail)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nADSynth(long-tail ext) is this reproduction's "
              "implementation of the paper's future-work session model.\n");
  capture.finish("fig8_top30_sessions");
  return 0;
}
