// Application bench — honeypot placement ([21], the paper's cited
// honeypot-placement companion work) on ADSynth data vs baseline data.
//
// Expectation mirroring §V's theme: on realistic (secure) graphs a handful
// of honeypots on the choke points intercepts nearly all shortest attack
// paths, matching the University reference; on the baselines' random soup
// coverage climbs far more slowly.
#include "defense/honeypot.hpp"
#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("small", "run at 20k instead of the AD100 scale (100k)");
  args.add_option("max-honeypots", "placements per dataset", "5");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);
  const std::size_t nodes = ad100_nodes(args.flag("small"));
  const auto max_k =
      static_cast<std::size_t>(args.integer("max-honeypots"));

  print_header("Application: honeypot placement coverage",
               "choke-pointed realistic graphs are covered by a handful of "
               "honeypots; random baseline soups are not");

  util::TextTable table({"dataset", "paths covered after k=1..n"});
  auto add = [&](const char* name, const adcore::AttackGraph& g) {
    defense::HoneypotOptions options;
    options.count = max_k;
    const auto result = defense::place_honeypots(g, options);
    std::string coverage;
    for (std::size_t i = 0; i < result.coverage_after.size(); ++i) {
      if (i > 0) coverage += "  ";
      coverage += util::percent(result.coverage_after[i], 1);
    }
    if (coverage.empty()) coverage = "(no attack paths)";
    table.add_row({name, coverage});
  };
  add("ADSimulator", make_adsimulator(nodes, 1));
  add("ADSynth (secure)", make_adsynth("secure", nodes, 1));
  add("ADSynth (vulnerable)", make_adsynth("vulnerable", nodes, 1));
  add("University (reference)", make_university(nodes));
  std::fputs(table.render().c_str(), stdout);
  capture.finish("app_honeypot");
  return 0;
}
