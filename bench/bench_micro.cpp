// Micro-benchmarks (google-benchmark) for the substrate hot paths: local
// graph database inserts/lookups, metagraph reachability and expansion,
// BFS over the analytics CSR, and the parallel analytics kernels at
// several thread counts.  These back the §IV-A claim that the local
// database offers constant-time insertion and retrieval.
//
// Besides the console table, every run writes BENCH_micro.json: the per-op
// records (op name, ns/op, thread count, graph size) plus the run's
// per-phase span breakdown and metric snapshot, so both the perf
// trajectory and the phase mix are machine-trackable across PRs
// (scripts/bench_compare.py gates them against bench/baselines/).  Pass
// --trace <file> to additionally dump the Chrome trace_event timeline.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analytics/graph_view.hpp"
#include "analytics/reachability.hpp"
#include "analytics/rp_rate.hpp"
#include "core/generator.hpp"
#include "graphdb/cypher.hpp"
#include "graphdb/store.hpp"
#include "metagraph/algorithms.hpp"
#include "metagraph/expansion.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

using namespace adsynth;

namespace {

// Benchmarks that exercise the thread pool encode their arguments as
// {graph_size, threads}; single-argument benchmarks pass {graph_size} and
// run serially.  The reporter below recovers both from the slash-separated
// run name ("BM_RpRate/10000/4").
constexpr std::int64_t kSerial = 1;

/// Console output plus machine-readable per-op records; main() folds the
/// records into BENCH_micro.json together with the span breakdown.
class MicroJsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      util::JsonObject record;
      std::string op = name;
      std::int64_t graph_size = 0;
      std::int64_t threads = kSerial;
      if (const auto slash = name.find('/'); slash != std::string::npos) {
        op = name.substr(0, slash);
        std::size_t field = 0;
        std::size_t pos = slash;
        while (pos != std::string::npos && field < 2) {
          const std::size_t next = name.find('/', pos + 1);
          const std::string arg =
              name.substr(pos + 1, next == std::string::npos
                                       ? std::string::npos
                                       : next - pos - 1);
          try {
            const std::int64_t v = std::stoll(arg);
            (field == 0 ? graph_size : threads) = v;
          } catch (const std::exception&) {
            break;  // non-numeric suffix (e.g. "/threads:2"): keep defaults
          }
          ++field;
          pos = next;
        }
      }
      const double iterations =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      record["name"] = op;
      record["ns_per_op"] = run.real_accumulated_time / iterations * 1e9;
      record["threads"] = threads;
      record["graph_size"] = graph_size;
      records_.emplace_back(std::move(record));
    }
  }

  util::JsonArray take_records() {
    util::JsonArray array;
    for (auto& r : records_) array.emplace_back(std::move(r));
    records_.clear();
    return array;
  }

 private:
  std::vector<util::JsonObject> records_;
};

void BM_StoreCreateNode(benchmark::State& state) {
  graphdb::GraphStore store;
  const auto label = store.intern_label("User");
  const auto key = store.intern_key("name");
  std::size_t i = 0;
  for (auto _ : state) {
    graphdb::PropertyList props;
    graphdb::put_property(props, key,
                          graphdb::PropertyValue("U" + std::to_string(i++)));
    benchmark::DoNotOptimize(
        store.create_node_interned({label}, std::move(props)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreCreateNode);

void BM_StoreCreateRelationship(benchmark::State& state) {
  graphdb::GraphStore store;
  const auto label = store.intern_label("User");
  const auto type = store.intern_rel_type("GenericAll");
  std::vector<graphdb::NodeId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(store.create_node_interned({label}));
  }
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.create_relationship_interned(
        ids[rng.index(ids.size())], ids[rng.index(ids.size())], type));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreCreateRelationship);

void BM_StoreIndexedLookup(benchmark::State& state) {
  graphdb::GraphStore store;
  store.create_index("User", "name");
  const auto label = store.intern_label("User");
  const auto key = store.intern_key("name");
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    graphdb::PropertyList props;
    graphdb::put_property(props, key,
                          graphdb::PropertyValue("U" + std::to_string(i)));
    store.create_node_interned({label}, std::move(props));
  }
  util::Rng rng(1);
  for (auto _ : state) {
    const std::string needle = "U" + std::to_string(rng.index(n));
    benchmark::DoNotOptimize(
        store.find_nodes("User", "name", graphdb::PropertyValue(needle)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreIndexedLookup)->Arg(1'000)->Arg(100'000);

void BM_StoreLabelScan(benchmark::State& state) {
  graphdb::GraphStore store;
  const auto label = store.intern_label("User");
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) store.create_node_interned({label});
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.nodes_with_label("User"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreLabelScan)->Arg(100'000);

void BM_CypherCreateStatement(benchmark::State& state) {
  graphdb::GraphStore store;
  graphdb::CypherSession session(store);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run(
        "CREATE (n:User {name: 'U" + std::to_string(i++) + "'})"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CypherCreateStatement);

void BM_MetagraphReach(benchmark::State& state) {
  const auto ad =
      core::generate_ad(core::GeneratorConfig::vulnerable(
          static_cast<std::size_t>(state.range(0)), 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metagraph::reach(ad.meta, {0}, metagraph::ReachMode::kDisjunctive));
  }
}
BENCHMARK(BM_MetagraphReach)->Arg(1'000)->Arg(10'000);

void BM_MetagraphExpand(benchmark::State& state) {
  const auto ad = core::generate_ad(core::GeneratorConfig::secure(
      static_cast<std::size_t>(state.range(0)), 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(metagraph::expand(ad.meta));
  }
}
BENCHMARK(BM_MetagraphExpand)->Arg(1'000)->Arg(10'000);

void BM_AnalyticsBfs(benchmark::State& state) {
  const auto ad = core::generate_ad(core::GeneratorConfig::secure(
      static_cast<std::size_t>(state.range(0)), 1));
  const auto reverse = analytics::build_reverse(ad.graph);
  util::set_global_threads(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analytics::bfs_distances(reverse, {ad.graph.domain_admins()}));
  }
  util::set_global_threads(kSerial);
}
BENCHMARK(BM_AnalyticsBfs)
    ->Args({10'000, 1})
    ->Args({100'000, 1})
    ->Args({100'000, 4});

void BM_RpRate(benchmark::State& state) {
  const auto ad = core::generate_ad(core::GeneratorConfig::vulnerable(
      static_cast<std::size_t>(state.range(0)), 1));
  util::set_global_threads(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytics::route_penetration(ad.graph));
  }
  util::set_global_threads(kSerial);
}
BENCHMARK(BM_RpRate)
    ->Args({10'000, 1})
    ->Args({10'000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_GenerateSecure(benchmark::State& state) {
  util::set_global_threads(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::generate_ad(core::GeneratorConfig::secure(
        static_cast<std::size_t>(state.range(0)), 1)));
  }
  util::set_global_threads(kSerial);
}
BENCHMARK(BM_GenerateSecure)
    ->Args({1'000, 1})
    ->Args({10'000, 1})
    ->Args({10'000, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --trace before benchmark::Initialize (it rejects unknown flags).
  std::string trace_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
      continue;
    }
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  util::set_global_threads(kSerial);  // threaded cases opt in per benchmark

  util::MetricsRegistry::instance().reset();
  util::trace_begin();
  util::Stopwatch watch;
  MicroJsonReporter reporter;
  {
    // Root span: every benchmark (and its setup) nests under bench.run, so
    // the capture's accounted depth-0 time tracks the harness wall time.
    util::Span root("bench.run");
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  const double wall_ms = watch.millis();
  const util::TraceReport report = util::trace_end();

  util::JsonObject doc;
  doc["bench"] = std::string("micro");
  doc["wall_ms"] = wall_ms;
  doc["top_level_ms"] = static_cast<double>(report.top_level_total_ns()) / 1e6;
  doc["dropped_events"] = static_cast<std::int64_t>(report.dropped_events());
  doc["records"] = util::JsonValue(reporter.take_records());
  doc["phases"] = report.phases_json();
  doc["metrics"] = util::JsonValue(util::MetricsRegistry::instance().snapshot());
  std::ofstream out("BENCH_micro.json");
  out << util::JsonValue(std::move(doc)).dump() << "\n";
  std::fprintf(stderr, "wrote BENCH_micro.json (%zu phases, %.1f of %.1f ms "
               "accounted)\n",
               report.spans().size(),
               static_cast<double>(report.top_level_total_ns()) / 1e6,
               wall_ms);
  if (!trace_path.empty()) {
    std::ofstream trace_out(trace_path);
    report.write_chrome_trace(trace_out);
    std::fprintf(stderr, "wrote Chrome trace to %s (%zu events)\n",
                 trace_path.c_str(), report.events().size());
  }
  return 0;
}
