// Micro-benchmarks (google-benchmark) for the substrate hot paths: local
// graph database inserts/lookups, metagraph reachability and expansion,
// and BFS over the analytics CSR.  These back the §IV-A claim that the
// local database offers constant-time insertion and retrieval.
#include <benchmark/benchmark.h>

#include "analytics/graph_view.hpp"
#include "analytics/reachability.hpp"
#include "core/generator.hpp"
#include "graphdb/cypher.hpp"
#include "graphdb/store.hpp"
#include "metagraph/algorithms.hpp"
#include "metagraph/expansion.hpp"
#include "util/rng.hpp"

using namespace adsynth;

namespace {

void BM_StoreCreateNode(benchmark::State& state) {
  graphdb::GraphStore store;
  const auto label = store.intern_label("User");
  const auto key = store.intern_key("name");
  std::size_t i = 0;
  for (auto _ : state) {
    graphdb::PropertyList props;
    graphdb::put_property(props, key,
                          graphdb::PropertyValue("U" + std::to_string(i++)));
    benchmark::DoNotOptimize(
        store.create_node_interned({label}, std::move(props)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreCreateNode);

void BM_StoreCreateRelationship(benchmark::State& state) {
  graphdb::GraphStore store;
  const auto label = store.intern_label("User");
  const auto type = store.intern_rel_type("GenericAll");
  std::vector<graphdb::NodeId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(store.create_node_interned({label}));
  }
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.create_relationship_interned(
        ids[rng.index(ids.size())], ids[rng.index(ids.size())], type));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreCreateRelationship);

void BM_StoreIndexedLookup(benchmark::State& state) {
  graphdb::GraphStore store;
  store.create_index("User", "name");
  const auto label = store.intern_label("User");
  const auto key = store.intern_key("name");
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    graphdb::PropertyList props;
    graphdb::put_property(props, key,
                          graphdb::PropertyValue("U" + std::to_string(i)));
    store.create_node_interned({label}, std::move(props));
  }
  util::Rng rng(1);
  for (auto _ : state) {
    const std::string needle = "U" + std::to_string(rng.index(n));
    benchmark::DoNotOptimize(
        store.find_nodes("User", "name", graphdb::PropertyValue(needle)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreIndexedLookup)->Arg(1'000)->Arg(100'000);

void BM_CypherCreateStatement(benchmark::State& state) {
  graphdb::GraphStore store;
  graphdb::CypherSession session(store);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run(
        "CREATE (n:User {name: 'U" + std::to_string(i++) + "'})"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CypherCreateStatement);

void BM_MetagraphReach(benchmark::State& state) {
  const auto ad =
      core::generate_ad(core::GeneratorConfig::vulnerable(
          static_cast<std::size_t>(state.range(0)), 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metagraph::reach(ad.meta, {0}, metagraph::ReachMode::kDisjunctive));
  }
}
BENCHMARK(BM_MetagraphReach)->Arg(1'000)->Arg(10'000);

void BM_MetagraphExpand(benchmark::State& state) {
  const auto ad = core::generate_ad(core::GeneratorConfig::secure(
      static_cast<std::size_t>(state.range(0)), 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(metagraph::expand(ad.meta));
  }
}
BENCHMARK(BM_MetagraphExpand)->Arg(1'000)->Arg(10'000);

void BM_AnalyticsBfs(benchmark::State& state) {
  const auto ad = core::generate_ad(core::GeneratorConfig::secure(
      static_cast<std::size_t>(state.range(0)), 1));
  const auto reverse = analytics::build_reverse(ad.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analytics::bfs_distances(reverse, {ad.graph.domain_admins()}));
  }
}
BENCHMARK(BM_AnalyticsBfs)->Arg(10'000)->Arg(100'000);

void BM_GenerateSecure(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::generate_ad(core::GeneratorConfig::secure(
        static_cast<std::size_t>(state.range(0)), 1)));
  }
}
BENCHMARK(BM_GenerateSecure)->Arg(1'000)->Arg(10'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
