// Fig. 11 — GoodHound weakest-link removal: how many prioritized link
// removals eliminate all shortest attack paths to Domain Admins.
//
// Shape to reproduce: on ADSimulator data roughly 600 removals are needed
// (random permissions breed attack paths everywhere); on the ADSynth
// secure graph only ≈29, mirroring the realistic University AD graph.
#include "defense/goodhound.hpp"
#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("small", "run at 20k instead of the AD100 scale (100k)");
  args.add_option("baseline-batch",
                  "edges removed per scoring round on the baseline graph "
                  "(its removal count is ~600; batching keeps the bench "
                  "tractable)", "10");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);
  const std::size_t nodes = ad100_nodes(args.flag("small"));

  print_header("Fig. 11: weakest links removed to eliminate attack paths",
               "ADSimulator ≈600 removals; ADSynth secure ≈29, mirroring "
               "the University graph");

  util::TextTable table({"dataset", "|V|", "links removed", "note"});

  {
    defense::GoodHoundOptions options;
    options.batch =
        static_cast<std::size_t>(args.integer("baseline-batch"));
    options.max_sources = 64;
    const auto g = make_adsimulator(nodes, 1);
    const auto result = defense::eliminate_attack_paths(g, options);
    table.add_row({"ADSimulator", util::with_commas(g.node_count()),
                   std::to_string(result.removals()),
                   result.exhausted ? "exhausted cap" : ""});
  }
  {
    const auto g = make_adsynth("secure", nodes, 1);
    const auto result = defense::eliminate_attack_paths(g);
    table.add_row({"ADSynth (secure)", util::with_commas(g.node_count()),
                   std::to_string(result.removals()), ""});
  }
  {
    const auto g = make_university(nodes);
    const auto result = defense::eliminate_attack_paths(g);
    table.add_row({"University (reference)",
                   util::with_commas(g.node_count()),
                   std::to_string(result.removals()), ""});
  }
  std::fputs(table.render().c_str(), stdout);
  capture.finish("fig11_goodhound");
  return 0;
}
