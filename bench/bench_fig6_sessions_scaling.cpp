// Fig. 6 — highest session count per user as the network grows, per tool.
//
// Shape to reproduce: ADSynth's peak grows with size until the
// max-sessions-per-user knob caps it (≈20 for the secure preset), giving a
// tunable range of user logons; the baselines' peaks stay in a narrow flat
// band regardless of size (their per-computer draws cannot express ranges).
#include "analytics/sessions.hpp"
#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("full", "paper-scale sizes (up to 1M nodes)");
  args.add_option("baseline-cap",
                  "largest size the Cypher-driven baselines run at", "10000");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);
  const bool full = args.flag("full");
  const auto baseline_cap =
      static_cast<std::size_t>(args.integer("baseline-cap"));

  print_header("Fig. 6: peak sessions per user vs network size",
               "ADSynth generates a range of user logons which none of the "
               "other tools can do");

  util::TextTable table({"|V|", "DBCreator", "ADSimulator",
                         "ADSynth(secure)", "ADSynth(vulnerable)"});
  for (const std::size_t nodes : graph_sizes(full)) {
    auto peak = [](const adcore::AttackGraph& g) {
      return std::to_string(analytics::session_stats(g).peak);
    };
    std::vector<std::string> row{util::with_commas(nodes)};
    row.push_back(nodes <= baseline_cap ? peak(make_dbcreator(nodes, 1)) : "-");
    row.push_back(nodes <= baseline_cap * 10
                      ? peak(make_adsimulator(nodes, 1))
                      : "-");
    row.push_back(peak(make_adsynth("secure", nodes, 1)));
    row.push_back(peak(make_adsynth("vulnerable", nodes, 1)));
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  capture.finish("fig6_sessions_scaling");
  return 0;
}
