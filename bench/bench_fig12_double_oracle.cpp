// Fig. 12 — the Scalable Double Oracle hardening algorithm [14]: number of
// edge cuts needed to fully eliminate attack paths of the shortest length,
// distribution over seeds.
//
// Shape to reproduce: on ADSimulator data the median is ≈8 cuts; on the
// ADSynth secure graph the minimum edge removal does not exceed 2,
// resembling the University AD system.
#include "defense/double_oracle.hpp"
#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("small", "run at 20k instead of the AD100 scale (100k)");
  args.add_option("seeds", "instances per dataset", "5");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);
  const std::size_t nodes = ad100_nodes(args.flag("small"));
  const auto seeds = static_cast<std::size_t>(args.integer("seeds"));

  print_header("Fig. 12: Double Oracle edge cuts to eliminate shortest paths",
               "ADSimulator median ≈8 cuts; ADSynth secure ≤2, like the "
               "University graph");

  util::TextTable table(
      {"dataset", "min cuts", "median cuts", "max cuts", "median iters"});
  auto add = [&](const char* name, auto&& make) {
    util::RunStats cuts;
    util::RunStats iters;
    for (std::size_t s = 1; s <= seeds; ++s) {
      const auto result = defense::harden(make(s));
      cuts.add(static_cast<double>(result.cut_count()));
      iters.add(static_cast<double>(result.oracle_iterations));
    }
    table.add_row({name, util::fixed(cuts.min(), 0),
                   util::fixed(cuts.median(), 0), util::fixed(cuts.max(), 0),
                   util::fixed(iters.median(), 0)});
  };
  add("ADSimulator", [&](std::uint64_t s) { return make_adsimulator(nodes, s); });
  add("ADSynth (secure)",
      [&](std::uint64_t s) { return make_adsynth("secure", nodes, s); });
  add("University (reference)",
      [&](std::uint64_t s) { return make_university(nodes, 6 + s); });
  std::fputs(table.render().c_str(), stdout);
  capture.finish("fig12_double_oracle");
  return 0;
}
