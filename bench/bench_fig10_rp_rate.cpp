// Fig. 10 — Route Penetration Rate (choke-point) analysis:
//   (a) peak RP rate vs graph size at constant security settings;
//   (b) peak RP rate per tool at the AD100 scale;
//   (c) RP-rate distribution over the top-30 nodes vs the University.
//
// Shape to reproduce: (a) larger graphs under the same violation rate
// spread traffic over more escalation routes, so the peak RP falls;
// (b) DBCreator/ADSimulator sit in a moderate 20–40% band, ADSynth-secure
// shows high-RP choke points like the University, ADSynth-vulnerable low;
// (c) the secure network holds choke points above 80% while the
// vulnerable one has no significant choke point.
#include <algorithm>

#include "analytics/rp_rate.hpp"
#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("small", "run part (b)/(c) at 20k instead of 100k");
  args.add_flag("full", "part (a) sizes up to 1M");
  args.add_option("seeds", "seeds averaged in parts (a)/(b)", "3");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);
  const std::size_t ad100 = ad100_nodes(args.flag("small"));
  const auto seeds = static_cast<std::size_t>(args.integer("seeds"));

  print_header("Fig. 10: Route Penetration Rate (choke points)",
               "(a) peak RP falls with size; (b) baselines flat 20-40%, "
               "ADSynth secure high / vulnerable low; (c) secure choke "
               "points >80% like the University");

  // --- (a) peak RP vs size, constant security settings ---------------------
  // A fixed violation rate ("constant security settings"): as the network
  // grows, the number of violated connections grows with it, escalation
  // routes multiply, and traffic at the choke points spreads out.
  std::printf("(a) peak RP rate vs graph size, constant violation rate\n");
  const std::size_t a_seeds = std::max<std::size_t>(seeds, 6);
  util::TextTable a({"|V|", "peak RP (mean over seeds)"});
  for (const std::size_t nodes : graph_sizes(args.flag("full"))) {
    double peak = 0.0;
    for (std::size_t s = 1; s <= a_seeds; ++s) {
      auto cfg = core::GeneratorConfig::secure(nodes, s);
      cfg.perc_misconfig_permissions = 0.01;
      cfg.perc_misconfig_sessions = 0.005;
      // Uniform violation targets (no operator/server concentration): the
      // sweep isolates the pure size effect of Algorithms 3 & 4.
      cfg.misconfig_server_bias = 0.0;
      cfg.primary_operator_bias = 0.0;
      cfg.domain_admins_bloat = 1.0;
      peak += analytics::route_penetration(core::generate_ad(cfg).graph)
                  .peak();
    }
    a.add_row({util::with_commas(nodes),
               util::percent(peak / static_cast<double>(a_seeds), 1)});
  }
  std::fputs(a.render().c_str(), stdout);

  // --- (b) peak RP per tool -------------------------------------------------
  std::printf("\n(b) peak RP rates per generator (|V| = %s)\n",
              util::with_commas(ad100).c_str());
  util::TextTable b({"system", "peak RP (median over seeds)"});
  const std::size_t b_seeds = std::max<std::size_t>(seeds, 5);
  auto add = [&](const char* name, auto&& make) {
    util::RunStats peaks;
    for (std::size_t s = 1; s <= b_seeds; ++s) {
      peaks.add(analytics::route_penetration(make(s)).peak());
    }
    b.add_row({name, util::percent(peaks.median(), 1)});
  };
  add("DBCreator (10k cap)", [&](std::uint64_t s) {
    return make_dbcreator(std::min<std::size_t>(ad100, 10'000), s);
  });
  add("ADSimulator",
      [&](std::uint64_t s) { return make_adsimulator(ad100, s); });
  add("ADSynth (secure)",
      [&](std::uint64_t s) { return make_adsynth("secure", ad100, s); });
  add("ADSynth (vulnerable)",
      [&](std::uint64_t s) { return make_adsynth("vulnerable", ad100, s); });
  add("University (reference)",
      [&](std::uint64_t s) { return make_university(ad100, 6 + s); });
  std::fputs(b.render().c_str(), stdout);

  // --- (c) top-30 RP distribution --------------------------------------------
  std::printf("\n(c) RP rates of the top-30 nodes (|V| = %s)\n",
              util::with_commas(ad100).c_str());
  const auto uni = analytics::route_penetration(make_university(ad100)).top(30);
  const auto secure =
      analytics::route_penetration(make_adsynth("secure", ad100, 2)).top(30);
  const auto vulnerable =
      analytics::route_penetration(make_adsynth("vulnerable", ad100, 2))
          .top(30);
  util::TextTable c({"rank", "University", "ADSynth(secure)",
                     "ADSynth(vulnerable)"});
  for (std::size_t i = 0; i < 30; ++i) {
    auto cell = [&](const std::vector<std::pair<adcore::NodeIndex, double>>& v) {
      return i < v.size() ? util::percent(v[i].second, 1) : std::string("-");
    };
    c.add_row({std::to_string(i + 1), cell(uni), cell(secure),
               cell(vulnerable)});
  }
  std::fputs(c.render().c_str(), stdout);
  capture.finish("fig10_rp_rate");
  return 0;
}
