// Fig. 7 — peak user session counts across security settings and tools at
// the AD100 scale.
//
// Shape to reproduce: vulnerable ADSynth networks have the highest peaks
// (violated cross-tier sessions); secure AD100 peaks at ≈20 sessions per
// user, matching the University AD system; baselines sit low and flat.
#include "analytics/sessions.hpp"
#include "common.hpp"

using namespace adsynth;
using namespace adsynth::bench;

int main(int argc, char** argv) {
  util::CliArgs args;
  args.add_flag("small", "run at 20k instead of the AD100 scale (100k)");
  add_threads_option(args);
  add_trace_option(args);
  if (!args.parse(argc, argv)) return 0;
  TraceCapture capture(args);
  apply_threads_option(args);
  const std::size_t nodes = ad100_nodes(args.flag("small"));

  print_header("Fig. 7: peak user sessions per AD system",
               "secure AD100 ≈ 20 sessions/user at peak ≈ the University "
               "system; vulnerable networks surpass every other");

  util::TextTable table({"system", "|V|", "peak sessions/user",
                         "mean sessions/user"});
  auto add = [&](const char* name, const adcore::AttackGraph& g) {
    const auto s = analytics::session_stats(g);
    table.add_row({name, util::with_commas(g.node_count()),
                   std::to_string(s.peak), util::fixed(s.mean, 2)});
  };
  add("DBCreator", make_dbcreator(std::min<std::size_t>(nodes, 10'000), 1));
  add("ADSimulator", make_adsimulator(nodes, 1));
  add("ADSynth (highly secure)", make_adsynth("highly_secure", nodes, 1));
  add("ADSynth (secure, AD100)", make_adsynth("secure", nodes, 1));
  add("ADSynth (vulnerable)", make_adsynth("vulnerable", nodes, 1));
  add("University (reference)", make_university(nodes));
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nnote: DBCreator capped at 10,000 nodes (cannot scale; "
              "Table I)\n");
  capture.finish("fig7_sessions_security");
  return 0;
}
