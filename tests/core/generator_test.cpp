// Invariant tests for the ADSynth pipeline: the tier model's restrictions,
// the misconfiguration semantics of Algorithms 3 & 4, metagraph consistency,
// and determinism — swept over sizes, tier counts and security presets.
#include "core/generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analytics/reachability.hpp"
#include "analytics/sessions.hpp"
#include "core/export.hpp"
#include "metagraph/algorithms.hpp"
#include "util/timer.hpp"

namespace adsynth::core {
namespace {

using adcore::EdgeKind;
using adcore::NodeIndex;
using adcore::ObjectKind;
namespace node_flag = adcore::node_flag;

GeneratorConfig small_config(std::uint32_t tiers = 3,
                             std::uint64_t seed = 1) {
  GeneratorConfig cfg = GeneratorConfig::secure(2000, seed);
  cfg.num_tiers = tiers;
  return cfg;
}

TEST(Generator, HitsTargetNodeCountApproximately) {
  const GeneratedAd ad = generate_ad(small_config());
  EXPECT_NEAR(static_cast<double>(ad.graph.node_count()), 2000.0, 20.0);
}

TEST(Generator, StatsMatchGraphContents) {
  const GeneratedAd ad = generate_ad(small_config());
  std::map<ObjectKind, std::size_t> kinds;
  for (NodeIndex i = 0; i < ad.graph.node_count(); ++i) {
    ++kinds[ad.graph.kind(i)];
  }
  EXPECT_EQ(kinds[ObjectKind::kUser], ad.stats.users);
  EXPECT_EQ(kinds[ObjectKind::kComputer], ad.stats.computers);
  EXPECT_EQ(kinds[ObjectKind::kGroup], ad.stats.groups);
  EXPECT_EQ(kinds[ObjectKind::kOU], ad.stats.ous);
  EXPECT_EQ(kinds[ObjectKind::kGPO], ad.stats.gpos);
  EXPECT_EQ(kinds[ObjectKind::kDomain], 1u);
  EXPECT_EQ(ad.graph.violation_count(),
            ad.stats.violation_sessions + ad.stats.violation_permissions);
  EXPECT_EQ(ad.graph.edge_count(),
            ad.stats.structural_edges + ad.stats.permission_edges +
                ad.stats.session_edges + ad.stats.violation_sessions +
                ad.stats.violation_permissions);
}

TEST(Generator, DomainAdminsExistsAndHasMembers) {
  const GeneratedAd ad = generate_ad(small_config());
  const NodeIndex da = ad.graph.domain_admins();
  ASSERT_NE(da, adcore::kNoNodeIndex);
  EXPECT_EQ(ad.graph.kind(da), ObjectKind::kGroup);
  EXPECT_EQ(ad.graph.name(da), "DOMAIN ADMINS");
  EXPECT_EQ(ad.graph.tier(da), 0);
  std::size_t members = 0;
  for (const auto& e : ad.graph.edges()) {
    if (e.kind == EdgeKind::kMemberOf && e.target == da) ++members;
  }
  EXPECT_GE(members, 1u);
}

// The central invariant sweep: every tier-model rule of §III holds for all
// (tiers, preset, seed) combinations.
struct SweepParam {
  std::uint32_t tiers;
  const char* preset;
  std::uint64_t seed;
};

GeneratorConfig config_for(const SweepParam& p) {
  GeneratorConfig cfg;
  if (std::string(p.preset) == "secure") {
    cfg = GeneratorConfig::secure(3000, p.seed);
  } else if (std::string(p.preset) == "vulnerable") {
    cfg = GeneratorConfig::vulnerable(3000, p.seed);
  } else {
    cfg = GeneratorConfig::highly_secure(3000, p.seed);
  }
  cfg.num_tiers = p.tiers;
  return cfg;
}

class TierModelSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TierModelSweep, TierRestrictionsHold) {
  const GeneratedAd ad = generate_ad(config_for(GetParam()));
  const auto& g = ad.graph;
  for (const auto& e : g.edges()) {
    const auto st = g.tier(e.source);
    const auto tt = g.tier(e.target);
    switch (e.kind) {
      case EdgeKind::kHasSession:
        // Legal sessions: credentials never land on a less-privileged
        // (numerically higher) tier.  Violations do exactly that.
        ASSERT_NE(st, adcore::kNoTier);
        ASSERT_NE(tt, adcore::kNoTier);
        if (e.violation) {
          EXPECT_GT(st, tt) << "violated session must expose higher-tier "
                               "credentials on a lower-tier computer";
        } else {
          EXPECT_LE(st, tt) << "legal session on a less-privileged computer";
        }
        break;
      case EdgeKind::kMemberOf:
        // Least privilege: users join groups of their own tier only.
        EXPECT_EQ(st, tt);
        break;
      default:
        if (adcore::is_non_acl_permission(e.kind) && e.violation) {
          // Algorithm 4: regular user gains rights on a MORE privileged
          // computer.
          EXPECT_LT(tt, st);
          EXPECT_EQ(g.kind(e.source), ObjectKind::kUser);
          EXPECT_EQ(g.kind(e.target), ObjectKind::kComputer);
          EXPECT_FALSE(g.has_flag(e.source, node_flag::kAdmin));
        } else if ((adcore::is_acl_permission(e.kind) ||
                    adcore::is_non_acl_permission(e.kind)) &&
                   !e.violation && g.kind(e.source) == ObjectKind::kGroup &&
                   g.tier(e.source) != adcore::kNoTier &&
                   tt != adcore::kNoTier) {
          // Algorithm 1: admin groups control their tier and below.
          EXPECT_LE(st, tt);
        }
        break;
    }
  }
}

TEST_P(TierModelSweep, DisabledUsersAreInert) {
  const GeneratedAd ad = generate_ad(config_for(GetParam()));
  const auto& g = ad.graph;
  std::set<NodeIndex> disabled;
  for (NodeIndex i = 0; i < g.node_count(); ++i) {
    if (g.kind(i) == ObjectKind::kUser &&
        !g.has_flag(i, node_flag::kEnabled)) {
      disabled.insert(i);
    }
  }
  for (const auto& e : g.edges()) {
    if (e.kind == EdgeKind::kHasSession) {
      EXPECT_EQ(disabled.count(e.target), 0u)
          << "disabled accounts must not hold sessions";
    }
    if (e.kind == EdgeKind::kMemberOf) {
      EXPECT_EQ(disabled.count(e.source), 0u)
          << "disabled accounts must not be group members";
    }
  }
}

TEST_P(TierModelSweep, SessionCapRespected) {
  const SweepParam p = GetParam();
  const GeneratorConfig cfg = config_for(p);
  const GeneratedAd ad = generate_ad(cfg);
  const auto stats = analytics::session_stats(ad.graph);
  // The per-user cap can be exceeded only by the tier-0 coverage guarantee,
  // which targets tier-0 admins; regular users stay within the cap.
  for (std::size_t i = 0; i < stats.users.size(); ++i) {
    const NodeIndex u = stats.users[i];
    if (!ad.graph.has_flag(u, node_flag::kAdmin)) {
      EXPECT_LE(stats.counts[i], cfg.max_sessions_per_user);
    }
  }
}

TEST_P(TierModelSweep, MetagraphMirrorsGraph) {
  const GeneratedAd ad = generate_ad(config_for(GetParam()));
  // Every leaf object (user, computer) is an element; mapping is total.
  std::size_t leaves = 0;
  for (NodeIndex i = 0; i < ad.graph.node_count(); ++i) {
    const auto kind = ad.graph.kind(i);
    leaves += (kind == ObjectKind::kUser || kind == ObjectKind::kComputer)
                  ? 1
                  : 0;
  }
  EXPECT_EQ(ad.meta.element_count(), leaves);
  ASSERT_EQ(ad.node_of_element.size(), ad.meta.element_count());
  for (metagraph::ElementId e = 0; e < ad.meta.element_count(); ++e) {
    const NodeIndex n = ad.node_of_element[e];
    ASSERT_LT(n, ad.graph.node_count());
    const auto kind = ad.graph.kind(n);
    EXPECT_TRUE(kind == ObjectKind::kUser || kind == ObjectKind::kComputer);
  }
  // Sets map to group/OU (or singleton leaf) graph nodes.
  ASSERT_EQ(ad.node_of_set.size(), ad.meta.set_count());
  for (metagraph::SetId s = 0; s < ad.meta.set_count(); ++s) {
    ASSERT_LT(ad.node_of_set[s], ad.graph.node_count());
  }
  // Group membership matches MemberOf edges.
  for (const GroupRecord& grp : ad.org.groups) {
    std::size_t member_edges = 0;
    for (const auto& e : ad.graph.edges()) {
      if (e.kind == EdgeKind::kMemberOf && e.target == grp.graph_node) {
        ++member_edges;
      }
    }
    EXPECT_EQ(ad.meta.members(grp.set).size(), member_edges)
        << "group " << grp.name;
  }
}

TEST_P(TierModelSweep, ViolationCountsTrackParameters) {
  const SweepParam p = GetParam();
  const GeneratorConfig cfg = config_for(p);
  const GeneratedAd ad = generate_ad(cfg);
  std::size_t total_users = 0;
  for (const auto& tier : ad.users_by_tier) total_users += tier.size();
  if (cfg.num_tiers < 2) {
    EXPECT_EQ(ad.stats.violation_sessions, 0u);
    EXPECT_EQ(ad.stats.violation_permissions, 0u);
    return;
  }
  const auto expected_sessions = static_cast<std::size_t>(
      std::llround(cfg.perc_misconfig_sessions * total_users));
  const auto expected_perms = static_cast<std::size_t>(
      std::llround(cfg.perc_misconfig_permissions * total_users));
  // Draws can be skipped when a pool is empty, never exceeded.
  EXPECT_LE(ad.stats.violation_sessions, expected_sessions);
  EXPECT_LE(ad.stats.violation_permissions, expected_perms);
  EXPECT_GE(ad.stats.violation_sessions, expected_sessions * 9 / 10);
  EXPECT_GE(ad.stats.violation_permissions, expected_perms * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TierModelSweep,
    ::testing::Values(SweepParam{1, "secure", 1}, SweepParam{2, "secure", 2},
                      SweepParam{3, "secure", 3}, SweepParam{3, "secure", 4},
                      SweepParam{4, "vulnerable", 5},
                      SweepParam{3, "vulnerable", 6},
                      SweepParam{2, "vulnerable", 7},
                      SweepParam{3, "highly_secure", 8},
                      SweepParam{5, "secure", 9}),
    [](const auto& info) {
      return std::string(info.param.preset) + "_k" +
             std::to_string(info.param.tiers) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(Generator, DeterministicForSeed) {
  const GeneratedAd a = generate_ad(small_config(3, 42));
  const GeneratedAd b = generate_ad(small_config(3, 42));
  ASSERT_EQ(a.graph.node_count(), b.graph.node_count());
  ASSERT_EQ(a.graph.edge_count(), b.graph.edge_count());
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
  for (NodeIndex i = 0; i < a.graph.node_count(); ++i) {
    ASSERT_EQ(a.graph.name(i), b.graph.name(i));
  }
  EXPECT_EQ(a.meta.edge_count(), b.meta.edge_count());
}

TEST(Generator, DifferentSeedsDiffer) {
  const GeneratedAd a = generate_ad(small_config(3, 1));
  const GeneratedAd b = generate_ad(small_config(3, 2));
  EXPECT_NE(a.graph.edges(), b.graph.edges());
}

TEST(Generator, SecurityPresetsOrderObservables) {
  const auto secure =
      generate_ad(GeneratorConfig::secure(20000, 11));
  const auto vulnerable =
      generate_ad(GeneratorConfig::vulnerable(20000, 11));
  EXPECT_LT(secure.graph.violation_count(),
            vulnerable.graph.violation_count());
  EXPECT_LT(secure.graph.density(), vulnerable.graph.density());
  const auto rs = analytics::users_reaching_da(secure.graph);
  const auto rv = analytics::users_reaching_da(vulnerable.graph);
  EXPECT_LT(rs.fraction, rv.fraction);
  EXPECT_GT(rv.fraction, 0.01);
}

TEST(Generator, SecureGraphHasTinyBreachedPopulation) {
  const auto ad = generate_ad(GeneratorConfig::secure(50000, 3));
  const auto reach = analytics::users_reaching_da(ad.graph);
  // Paper Fig. 9: ≈0.02% of regular users reach Domain Admins.
  EXPECT_GT(reach.fraction, 0.0);
  EXPECT_LT(reach.fraction, 0.002);
}

TEST(Generator, InvalidConfigRejected) {
  GeneratorConfig cfg;
  cfg.num_tiers = 0;
  EXPECT_THROW(generate_ad(cfg), std::invalid_argument);
}

TEST(Generator, OrgStructureShape) {
  const GeneratorConfig cfg = small_config();
  const GeneratedAd ad = generate_ad(cfg);
  const auto& org = ad.org;
  ASSERT_EQ(org.admin_groups_by_tier.size(), cfg.num_tiers);
  for (const auto& tier_groups : org.admin_groups_by_tier) {
    EXPECT_EQ(tier_groups.size(), cfg.admin_groups_per_tier);
  }
  EXPECT_NE(org.domain_admins, kNoOrgIndex);
  EXPECT_EQ(org.groups[org.domain_admins].tier, 0);
  const auto departments = cfg.effective_departments();
  const auto locations = cfg.effective_locations();
  ASSERT_EQ(org.department_groups.size(), departments.size());
  for (const auto& dept : org.department_groups) {
    // One distribution group per location + one security group per folder.
    EXPECT_EQ(dept.size(), locations.size() + cfg.num_root_folders);
  }
  EXPECT_EQ(org.dept_locations.size(), departments.size() * locations.size());
  EXPECT_NE(org.disabled_ou, kNoOrgIndex);
  EXPECT_EQ(org.gpos.size(), cfg.num_tiers + departments.size());
}

TEST(Generator, ElementToElementGraphExpandsPermissions) {
  GeneratorConfig cfg = small_config();
  const GeneratedAd ad = generate_ad(cfg);
  const adcore::AttackGraph flat = element_to_element_graph(ad);
  // Only leaf objects remain.
  EXPECT_EQ(flat.node_count(), ad.meta.element_count());
  for (NodeIndex i = 0; i < flat.node_count(); ++i) {
    const auto kind = flat.kind(i);
    EXPECT_TRUE(kind == ObjectKind::kUser || kind == ObjectKind::kComputer);
  }
  // Sessions map one-to-one, so the flat graph has at least those.
  std::size_t flat_sessions = 0;
  for (const auto& e : flat.edges()) {
    flat_sessions += e.kind == EdgeKind::kHasSession ? 1 : 0;
  }
  EXPECT_EQ(flat_sessions,
            ad.stats.session_edges + ad.stats.violation_sessions);
  // Permission edges expand to member pairs on top of the 1:1 sessions
  // (set-level edges whose vertex sets hold no elements expand to nothing).
  EXPECT_GT(flat.edge_count(), flat_sessions);
}

TEST(Generator, SingleTierDegeneratesGracefully) {
  GeneratorConfig cfg = GeneratorConfig::vulnerable(1000, 5);
  cfg.num_tiers = 1;
  const GeneratedAd ad = generate_ad(cfg);
  EXPECT_EQ(ad.stats.violation_sessions, 0u);
  EXPECT_EQ(ad.stats.violation_permissions, 0u);
  EXPECT_EQ(ad.graph.violation_count(), 0u);
  EXPECT_GT(ad.stats.session_edges, 0u);
}

TEST(Generator, ScalesLinearlyEnough) {
  // Not a benchmark — just guards against accidental quadratic behaviour:
  // 20k nodes must generate in well under a second.
  util::Stopwatch timer;
  const GeneratedAd ad = generate_ad(GeneratorConfig::secure(20000, 1));
  EXPECT_LT(timer.seconds(), 2.0);
  EXPECT_GT(ad.graph.node_count(), 19000u);
}

}  // namespace
}  // namespace adsynth::core
