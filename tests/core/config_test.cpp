#include "core/config.hpp"

#include <gtest/gtest.h>

namespace adsynth::core {
namespace {

TEST(Config, DefaultsValidate) {
  GeneratorConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, PresetsEncodeSecuritySpectrum) {
  const auto hs = GeneratorConfig::highly_secure(100000, 1);
  const auto s = GeneratorConfig::secure(100000, 1);
  const auto v = GeneratorConfig::vulnerable(100000, 1);
  EXPECT_NO_THROW(hs.validate());
  EXPECT_NO_THROW(s.validate());
  EXPECT_NO_THROW(v.validate());
  // Misconfiguration rates strictly ordered.
  EXPECT_LT(hs.perc_misconfig_permissions, s.perc_misconfig_permissions);
  EXPECT_LT(s.perc_misconfig_permissions, v.perc_misconfig_permissions);
  EXPECT_LE(hs.perc_misconfig_sessions, s.perc_misconfig_sessions);
  EXPECT_LT(s.perc_misconfig_sessions, v.perc_misconfig_sessions);
  EXPECT_EQ(hs.perc_misconfig_sessions, 0.0);
}

TEST(Config, ValidationCatchesBadValues) {
  GeneratorConfig cfg;
  cfg.target_nodes = 10;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = GeneratorConfig{};
  cfg.num_tiers = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = GeneratorConfig{};
  cfg.resource_ratio = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = GeneratorConfig{};
  cfg.perc_misconfig_sessions = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = GeneratorConfig{};
  cfg.min_groups_per_user = 5;
  cfg.max_groups_per_user = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = GeneratorConfig{};
  cfg.paw_fraction = 0.7;
  cfg.server_fraction = 0.7;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = GeneratorConfig{};
  cfg.domain_fqdn.clear();
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = GeneratorConfig{};
  cfg.user_share = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, JsonRoundTripPreservesEveryField) {
  GeneratorConfig cfg;
  cfg.target_nodes = 12345;
  cfg.user_share = 0.61;
  cfg.num_tiers = 4;
  cfg.departments = {"A", "B"};
  cfg.locations = {"X"};
  cfg.num_root_folders = 7;
  cfg.admin_groups_per_tier = 9;
  cfg.num_domain_controllers = 3;
  cfg.domain_fqdn = "example.org";
  cfg.admin_user_fraction = 0.02;
  cfg.disabled_user_fraction = 0.2;
  cfg.paw_fraction = 0.03;
  cfg.server_fraction = 0.22;
  cfg.min_groups_per_user = 2;
  cfg.max_groups_per_user = 6;
  cfg.resource_ratio = 0.4;
  cfg.session_ratio = 0.005;
  cfg.max_sessions_per_user = 33;
  cfg.primary_operator_bias = 0.5;
  cfg.perc_misconfig_sessions = 0.01;
  cfg.perc_misconfig_permissions = 0.02;
  cfg.element_to_element = true;
  cfg.seed = 99;

  const GeneratorConfig back = GeneratorConfig::from_json(cfg.to_json());
  EXPECT_EQ(back.target_nodes, cfg.target_nodes);
  EXPECT_DOUBLE_EQ(back.user_share, cfg.user_share);
  EXPECT_EQ(back.num_tiers, cfg.num_tiers);
  EXPECT_EQ(back.departments, cfg.departments);
  EXPECT_EQ(back.locations, cfg.locations);
  EXPECT_EQ(back.num_root_folders, cfg.num_root_folders);
  EXPECT_EQ(back.admin_groups_per_tier, cfg.admin_groups_per_tier);
  EXPECT_EQ(back.num_domain_controllers, cfg.num_domain_controllers);
  EXPECT_EQ(back.domain_fqdn, cfg.domain_fqdn);
  EXPECT_DOUBLE_EQ(back.admin_user_fraction, cfg.admin_user_fraction);
  EXPECT_DOUBLE_EQ(back.disabled_user_fraction, cfg.disabled_user_fraction);
  EXPECT_DOUBLE_EQ(back.paw_fraction, cfg.paw_fraction);
  EXPECT_DOUBLE_EQ(back.server_fraction, cfg.server_fraction);
  EXPECT_EQ(back.min_groups_per_user, cfg.min_groups_per_user);
  EXPECT_EQ(back.max_groups_per_user, cfg.max_groups_per_user);
  EXPECT_DOUBLE_EQ(back.resource_ratio, cfg.resource_ratio);
  EXPECT_DOUBLE_EQ(back.session_ratio, cfg.session_ratio);
  EXPECT_EQ(back.max_sessions_per_user, cfg.max_sessions_per_user);
  EXPECT_DOUBLE_EQ(back.primary_operator_bias, cfg.primary_operator_bias);
  EXPECT_DOUBLE_EQ(back.perc_misconfig_sessions, cfg.perc_misconfig_sessions);
  EXPECT_DOUBLE_EQ(back.perc_misconfig_permissions,
                   cfg.perc_misconfig_permissions);
  EXPECT_EQ(back.element_to_element, cfg.element_to_element);
  EXPECT_EQ(back.seed, cfg.seed);
}

TEST(Config, FromJsonValidates) {
  EXPECT_THROW(GeneratorConfig::from_json(R"({"num_tiers": 0})"),
               std::invalid_argument);
  EXPECT_THROW(GeneratorConfig::from_json("not json"), std::runtime_error);
}

TEST(Config, EffectiveListsScaleWithTargetSize) {
  GeneratorConfig tiny;
  tiny.target_nodes = 1000;
  GeneratorConfig large;
  large.target_nodes = 100000;
  EXPECT_LT(tiny.effective_departments().size(),
            large.effective_departments().size());
  EXPECT_LE(tiny.effective_locations().size(),
            large.effective_locations().size());
  EXPECT_GE(tiny.effective_departments().size(), 2u);
  EXPECT_GE(tiny.effective_locations().size(), 1u);
}

TEST(Config, ExplicitListsRespected) {
  GeneratorConfig cfg;
  cfg.target_nodes = 100000;
  cfg.departments = {"Solo"};
  EXPECT_EQ(cfg.effective_departments(), (std::vector<std::string>{"Solo"}));
}

}  // namespace
}  // namespace adsynth::core
