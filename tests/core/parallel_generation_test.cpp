// The sharded generator's contract (DESIGN.md §"Sharded generation &
// determinism contract"): generation output is bit-identical at every
// thread count.  Shard boundaries are fixed by the config, every shard
// draws from its own Rng::stream substream, and per-shard buffers merge in
// ascending shard order — so the full graph, metagraph and stats must
// fingerprint identically at 1, 2 and 8 threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/forest.hpp"
#include "core/generator.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace adsynth::core {
namespace {

constexpr std::size_t kNodes = 20'000;
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

core::GeneratorConfig preset(const std::string& name) {
  if (name == "secure") return GeneratorConfig::secure(kNodes, 101);
  if (name == "vulnerable") return GeneratorConfig::vulnerable(kNodes, 102);
  return GeneratorConfig::highly_secure(kNodes, 103);
}

// FNV-1a over every observable column.  A fingerprint (rather than a deep
// copy + EXPECT_EQ) keeps the failure signal compact at this scale; the
// per-section hashes below narrow a mismatch to the offending layer.
struct Fingerprint {
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint64_t stats = 0;
  std::uint64_t meta = 0;

  bool operator==(const Fingerprint&) const = default;
};

class Hash {
 public:
  void mix(std::uint64_t v) {
    h_ ^= v;
    h_ *= 0x100000001b3ULL;
  }
  void mix(const std::string& s) {
    for (const char c : s) mix(static_cast<std::uint64_t>(c));
    mix(0x1fULL);  // terminator: "ab","c" != "a","bc"
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

Fingerprint fingerprint(const adcore::AttackGraph& g,
                        const GenerationStats* stats,
                        const metagraph::Metagraph* meta) {
  Fingerprint fp;
  {
    Hash h;
    for (adcore::NodeIndex i = 0; i < g.node_count(); ++i) {
      h.mix(static_cast<std::uint64_t>(g.kind(i)));
      h.mix(static_cast<std::uint64_t>(static_cast<std::uint8_t>(g.tier(i))));
      h.mix(g.flags(i));
      h.mix(g.name(i));
    }
    h.mix(g.domain_admins());
    h.mix(g.domain_node());
    fp.nodes = h.value();
  }
  {
    Hash h;
    for (const adcore::AttackEdge& e : g.edges()) {
      h.mix(e.source);
      h.mix(e.target);
      h.mix(static_cast<std::uint64_t>(e.kind));
      h.mix(e.violation ? 1 : 0);
    }
    fp.edges = h.value();
  }
  if (stats != nullptr) {
    Hash h;
    h.mix(stats->users);
    h.mix(stats->admin_users);
    h.mix(stats->disabled_users);
    h.mix(stats->computers);
    h.mix(stats->servers);
    h.mix(stats->paws);
    h.mix(stats->groups);
    h.mix(stats->ous);
    h.mix(stats->structural_edges);
    h.mix(stats->permission_edges);
    h.mix(stats->session_edges);
    h.mix(stats->violation_sessions);
    h.mix(stats->violation_permissions);
    fp.stats = h.value();
  }
  if (meta != nullptr) {
    Hash h;
    h.mix(meta->element_count());
    for (metagraph::SetId s = 0; s < meta->set_count(); ++s) {
      h.mix(meta->set_name(s));
      for (const metagraph::ElementId m : meta->members(s)) h.mix(m);
    }
    for (metagraph::EdgeId e = 0; e < meta->edge_count(); ++e) {
      const metagraph::MetaEdge& me = meta->edge(e);
      h.mix(me.invertex);
      h.mix(me.outvertex);
      h.mix(me.attributes.label);
    }
    fp.meta = h.value();
  }
  return fp;
}

class ParallelGeneration : public ::testing::TestWithParam<std::string> {
 protected:
  static void TearDownTestSuite() { util::set_global_threads(0); }
};

TEST_P(ParallelGeneration, GenerateAdBitIdenticalAcrossThreadCounts) {
  const GeneratorConfig cfg = preset(GetParam());
  util::set_global_threads(1);
  const GeneratedAd baseline = generate_ad(cfg);
  const Fingerprint expected =
      fingerprint(baseline.graph, &baseline.stats, &baseline.meta);
  ASSERT_GT(baseline.graph.edge_count(), 0u);

  for (const std::size_t threads : kThreadCounts) {
    util::set_global_threads(threads);
    const GeneratedAd ad = generate_ad(cfg);
    const Fingerprint got = fingerprint(ad.graph, &ad.stats, &ad.meta);
    EXPECT_EQ(got.nodes, expected.nodes) << threads << " threads";
    EXPECT_EQ(got.edges, expected.edges) << threads << " threads";
    EXPECT_EQ(got.stats, expected.stats) << threads << " threads";
    EXPECT_EQ(got.meta, expected.meta) << threads << " threads";
    EXPECT_EQ(ad.graph.node_count(), baseline.graph.node_count());
    EXPECT_EQ(ad.graph.edge_count(), baseline.graph.edge_count());
    EXPECT_EQ(ad.meta.edge_count(), baseline.meta.edge_count());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, ParallelGeneration,
                         ::testing::Values(std::string("highly_secure"),
                                           std::string("secure"),
                                           std::string("vulnerable")));

TEST(ParallelForest, BitIdenticalAcrossThreadCounts) {
  ForestConfig cfg;
  cfg.domains = {GeneratorConfig::secure(8'000, 21),
                 GeneratorConfig::vulnerable(6'000, 22),
                 GeneratorConfig::highly_secure(4'000, 23)};
  cfg.domains[0].domain_fqdn = "root.forest.local";
  cfg.domains[1].domain_fqdn = "child-a.forest.local";
  cfg.domains[2].domain_fqdn = "child-b.forest.local";
  cfg.cross_domain_leaks = 5;

  util::set_global_threads(1);
  const GeneratedForest baseline = generate_forest(cfg);
  const Fingerprint expected =
      fingerprint(baseline.graph, nullptr, nullptr);

  for (const std::size_t threads : kThreadCounts) {
    util::set_global_threads(threads);
    const GeneratedForest forest = generate_forest(cfg);
    const Fingerprint got = fingerprint(forest.graph, nullptr, nullptr);
    EXPECT_EQ(got.nodes, expected.nodes) << threads << " threads";
    EXPECT_EQ(got.edges, expected.edges) << threads << " threads";
    EXPECT_EQ(forest.offsets, baseline.offsets);
    EXPECT_EQ(forest.domain_heads, baseline.domain_heads);
    EXPECT_EQ(forest.trusts, baseline.trusts);
  }
  util::set_global_threads(0);
}

TEST(ParallelGenerationSeeds, DifferentSeedsDiffer) {
  // Sanity check that the fingerprint actually discriminates: two seeds of
  // the same preset must not collide on the edge hash.
  util::set_global_threads(1);
  const GeneratedAd a = generate_ad(GeneratorConfig::secure(5'000, 1));
  const GeneratedAd b = generate_ad(GeneratorConfig::secure(5'000, 2));
  EXPECT_NE(fingerprint(a.graph, nullptr, nullptr).edges,
            fingerprint(b.graph, nullptr, nullptr).edges);
  util::set_global_threads(0);
}

}  // namespace
}  // namespace adsynth::core
