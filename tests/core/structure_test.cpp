// Tests for the organisational skeleton (generation step 1) and the
// session-model variants.
#include "core/structure.hpp"

#include <gtest/gtest.h>

#include <map>

#include "analytics/sessions.hpp"
#include "core/generator.hpp"

namespace adsynth::core {
namespace {

using adcore::EdgeKind;
using adcore::NodeIndex;
using adcore::ObjectKind;

GeneratedAd build_skeleton(GeneratorConfig cfg) {
  cfg.validate();
  util::Rng rng(cfg.seed);
  GeneratedAd out;
  build_structure(cfg, rng, out);
  return out;
}

TEST(Structure, TieredOuSkeletonShape) {
  GeneratorConfig cfg;
  cfg.target_nodes = 10000;
  cfg.num_tiers = 3;
  const GeneratedAd ad = build_skeleton(cfg);
  const auto& org = ad.org;

  // One Admin root, one tier root per tier.
  std::size_t admin_roots = 0;
  std::size_t tier_roots = 0;
  for (const OuNode& ou : org.ous) {
    admin_roots += ou.role == OuRole::kAdminRoot ? 1 : 0;
    tier_roots += ou.role == OuRole::kTierRoot ? 1 : 0;
  }
  EXPECT_EQ(admin_roots, 1u);
  EXPECT_EQ(tier_roots, cfg.num_tiers);

  // Every tier has an Accounts OU and a Groups OU.
  ASSERT_EQ(org.account_ous_by_tier.size(), cfg.num_tiers);
  ASSERT_EQ(org.groups_ou_by_tier.size(), cfg.num_tiers);
  for (std::uint32_t t = 0; t < cfg.num_tiers; ++t) {
    ASSERT_FALSE(org.account_ous_by_tier[t].empty());
    ASSERT_NE(org.groups_ou_by_tier[t], kNoOrgIndex);
    EXPECT_EQ(org.ous[org.account_ous_by_tier[t][0]].role, OuRole::kAccounts);
    EXPECT_EQ(org.ous[org.groups_ou_by_tier[t]].role, OuRole::kGroupsOu);
    EXPECT_EQ(org.ous[org.account_ous_by_tier[t][0]].tier,
              static_cast<std::int8_t>(t));
  }

  // PAW (device) OUs exist for the administrative tiers only.
  EXPECT_FALSE(org.device_ous_by_tier[0].empty());
  EXPECT_FALSE(org.device_ous_by_tier[1].empty());
  EXPECT_TRUE(org.device_ous_by_tier[2].empty());

  // Server OUs: DCs at tier 0, enterprise servers at tier 1.
  EXPECT_FALSE(org.server_ous_by_tier[0].empty());
  EXPECT_FALSE(org.server_ous_by_tier[1].empty());

  // Department × location coverage.
  const auto departments = cfg.effective_departments();
  const auto locations = cfg.effective_locations();
  EXPECT_EQ(org.dept_locations.size(), departments.size() * locations.size());
  for (const auto& dl : org.dept_locations) {
    EXPECT_EQ(org.ous[dl.users_ou].role, OuRole::kUsers);
    EXPECT_EQ(org.ous[dl.workstations_ou].role, OuRole::kWorkstations);
  }
}

TEST(Structure, EveryOuHasExactlyOneContainsParent) {
  GeneratorConfig cfg;
  cfg.target_nodes = 5000;
  const GeneratedAd ad = build_skeleton(cfg);
  std::map<NodeIndex, std::size_t> contains_in;
  for (const auto& e : ad.graph.edges()) {
    if (e.kind == EdgeKind::kContains) ++contains_in[e.target];
  }
  for (const OuNode& ou : ad.org.ous) {
    EXPECT_EQ(contains_in[ou.graph_node], 1u) << ou.name;
  }
  for (const GroupRecord& g : ad.org.groups) {
    EXPECT_EQ(contains_in[g.graph_node], 1u) << g.name;
  }
}

TEST(Structure, GroupsLiveInGroupsOus) {
  GeneratorConfig cfg;
  cfg.target_nodes = 5000;
  const GeneratedAd ad = build_skeleton(cfg);
  for (const GroupRecord& g : ad.org.groups) {
    EXPECT_EQ(ad.org.ous[g.ou].role, OuRole::kGroupsOu) << g.name;
    if (g.type == GroupType::kAdmin) {
      EXPECT_EQ(g.tier, ad.org.ous[g.ou].tier);
    }
  }
}

TEST(Structure, GposLinkTierRootsAndDepartments) {
  GeneratorConfig cfg;
  cfg.target_nodes = 10000;
  const GeneratedAd ad = build_skeleton(cfg);
  std::size_t gplinks = 0;
  for (const auto& e : ad.graph.edges()) {
    if (e.kind == EdgeKind::kGpLink) {
      EXPECT_EQ(ad.graph.kind(e.source), ObjectKind::kGPO);
      EXPECT_EQ(ad.graph.kind(e.target), ObjectKind::kOU);
      ++gplinks;
    }
  }
  EXPECT_EQ(gplinks, ad.org.gpos.size());
  EXPECT_EQ(ad.org.gpos.size(),
            cfg.num_tiers + cfg.effective_departments().size());
}

TEST(Structure, MetagraphSetsRegisteredForAllOusAndGroups) {
  GeneratorConfig cfg;
  cfg.target_nodes = 5000;
  const GeneratedAd ad = build_skeleton(cfg);
  for (const OuNode& ou : ad.org.ous) {
    ASSERT_NE(ou.set, metagraph::kNoSet);
    EXPECT_EQ(ad.node_of_set[ou.set], ou.graph_node);
  }
  for (const GroupRecord& g : ad.org.groups) {
    ASSERT_NE(g.set, metagraph::kNoSet);
    EXPECT_EQ(ad.node_of_set[g.set], g.graph_node);
  }
}

TEST(SessionModel, LongTailProducesSteepTop30) {
  auto uniform_cfg = GeneratorConfig::secure(30000, 5);
  auto longtail_cfg = uniform_cfg;
  longtail_cfg.session_model = SessionModel::kLongTail;

  const auto uniform =
      analytics::session_stats(generate_ad(uniform_cfg).graph);
  const auto longtail =
      analytics::session_stats(generate_ad(longtail_cfg).graph);

  // Long-tail: far fewer total sessions, steep top-30 decay.
  EXPECT_LT(longtail.total_sessions, uniform.total_sessions / 2);
  const auto lt_top = longtail.top(30);
  const auto un_top = uniform.top(30);
  ASSERT_EQ(lt_top.size(), 30u);
  // The uniform model crowds the cap (the paper's reported limitation):
  // its 30th-highest count stays close to its peak.  The long-tail model
  // decays markedly within the top 30.
  EXPECT_GE(un_top[29] * 2, un_top[0]);
  EXPECT_LE(lt_top[29] * 2, lt_top[0]);
  // Most long-tail users sit at <= 2 sessions.
  std::size_t small = 0;
  for (const auto c : longtail.counts) small += c <= 2 ? 1 : 0;
  EXPECT_GT(small * 10, longtail.counts.size() * 7);  // > 70%
}

TEST(SessionModel, SerializationRoundTrip) {
  GeneratorConfig cfg;
  cfg.session_model = SessionModel::kLongTail;
  const auto back = GeneratorConfig::from_json(cfg.to_json());
  EXPECT_EQ(back.session_model, SessionModel::kLongTail);
  EXPECT_THROW(
      GeneratorConfig::from_json(R"({"session_model": "weird"})"),
      std::invalid_argument);
}

}  // namespace
}  // namespace adsynth::core
