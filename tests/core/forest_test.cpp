// Tests for the multi-domain forest extension.
#include "core/forest.hpp"

#include <gtest/gtest.h>

#include "analytics/reachability.hpp"

namespace adsynth::core {
namespace {

using adcore::EdgeKind;
using adcore::NodeIndex;
using adcore::ObjectKind;

ForestConfig two_domain_config(std::uint32_t leaks = 0) {
  ForestConfig cfg;
  auto root = GeneratorConfig::secure(1500, 1);
  root.domain_fqdn = "root.forest";
  auto child = GeneratorConfig::vulnerable(1500, 2);
  child.domain_fqdn = "child.forest";
  cfg.domains = {root, child};
  cfg.cross_domain_leaks = leaks;
  return cfg;
}

TEST(Forest, ValidationRejectsBadConfigs) {
  ForestConfig cfg;
  cfg.domains = {GeneratorConfig::secure(1000, 1)};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // one domain
  cfg.domains.push_back(GeneratorConfig::secure(1000, 2));
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // duplicate fqdn
  cfg.domains[1].domain_fqdn = "other.local";
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Forest, MergesDomainsWithOffsets) {
  const GeneratedForest forest = generate_forest(two_domain_config());
  EXPECT_EQ(forest.domain_count(), 2u);
  ASSERT_EQ(forest.offsets.size(), 3u);
  EXPECT_EQ(forest.offsets[0], 0u);
  // EA is appended after both slices.
  EXPECT_EQ(forest.graph.node_count(),
            static_cast<std::size_t>(forest.offsets[2]) + 1);
  EXPECT_EQ(forest.domain_of(forest.domain_heads[0]), 0u);
  EXPECT_EQ(forest.domain_of(forest.domain_heads[1]), 1u);
  EXPECT_THROW(forest.domain_of(static_cast<NodeIndex>(
                   forest.graph.node_count() + 5)),
               std::out_of_range);
}

TEST(Forest, NamesQualifiedPerDomain) {
  const GeneratedForest forest = generate_forest(two_domain_config());
  EXPECT_EQ(forest.graph.name(forest.domain_admins[0]),
            "DOMAIN ADMINS@ROOT.FOREST");
  EXPECT_EQ(forest.graph.name(forest.domain_admins[1]),
            "DOMAIN ADMINS@CHILD.FOREST");
  EXPECT_EQ(forest.graph.name(forest.enterprise_admins),
            "ENTERPRISE ADMINS@ROOT.FOREST");
  // The merged target is the root DA.
  EXPECT_EQ(forest.graph.domain_admins(), forest.domain_admins[0]);
}

TEST(Forest, TrustTopologies) {
  auto count_trust_edges = [](const GeneratedForest& f) {
    std::size_t n = 0;
    for (const auto& e : f.graph.edges()) {
      n += e.kind == EdgeKind::kTrustedBy ? 1 : 0;
    }
    return n;
  };
  ForestConfig cfg = two_domain_config();
  auto third = GeneratorConfig::secure(1500, 3);
  third.domain_fqdn = "third.forest";
  cfg.domains.push_back(third);

  cfg.topology = TrustTopology::kHubAndSpoke;
  EXPECT_EQ(generate_forest(cfg).trusts.size(), 2u);
  EXPECT_EQ(count_trust_edges(generate_forest(cfg)), 4u);  // bidirectional

  cfg.topology = TrustTopology::kChain;
  EXPECT_EQ(generate_forest(cfg).trusts.size(), 2u);

  cfg.topology = TrustTopology::kFullMesh;
  EXPECT_EQ(generate_forest(cfg).trusts.size(), 3u);
}

TEST(Forest, EnterpriseAdminsControlEveryDomain) {
  const GeneratedForest forest = generate_forest(two_domain_config());
  std::size_t generic_all_from_ea = 0;
  for (const auto& e : forest.graph.edges()) {
    if (e.source == forest.enterprise_admins &&
        e.kind == EdgeKind::kGenericAll) {
      ++generic_all_from_ea;
    }
  }
  // One per domain head + one per domain tier-0 Groups OU.
  EXPECT_EQ(generic_all_from_ea, 4u);
}

TEST(Forest, CrossDomainLeaksEnableForestTakeover) {
  // Without leaks, child-domain users cannot reach the root DA.
  const GeneratedForest isolated = generate_forest(two_domain_config(0));
  {
    const auto reach = analytics::users_reaching_da(isolated.graph);
    // Count breached users belonging to the child slice.
    const auto users = analytics::regular_users(isolated.graph);
    std::size_t child_breached = 0;
    for (std::size_t i = 0; i < users.size(); ++i) {
      if (reach.distances[i] != analytics::kUnreachable &&
          isolated.domain_of(users[i]) == 1) {
        ++child_breached;
      }
    }
    EXPECT_EQ(child_breached, 0u);
  }
  // With root-admin sessions leaked onto (vulnerable) child machines, the
  // child's breach population can cross into the root domain.
  const GeneratedForest leaky = generate_forest(two_domain_config(25));
  {
    const auto reach = analytics::users_reaching_da(leaky.graph);
    const auto users = analytics::regular_users(leaky.graph);
    std::size_t child_breached = 0;
    for (std::size_t i = 0; i < users.size(); ++i) {
      if (reach.distances[i] != analytics::kUnreachable &&
          leaky.domain_of(users[i]) == 1) {
        ++child_breached;
      }
    }
    EXPECT_GT(child_breached, 0u);
  }
}

TEST(Forest, DeterministicForSeed) {
  const GeneratedForest a = generate_forest(two_domain_config(5));
  const GeneratedForest b = generate_forest(two_domain_config(5));
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
  EXPECT_EQ(a.graph.node_count(), b.graph.node_count());
}

TEST(Forest, TrustEdgesAreNotTraversable) {
  EXPECT_FALSE(adcore::is_traversable(EdgeKind::kTrustedBy));
  const auto parsed = adcore::parse_edge_kind("TrustedBy");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, EdgeKind::kTrustedBy);
}

}  // namespace
}  // namespace adsynth::core
