// Tests for ADSynth output (§III-B): set-to-set vs element-to-element
// export, identifier uniqueness, and file-level determinism.
#include "core/export.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "adcore/convert.hpp"
#include "core/generator.hpp"
#include "graphdb/neo4j_io.hpp"

namespace adsynth::core {
namespace {

using adcore::ObjectKind;

GeneratedAd small_ad() {
  return generate_ad(GeneratorConfig::secure(1200, 31));
}

TEST(Export, SetToSetKeepsStructuralNodes) {
  const GeneratedAd ad = small_ad();
  const auto store = to_store(ad);
  EXPECT_FALSE(store.nodes_with_label("OU").empty());
  EXPECT_FALSE(store.nodes_with_label("Group").empty());
  EXPECT_FALSE(store.nodes_with_label("GPO").empty());
  EXPECT_EQ(store.node_count(), ad.graph.node_count());
}

TEST(Export, ElementToElementDropsStructuralNodes) {
  const GeneratedAd ad = small_ad();
  const std::string path = ::testing::TempDir() + "/adsynth_e2e.json";
  export_json(ad, path, /*element_to_element=*/true);
  const auto imported = graphdb::import_apoc_json_file(path);
  EXPECT_TRUE(imported.nodes_with_label("OU").empty());
  EXPECT_TRUE(imported.nodes_with_label("Group").empty());
  EXPECT_TRUE(imported.nodes_with_label("GPO").empty());
  EXPECT_FALSE(imported.nodes_with_label("User").empty());
  EXPECT_FALSE(imported.nodes_with_label("Computer").empty());
  EXPECT_EQ(imported.node_count(), ad.meta.element_count());
}

TEST(Export, ObjectIdsAreUnique) {
  const GeneratedAd ad = small_ad();
  const auto store = to_store(ad);
  std::set<std::string> ids;
  for (graphdb::NodeId n = 0; n < store.node_capacity(); ++n) {
    const auto* oid = store.node_property(n, "objectid");
    ASSERT_NE(oid, nullptr);
    EXPECT_TRUE(ids.insert(oid->as_string()).second) << "duplicate objectid";
  }
  EXPECT_EQ(ids.size(), store.node_count());
}

TEST(Export, FileOutputIsByteDeterministic) {
  const GeneratedAd a = small_ad();
  const GeneratedAd b = small_ad();
  const std::string pa = ::testing::TempDir() + "/adsynth_det_a.json";
  const std::string pb = ::testing::TempDir() + "/adsynth_det_b.json";
  export_json(a, pa, false);
  export_json(b, pb, false);
  std::ifstream fa(pa, std::ios::binary);
  std::ifstream fb(pb, std::ios::binary);
  std::stringstream sa, sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_FALSE(sa.str().empty());
}

TEST(Export, ElementGraphEdgeKindsAreTraversalVocabulary) {
  const GeneratedAd ad = small_ad();
  const auto flat = element_to_element_graph(ad);
  for (const auto& e : flat.edges()) {
    // Expanded edges are permissions and sessions — never structural
    // Contains/GpLink/MemberOf (those define the sets themselves).
    EXPECT_NE(e.kind, adcore::EdgeKind::kContains);
    EXPECT_NE(e.kind, adcore::EdgeKind::kGpLink);
    EXPECT_NE(e.kind, adcore::EdgeKind::kMemberOf);
  }
}

}  // namespace
}  // namespace adsynth::core
