// Tests for strings, cli, table and timer helpers.
#include <gtest/gtest.h>

#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace adsynth::util {
namespace {

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_upper("AbC-9z"), "ABC-9Z");
  EXPECT_EQ(to_lower("AbC-9Z"), "abc-9z");
}

TEST(Strings, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWithAndIequals) {
  EXPECT_TRUE(starts_with("MATCH (n)", "MATCH"));
  EXPECT_FALSE(starts_with("MA", "MATCH"));
  EXPECT_TRUE(iequals("CrEaTe", "create"));
  EXPECT_FALSE(iequals("create", "creat"));
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(1000000), "1,000,000");
}

TEST(Cli, ParsesFlagsOptionsPositionals) {
  CliArgs args;
  args.add_flag("full", "run at paper scale");
  args.add_option("nodes", "node count", "1000");
  args.add_option("label", "series label", "default");
  const char* argv[] = {"prog", "--full", "--nodes", "5000",
                        "--label=xyz", "positional"};
  ASSERT_TRUE(args.parse(6, argv));
  EXPECT_TRUE(args.flag("full"));
  EXPECT_EQ(args.integer("nodes"), 5000);
  EXPECT_EQ(args.str("label"), "xyz");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(Cli, DefaultsApply) {
  CliArgs args;
  args.add_flag("full", "flag");
  args.add_option("nodes", "node count", "1000");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(args.parse(1, argv));
  EXPECT_FALSE(args.flag("full"));
  EXPECT_EQ(args.integer("nodes"), 1000);
}

TEST(Cli, UnknownOptionThrows) {
  CliArgs args;
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(args.parse(2, argv), std::invalid_argument);
}

TEST(Cli, FlagWithValueThrows) {
  CliArgs args;
  args.add_flag("full", "flag");
  const char* argv[] = {"prog", "--full=yes"};
  EXPECT_THROW(args.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  CliArgs args;
  args.add_option("nodes", "count", "1");
  const char* argv[] = {"prog", "--nodes"};
  EXPECT_THROW(args.parse(2, argv), std::invalid_argument);
}

TEST(Cli, BadIntegerThrows) {
  CliArgs args;
  args.add_option("nodes", "count", "1");
  const char* argv[] = {"prog", "--nodes", "12x"};
  ASSERT_TRUE(args.parse(3, argv));
  EXPECT_THROW(args.integer("nodes"), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  CliArgs args;
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(args.parse(2, argv));
}

TEST(Table, AlignsColumns) {
  TextTable t({"|V|", "time"});
  t.add_row({"1000", "0.027"});
  t.add_row({"1000000", "-"});
  const std::string rendered = t.render();
  EXPECT_NE(rendered.find("|V|"), std::string::npos);
  EXPECT_NE(rendered.find("1000000"), std::string::npos);
  // Each line has the same structure: header, rule, rows.
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 4);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fixed(1.23456, 2), "1.23");
  EXPECT_EQ(percent(0.0002, 2), "0.02%");
  EXPECT_EQ(sci(0.00012), "1.2e-04");
}

TEST(RunStats, MeanStdevMedian) {
  RunStats s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.stdev(), 1.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(RunStats, EdgeCases) {
  RunStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stdev(), 0.0);
  EXPECT_THROW(s.median(), std::logic_error);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.stdev(), 0.0);  // single sample
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(RunStats, SummaryFormat) {
  RunStats s;
  s.add(21.0);
  s.add(21.6);
  EXPECT_EQ(s.summary(), "21.300±0.424");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  const double t0 = w.seconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(w.seconds(), t0);
  w.reset();
  EXPECT_LT(w.seconds(), 1.0);
}

}  // namespace
}  // namespace adsynth::util
