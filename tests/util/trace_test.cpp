// util/trace: span nesting, deterministic thread merge, bounded event
// buffers, disarmed no-op behaviour and the Chrome trace_event export.
#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/parallel.hpp"

namespace adsynth::util {
namespace {

const SpanStats* find_span(const TraceReport& report, const std::string& name) {
  for (const SpanStats& s : report.spans()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

class TraceTest : public ::testing::Test {
 protected:
  // With tracing compiled out, spans are no-ops by design — there is
  // nothing to assert against, so the whole suite skips.
  void SetUp() override {
#if !ADSYNTH_TRACE_ENABLED
    GTEST_SKIP() << "built with ADSYNTH_TRACE=OFF";
#endif
  }
  // A capture left armed by a failing test would leak into the next one.
  void TearDown() override { trace_end(); }
};

TEST_F(TraceTest, NestedSpansRecordDepths) {
  trace_begin();
  {
    ADSYNTH_SPAN("test.outer");
    {
      ADSYNTH_SPAN("test.inner");
      { ADSYNTH_SPAN("test.leaf"); }
    }
    { ADSYNTH_SPAN("test.inner"); }
  }
  const TraceReport report = trace_end();

  ASSERT_EQ(report.events().size(), 4u);
  // Events sort by start time: outer opens first but closes last; depths
  // reflect the nesting at entry.
  std::uint32_t max_depth = 0;
  for (const TraceEvent& e : report.events()) max_depth = std::max(max_depth, e.depth);
  EXPECT_EQ(max_depth, 2u);

  const SpanStats* outer = find_span(report, "test.outer");
  const SpanStats* inner = find_span(report, "test.inner");
  const SpanStats* leaf = find_span(report, "test.leaf");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_EQ(leaf->count, 1u);
  // The outer span contains both inner occurrences.
  EXPECT_GE(outer->total_ns, inner->total_ns);
  // Only the coordinator's depth-0 time is "accounted".
  EXPECT_EQ(report.top_level_total_ns(), outer->total_ns);
  // Span table arrives in sorted-name order.
  for (std::size_t i = 1; i < report.spans().size(); ++i) {
    EXPECT_LT(report.spans()[i - 1].name, report.spans()[i].name);
  }
}

TEST_F(TraceTest, SpansOutsideACaptureAreNoOps) {
  ASSERT_FALSE(trace_active());
  { ADSYNTH_SPAN("test.unarmed"); }
  trace_begin();
  EXPECT_TRUE(trace_active());
  const TraceReport report = trace_end();
  EXPECT_FALSE(trace_active());
  EXPECT_TRUE(report.events().empty());
  EXPECT_EQ(find_span(report, "test.unarmed"), nullptr);
  // trace_end without an active capture returns an empty report.
  const TraceReport idle = trace_end();
  EXPECT_TRUE(idle.events().empty());
  EXPECT_EQ(idle.top_level_total_ns(), 0u);
}

// Worker-thread spans merge into one deterministic table: the (name, count)
// rows depend only on the chunk math, never on the thread count.  The name
// keeps "Parallel" so the TSan lane (-R Parallel) covers the merge.
TEST_F(TraceTest, ParallelMergeIsThreadCountInvariant) {
  constexpr std::size_t kItems = 256;
  constexpr std::size_t kGrain = 16;
  std::vector<std::vector<std::pair<std::string, std::uint64_t>>> tables;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    ThreadPool pool(threads);
    trace_begin();
    {
      ADSYNTH_SPAN("test.parallel_region");
      parallel_for(pool, 0, kItems, kGrain,
                   [&](std::size_t lo, std::size_t hi, std::size_t) {
                     ADSYNTH_SPAN("test.chunk");
                     for (std::size_t i = lo; i < hi; ++i) {
                       ADSYNTH_SPAN("test.item");
                     }
                   });
    }
    const TraceReport report = trace_end();
    std::vector<std::pair<std::string, std::uint64_t>> table;
    for (const SpanStats& s : report.spans()) {
      table.emplace_back(s.name, s.count);
    }
    tables.push_back(std::move(table));

    const SpanStats* chunk = find_span(report, "test.chunk");
    ASSERT_NE(chunk, nullptr);
    EXPECT_EQ(chunk->count, kItems / kGrain);
    // Accounted time covers only the coordinator thread, so it can never
    // exceed what concurrent worker spans would sum to.
    const SpanStats* region = find_span(report, "test.parallel_region");
    ASSERT_NE(region, nullptr);
    EXPECT_EQ(report.top_level_total_ns(), region->total_ns);
  }
  EXPECT_EQ(tables[0], tables[1]);
  EXPECT_EQ(tables[0], tables[2]);
}

TEST_F(TraceTest, EventCapDropsEventsButKeepsAggregatesExact) {
  constexpr std::size_t kCap = 8;
  constexpr std::size_t kSpans = 40;
  trace_begin(kCap);
  for (std::size_t i = 0; i < kSpans; ++i) {
    ADSYNTH_SPAN("test.capped");
  }
  const TraceReport report = trace_end();
  EXPECT_EQ(report.events().size(), kCap);
  EXPECT_EQ(report.dropped_events(), kSpans - kCap);
  const SpanStats* capped = find_span(report, "test.capped");
  ASSERT_NE(capped, nullptr);
  EXPECT_EQ(capped->count, kSpans);  // aggregates never truncate
}

TEST_F(TraceTest, ChromeExportIsValidJson) {
  trace_begin();
  {
    ADSYNTH_SPAN("test.export");
    { ADSYNTH_SPAN("test.export.child"); }
  }
  const TraceReport report = trace_end();
  std::ostringstream out;
  report.write_chrome_trace(out);

  const JsonValue doc = JsonValue::parse(out.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const JsonArray& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  for (const JsonValue& e : events) {
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_EQ(e.at("cat").as_string(), "adsynth");
    EXPECT_GE(e.at("ts").as_double(), 0.0);
    EXPECT_GE(e.at("dur").as_double(), 0.0);
  }
  // Timestamps are capture-relative — the first event starts near zero,
  // not at an absolute clock reading.
  EXPECT_LT(events.front().at("ts").as_double(), 1e6);

  const JsonValue phases = report.phases_json();
  ASSERT_TRUE(phases.is_array());
  ASSERT_EQ(phases.as_array().size(), 2u);
  const JsonValue& first = phases.as_array().front();
  EXPECT_EQ(first.at("name").as_string(), "test.export");
  EXPECT_EQ(first.at("count").as_int(), 1);
  EXPECT_TRUE(first.contains("p50_ns"));
  EXPECT_TRUE(first.contains("p95_ns"));
}

TEST_F(TraceTest, BackToBackCapturesAreIsolated) {
  trace_begin();
  { ADSYNTH_SPAN("test.first_capture"); }
  const TraceReport first = trace_end();
  trace_begin();
  { ADSYNTH_SPAN("test.second_capture"); }
  const TraceReport second = trace_end();

  EXPECT_NE(find_span(first, "test.first_capture"), nullptr);
  EXPECT_EQ(find_span(first, "test.second_capture"), nullptr);
  EXPECT_NE(find_span(second, "test.second_capture"), nullptr);
  EXPECT_EQ(find_span(second, "test.first_capture"), nullptr);
}

}  // namespace
}  // namespace adsynth::util
