// util/metrics: histogram bucket math, quantile readout, counter/gauge
// semantics and registry reset behaviour.
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace adsynth::util {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  // The registry is process-global; start every test from zeroed values so
  // ordering between tests never matters.
  void SetUp() override { MetricsRegistry::instance().reset(); }
  void TearDown() override { MetricsRegistry::instance().reset(); }
};

TEST_F(MetricsTest, BucketIndexIsIdentityForSmallValues) {
  // Values below 2^(kSubBits+1) = 16 get exact one-value buckets.
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets << 1; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower(v), v);
    EXPECT_EQ(Histogram::bucket_upper(v), v + 1);
  }
}

TEST_F(MetricsTest, BucketEdgesAtTheLogLinearBoundary) {
  // 16 and 17 share the first two-wide bucket; 18 starts the next.
  EXPECT_EQ(Histogram::bucket_index(16), 16u);
  EXPECT_EQ(Histogram::bucket_index(17), 16u);
  EXPECT_EQ(Histogram::bucket_index(18), 17u);
  EXPECT_EQ(Histogram::bucket_lower(16), 16u);
  EXPECT_EQ(Histogram::bucket_upper(16), 18u);
  EXPECT_EQ(Histogram::bucket_lower(17), 18u);
}

TEST_F(MetricsTest, BucketsPartitionTheValueRange) {
  // Every bucket's lower edge maps back to that bucket, and upper edges
  // are the next bucket's lower edge — no gaps, no overlaps.
  for (std::size_t b = 0; b + 1 < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(b)), b);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_upper(b)), b + 1);
    EXPECT_EQ(Histogram::bucket_upper(b), Histogram::bucket_lower(b + 1));
  }
  // The top bucket absorbs the largest representable value.
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kBuckets - 1);
}

TEST_F(MetricsTest, QuantileOfUniformSamples) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  // The true median is 50, inside bucket [48, 52); the readout reports the
  // bucket's inclusive upper edge.
  const std::uint64_t p50 = h.quantile(0.5);
  EXPECT_GE(p50, 48u);
  EXPECT_LT(p50, 52u);
  // p100 lands in the bucket holding 100 ([96, 104)).
  const std::uint64_t p100 = h.quantile(1.0);
  EXPECT_GE(p100, 96u);
  EXPECT_LT(p100, 104u);
  EXPECT_EQ(Histogram().quantile(0.5), 0u);  // empty histogram
}

TEST_F(MetricsTest, QuantileIsExactBelowTheLogLinearRange) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(3);
  h.record(9);
  EXPECT_EQ(h.quantile(0.5), 3u);   // small values have one-value buckets
  EXPECT_EQ(h.quantile(1.0), 9u);
}

TEST_F(MetricsTest, HistogramMergeAddsBucketwise) {
  Histogram a;
  Histogram b;
  a.record(5);
  a.record(100);
  b.record(5);
  b.record(1'000'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 5u + 100u + 5u + 1'000'000u);
  EXPECT_EQ(a.bucket_count(Histogram::bucket_index(5)), 2u);
}

TEST_F(MetricsTest, CounterAndGauge) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(-7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST_F(MetricsTest, RegistryInternsByNameAndResetKeepsReferences) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  Counter& c1 = reg.counter("test.counter");
  Counter& c2 = reg.counter("test.counter");
  EXPECT_EQ(&c1, &c2);  // same name → same metric
  c1.add(5);
  EXPECT_EQ(c2.value(), 5u);

  Histogram& h = reg.histogram("test.hist");
  h.record(12);
  reg.reset();
  // reset() zeroes values but keeps registrations: old references stay
  // valid and still address the registered metric.
  EXPECT_EQ(c1.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c1.add(1);
  EXPECT_EQ(reg.counter("test.counter").value(), 1u);
}

TEST_F(MetricsTest, SnapshotRendersSortedSections) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.counter("test.b").add(2);
  reg.counter("test.a").add(1);
  reg.gauge("test.g").set(-4);
  reg.histogram("test.h").record(50);

  const JsonObject snap = reg.snapshot();
  ASSERT_TRUE(snap.count("counters"));
  ASSERT_TRUE(snap.count("gauges"));
  ASSERT_TRUE(snap.count("histograms"));
  const std::string text = JsonValue(snap).dump();
  // std::map keying ⇒ "test.a" serializes before "test.b".
  EXPECT_LT(text.find("test.a"), text.find("test.b"));
  EXPECT_NE(text.find("\"p50\""), std::string::npos);
  EXPECT_NE(text.find("\"p95\""), std::string::npos);
}

}  // namespace
}  // namespace adsynth::util
