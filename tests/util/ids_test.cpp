#include "util/ids.hpp"

#include <gtest/gtest.h>

#include <set>

namespace adsynth::util {
namespace {

TEST(Guid, FormatShape) {
  Rng rng(1);
  const std::string s = Guid::random(rng).to_string();
  ASSERT_EQ(s.size(), 36u);
  EXPECT_EQ(s[8], '-');
  EXPECT_EQ(s[13], '-');
  EXPECT_EQ(s[18], '-');
  EXPECT_EQ(s[23], '-');
  // Version nibble is 4; variant nibble is 8..b.
  EXPECT_EQ(s[14], '4');
  EXPECT_TRUE(s[19] == '8' || s[19] == '9' || s[19] == 'a' || s[19] == 'b');
}

TEST(Guid, RoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const Guid g = Guid::random(rng);
    EXPECT_EQ(Guid::parse(g.to_string()), g);
  }
}

TEST(Guid, ParseRejectsMalformed) {
  EXPECT_THROW(Guid::parse(""), std::invalid_argument);
  EXPECT_THROW(Guid::parse("not-a-guid"), std::invalid_argument);
  EXPECT_THROW(Guid::parse("00000000-0000-0000-0000-00000000000g"),
               std::invalid_argument);
  EXPECT_THROW(Guid::parse("00000000+0000-0000-0000-000000000000"),
               std::invalid_argument);
}

TEST(Guid, DistinctAcrossDraws) {
  Rng rng(3);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(Guid::random(rng).to_string());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Sid, FormatAndRoundTrip) {
  const Sid sid{111, 222, 333, 512};
  EXPECT_EQ(sid.to_string(), "S-1-5-21-111-222-333-512");
  EXPECT_EQ(sid.domain_part(), "S-1-5-21-111-222-333");
  EXPECT_EQ(Sid::parse(sid.to_string()), sid);
}

TEST(Sid, ParseRejectsMalformed) {
  EXPECT_THROW(Sid::parse("S-1-5-32-544"), std::invalid_argument);
  EXPECT_THROW(Sid::parse("S-1-5-21-1-2-3"), std::invalid_argument);
  EXPECT_THROW(Sid::parse("S-1-5-21-1-2-3-4-5"), std::invalid_argument);
  EXPECT_THROW(Sid::parse("S-1-5-21-a-2-3-4"), std::invalid_argument);
}

TEST(SidFactory, SequentialRidsFromOneThousand) {
  Rng rng(4);
  SidFactory factory(rng);
  const Sid first = factory.next();
  const Sid second = factory.next();
  EXPECT_EQ(first.rid, 1000u);
  EXPECT_EQ(second.rid, 1001u);
  EXPECT_EQ(factory.issued(), 2u);
  // Same domain part.
  EXPECT_EQ(first.domain_part(), second.domain_part());
}

TEST(SidFactory, WellKnownRidsShareDomain) {
  Rng rng(5);
  SidFactory factory(rng);
  const Sid da = factory.well_known(512);
  EXPECT_EQ(da.rid, 512u);
  EXPECT_EQ(da.domain_part(), factory.next().domain_part());
}

TEST(SidFactory, DifferentSeedsGiveDifferentDomains) {
  Rng a(6);
  Rng b(7);
  SidFactory fa(a);
  SidFactory fb(b);
  EXPECT_NE(fa.well_known(512).domain_part(), fb.well_known(512).domain_part());
}

}  // namespace
}  // namespace adsynth::util
