// Tests for the work-stealing thread pool and the deterministic
// ordered-reduction helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/parallel.hpp"

namespace adsynth::util {
namespace {

TEST(ThreadPool, SizeCountsTheCaller) {
  ThreadPool one(1);
  EXPECT_EQ(one.size(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4u);
}

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kChunks = 1000;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.run(kChunks, [&](std::size_t chunk, std::size_t worker) {
    ASSERT_LT(worker, pool.size());
    hits[chunk].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossRegions) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.run(17, [&](std::size_t, std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 17);
  }
}

TEST(ThreadPool, NestedRunExecutesInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.run(8, [&](std::size_t, std::size_t) {
    // A nested region must not deadlock; it runs inline on this worker.
    pool.run(5, [&](std::size_t, std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 5);
}

TEST(ParallelFor, CoversTheRangeInGrainSlices) {
  ThreadPool pool(4);
  std::vector<int> touched(103, 0);
  parallel_for(pool, 3, 103, 7,
               [&](std::size_t lo, std::size_t hi, std::size_t) {
                 EXPECT_LE(hi - lo, 7u);
                 for (std::size_t i = lo; i < hi; ++i) touched[i] += 1;
               });
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i], i >= 3 ? 1 : 0) << i;
  }
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 5, 5, 4,
               [&](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

// The core determinism guarantee: a floating-point reduction is bit-identical
// at every thread count because the bracketing depends on the grain alone.
TEST(ParallelMapReduce, BitIdenticalAcrossThreadCounts) {
  // Values spread over many magnitudes so summation order matters.
  std::vector<double> values(10'000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = std::ldexp(1.0, static_cast<int>(i % 64) - 32) +
                static_cast<double>(i) * 1e-7;
  }
  auto sum_with = [&](std::size_t threads) {
    ThreadPool pool(threads);
    return parallel_map_reduce(
        pool, 0, values.size(), /*grain=*/37, 0.0,
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) s += values[i];
          return s;
        },
        [](double& acc, double part) { acc += part; });
  };
  const double serial = sum_with(1);
  EXPECT_EQ(serial, sum_with(2));  // EQ, not NEAR: bit-identical
  EXPECT_EQ(serial, sum_with(3));
  EXPECT_EQ(serial, sum_with(8));
}

TEST(ParallelMapReduce, ReducesInChunkOrder) {
  ThreadPool pool(4);
  const auto order = parallel_map_reduce(
      pool, 0, 100, 9, std::vector<std::size_t>{},
      [](std::size_t lo, std::size_t, std::size_t) {
        return std::vector<std::size_t>{lo};
      },
      [](std::vector<std::size_t>& acc, std::vector<std::size_t>&& part) {
        acc.insert(acc.end(), part.begin(), part.end());
      });
  ASSERT_EQ(order.size(), chunk_count(100, 9));
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(GlobalPool, ResizesOnDemand) {
  set_global_threads(2);
  EXPECT_EQ(global_threads(), 2u);
  EXPECT_EQ(global_pool().size(), 2u);
  set_global_threads(1);
  EXPECT_EQ(global_threads(), 1u);
}

}  // namespace
}  // namespace adsynth::util
